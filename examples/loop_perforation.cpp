//===- loop_perforation.cpp - Verified loop perforation ------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop perforation (Misailovic et al., the paper's flagship relaxation
/// class): a reduction over an array may skip iterations by relaxing its
/// stride. Built entirely with the AstContext builder API — no .rlx file —
/// to demonstrate embedding the verifier in a host application (the way a
/// perforating compiler would use it).
///
/// The verified acceptability properties:
///  * integrity: no out-of-bounds reads for any perforation (safety VCs);
///  * sign preservation: for non-negative inputs, both the original and
///    every perforated sum stay non-negative (relate statement).
///
/// After verification the example sweeps perforation factors 1..4 and
/// reports work saved vs accuracy lost.
///
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"
#include "eval/PairRunner.h"
#include "sema/Sema.h"
#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"
#include "support/Random.h"
#include "vcgen/Verifier.h"

#include <cstdio>
#include <cstdlib>

using namespace relax;

namespace {

/// Builds the perforated-sum program.
///
///   array data; int i, n, sum, stride;
///   requires (n >= 0 && n <= len(data) &&
///             !(exists j . 0 <= j && j < n && data[j] < 0));
///   {
///     i = 0; sum = 0; stride = 1;
///     relax (stride) st (1 <= stride && stride <= 4);
///     while (i < n) ... { sum = sum + data[i]; i = i + stride; }
///     relate sign : sum<o> >= 0 && sum<r> >= 0;
///   }
Program buildPerforatedSum(AstContext &Ctx) {
  Program Prog;
  Symbol Data = Ctx.sym("data"), I = Ctx.sym("i"), N = Ctx.sym("n"),
         Sum = Ctx.sym("sum"), Stride = Ctx.sym("stride");
  Prog.declare(Data, VarKind::Array);
  for (Symbol S : {I, N, Sum, Stride})
    Prog.declare(S, VarKind::Int);

  const ArrayExpr *DataRef = Ctx.arrayRef(Data);
  Symbol J = Ctx.sym("j");
  const BoolExpr *NonNegData = Ctx.notExpr(Ctx.exists(
      J, VarTag::Plain, VarKind::Int,
      Ctx.conj({Ctx.ge(Ctx.var(J), Ctx.intLit(0)),
                Ctx.lt(Ctx.var(J), Ctx.var(N)),
                Ctx.lt(Ctx.arrayRead(DataRef, Ctx.var(J)), Ctx.intLit(0))})));
  Prog.setRequires(Ctx.conj({
      Ctx.ge(Ctx.var(N), Ctx.intLit(0)),
      Ctx.le(Ctx.var(N), Ctx.arrayLen(DataRef)),
      NonNegData,
  }));
  Prog.setEnsures(Ctx.ge(Ctx.var(Sum), Ctx.intLit(0)));

  // Shared unary facts that must survive the divergent loop.
  const BoolExpr *Shared = Ctx.conj({
      Ctx.ge(Ctx.var(I), Ctx.intLit(0)),
      Ctx.ge(Ctx.var(Sum), Ctx.intLit(0)),
      Ctx.ge(Ctx.var(Stride), Ctx.intLit(1)),
      Ctx.le(Ctx.var(N), Ctx.arrayLen(DataRef)),
      NonNegData,
  });

  LoopAnnotations Ann;
  Ann.Invariant =
      Ctx.conj({Shared, Ctx.eq(Ctx.var(Stride), Ctx.intLit(1))});
  Ann.IntermediateInvariant = Shared;

  DivergeAnnotation Div;
  Div.PreOrig = Ann.Invariant;
  Div.PreRel = Shared;
  Div.PostOrig = Ctx.conj({Shared, Ctx.ge(Ctx.var(I), Ctx.var(N))});
  Div.PostRel = Div.PostOrig;
  Div.Frame = Ctx.eq(Ctx.varO("n"), Ctx.varR("n"));

  const Stmt *Body = Ctx.seq({
      Ctx.assign(Sum, Ctx.add(Ctx.var(Sum), Ctx.arrayRead(DataRef,
                                                          Ctx.var(I)))),
      Ctx.assign(I, Ctx.add(Ctx.var(I), Ctx.var(Stride))),
  });
  const Stmt *Loop =
      Ctx.whileStmt(Ctx.lt(Ctx.var(I), Ctx.var(N)), Body, Ann,
                    Ctx.divergeAnnotation(Div));

  const BoolExpr *Sign = Ctx.conj({
      Ctx.ge(Ctx.varO("sum"), Ctx.intLit(0)),
      Ctx.ge(Ctx.varR("sum"), Ctx.intLit(0)),
  });
  Prog.setBody(Ctx.seq({
      Ctx.assign(I, Ctx.intLit(0)),
      Ctx.assign(Sum, Ctx.intLit(0)),
      Ctx.assign(Stride, Ctx.intLit(1)),
      Ctx.relax({Stride}, Ctx.conj({Ctx.le(Ctx.intLit(1), Ctx.var(Stride)),
                                    Ctx.le(Ctx.var(Stride), Ctx.intLit(4))})),
      Loop,
      Ctx.relate("sign", Sign),
  }));
  return Prog;
}

/// Perforation runtime: pins the stride knob to a fixed factor.
class PerforationOracle : public Oracle {
public:
  PerforationOracle(AstContext &Ctx, int64_t Factor)
      : Ctx(Ctx), Factor(Factor) {}

  const char *name() const override { return "perforation"; }

  ChoiceResult choose(const ChoiceRequest &Req) override {
    State Out = *Req.Current;
    Out[Ctx.sym("stride")] = Value(Factor);
    return ChoiceResult{ChoiceStatus::Found, Out};
  }

private:
  AstContext &Ctx;
  int64_t Factor;
};

} // namespace

int main() {
  AstContext Ctx;
  Program Prog = buildPerforatedSum(Ctx);

  Printer P(Ctx.symbols());
  std::printf("== Program (builder-constructed) ==\n%s\n",
              P.print(Prog).c_str());

  DiagnosticEngine Diags;
  Z3Solver Backend(Ctx.symbols());
  CachingSolver Solver(Backend);
  Verifier V(Ctx, Prog, Solver, Diags);
  VerifyReport Report = V.run();
  std::printf("verification: %s (%zu VCs)\n",
              Report.verified() ? "VERIFIED" : "FAILED", Report.totalVCs());
  if (!Report.verified()) {
    std::printf("%s%s", renderReport(Report, Ctx.symbols()).c_str(),
                Diags.render().c_str());
    return 1;
  }

  // Perforation sweep over a random non-negative workload.
  const size_t Len = 4000;
  SplitMix64 Rng(7);
  ArrayValue DataVal(Len);
  for (int64_t &X : DataVal)
    X = Rng.nextInRange(0, 100);
  State Init = Interp::zeroState(Prog, Len);
  Init[Ctx.sym("data")] = Value(DataVal);
  Init[Ctx.sym("n")] = Value(static_cast<int64_t>(Len));

  InterpOptions Opts;
  Opts.MaxSteps = 10'000'000;
  SolverOracle Baseline(Ctx, Solver);
  Interp OrigInterp(Prog, Ctx.symbols(), Baseline, Opts);
  Outcome Orig = OrigInterp.run(SemanticsMode::Original, Init);
  if (!Orig.ok()) {
    std::fprintf(stderr, "original run failed: %s\n", Orig.Reason.c_str());
    return 1;
  }
  int64_t Exact = Orig.FinalState.at(Ctx.sym("sum")).asInt();

  std::printf("\n%8s %12s %12s %10s\n", "stride", "sum", "error%",
              "speedup");
  for (int64_t Factor : {1, 2, 3, 4}) {
    PerforationOracle O(Ctx, Factor);
    Interp RelInterp(Prog, Ctx.symbols(), O, Opts);
    Outcome Rel = RelInterp.run(SemanticsMode::Relaxed, Init);
    if (!Rel.ok()) {
      std::fprintf(stderr, "perforated run failed: %s\n",
                   Rel.Reason.c_str());
      return 1;
    }
    int64_t Sum = Rel.FinalState.at(Ctx.sym("sum")).asInt();
    double Error =
        Exact == 0 ? 0.0 : 100.0 * double(Exact - Sum) / double(Exact);
    std::printf("%8lld %12lld %11.1f%% %9.1fx\n",
                static_cast<long long>(Factor),
                static_cast<long long>(Sum), Error,
                static_cast<double>(Factor));
  }
  std::printf("\nevery perforated execution kept the verified sign "
              "property (sum >= 0)\n");
  return 0;
}
