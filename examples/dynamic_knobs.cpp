//===- dynamic_knobs.cpp - Swish++ dynamic-knobs scenario ----------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.1 case study as an application: a search server under
/// varying load. At each load level the server relaxes its
/// result-presentation threshold `max_r` (a dynamic knob); the verified
/// relate statement guarantees users always see all results (when few) or
/// at least the top 10. This example
///
///   1. verifies examples/programs/swish.rlx once,
///   2. simulates a load sweep: for each load level it executes the
///      relaxed semantics with a load-aware oracle and reports the work
///      saved (loop iterations) against the acceptability guarantee.
///
//===----------------------------------------------------------------------===//

#include "eval/PairRunner.h"
#include "parser/Parser.h"
#include "sema/Sema.h"
#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"
#include "vcgen/Verifier.h"

#include <cstdio>
#include <memory>

using namespace relax;

namespace {

/// Resolves the Swish relax statement like a load-aware runtime would:
/// under load L percent, push max_r down toward the floor of 10.
class LoadAwareOracle : public Oracle {
public:
  LoadAwareOracle(AstContext &Ctx, unsigned LoadPercent)
      : Ctx(Ctx), LoadPercent(LoadPercent) {}

  const char *name() const override { return "load-aware"; }

  ChoiceResult choose(const ChoiceRequest &Req) override {
    State Out = *Req.Current;
    Symbol MaxR = Ctx.sym("max_r");
    auto It = Out.find(MaxR);
    if (It == Out.end() || !It->second.isInt())
      return ChoiceResult{ChoiceStatus::Unknown, State()};
    int64_t Cur = It->second.asInt();
    // Scale the threshold down with load, but never below the verified
    // floor of 10 (and leave small thresholds alone, as the relaxation
    // predicate demands).
    if (Cur > 10) {
      int64_t Scaled = Cur - (Cur - 10) * LoadPercent / 100;
      It->second = Value(Scaled < 10 ? 10 : Scaled);
    }
    return ChoiceResult{ChoiceStatus::Found, Out};
  }

private:
  AstContext &Ctx;
  unsigned LoadPercent;
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Path =
      Argc > 1 ? Argv[1] : std::string(RELAXC_EXAMPLES_DIR) + "/swish.rlx";

  SourceManager SM;
  if (Status S = SM.loadFile(Path); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }
  DiagnosticEngine Diags;
  Diags.setFileName(Path);
  AstContext Ctx;
  Parser P(Ctx, SM, Diags);
  std::optional<Program> Prog = P.parseProgram();
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 2;
  }

  // 1. Verify the relaxation once, offline.
  Z3Solver Backend(Ctx.symbols());
  CachingSolver Solver(Backend);
  Verifier V(Ctx, *Prog, Solver, Diags);
  VerifyReport Report = V.run();
  std::printf("verification: %s (%zu VCs)\n",
              Report.verified() ? "VERIFIED" : "FAILED", Report.totalVCs());
  if (!Report.verified()) {
    std::printf("%s", renderReport(Report, Ctx.symbols()).c_str());
    return 1;
  }

  DiagnosticEngine SemaDiags;
  Sema SemaPass(*Prog, SemaDiags);
  auto Info = SemaPass.run();
  if (!Info)
    return 1;
  RelateMap Gamma(Info->relateMap().begin(), Info->relateMap().end());

  // 2. Simulate the server answering a query with 50 hits under a load
  //    sweep. The original execution presents min(N, max_r) = 40 results;
  //    relaxed executions present fewer as load grows — never below 10.
  State Init = Interp::zeroState(*Prog);
  Init[Ctx.sym("N")] = Value(int64_t(50));
  Init[Ctx.sym("max_r")] = Value(int64_t(40));

  std::printf("\n%8s %10s %12s %12s %8s\n", "load%", "presented",
              "iterations", "work-saved%", "relate");
  for (unsigned Load : {0, 25, 50, 75, 100}) {
    SolverOracle OrigOracle(Ctx, Solver); // relax is a no-op under ⇓o
    Interp OrigInterp(*Prog, Ctx.symbols(), OrigOracle);
    Outcome Orig = OrigInterp.run(SemanticsMode::Original, Init);

    LoadAwareOracle RelOracle(Ctx, Load);
    Interp RelInterp(*Prog, Ctx.symbols(), RelOracle);
    Outcome Rel = RelInterp.run(SemanticsMode::Relaxed, Init);

    if (!Orig.ok() || !Rel.ok()) {
      std::printf("%8u execution failed: %s\n", Load,
                  (Orig.ok() ? Rel : Orig).Reason.c_str());
      return 1;
    }
    CompatResult Compat = checkObservationalCompatibility(
        Gamma, Orig.Observations, Rel.Observations, Ctx.symbols());

    int64_t Presented = Rel.FinalState.at(Ctx.sym("num_r")).asInt();
    int64_t Baseline = Orig.FinalState.at(Ctx.sym("num_r")).asInt();
    double Saved = Baseline == 0
                       ? 0.0
                       : 100.0 * double(Baseline - Presented) / double(Baseline);
    std::printf("%8u %10lld %12lld %11.1f%% %8s\n", Load,
                static_cast<long long>(Presented),
                static_cast<long long>(Presented),
                Saved, Compat.Compatible ? "ok" : "VIOLATED");
    if (!Compat.Compatible) {
      std::printf("  %s\n", Compat.Reason.c_str());
      return 1;
    }
  }
  std::printf("\nall load levels satisfied the verified acceptability "
              "property (>= 10 of 40 results)\n");
  return 0;
}
