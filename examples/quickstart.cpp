//===- quickstart.cpp - relaxc library quickstart ------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour of the library:
///
///   1. build a relaxed program with the AstContext builder API,
///   2. verify it under both axiomatic semantics (|-o and |-r),
///   3. execute the dynamic original and relaxed semantics,
///   4. check observational compatibility of the execution pair.
///
/// The program is the paper's running idea in miniature: a computation
/// whose result may be relaxed within an error bound, with a relate
/// statement asserting the bound as the acceptability property.
///
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"
#include "eval/PairRunner.h"
#include "sema/Sema.h"
#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"
#include "vcgen/Verifier.h"

#include <cstdio>

using namespace relax;

int main() {
  AstContext Ctx;

  // -- 1. Build the program ------------------------------------------------
  //
  //   int result, budget;
  //   requires (result >= 0 && budget >= 0);
  //   {
  //     relax (result) st (result >= 0 &&
  //                        result - budget <= result_orig <= ...);
  //   }
  //
  // In surface syntax this is examples/programs/*.rlx; here we use the
  // builder API directly.
  Program Prog;
  Symbol Result = Ctx.sym("result");
  Symbol Budget = Ctx.sym("budget");
  Symbol Saved = Ctx.sym("saved");
  Prog.declare(Result, VarKind::Int);
  Prog.declare(Budget, VarKind::Int);
  Prog.declare(Saved, VarKind::Int);

  // requires (result >= 0 && budget >= 0 && budget <= 10)
  Prog.setRequires(Ctx.conj({
      Ctx.ge(Ctx.var(Result), Ctx.intLit(0)),
      Ctx.ge(Ctx.var(Budget), Ctx.intLit(0)),
      Ctx.le(Ctx.var(Budget), Ctx.intLit(10)),
  }));

  // saved = result;
  // relax (result) st (saved - budget <= result && result <= saved + budget);
  // assert result >= 0 - 10;   (transferred to the relaxed execution)
  // relate quality : |result<o> - result<r>| <= budget<o>
  const BoolExpr *RelaxPred = Ctx.conj({
      Ctx.le(Ctx.sub(Ctx.var(Saved), Ctx.var(Budget)), Ctx.var(Result)),
      Ctx.le(Ctx.var(Result), Ctx.add(Ctx.var(Saved), Ctx.var(Budget))),
  });
  const BoolExpr *Quality = Ctx.conj({
      Ctx.le(Ctx.sub(Ctx.varO("result"), Ctx.varR("result")),
             Ctx.varO("budget")),
      Ctx.le(Ctx.sub(Ctx.varR("result"), Ctx.varO("result")),
             Ctx.varO("budget")),
  });
  Prog.setBody(Ctx.seq({
      Ctx.assign(Saved, Ctx.var(Result)),
      Ctx.relax({Result}, RelaxPred),
      Ctx.assert_(Ctx.ge(Ctx.var(Result), Ctx.sub(Ctx.intLit(0),
                                                  Ctx.intLit(10)))),
      Ctx.relate("quality", Quality),
  }));

  Printer P(Ctx.symbols());
  std::printf("== Program ==\n%s\n", P.print(Prog).c_str());

  // -- 2. Verify -------------------------------------------------------------
  DiagnosticEngine Diags;
  Z3Solver Backend(Ctx.symbols());
  CachingSolver Solver(Backend);
  Verifier V(Ctx, Prog, Solver, Diags);
  VerifyReport Report = V.run();
  std::printf("== Verification ==\n%s\n",
              renderReport(Report, Ctx.symbols()).c_str());
  if (!Report.verified())
    return 1;

  // -- 3. Execute both dynamic semantics -------------------------------------
  State Init;
  Init[Result] = Value(int64_t(42));
  Init[Budget] = Value(int64_t(5));
  Init[Saved] = Value(int64_t(0));

  SolverOracle OrigOracle(Ctx, Solver);
  Interp OrigInterp(Prog, Ctx.symbols(), OrigOracle);
  Outcome Orig = OrigInterp.run(SemanticsMode::Original, Init);

  SolverOracle::Options RelOpts;
  RelOpts.Seed = 2026;
  SolverOracle RelOracle(Ctx, Solver, RelOpts);
  Interp RelInterp(Prog, Ctx.symbols(), RelOracle);
  Outcome Rel = RelInterp.run(SemanticsMode::Relaxed, Init);

  std::printf("== Execution ==\noriginal: %s  %s\nrelaxed:  %s  %s\n",
              outcomeKindName(Orig.Kind),
              formatState(Ctx.symbols(), Orig.FinalState).c_str(),
              outcomeKindName(Rel.Kind),
              formatState(Ctx.symbols(), Rel.FinalState).c_str());

  // -- 4. Check observational compatibility (Theorem 6, dynamically) --------
  RelateMap Gamma;
  Gamma[Ctx.sym("quality")] = Quality;
  CompatResult Compat = checkObservationalCompatibility(
      Gamma, Orig.Observations, Rel.Observations, Ctx.symbols());
  std::printf("== Compatibility ==\n%s\n",
              Compat.Compatible ? "the execution pair satisfies every "
                                  "relate statement"
                                : Compat.Reason.c_str());
  return Compat.Compatible ? 0 : 1;
}
