//===- approx_memory.cpp - LU pivot under approximate memory -------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.3 case study as an application: the SciMark2 LU pivot
/// search with its column stored in low-power approximate memory whose
/// reads may be off by at most `e`. The verified relate statement is the
/// Lipschitz bound |max<o> - max<r>| <= e.
///
/// This example verifies examples/programs/lu.rlx, then sweeps the
/// hardware error bound e and, for each setting, runs many
/// original/relaxed execution pairs with random columns, measuring the
/// observed pivot error against the verified bound.
///
//===----------------------------------------------------------------------===//

#include "eval/PairRunner.h"
#include "parser/Parser.h"
#include "sema/Sema.h"
#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"
#include "support/Random.h"
#include "vcgen/Verifier.h"

#include <algorithm>
#include <cstdio>

using namespace relax;

int main(int Argc, char **Argv) {
  std::string Path =
      Argc > 1 ? Argv[1] : std::string(RELAXC_EXAMPLES_DIR) + "/lu.rlx";

  SourceManager SM;
  if (Status S = SM.loadFile(Path); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }
  DiagnosticEngine Diags;
  Diags.setFileName(Path);
  AstContext Ctx;
  Parser P(Ctx, SM, Diags);
  std::optional<Program> Prog = P.parseProgram();
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 2;
  }

  Z3Solver Backend(Ctx.symbols());
  CachingSolver Solver(Backend);
  Verifier V(Ctx, *Prog, Solver, Diags);
  VerifyReport Report = V.run();
  std::printf("verification: %s (%zu VCs)\n",
              Report.verified() ? "VERIFIED" : "FAILED", Report.totalVCs());
  if (!Report.verified()) {
    std::printf("%s", renderReport(Report, Ctx.symbols()).c_str());
    return 1;
  }

  DiagnosticEngine SemaDiags;
  Sema SemaPass(*Prog, SemaDiags);
  auto Info = SemaPass.run();
  if (!Info)
    return 1;
  RelateMap Gamma(Info->relateMap().begin(), Info->relateMap().end());
  PairRunner Runner(*Prog, Ctx.symbols(), Gamma);

  const size_t N = 12;     // column length
  const unsigned Runs = 8; // pairs per error level
  SplitMix64 Rng(2026);

  std::printf("\n%6s %8s %12s %12s %10s\n", "e", "pairs", "max|err|",
              "bound-ok", "compat");
  for (int64_t E : {0, 1, 2, 4, 8}) {
    int64_t WorstErr = 0;
    bool AllWithinBound = true, AllCompatible = true;
    for (unsigned R = 0; R != Runs; ++R) {
      // Random matrix column in approximate memory.
      ArrayValue Col(N);
      for (int64_t &X : Col)
        X = Rng.nextInRange(-100, 100);
      State Init = Interp::zeroState(*Prog, N);
      Init[Ctx.sym("A")] = Value(Col);
      Init[Ctx.sym("N")] = Value(static_cast<int64_t>(N));
      Init[Ctx.sym("e")] = Value(E);
      Init[Ctx.sym("max")] = Value(Col[0]);

      SolverOracle::Options OO;
      OO.Seed = 100 * static_cast<uint64_t>(E + 1) + R;
      SolverOracle OrigOracle(Ctx, Solver, OO);
      SolverOracle::Options RO;
      RO.Seed = 7919 * static_cast<uint64_t>(E + 1) + R;
      SolverOracle RelOracle(Ctx, Solver, RO);
      PairOutcome Pair = Runner.run(Init, OrigOracle, RelOracle);
      if (!Pair.Orig.ok() || !Pair.Rel.ok()) {
        std::fprintf(stderr, "execution failed: %s\n",
                     (Pair.Orig.ok() ? Pair.Rel : Pair.Orig).Reason.c_str());
        return 1;
      }
      int64_t MaxO = Pair.Orig.FinalState.at(Ctx.sym("max")).asInt();
      int64_t MaxR = Pair.Rel.FinalState.at(Ctx.sym("max")).asInt();
      int64_t Err = std::abs(MaxO - MaxR);
      WorstErr = std::max(WorstErr, Err);
      AllWithinBound &= Err <= E;
      AllCompatible &= Pair.Compat.Compatible;
    }
    std::printf("%6lld %8u %12lld %12s %10s\n", static_cast<long long>(E),
                Runs, static_cast<long long>(WorstErr),
                AllWithinBound ? "yes" : "NO",
                AllCompatible ? "yes" : "NO");
    if (!AllWithinBound || !AllCompatible)
      return 1;
  }
  std::printf("\nthe observed pivot error never exceeded the verified "
              "Lipschitz bound\n");
  return 0;
}
