//===- dynamic_monitor.cpp - E5: pair execution and monitoring ----------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E5: throughput and outcome statistics of the dynamic
/// metatheorem monitor — original/relaxed pair execution plus the
/// observational-compatibility check (Theorem 6) — on the verified case
/// studies, ablated over the nondeterminism-resolution oracle:
///
///   * solver oracle — definite, explores the relaxation space (slowest);
///   * random search — cheap sampling, may get stuck on narrow predicates;
///   * identity — zero-relaxation baseline (fastest, no exploration).
///
/// Counters: compatible / incompatible / errors / stuck per run batch.
/// For verified programs `incompatible` and `errors` must stay 0 — the
/// monitor re-validates Theorems 6-8 on every batch.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/PairRunner.h"
#include "sema/Sema.h"
#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"

#include <benchmark/benchmark.h>

using namespace relax;
using namespace relax::bench;

namespace {

enum class OracleChoice { Solver, Random, Identity };

void monitorExample(benchmark::State &State, const char *Name,
                    OracleChoice Which) {
  Loaded L = loadExample(Name);
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  DiagnosticEngine SemaDiags;
  Sema SemaPass(*L.Prog, SemaDiags);
  auto Info = SemaPass.run();
  if (!Info) {
    State.SkipWithError("sema failed");
    return;
  }
  RelateMap Gamma(Info->relateMap().begin(), Info->relateMap().end());
  Z3Solver Backend(L.Ctx->symbols());
  PairRunner Runner(*L.Prog, L.Ctx->symbols(), Gamma);

  unsigned Compatible = 0, Incompatible = 0, Errors = 0, Stuck = 0;
  uint64_t Seed = 1;
  for (auto _ : State) {
    Result<relax::State> Init =
        randomInitialState(*L.Ctx, *L.Prog, Backend, ++Seed, 6);
    if (!Init.ok()) {
      ++Stuck;
      continue;
    }
    std::unique_ptr<Oracle> OrigOracle, RelOracle;
    switch (Which) {
    case OracleChoice::Solver: {
      SolverOracle::Options OO;
      OO.Seed = Seed * 3;
      OrigOracle = std::make_unique<SolverOracle>(*L.Ctx, Backend, OO);
      SolverOracle::Options RO;
      RO.Seed = Seed * 5;
      RelOracle = std::make_unique<SolverOracle>(*L.Ctx, Backend, RO);
      break;
    }
    case OracleChoice::Random: {
      RandomSearchOracle::Options RO;
      RO.Seed = Seed * 7;
      // The original semantics treats relax as assert, so the identity
      // strategy suffices there; the relaxed side samples.
      OrigOracle = std::make_unique<IdentityOracle>();
      RelOracle = std::make_unique<RandomSearchOracle>(RO);
      break;
    }
    case OracleChoice::Identity:
      OrigOracle = std::make_unique<IdentityOracle>();
      RelOracle = std::make_unique<IdentityOracle>();
      break;
    }
    PairOutcome O = Runner.run(*Init, *OrigOracle, *RelOracle);
    if (O.Orig.Kind == OutcomeKind::Stuck ||
        O.Rel.Kind == OutcomeKind::Stuck) {
      ++Stuck;
      continue;
    }
    if (O.Orig.Kind == OutcomeKind::Wr ||
        (O.relErred() && O.Orig.Kind != OutcomeKind::Ba)) {
      ++Errors; // must never happen for a verified program
      continue;
    }
    if (O.Orig.ok() && O.Rel.ok()) {
      if (O.Compat.Compatible)
        ++Compatible;
      else
        ++Incompatible;
    }
  }
  State.counters["compatible"] = Compatible;
  State.counters["incompatible"] = Incompatible;
  State.counters["errors"] = Errors;
  State.counters["stuck"] = Stuck;
}

void BM_Monitor_Swish_SolverOracle(benchmark::State &State) {
  monitorExample(State, "swish.rlx", OracleChoice::Solver);
}
void BM_Monitor_Swish_RandomOracle(benchmark::State &State) {
  monitorExample(State, "swish.rlx", OracleChoice::Random);
}
void BM_Monitor_Swish_IdentityOracle(benchmark::State &State) {
  monitorExample(State, "swish.rlx", OracleChoice::Identity);
}
void BM_Monitor_Water_SolverOracle(benchmark::State &State) {
  monitorExample(State, "water.rlx", OracleChoice::Solver);
}
void BM_Monitor_Lu_SolverOracle(benchmark::State &State) {
  monitorExample(State, "lu.rlx", OracleChoice::Solver);
}

} // namespace

BENCHMARK(BM_Monitor_Swish_SolverOracle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monitor_Swish_RandomOracle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monitor_Swish_IdentityOracle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monitor_Water_SolverOracle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monitor_Lu_SolverOracle)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
