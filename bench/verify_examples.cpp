//===- verify_examples.cpp - E1-E4: verification of the case studies ----------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's per-example verification results (Section 5 /
/// experiments E1-E3) and the proof-effort statistics (Section 1.6 /
/// experiment E4). For each case study it reports wall-clock verification
/// time plus counters:
///
///   vcs_total / vcs_original / vcs_relaxed  — obligation counts per
///       judgment (our analogue of the paper's 330/310/315 Coq proof-script
///       lines: the verification effort per example);
///   verified — 1 when every obligation discharged.
///
/// The paper's numbers for comparison: Swish++ 330 lines, Water 310, LU
/// 315 — near-identical effort across examples. The reproduced shape is
/// the same: VC counts are of the same magnitude for all three.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"
#include "vcgen/Verifier.h"

#include <benchmark/benchmark.h>

using namespace relax;
using namespace relax::bench;

namespace {

void verifyExample(benchmark::State &State, const char *Name) {
  Loaded L = loadExample(Name);
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  size_t VcsO = 0, VcsR = 0;
  bool Verified = false;
  for (auto _ : State) {
    Z3Solver Backend(L.Ctx->symbols());
    CachingSolver Solver(Backend);
    DiagnosticEngine Diags;
    Verifier V(*L.Ctx, *L.Prog, Solver, Diags);
    VerifyReport R = V.run();
    benchmark::DoNotOptimize(R);
    VcsO = R.Original.Outcomes.size();
    VcsR = R.Relaxed.Outcomes.size();
    Verified = R.verified();
  }
  State.counters["vcs_total"] = static_cast<double>(VcsO + VcsR);
  State.counters["vcs_original"] = static_cast<double>(VcsO);
  State.counters["vcs_relaxed"] = static_cast<double>(VcsR);
  State.counters["verified"] = Verified ? 1 : 0;
}

void BM_Verify_Swish(benchmark::State &State) {
  verifyExample(State, "swish.rlx");
}
void BM_Verify_Water(benchmark::State &State) {
  verifyExample(State, "water.rlx");
}
void BM_Verify_Lu(benchmark::State &State) {
  verifyExample(State, "lu.rlx");
}

/// E4 analogue: the |-o-only and the full pipeline, to split the cost of
/// relational reasoning the way the paper splits its Coq line counts
/// (1300 lines original vs 1900 relaxed vs 3500 relational logic).
void BM_Verify_Swish_OriginalOnly(benchmark::State &State) {
  Loaded L = loadExample("swish.rlx");
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  for (auto _ : State) {
    Z3Solver Backend(L.Ctx->symbols());
    CachingSolver Solver(Backend);
    DiagnosticEngine Diags;
    Verifier V(*L.Ctx, *L.Prog, Solver, Diags);
    Verifier::Options Opts;
    Opts.RunRelaxed = false;
    VerifyReport R = V.run(Opts);
    benchmark::DoNotOptimize(R);
  }
}

} // namespace

BENCHMARK(BM_Verify_Swish)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Verify_Water)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Verify_Lu)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Verify_Swish_OriginalOnly)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
