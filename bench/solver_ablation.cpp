//===- solver_ablation.cpp - A1: decision-procedure ablation -------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A1: the repro-band note says "native Z3 API works but the
/// symbolic framework is tedious" — this ablation quantifies the backend
/// choices the framework makes:
///
///   * Z3 vs the bounded-enumeration backend on a VC corpus small enough
///     for both (the bounded backend is orders of magnitude slower and
///     answers Unknown beyond its domain — the `undecided` counter);
///   * the effect of the result cache (repeated side conditions);
///   * the effect of the formula simplifier on solver time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "solver/BoundedSolver.h"
#include "solver/CachingSolver.h"
#include "solver/Portfolio.h"
#include "solver/ShardPool.h"
#include "solver/Z3Solver.h"
#include "support/PersistentCache.h"
#include "vcgen/Verifier.h"

#include <benchmark/benchmark.h>

#include <unistd.h>

using namespace relax;
using namespace relax::bench;

namespace {

/// A corpus of small verifiable programs whose VC models fit in the
/// bounded backend's domain.
const char *SmallCorpus[] = {
    "int x; requires (x >= 0 && x <= 3); ensures (x <= 4); { x = x + 1; }",
    "int x, y; requires (x >= 0 && x <= 2 && y >= 0 && y <= 2); "
    "ensures (x + y <= 4); { skip; }",
    "int x; requires (x >= 1 && x <= 2); { relax (x) st (x >= 1 && x <= 2); "
    "assert x >= 1; }",
    "int x; requires (x == 1); { havoc (x) st (x >= 0 && x <= 2); "
    "assert x <= 2; }",
};

template <typename MakeSolver>
void dischargeCorpus(benchmark::State &State, MakeSolver Make,
                     bool Simplify) {
  size_t Undecided = 0, Total = 0;
  for (auto _ : State) {
    Undecided = 0;
    Total = 0;
    for (const char *Source : SmallCorpus) {
      Loaded L = loadSource(Source);
      if (!L.Prog) {
        State.SkipWithError(L.skipReason());
        return;
      }
      auto Solver = Make(*L.Ctx);
      DiagnosticEngine Diags;
      Verifier V(*L.Ctx, *L.Prog, *Solver, Diags);
      Verifier::Options Opts;
      Opts.GenOpts.Simplify = Simplify;
      VerifyReport R = V.run(Opts);
      benchmark::DoNotOptimize(R);
      Total += R.totalVCs();
      Undecided += R.Original.count(VCStatus::Unknown) +
                   R.Original.count(VCStatus::SolverError) +
                   R.Relaxed.count(VCStatus::Unknown) +
                   R.Relaxed.count(VCStatus::SolverError);
    }
  }
  State.counters["vcs"] = static_cast<double>(Total);
  State.counters["undecided"] = static_cast<double>(Undecided);
}

void BM_Solver_Z3(benchmark::State &State) {
  dischargeCorpus(
      State,
      [](AstContext &Ctx) { return std::make_unique<Z3Solver>(Ctx.symbols()); },
      /*Simplify=*/true);
}

/// Discharges the A1 corpus on the bounded backend with the given engine,
/// recording the candidate-assignment counter next to the timings — the
/// metric the search engine exists to shrink.
void dischargeBoundedCorpus(benchmark::State &State,
                            BoundedSolverOptions::Engine Eng,
                            bool Learning = true) {
  size_t Undecided = 0, Total = 0;
  uint64_t Cands = 0, Conflicts = 0;
  for (auto _ : State) {
    Undecided = 0;
    Total = 0;
    Cands = 0;
    Conflicts = 0;
    for (const char *Source : SmallCorpus) {
      Loaded L = loadSource(Source);
      if (!L.Prog) {
        State.SkipWithError(L.skipReason());
        return;
      }
      BoundedSolverOptions O;
      O.Eng = Eng;
      O.Learning = Learning;
      O.Restarts = Learning;
      BoundedSolver Solver(O, L.Ctx.get());
      DiagnosticEngine Diags;
      Verifier V(*L.Ctx, *L.Prog, Solver, Diags);
      Verifier::Options Opts;
      Opts.GenOpts.Simplify = true;
      VerifyReport R = V.run(Opts);
      benchmark::DoNotOptimize(R);
      Total += R.totalVCs();
      Undecided += R.Original.count(VCStatus::Unknown) +
                   R.Original.count(VCStatus::SolverError) +
                   R.Relaxed.count(VCStatus::Unknown) +
                   R.Relaxed.count(VCStatus::SolverError);
      Cands += Solver.candidatesEvaluated();
      Conflicts += Solver.searchStats().Conflicts;
    }
  }
  State.counters["vcs"] = static_cast<double>(Total);
  State.counters["undecided"] = static_cast<double>(Undecided);
  State.counters["candidates"] = static_cast<double>(Cands);
  State.counters["conflicts"] = static_cast<double>(Conflicts);
}

void BM_Solver_Bounded(benchmark::State &State) {
  dischargeBoundedCorpus(State, BoundedSolverOptions::Engine::Search);
}

/// The conflict-driven-machinery ablation on the same corpus: learning
/// and restarts off, everything else identical. Verdict identity with
/// the learning row is pinned by the differential suites; this row
/// measures what the machinery costs (or saves) end to end.
void BM_Solver_Bounded_NoLearning(benchmark::State &State) {
  dischargeBoundedCorpus(State, BoundedSolverOptions::Engine::Search,
                         /*Learning=*/false);
}

void BM_Solver_Bounded_Enumerate(benchmark::State &State) {
  dischargeBoundedCorpus(State, BoundedSolverOptions::Engine::Enumerate);
}

/// The pruning ablation the search engine is built for: a K-variable
/// query whose conjuncts each constrain one variable, with a
/// contradiction on the first. The odometer enumerates 13^K full models;
/// the search engine refutes the query at depth 0 in 13 assignments.
/// Counters record both engines' candidate counts per run.
void BM_Solver_Bounded_PruningAblation(benchmark::State &State) {
  AstContext Ctx;
  std::vector<const BoolExpr *> Parts;
  for (int64_t I = 0; I != State.range(0); ++I) {
    std::string V = "v" + std::to_string(I);
    Parts.push_back(Ctx.ge(Ctx.var(V), Ctx.intLit(0)));
  }
  Parts.push_back(Ctx.eq(Ctx.var("v0"), Ctx.intLit(1)));
  Parts.push_back(Ctx.eq(Ctx.var("v0"), Ctx.intLit(2)));
  const BoolExpr *F = Ctx.conj(Parts);

  uint64_t SearchCands = 0, EnumCands = 0;
  for (auto _ : State) {
    BoundedSolver Search(BoundedSolverOptions(), &Ctx);
    auto RS = Search.checkSat({F});
    BoundedSolverOptions EO;
    EO.Eng = BoundedSolverOptions::Engine::Enumerate;
    BoundedSolver Enum(EO, &Ctx);
    auto RE = Enum.checkSat({F});
    if (!RS.ok() || !RE.ok() || *RS != *RE) {
      State.SkipWithError("engines disagree");
      return;
    }
    SearchCands = Search.candidatesEvaluated();
    EnumCands = Enum.candidatesEvaluated();
  }
  State.counters["candidates_search"] = static_cast<double>(SearchCands);
  State.counters["candidates_enumerate"] = static_cast<double>(EnumCands);
}

/// The tiered portfolio on a VC corpus: per-tier settled / gave-up /
/// budget-trip counters next to the end-to-end time. \p Sources selects
/// the corpus; \p BoundedSteps the budgeted tier's quantifier-step
/// budget. With Z3 built the chain is simplify → budgeted bounded → z3;
/// without, the Smt tier degrades to bounded-at-full-domain.
/// \p Pool, when given, replaces the final tier with the out-of-process
/// shard tier (workers run the z3 tail) and fans obligations out over
/// \p Jobs scheduler workers so several shards stay busy at once.
template <typename SourceLoader>
void dischargePortfolio(benchmark::State &State, SourceLoader Load,
                        size_t NumSources, uint64_t BoundedSteps,
                        ShardPool *Pool = nullptr, unsigned Jobs = 1,
                        bool Learning = true) {
  DischargeStats Stats;
  size_t Undecided = 0, Total = 0;
  for (auto _ : State) {
    Stats = DischargeStats();
    Undecided = 0;
    Total = 0;
    for (size_t S = 0; S != NumSources; ++S) {
      Loaded L = Load(S);
      if (!L.Prog) {
        State.SkipWithError(L.skipReason());
        return;
      }
      PortfolioOptions PO; // simplify,bounded,z3
      PO.Bounded.MaxQuantSteps = BoundedSteps;
      PO.Bounded.Learning = Learning;
      PO.Bounded.Restarts = Learning;
      if (Pool) {
        PO.Tiers = {TierKind::Simplify, TierKind::Bounded, TierKind::Shard};
        PO.Pool = Pool;
        PO.ShardWorkerPipeline = "z3";
      }
      BoundedSolver Dummy; // portfolio mode never consults the ctor solver
      DiagnosticEngine Diags;
      Verifier V(*L.Ctx, *L.Prog, Dummy, Diags);
      Verifier::Options Opts;
      Opts.Portfolio = PO;
      Opts.Jobs = Jobs;
#if RELAXC_HAVE_Z3
      AstContext *Ctx = L.Ctx.get();
      Opts.SmtFactory = [Ctx] {
        return std::make_unique<Z3Solver>(Ctx->symbols());
      };
#endif
      Opts.StatsOut = &Stats;
      VerifyReport R = V.run(Opts);
      benchmark::DoNotOptimize(R);
      Total += R.totalVCs();
      Undecided += R.Original.count(VCStatus::Unknown) +
                   R.Original.count(VCStatus::SolverError) +
                   R.Relaxed.count(VCStatus::Unknown) +
                   R.Relaxed.count(VCStatus::SolverError);
    }
  }
  State.counters["vcs"] = static_cast<double>(Total);
  State.counters["undecided"] = static_cast<double>(Undecided);
  for (size_t T = 0; T != Stats.Portfolio.Tiers.size(); ++T) {
    std::string Key = "tier" + std::to_string(T);
    State.counters[Key + "_settled"] =
        static_cast<double>(Stats.Portfolio.Tiers[T].Settled);
    State.counters[Key + "_gaveup"] =
        static_cast<double>(Stats.Portfolio.Tiers[T].GaveUp);
  }
  State.counters["budget_trips"] = static_cast<double>(
      Stats.Portfolio.Tiers.size() > 1
          ? Stats.Portfolio.Tiers[1].BudgetTrips
          : 0);
  State.counters["escalations"] =
      static_cast<double>(Stats.Portfolio.Escalations);
  State.counters["cache_hits"] = static_cast<double>(Stats.SharedCacheHits);
  State.counters["bounded_candidates"] =
      static_cast<double>(Stats.BoundedCandidates);
  State.counters["quant_steps"] =
      static_cast<double>(Stats.BoundedQuantSteps);
  State.counters["conflicts"] =
      static_cast<double>(Stats.Search.Conflicts);
  State.counters["learned_nogoods"] =
      static_cast<double>(Stats.Search.LearnedNogoods);
  State.counters["unit_propagations"] =
      static_cast<double>(Stats.Search.UnitPropagations);
  State.counters["backjumps"] =
      static_cast<double>(Stats.Search.Backjumps);
  State.counters["restarts"] =
      static_cast<double>(Stats.Search.Restarts);
}

void BM_Solver_Portfolio(benchmark::State &State) {
  dischargePortfolio(
      State, [](size_t I) { return loadSource(SmallCorpus[I]); },
      sizeof(SmallCorpus) / sizeof(SmallCorpus[0]),
      /*BoundedSteps=*/200'000);
}

/// The quantified corpus that used to be Z3-only: water.rlx's relational
/// VCs carry existentials from havoc/relax freshening, which unbudgeted
/// bounded enumeration cannot attempt safely at full domains. The step
/// budget makes the bounded tier give up deterministically (budget_trips
/// counts how often) and Z3 settle the escalations.
void BM_Solver_Portfolio_QuantifiedWater(benchmark::State &State) {
  dischargePortfolio(
      State, [](size_t) { return loadExample("water.rlx"); }, 1,
      /*BoundedSteps=*/10'000);
}

/// Water with the conflict-driven machinery off: the blind scan burns
/// an order of magnitude more candidates and trips the budget on twice
/// as many obligations before escalating (see candidates/budget_trips
/// vs the learning row).
void BM_Solver_Portfolio_QuantifiedWater_NoLearning(
    benchmark::State &State) {
  dischargePortfolio(
      State, [](size_t) { return loadExample("water.rlx"); }, 1,
      /*BoundedSteps=*/10'000, /*Pool=*/nullptr, /*Jobs=*/1,
      /*Learning=*/false);
}

/// The sharded discharge tier: the same corpora with the final tier moved
/// to a pool of --discharge-worker subprocesses (each owning its own
/// AstContext and solver backends) behind the work-stealing scheduler.
/// On a single-vCPU box this measures the serialization + pipe round-trip
/// overhead the tier pays for escaping single-process scaling; verdict
/// identity with the in-process rows is pinned by shard/property tests.
std::unique_ptr<ShardPool> makeBenchPool(benchmark::State &State,
                                         unsigned Shards) {
#ifdef RELAXC_DRIVER_PATH
  ShardPoolOptions SO;
  SO.Shards = Shards;
  SO.WorkerExe = RELAXC_DRIVER_PATH;
  auto R = ShardPool::create(std::move(SO));
  if (R.ok())
    return std::move(*R);
  State.SkipWithError(R.message().c_str());
#else
  State.SkipWithError("RELAXC_DRIVER_PATH not configured");
#endif
  return nullptr;
}

void BM_Solver_Shard(benchmark::State &State) {
  auto Pool = makeBenchPool(State, 4);
  if (!Pool)
    return;
  dischargePortfolio(
      State, [](size_t I) { return loadSource(SmallCorpus[I]); },
      sizeof(SmallCorpus) / sizeof(SmallCorpus[0]),
      /*BoundedSteps=*/200'000, Pool.get(), /*Jobs=*/4);
  State.counters["shard_requests"] =
      static_cast<double>(Pool->stats().Requests);
}

void BM_Solver_Shard_QuantifiedWater(benchmark::State &State) {
  auto Pool = makeBenchPool(State, 4);
  if (!Pool)
    return;
  dischargePortfolio(
      State, [](size_t) { return loadExample("water.rlx"); }, 1,
      /*BoundedSteps=*/10'000, Pool.get(), /*Jobs=*/4);
  State.counters["shard_requests"] =
      static_cast<double>(Pool->stats().Requests);
}

void BM_Solver_Z3_NoSimplify(benchmark::State &State) {
  dischargeCorpus(
      State,
      [](AstContext &Ctx) { return std::make_unique<Z3Solver>(Ctx.symbols()); },
      /*Simplify=*/false);
}

/// End-to-end verification (generation + cached discharge) of a program
/// with K independent relax-assert knobs: the workload whose repeated side
/// conditions and growing formulas the hash-consing layer, the verified
/// result cache, and the persistent solver context are built for. The
/// largest configuration is the suite's headline number.
std::string knobProgram(int64_t K) {
  std::string Decls, Body, Requires;
  for (int64_t I = 0; I != K; ++I) {
    std::string V = "x" + std::to_string(I);
    Decls += "int " + V + ";\n";
    Requires += (I ? " && " : "") + V + " == 0";
    Body += "  " + V + " = " + V + " + 1;\n";
    Body += "  relax (" + V + ") st (" + V + " >= 0);\n";
    Body += "  assert " + V + " >= 0;\n";
  }
  return Decls + "requires (" + Requires + ");\n{\n" + Body + "}\n";
}

void BM_Solver_Z3_KnobScaling(benchmark::State &State) {
  Loaded L = loadSource(knobProgram(State.range(0)));
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  uint64_t Hits = 0, Backend = 0;
  for (auto _ : State) {
    Z3Solver Z3(L.Ctx->symbols());
    CachingSolver Solver(Z3);
    DiagnosticEngine Diags;
    Verifier V(*L.Ctx, *L.Prog, Solver, Diags);
    VerifyReport R = V.run();
    benchmark::DoNotOptimize(R);
    Hits = Solver.hitCount();
    Backend = Z3.queryCount();
  }
  State.counters["cache_hits"] = static_cast<double>(Hits);
  State.counters["backend_queries"] = static_cast<double>(Backend);
}

/// Cache effectiveness on a real workload: swish's VC set contains
/// repeated convergence/safety side conditions.
void BM_Solver_Z3_CacheOnSwish(benchmark::State &State) {
  Loaded L = loadExample("swish.rlx");
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  uint64_t Hits = 0, Misses = 0;
  for (auto _ : State) {
    Z3Solver Backend(L.Ctx->symbols());
    CachingSolver Solver(Backend);
    DiagnosticEngine Diags;
    Verifier V(*L.Ctx, *L.Prog, Solver, Diags);
    VerifyReport R = V.run();
    benchmark::DoNotOptimize(R);
    Hits = Solver.hitCount();
    Misses = Backend.queryCount();
  }
  State.counters["cache_hits"] = static_cast<double>(Hits);
  State.counters["backend_queries"] = static_cast<double>(Misses);
}

void BM_Solver_Z3_NoCacheOnSwish(benchmark::State &State) {
  Loaded L = loadExample("swish.rlx");
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  for (auto _ : State) {
    Z3Solver Backend(L.Ctx->symbols());
    DiagnosticEngine Diags;
    Verifier V(*L.Ctx, *L.Prog, Backend, Diags);
    VerifyReport R = V.run();
    benchmark::DoNotOptimize(R);
  }
}

/// The persistent verdict cache (--cache-dir=) on swish: one seeding run
/// fills the on-disk cache, then every timed iteration parses the program
/// into a fresh AstContext (matching the real scenario — one driver
/// process per verify, each generating VCs from a fresh Interner so the
/// freshened primed names, and hence the printed cache keys, are
/// reproduced exactly), reloads the cache, and re-verifies: the whole
/// discharge pipeline is replaced by key construction plus map lookups.
/// The cold twin pays full discharge on the same per-iteration pipeline,
/// so the pair brackets the win and the overhead.
struct BenchCacheDir {
  std::string Path;
  BenchCacheDir() {
    char Name[] = "/tmp/relaxc_bench_cache_XXXXXX";
    if (char *P = ::mkdtemp(Name))
      Path = P;
  }
  ~BenchCacheDir() {
    if (Path.empty())
      return;
    ::unlink((Path + "/verdicts.rlxcache").c_str());
    ::rmdir(Path.c_str());
  }
};

void runWithPersistentCache(Loaded &L, PersistentCache &P) {
  PortfolioOptions PO;
  BoundedSolver Dummy; // portfolio mode never consults the ctor solver
  DiagnosticEngine Diags;
  Verifier V(*L.Ctx, *L.Prog, Dummy, Diags);
  Verifier::Options Opts;
  Opts.Portfolio = PO;
  Opts.PCache = &P;
#if RELAXC_HAVE_Z3
  AstContext *Ctx = L.Ctx.get();
  Opts.SmtFactory = [Ctx] {
    return std::make_unique<Z3Solver>(Ctx->symbols());
  };
#endif
  VerifyReport R = V.run(Opts);
  benchmark::DoNotOptimize(R);
}

void BM_Solver_PersistentCache_WarmOnSwish(benchmark::State &State) {
  BenchCacheDir Dir;
  std::string FP =
      portfolioConfigFingerprint(PortfolioOptions(), RELAXC_HAVE_Z3 != 0);
  { // seed: one cold run, flushed to disk
    Loaded L = loadExample("swish.rlx");
    if (!L.Prog) {
      State.SkipWithError(L.skipReason());
      return;
    }
    PersistentCache Seed(Dir.Path, FP);
    Seed.load();
    runWithPersistentCache(L, Seed);
    if (Status S = Seed.flush(); !S.ok()) {
      State.SkipWithError(S.message().c_str());
      return;
    }
  }
  uint64_t Hits = 0, Loaded_ = 0, Appended = 0;
  for (auto _ : State) {
    Loaded L = loadExample("swish.rlx");
    if (!L.Prog) {
      State.SkipWithError(L.skipReason());
      return;
    }
    PersistentCache P(Dir.Path, FP);
    P.load();
    runWithPersistentCache(L, P);
    Hits = P.stats().Hits;
    Loaded_ = P.stats().Loaded;
    Appended = P.stats().Appended;
  }
  State.counters["cache_hits"] = static_cast<double>(Hits);
  State.counters["entries_loaded"] = static_cast<double>(Loaded_);
  State.counters["appended"] = static_cast<double>(Appended);
}

void BM_Solver_PersistentCache_ColdOnSwish(benchmark::State &State) {
  BenchCacheDir Dir; // stays empty: every iteration misses and discharges
  std::string FP =
      portfolioConfigFingerprint(PortfolioOptions(), RELAXC_HAVE_Z3 != 0);
  uint64_t Appended = 0;
  for (auto _ : State) {
    Loaded L = loadExample("swish.rlx");
    if (!L.Prog) {
      State.SkipWithError(L.skipReason());
      return;
    }
    PersistentCache P(Dir.Path, FP);
    P.load();
    runWithPersistentCache(L, P);
    Appended = P.stats().Appended; // never flushed, so the next load is cold
  }
  State.counters["verdicts_appended"] = static_cast<double>(Appended);
}

} // namespace

BENCHMARK(BM_Solver_Z3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Bounded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Bounded_NoLearning)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Bounded_Enumerate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Bounded_PruningAblation)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_Portfolio)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Portfolio_QuantifiedWater)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Portfolio_QuantifiedWater_NoLearning)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Shard)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Shard_QuantifiedWater)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Z3_NoSimplify)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Z3_KnobScaling)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Z3_CacheOnSwish)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_Z3_NoCacheOnSwish)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_PersistentCache_ColdOnSwish)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Solver_PersistentCache_WarmOnSwish)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
