//===- BenchUtil.h - Shared helpers for the relaxc benchmarks ------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef RELAXC_BENCH_BENCHUTIL_H
#define RELAXC_BENCH_BENCHUTIL_H

#include "parser/Parser.h"

#include <memory>
#include <string>

namespace relax {
namespace bench {

/// A parsed example program plus everything it needs to stay alive.
struct Loaded {
  std::unique_ptr<AstContext> Ctx;
  SourceManager SM;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
};

/// Loads one of the repository's example programs by file name.
inline Loaded loadExample(const std::string &Name) {
  Loaded L;
  L.Ctx = std::make_unique<AstContext>();
  std::string Path = std::string(RELAXC_EXAMPLES_DIR) + "/" + Name;
  if (!L.SM.loadFile(Path).ok())
    return L;
  L.Diags.setFileName(Path);
  Parser P(*L.Ctx, L.SM, L.Diags);
  L.Prog = P.parseProgram();
  return L;
}

/// Parses a program from a source string.
inline Loaded loadSource(const std::string &Source) {
  Loaded L;
  L.Ctx = std::make_unique<AstContext>();
  L.SM.setBuffer("<bench>", Source);
  Parser P(*L.Ctx, L.SM, L.Diags);
  L.Prog = P.parseProgram();
  return L;
}

} // namespace bench
} // namespace relax

#endif // RELAXC_BENCH_BENCHUTIL_H
