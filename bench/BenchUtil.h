//===- BenchUtil.h - Shared helpers for the relaxc benchmarks ------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef RELAXC_BENCH_BENCHUTIL_H
#define RELAXC_BENCH_BENCHUTIL_H

#include "parser/Parser.h"

#include <memory>
#include <string>

namespace relax {
namespace bench {

/// A parsed example program plus everything it needs to stay alive.
/// When loading fails, `Prog` is empty and `SkipReason` says why — the
/// benchmarks pass it to SkipWithError so a missing corpus reads as an
/// explicit skip, not a generic failure.
struct Loaded {
  std::unique_ptr<AstContext> Ctx;
  SourceManager SM;
  DiagnosticEngine Diags;
  std::optional<Program> Prog;
  std::string SkipReason;

  /// SkipWithError-ready reason; empty when the program loaded fine.
  const char *skipReason() const { return SkipReason.c_str(); }
};

/// Loads one of the repository's example programs by file name.
inline Loaded loadExample(const std::string &Name) {
  Loaded L;
  L.Ctx = std::make_unique<AstContext>();
  std::string Path = std::string(RELAXC_EXAMPLES_DIR) + "/" + Name;
  if (!L.SM.loadFile(Path).ok()) {
    L.SkipReason = "example program not found: " + Path;
    return L;
  }
  L.Diags.setFileName(Path);
  Parser P(*L.Ctx, L.SM, L.Diags);
  L.Prog = P.parseProgram();
  if (!L.Prog)
    L.SkipReason = "example program failed to parse: " + Path;
  return L;
}

/// Parses a program from a source string.
inline Loaded loadSource(const std::string &Source) {
  Loaded L;
  L.Ctx = std::make_unique<AstContext>();
  L.SM.setBuffer("<bench>", Source);
  Parser P(*L.Ctx, L.SM, L.Diags);
  L.Prog = P.parseProgram();
  if (!L.Prog)
    L.SkipReason = "benchmark program failed to parse";
  return L;
}

} // namespace bench
} // namespace relax

#endif // RELAXC_BENCH_BENCHUTIL_H
