//===- vcgen_scaling.cpp - A2: VC generation scaling ---------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A2: how the cost of relational reasoning scales with program
/// size. For a synthetic family of programs with K sequential
/// relax-assert blocks (each a distinct knob with a transfer obligation)
/// we measure VC *generation* time — no solving — for the |-o and |-r
/// judgments separately, plus the generated VC counts.
///
/// Shape to observe: |-r produces roughly 2-3x the obligations of |-o and
/// both scale linearly in K, mirroring the paper's observation that the
/// relational machinery dominates the framework (3500 of 8000 Coq lines)
/// while per-example effort stays proportional to program size.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "logic/FormulaOps.h"
#include "vcgen/RelationalVCGen.h"
#include "vcgen/UnaryVCGen.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace relax;
using namespace relax::bench;

namespace {

/// Builds a program with K independent relax-then-assert knobs.
std::string knobProgram(int64_t K) {
  std::string Decls, Body, Requires;
  for (int64_t I = 0; I != K; ++I) {
    std::string V = "x" + std::to_string(I);
    Decls += "int " + V + ";\n";
    Requires += (I ? " && " : "") + V + " == 0";
    Body += "  " + V + " = " + V + " + 1;\n";
    Body += "  relax (" + V + ") st (" + V + " >= 0);\n";
    Body += "  assert " + V + " >= 0;\n";
  }
  return Decls + "requires (" + Requires + ");\n{\n" + Body + "}\n";
}

void BM_VcGen_Original(benchmark::State &State) {
  Loaded L = loadSource(knobProgram(State.range(0)));
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  size_t Vcs = 0;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    UnaryVCGen Gen(*L.Ctx, *L.Prog, JudgmentKind::Original, Diags);
    Gen.genTriple(L.Prog->requiresClause(), L.Prog->body(),
                  L.Ctx->trueExpr());
    VCSet Set = Gen.take();
    benchmark::DoNotOptimize(Set);
    Vcs = Set.VCs.size();
  }
  State.counters["vcs"] = static_cast<double>(Vcs);
  State.counters["vcs_per_knob"] =
      static_cast<double>(Vcs) / static_cast<double>(State.range(0));
}

void BM_VcGen_Relational(benchmark::State &State) {
  Loaded L = loadSource(knobProgram(State.range(0)));
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  size_t Vcs = 0;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    RelationalVCGen Gen(*L.Ctx, *L.Prog, Diags);
    Gen.genTriple(identityRelation(*L.Ctx, *L.Prog), L.Prog->body(),
                  L.Ctx->trueExpr());
    VCSet Set = Gen.take();
    benchmark::DoNotOptimize(Set);
    Vcs = Set.VCs.size();
  }
  State.counters["vcs"] = static_cast<double>(Vcs);
  State.counters["vcs_per_knob"] =
      static_cast<double>(Vcs) / static_cast<double>(State.range(0));
}

/// Nested-loop family: depth-D loops, each with invariants — stresses the
/// substitution and simplification machinery on deep formulas. As in real
/// nested-loop proofs (the paper's Water and LU case studies), every inner
/// invariant carries the whole enclosing context: loop J's annotations
/// mention variables i0..iJ, so annotation sizes grow linearly with depth
/// and the generated obligations quadratically.
std::string nestedLoopProgram(int64_t Depth) {
  std::string Decls = "int n;\n", Open, Close;
  std::string Requires = "n >= 0";
  std::string Inv, RInv = "n<o> == n<r>";
  for (int64_t I = 0; I != Depth; ++I) {
    std::string V = "i" + std::to_string(I);
    Decls += "int " + V + ";\n";
    Inv += (I ? " && " : "") + ("0 <= " + V + " && " + V + " <= n");
    RInv += " && " + V + "<o> == " + V + "<r>";
    Open += "  " + V + " = 0;\n";
    Open += "  while (" + V + " < n)\n";
    Open += "    invariant (" + Inv + ")\n";
    Open += "    rinvariant (" + RInv + ")\n";
    Open += "  {\n";
    Close = "  " + V + " = " + V + " + 1;\n  }\n" + Close;
  }
  return Decls + "requires (" + Requires + ");\n{\n" + Open + Close + "}\n";
}

void BM_VcGen_NestedLoops(benchmark::State &State) {
  Loaded L = loadSource(nestedLoopProgram(State.range(0)));
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  size_t Vcs = 0;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    RelationalVCGen Gen(*L.Ctx, *L.Prog, Diags);
    Gen.genTriple(identityRelation(*L.Ctx, *L.Prog), L.Prog->body(),
                  L.Ctx->trueExpr());
    VCSet Set = Gen.take();
    benchmark::DoNotOptimize(Set);
    Vcs = Set.VCs.size();
  }
  State.counters["vcs"] = static_cast<double>(Vcs);
}

/// The modular-vs-inlining experiment: a loop-bearing helper used from N
/// sites, written once as a contracted procedure with N `call`s and once
/// with the body textually inlined N times. Modular generation visits
/// the helper's body exactly once (its summary) plus N cheap summary
/// instantiations, so cost and VC count grow with a small per-call
/// constant; inlining re-traverses the loop — and re-generates its
/// invariant obligations — at every site.
std::string stepBody() {
  return "  i = 0;\n"
         "  while (i < n)\n"
         "    invariant (0 <= i && i <= n && x >= 0 && n >= 0)\n"
         "    rinvariant (x<o> == x<r> && i<o> == i<r> && n<o> == n<r>)\n"
         "    decreases (n - i)\n"
         "  {\n    x = x + 1;\n    i = i + 1;\n  }\n";
}

std::string modularCallProgram(int64_t N) {
  std::string S = "int x, i, n;\n\n";
  S += "proc step()\n"
       "  modifies (x, i)\n"
       "  requires (x >= 0 && n >= 0);\n"
       "  ensures (x >= 0);\n"
       "  rrequires (x<o> == x<r> && i<o> == i<r> && n<o> == n<r> && "
       "x<o> >= 0 && n<o> >= 0);\n"
       "  rensures (x<o> >= 0 && x<r> >= 0);\n"
       "{\n" +
       stepBody() + "}\n\n";
  S += "proc main()\n  requires (x == 0 && n >= 0);\n{\n";
  for (int64_t I = 0; I != N; ++I)
    S += "  call step();\n";
  return S + "}\n";
}

std::string inlinedCallProgram(int64_t N) {
  std::string S = "int x, i, n;\nrequires (x == 0 && n >= 0);\n{\n";
  for (int64_t I = 0; I != N; ++I)
    S += stepBody();
  return S + "}\n";
}

/// Generates both judgments for every procedure, exactly as the Verifier
/// schedules them (the helper's summary once, call sites instantiate).
size_t genAllProcedures(Loaded &L) {
  size_t Vcs = 0;
  DiagnosticEngine Diags;
  for (const Procedure &P : L.Prog->procedures()) {
    UnaryVCGen OG(*L.Ctx, *L.Prog, JudgmentKind::Original, Diags);
    OG.genTriple(P.requiresClause() ? P.requiresClause() : L.Ctx->trueExpr(),
                 P.body(),
                 P.ensuresClause() ? P.ensuresClause() : L.Ctx->trueExpr());
    Vcs += OG.take().VCs.size();
    RelationalVCGen RG(*L.Ctx, *L.Prog, Diags);
    RG.genTriple(effectiveRelRequires(*L.Ctx, *L.Prog, P), P.body(),
                 P.relEnsuresClause() ? P.relEnsuresClause()
                                      : L.Ctx->trueExpr());
    Vcs += RG.take().VCs.size();
  }
  return Vcs;
}

void BM_VcGen_ModularCalls(benchmark::State &State) {
  Loaded L = loadSource(modularCallProgram(State.range(0)));
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  size_t Vcs = 0;
  for (auto _ : State) {
    Vcs = genAllProcedures(L);
    benchmark::DoNotOptimize(Vcs);
  }
  State.counters["vcs"] = static_cast<double>(Vcs);
  State.counters["vcs_per_call"] =
      static_cast<double>(Vcs) / static_cast<double>(State.range(0));
}

void BM_VcGen_InlinedCalls(benchmark::State &State) {
  Loaded L = loadSource(inlinedCallProgram(State.range(0)));
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  size_t Vcs = 0;
  for (auto _ : State) {
    Vcs = genAllProcedures(L);
    benchmark::DoNotOptimize(Vcs);
  }
  State.counters["vcs"] = static_cast<double>(Vcs);
  State.counters["vcs_per_call"] =
      static_cast<double>(Vcs) / static_cast<double>(State.range(0));
}

} // namespace

BENCHMARK(BM_VcGen_Original)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_VcGen_Relational)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_VcGen_NestedLoops)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);
BENCHMARK(BM_VcGen_ModularCalls)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_VcGen_InlinedCalls)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
