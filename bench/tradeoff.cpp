//===- tradeoff.cpp - F1: performance vs accuracy under relaxation ------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the performance/accuracy trade-off curve that motivates
/// relaxed programs (Section 1): a verified perforated reduction executed
/// at perforation factors 1..4. Reported per factor:
///
///   time — relaxed-execution wall clock (drops ~linearly with the factor);
///   error_pct — relative deviation from the exact sum (grows);
///   acceptability_ok — the verified sign property held (always 1).
///
/// The shape to compare with the literature: work scales ~1/factor while
/// the error stays bounded, which is exactly the flexibility the paper's
/// verification makes safe to deploy.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/Interp.h"
#include "solver/CachingSolver.h"
#include "solver/Z3Solver.h"
#include "support/Random.h"
#include "vcgen/Verifier.h"

#include <benchmark/benchmark.h>

using namespace relax;
using namespace relax::bench;

namespace {

const char *PerforatedSum = R"(
array data;
int i, n, sum, stride;
requires (n >= 0 && n <= len(data)
          && !(exists j . 0 <= j && j < n && data[j] < 0));
ensures (sum >= 0);
{
  i = 0;
  sum = 0;
  stride = 1;
  relax (stride) st (1 <= stride && stride <= 4);
  while (i < n)
    invariant (0 <= i && sum >= 0 && stride == 1 && n <= len(data)
               && !(exists j . 0 <= j && j < n && data[j] < 0))
    iinvariant (0 <= i && sum >= 0 && 1 <= stride && n <= len(data)
                && !(exists j . 0 <= j && j < n && data[j] < 0))
    diverge
      pre_orig (0 <= i && sum >= 0 && stride == 1 && n <= len(data)
                && !(exists j . 0 <= j && j < n && data[j] < 0))
      pre_rel (0 <= i && sum >= 0 && 1 <= stride && n <= len(data)
               && !(exists j . 0 <= j && j < n && data[j] < 0))
      post_orig (sum >= 0 && i >= n)
      post_rel (sum >= 0 && i >= n)
      frame (n<o> == n<r>)
  {
    sum = sum + data[i];
    i = i + stride;
  }
  relate sign : sum<o> >= 0 && sum<r> >= 0;
}
)";

/// Pins the stride knob to a fixed perforation factor.
class FactorOracle : public Oracle {
public:
  FactorOracle(AstContext &Ctx, int64_t Factor) : Ctx(Ctx), Factor(Factor) {}
  const char *name() const override { return "factor"; }
  ChoiceResult choose(const ChoiceRequest &Req) override {
    State Out = *Req.Current;
    Out[Ctx.sym("stride")] = Value(Factor);
    return ChoiceResult{ChoiceStatus::Found, Out};
  }

private:
  AstContext &Ctx;
  int64_t Factor;
};

void BM_Tradeoff_Perforation(benchmark::State &State) {
  static Loaded L = loadSource(PerforatedSum);
  if (!L.Prog) {
    State.SkipWithError(L.skipReason());
    return;
  }
  // Verify once (outside the timed region); the sweep below exercises the
  // verified program only.
  static bool Verified = [] {
    Z3Solver Backend(L.Ctx->symbols());
    CachingSolver Solver(Backend);
    DiagnosticEngine Diags;
    Verifier V(*L.Ctx, *L.Prog, Solver, Diags);
    return V.run().verified();
  }();
  if (!Verified) {
    State.SkipWithError("program failed verification");
    return;
  }

  const int64_t Factor = State.range(0);
  const size_t Len = 1 << 14;
  SplitMix64 Rng(9);
  ArrayValue Data(Len);
  for (int64_t &X : Data)
    X = Rng.nextInRange(0, 100);
  relax::State Init = Interp::zeroState(*L.Prog, Len);
  Init[L.Ctx->sym("data")] = Value(Data);
  Init[L.Ctx->sym("n")] = Value(static_cast<int64_t>(Len));

  InterpOptions Opts;
  Opts.MaxSteps = 100'000'000;

  // Exact baseline for the error metric.
  int64_t Exact = 0;
  for (int64_t X : Data)
    Exact += X;

  int64_t Sum = 0;
  bool SignOk = true;
  for (auto _ : State) {
    FactorOracle O(*L.Ctx, Factor);
    Interp I(*L.Prog, L.Ctx->symbols(), O, Opts);
    Outcome Out = I.run(SemanticsMode::Relaxed, Init);
    benchmark::DoNotOptimize(Out);
    if (!Out.ok()) {
      State.SkipWithError("execution failed");
      return;
    }
    Sum = Out.FinalState.at(L.Ctx->sym("sum")).asInt();
    SignOk &= Sum >= 0;
  }
  State.counters["error_pct"] =
      Exact == 0 ? 0.0 : 100.0 * double(Exact - Sum) / double(Exact);
  State.counters["acceptability_ok"] = SignOk ? 1 : 0;
  State.counters["items"] = static_cast<double>(Len / Factor);
}

} // namespace

BENCHMARK(BM_Tradeoff_Perforation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
