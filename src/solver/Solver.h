//===- Solver.h - Decision procedure interface ---------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision-procedure interface the verifier and the solver-backed
/// oracles program against, together with the model representation.
///
/// Logic semantics notes (shared by every backend and by the formula
/// evaluator, and matched by the dynamic semantics where observable):
///  * integers are unbounded in the logic; the evaluator uses int64 and the
///    workloads stay far from the edges (checked by tests);
///  * `/` and `%` follow the SMT-LIB Euclidean convention (the remainder is
///    always non-negative); the interpreter implements the same convention;
///  * arrays are total integer functions paired with a length constant;
///    array equality is function equality plus length equality. Dynamic
///    array values only expose indices in [0, len); out-of-bounds access is
///    a dynamic `wr` error, and the VC generator emits bounds obligations,
///    so the difference between total and in-bounds equality is never
///    observable in verified programs.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_SOLVER_H
#define RELAXC_SOLVER_SOLVER_H

#include "logic/FormulaOps.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace relax {

/// Outcome of a satisfiability query.
enum class SatResult { Sat, Unsat, Unknown };

/// Returns "sat" / "unsat" / "unknown".
const char *satResultName(SatResult R);

/// The backend names `--solver=` accepts. The driver validates against
/// this list instead of silently falling through to a default backend.
const std::vector<const char *> &knownSolverNames();

/// True when \p Name names a known backend.
bool isKnownSolverName(std::string_view Name);

/// Renders the known names as "z3, bounded" for diagnostics.
std::string knownSolverNamesForDiagnostics();

/// A concrete array value in a model.
struct ArrayModelValue {
  int64_t Length = 0;
  std::vector<int64_t> Elems; ///< Elems.size() == Length

  friend bool operator==(const ArrayModelValue &A,
                         const ArrayModelValue &B) {
    return A.Length == B.Length && A.Elems == B.Elems;
  }
};

/// A (partial) assignment of concrete values to logical variables.
struct Model {
  std::map<VarRef, int64_t> Ints;
  std::map<VarRef, ArrayModelValue> Arrays;

  bool empty() const { return Ints.empty() && Arrays.empty(); }
};

/// Renders a model for diagnostics: `x<o> = 3, A<r> = [1, 2]`.
std::string formatModel(const Interner &Syms, const Model &M);

/// Abstract decision procedure over the assertion logic.
class Solver {
public:
  virtual ~Solver();

  /// A short backend name for reports ("z3", "bounded").
  virtual const char *name() const = 0;

  /// Decides satisfiability of the conjunction of \p Formulas.
  virtual Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) = 0;

  /// Like checkSat; on Sat additionally extracts values for \p Vars into
  /// \p ModelOut (variables absent from the formula get default values).
  virtual Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) = 0;

  /// Number of checkSat queries served (statistics; includes cache misses
  /// only when wrapped in a CachingSolver).
  uint64_t queryCount() const { return Queries; }

  /// Which component answered the most recent query. Plain backends
  /// settle everything themselves; the tiered portfolio overrides this to
  /// name the settling tier, and the verifier records it per obligation
  /// (surfaced by `--explain`).
  virtual const char *settledBy() const { return name(); }

  /// Give-up trail of the most recent query (empty for plain backends):
  /// one entry per portfolio tier that escalated, with its reason.
  virtual std::string giveUpTrail() const { return std::string(); }

  /// Installs the deadline subsequent queries must respect. Backends that
  /// can stop mid-search (the bounded solver) poll it; the portfolio
  /// checks it between tiers and forwards it to the active backend;
  /// wrappers (CachingSolver) forward to the wrapped solver. The default
  /// just stores it, which is sufficient for backends whose queries are
  /// already bounded by their own timeouts (Z3).
  virtual void setDeadline(const Deadline &D) { QueryDeadline = D; }

  /// True when the most recent query gave up *because the deadline
  /// expired*. Such verdicts are time-dependent: callers must never
  /// insert them into any result cache (a rerun with more budget must be
  /// free to do better), and the discharge layer reports them with
  /// reason "deadline".
  virtual bool lastQueryDeadlined() const { return false; }

  /// Conflicts (failed conjunct checks) the bounded search hit while
  /// answering the most recent query. Backends without a bounded search
  /// report 0; the portfolio reports the sum across whatever bounded
  /// tiers the query touched. Purely observational — surfaced per
  /// obligation by `--explain`.
  virtual uint64_t lastQueryBoundedConflicts() const { return 0; }

  //===--------------------------------------------------------------------===//
  // Derived helpers
  //===--------------------------------------------------------------------===//

  /// Decides validity of \p F: valid iff ¬F is unsatisfiable. Unknown
  /// satisfiability maps to an error (the verifier treats it as "not
  /// proved").
  Result<bool> isValid(AstContext &Ctx, const BoolExpr *F);

  /// Decides the entailment P |= Q, i.e. validity of P ==> Q, as
  /// unsatisfiability of P /\ ¬Q.
  Result<bool> entails(AstContext &Ctx, const BoolExpr *P, const BoolExpr *Q);

protected:
  uint64_t Queries = 0;
  Deadline QueryDeadline;
};

} // namespace relax

#endif // RELAXC_SOLVER_SOLVER_H
