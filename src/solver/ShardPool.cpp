//===- ShardPool.cpp - Out-of-process discharge shards ------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/ShardPool.h"

#include "ast/Printer.h"
#include "logic/FormulaOps.h"
#include "support/FaultInjection.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>

#include <signal.h>

using namespace relax;

//===----------------------------------------------------------------------===//
// Wire codecs
//===----------------------------------------------------------------------===//

namespace {

const char *RequestMagic = "relax-shard-request 1";
const char *ResponseMagic = "relax-shard-response 1";

const char *tagWord(VarTag T) {
  switch (T) {
  case VarTag::Plain:
    return "plain";
  case VarTag::Orig:
    return "o";
  case VarTag::Rel:
    return "r";
  }
  return "?";
}

bool parseTagWord(std::string_view W, VarTag &Out) {
  if (W == "plain")
    Out = VarTag::Plain;
  else if (W == "o")
    Out = VarTag::Orig;
  else if (W == "r")
    Out = VarTag::Rel;
  else
    return false;
  return true;
}

const char *kindWord(VarKind K) {
  return K == VarKind::Int ? "int" : "array";
}

bool parseKindWord(std::string_view W, VarKind &Out) {
  if (W == "int")
    Out = VarKind::Int;
  else if (W == "array")
    Out = VarKind::Array;
  else
    return false;
  return true;
}

/// Trails and error messages must stay single-line on the wire.
std::string oneLine(std::string S) {
  for (char &C : S)
    if (C == '\n' || C == '\r')
      C = ' ';
  return S;
}

/// Splits the next whitespace-delimited token off \p Rest.
std::string_view nextToken(std::string_view &Rest) {
  size_t B = Rest.find_first_not_of(' ');
  if (B == std::string_view::npos) {
    Rest = std::string_view();
    return std::string_view();
  }
  size_t E = Rest.find(' ', B);
  std::string_view Tok = Rest.substr(B, E == std::string_view::npos
                                            ? std::string_view::npos
                                            : E - B);
  Rest = E == std::string_view::npos ? std::string_view() : Rest.substr(E + 1);
  return Tok;
}

bool parseInt64(std::string_view Tok, int64_t &Out) {
  if (Tok.empty())
    return false;
  std::string S(Tok);
  char *End = nullptr;
  Out = std::strtoll(S.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseUint64(std::string_view Tok, uint64_t &Out) {
  if (Tok.empty() || Tok[0] == '-')
    return false;
  std::string S(Tok);
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End && *End == '\0';
}

/// Iterates \p Payload line by line, calling \p OnLine(directive, rest).
/// Stops and returns the error on the first diagnosed line.
template <typename Fn> Status forEachLine(std::string_view Payload, Fn OnLine) {
  size_t Pos = 0;
  while (Pos < Payload.size()) {
    size_t NL = Payload.find('\n', Pos);
    std::string_view Line = Payload.substr(
        Pos, NL == std::string_view::npos ? std::string_view::npos : NL - Pos);
    Pos = NL == std::string_view::npos ? Payload.size() : NL + 1;
    if (Line.empty())
      continue;
    std::string_view Rest = Line;
    std::string_view Directive = nextToken(Rest);
    if (Status S = OnLine(Directive, Rest, Line); !S.ok())
      return S;
  }
  return Status::success();
}

} // namespace

std::string relax::serializeShardRequest(const ShardRequest &R) {
  std::string Out = RequestMagic;
  Out += "\npipeline " + R.Pipeline;
  Out += "\nbounded";
  for (int64_t V : {R.Bounded.IntLo, R.Bounded.IntHi, R.Bounded.MaxArrayLen,
                    R.Bounded.ArrayElemLo, R.Bounded.ArrayElemHi})
    Out += " " + std::to_string(V);
  Out += " " + std::to_string(R.Bounded.MaxCandidates);
  Out += " " + std::to_string(R.Bounded.MaxQuantSteps);
  Out += " " + std::to_string(R.Bounded.Jobs);
  Out += " " + std::to_string(R.FinalBoundedStepFactor);
  Out += R.Bounded.Eng == BoundedSolverOptions::Engine::Enumerate
             ? " enumerate"
             : " search";
  // Conflict-driven-search knobs ride behind keyword markers after the
  // engine token, so a pre-learning worker's payload (which simply ends
  // at the engine) still parses and gets the defaults.
  Out += std::string(" learn ") + (R.Bounded.Learning ? "1" : "0");
  Out += std::string(" restarts ") + (R.Bounded.Restarts ? "1" : "0");
  Out += " max-nogoods " + std::to_string(R.Bounded.MaxNogoods);
  Out += std::string("\nwant-model ") + (R.WantModel ? "1" : "0");
  for (const auto &[Name, Kind] : R.Vars)
    Out += std::string("\nvar ") + kindWord(Kind) + " " + Name;
  for (const WireVar &V : R.ModelVars)
    Out += std::string("\nmodel-var ") + kindWord(V.Kind) + " " +
           tagWord(V.Tag) + " " + V.Name;
  for (const std::string &F : R.Formulas)
    Out += "\nformula " + oneLine(F);
  Out += "\n";
  return Out;
}

Result<ShardRequest> relax::parseShardRequest(std::string_view Payload) {
  using R = Result<ShardRequest>;
  ShardRequest Req;
  Req.Pipeline.clear();
  bool SawMagic = false;

  Status S = forEachLine(Payload, [&](std::string_view D, std::string_view Rest,
                                      std::string_view Line) -> Status {
    if (!SawMagic) {
      if (Line != RequestMagic)
        return Status::error("bad request header '" + std::string(Line) +
                             "' (expected '" + RequestMagic + "')");
      SawMagic = true;
      return Status::success();
    }
    if (D == "pipeline") {
      Req.Pipeline = std::string(Rest);
      return Status::success();
    }
    if (D == "bounded") {
      int64_t I[5];
      uint64_t U[4];
      for (int64_t &V : I)
        if (!parseInt64(nextToken(Rest), V))
          return Status::error("bad bounded-options line");
      for (uint64_t &V : U)
        if (!parseUint64(nextToken(Rest), V))
          return Status::error("bad bounded-options line");
      Req.Bounded.IntLo = I[0];
      Req.Bounded.IntHi = I[1];
      Req.Bounded.MaxArrayLen = I[2];
      Req.Bounded.ArrayElemLo = I[3];
      Req.Bounded.ArrayElemHi = I[4];
      Req.Bounded.MaxCandidates = U[0];
      Req.Bounded.MaxQuantSteps = U[1];
      Req.Bounded.Jobs = static_cast<unsigned>(U[2]);
      Req.FinalBoundedStepFactor = U[3];
      std::string_view Eng = nextToken(Rest);
      if (Eng == "search")
        Req.Bounded.Eng = BoundedSolverOptions::Engine::Search;
      else if (Eng == "enumerate")
        Req.Bounded.Eng = BoundedSolverOptions::Engine::Enumerate;
      else
        return Status::error("bad bounded-options line (missing engine)");
      // Optional conflict-driven-search knobs (absent in pre-learning
      // payloads, which default). Keyword-tagged so a truncated or
      // misordered line is diagnosed rather than misassigned.
      auto ParseBool = [&](std::string_view Key, bool &Out) -> Status {
        std::string_view V = nextToken(Rest);
        if (V == "0")
          Out = false;
        else if (V == "1")
          Out = true;
        else
          return Status::error("bad bounded-options line (bad " +
                               std::string(Key) + " value '" + std::string(V) +
                               "')");
        return Status::success();
      };
      std::string_view Key = nextToken(Rest);
      if (Key.empty())
        return Status::success(); // old-format line: defaults stand
      if (Key != "learn")
        return Status::error("bad bounded-options line (expected 'learn', "
                             "got '" +
                             std::string(Key) + "')");
      if (Status BS = ParseBool("learn", Req.Bounded.Learning); !BS.ok())
        return BS;
      if (nextToken(Rest) != "restarts")
        return Status::error("bad bounded-options line (expected 'restarts')");
      if (Status BS = ParseBool("restarts", Req.Bounded.Restarts); !BS.ok())
        return BS;
      if (nextToken(Rest) != "max-nogoods")
        return Status::error(
            "bad bounded-options line (expected 'max-nogoods')");
      uint64_t MN;
      if (!parseUint64(nextToken(Rest), MN) || MN > UINT32_MAX)
        return Status::error("bad bounded-options line (bad max-nogoods "
                             "count)");
      Req.Bounded.MaxNogoods = static_cast<uint32_t>(MN);
      if (!nextToken(Rest).empty())
        return Status::error("bad bounded-options line (trailing tokens)");
      return Status::success();
    }
    if (D == "want-model") {
      Req.WantModel = nextToken(Rest) == "1";
      return Status::success();
    }
    if (D == "var") {
      VarKind K;
      if (!parseKindWord(nextToken(Rest), K))
        return Status::error("bad var-kind in '" + std::string(Line) + "'");
      std::string_view Name = nextToken(Rest);
      if (Name.empty())
        return Status::error("missing var name in '" + std::string(Line) +
                             "'");
      Req.Vars.emplace_back(std::string(Name), K);
      return Status::success();
    }
    if (D == "model-var") {
      WireVar V;
      if (!parseKindWord(nextToken(Rest), V.Kind) ||
          !parseTagWord(nextToken(Rest), V.Tag))
        return Status::error("bad model-var in '" + std::string(Line) + "'");
      std::string_view Name = nextToken(Rest);
      if (Name.empty())
        return Status::error("missing model-var name in '" +
                             std::string(Line) + "'");
      V.Name = std::string(Name);
      Req.ModelVars.push_back(std::move(V));
      return Status::success();
    }
    if (D == "formula") {
      Req.Formulas.emplace_back(Rest);
      return Status::success();
    }
    return Status::error("unknown request directive '" + std::string(D) + "'");
  });
  if (!S.ok())
    return R(S);
  if (!SawMagic)
    return R::error("empty request payload");
  if (Req.Pipeline.empty())
    return R::error("request is missing its pipeline line");
  if (Req.Formulas.empty())
    return R::error("request carries no formulas");
  return Req;
}

std::string relax::serializeShardResponse(const ShardResponse &R) {
  std::string Out = ResponseMagic;
  if (R.IsError) {
    Out += "\nverdict error\nerror " + oneLine(R.Error) + "\n";
    return Out;
  }
  Out += std::string("\nverdict ") + satResultName(R.Verdict);
  if (!R.SettledBy.empty())
    Out += "\nsettled-by " + oneLine(R.SettledBy);
  if (!R.Trail.empty())
    Out += "\ntrail " + oneLine(R.Trail);
  for (const ShardResponse::IntEntry &E : R.Ints)
    Out += std::string("\nmodel-int ") + tagWord(E.Var.Tag) + " " +
           E.Var.Name + " " + std::to_string(E.Value);
  for (const ShardResponse::ArrayEntry &E : R.Arrays) {
    Out += std::string("\nmodel-array ") + tagWord(E.Var.Tag) + " " +
           E.Var.Name + " " + std::to_string(E.Value.Length);
    for (int64_t V : E.Value.Elems)
      Out += " " + std::to_string(V);
  }
  Out += "\n";
  return Out;
}

Result<ShardResponse> relax::parseShardResponse(std::string_view Payload) {
  using R = Result<ShardResponse>;
  ShardResponse Resp;
  bool SawMagic = false, SawVerdict = false;

  Status S = forEachLine(Payload, [&](std::string_view D, std::string_view Rest,
                                      std::string_view Line) -> Status {
    if (!SawMagic) {
      if (Line != ResponseMagic)
        return Status::error("bad response header '" + std::string(Line) +
                             "' (expected '" + ResponseMagic + "')");
      SawMagic = true;
      return Status::success();
    }
    if (D == "verdict") {
      std::string_view V = nextToken(Rest);
      SawVerdict = true;
      if (V == "sat")
        Resp.Verdict = SatResult::Sat;
      else if (V == "unsat")
        Resp.Verdict = SatResult::Unsat;
      else if (V == "unknown")
        Resp.Verdict = SatResult::Unknown;
      else if (V == "error")
        Resp.IsError = true;
      else
        return Status::error("unknown verdict '" + std::string(V) + "'");
      return Status::success();
    }
    if (D == "error") {
      Resp.Error = std::string(Rest);
      return Status::success();
    }
    if (D == "settled-by") {
      Resp.SettledBy = std::string(Rest);
      return Status::success();
    }
    if (D == "trail") {
      Resp.Trail = std::string(Rest);
      return Status::success();
    }
    if (D == "model-int") {
      ShardResponse::IntEntry E;
      E.Var.Kind = VarKind::Int;
      if (!parseTagWord(nextToken(Rest), E.Var.Tag))
        return Status::error("bad model-int tag in '" + std::string(Line) +
                             "'");
      E.Var.Name = std::string(nextToken(Rest));
      if (E.Var.Name.empty() || !parseInt64(nextToken(Rest), E.Value))
        return Status::error("bad model-int line '" + std::string(Line) + "'");
      Resp.Ints.push_back(std::move(E));
      return Status::success();
    }
    if (D == "model-array") {
      ShardResponse::ArrayEntry E;
      E.Var.Kind = VarKind::Array;
      if (!parseTagWord(nextToken(Rest), E.Var.Tag))
        return Status::error("bad model-array tag in '" + std::string(Line) +
                             "'");
      E.Var.Name = std::string(nextToken(Rest));
      int64_t Len = 0;
      if (E.Var.Name.empty() || !parseInt64(nextToken(Rest), Len) || Len < 0)
        return Status::error("bad model-array line '" + std::string(Line) +
                             "'");
      E.Value.Length = Len;
      for (int64_t I = 0; I != Len; ++I) {
        int64_t V = 0;
        if (!parseInt64(nextToken(Rest), V))
          return Status::error("model-array '" + E.Var.Name + "' is missing " +
                               "element " + std::to_string(I));
        E.Value.Elems.push_back(V);
      }
      Resp.Arrays.push_back(std::move(E));
      return Status::success();
    }
    return Status::error("unknown response directive '" + std::string(D) +
                         "'");
  });
  if (!S.ok())
    return R(S);
  if (!SawMagic)
    return R::error("empty response payload");
  if (!SawVerdict)
    return R::error("response is missing its verdict");
  if (Resp.IsError && Resp.Error.empty())
    Resp.Error = "worker reported an unspecified error";
  return Resp;
}

//===----------------------------------------------------------------------===//
// WorkerPoolBase — the shared borrow/health/retry machinery
//===----------------------------------------------------------------------===//

void WorkerPoolBase::initSlots(unsigned N) {
  Slots.clear();
  for (unsigned I = 0; I != N; ++I)
    Slots.push_back(std::make_unique<Slot>());
}

void WorkerPoolBase::noteFailureLocked(unsigned I, Slot &S) {
  ++Failures;
  ++S.ConsecutiveFailures;
  if (!workerAlive(I) && S.Respawns >= HOpts.MaxRespawnsPerWorker) {
    // No channel and no budget to make one: terminal.
    S.Health = WorkerHealth::Dead;
  } else if (S.ConsecutiveFailures >= HOpts.CircuitBreakerThreshold) {
    // Trip the breaker: the slot sits out a (growing) quarantine, then
    // exactly one borrower probes it. One bad worker thus costs each
    // request at most one failed attempt instead of failing all of them.
    uint64_t Ms =
        std::min<uint64_t>(static_cast<uint64_t>(HOpts.QuarantineBaseMs)
                               << std::min(S.Quarantines, 20u),
                           HOpts.QuarantineMaxMs);
    S.Health = WorkerHealth::Quarantined;
    S.ProbeAt =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
    ++S.Quarantines;
    ++QuarantinesTotal;
  }
  bool AllDead = true;
  for (const auto &W : Slots)
    AllDead = AllDead && W->Health == WorkerHealth::Dead;
  if (AllDead)
    DegradedFlag = true;
}

bool WorkerPoolBase::degraded() const {
  std::lock_guard<std::mutex> L(M);
  return DegradedFlag;
}

void WorkerPoolBase::noteFallback() {
  std::lock_guard<std::mutex> L(M);
  ++DegradedFallbacks;
}

void WorkerPoolBase::terminateWorker(unsigned I) {
  std::lock_guard<std::mutex> L(M);
  if (I < Slots.size())
    killWorker(I);
}

PoolStats WorkerPoolBase::stats() const {
  std::lock_guard<std::mutex> L(M);
  PoolStats S;
  S.Requests = Requests;
  S.Attempts = Attempts;
  S.Respawns = Respawns;
  S.Failures = Failures;
  S.Quarantines = QuarantinesTotal;
  S.DegradedFallbacks = DegradedFallbacks;
  S.Degraded = DegradedFlag;
  for (const auto &W : Slots) {
    S.PerWorker.push_back(W->Served);
    S.PerWorkerHealth.push_back(W->Health);
  }
  return S;
}

Result<ShardResponse> WorkerPoolBase::discharge(const ShardRequest &R,
                                                int TimeoutMs) {
  const std::string Payload = serializeShardRequest(R);
  std::string FailDetail = "no attempt made";
  int ReadTimeoutMs = HOpts.RoundTripTimeoutMs;
  if (TimeoutMs >= 0 && TimeoutMs < ReadTimeoutMs)
    ReadTimeoutMs = TimeoutMs;
  {
    std::lock_guard<std::mutex> L(M);
    ++Requests; // once per discharge() call; Attempts counts borrows
  }

  for (int Attempt = 0; Attempt != 2; ++Attempt) {
    // Borrow a slot; Busy grants exclusive use of its channel. Candidates
    // are non-Busy, non-Dead slots that are Healthy or whose quarantine
    // has elapsed (the probe), and that either have a live channel or
    // revive budget left. Only inspect a *free* slot's channel — a busy
    // slot's channel belongs to its borrower.
    using Clock = std::chrono::steady_clock;
    unsigned SlotIndex = 0;
    Slot *S = nullptr;
    {
      std::unique_lock<std::mutex> L(M);
      for (;;) {
        Clock::time_point Now = Clock::now();
        bool AnyBusy = false, AllDead = true, HaveProbe = false;
        Clock::time_point EarliestProbe = Clock::time_point::max();
        for (unsigned I = 0; I != Slots.size(); ++I) {
          Slot *W = Slots[I].get();
          if (W->Health != WorkerHealth::Dead)
            AllDead = false;
          if (W->Busy) {
            AnyBusy = true;
            continue;
          }
          if (W->Health == WorkerHealth::Dead)
            continue;
          if (W->Health == WorkerHealth::Quarantined && Now < W->ProbeAt) {
            HaveProbe = true;
            EarliestProbe = std::min(EarliestProbe, W->ProbeAt);
            continue;
          }
          if (!workerAlive(I) && W->Respawns >= HOpts.MaxRespawnsPerWorker) {
            // Out of budget with no channel; finish the transition here
            // (failures normally do it, but a terminateWorker() corpse
            // can reach this state without one).
            W->Health = WorkerHealth::Dead;
            continue;
          }
          S = W;
          SlotIndex = I;
          break;
        }
        if (S)
          break;
        // Re-evaluate AllDead after the budget check above may have
        // marked stragglers Dead.
        AllDead = true;
        for (const auto &W : Slots)
          AllDead = AllDead && W->Health == WorkerHealth::Dead;
        if (AllDead) {
          DegradedFlag = true;
          return Result<ShardResponse>::error(
              "shard discharge failed: every worker is dead and the "
              "respawn budget is exhausted");
        }
        if (HaveProbe && !AnyBusy)
          FreeCV.wait_until(L, EarliestProbe);
        else
          FreeCV.wait(L);
      }
      S->Busy = true;
      ++Attempts;
    }

    std::string Err;
    if (!workerAlive(SlotIndex)) {
      unsigned RespawnIndex;
      {
        std::lock_guard<std::mutex> L(M);
        RespawnIndex = ++S->Respawns;
        ++Respawns;
      }
      // Exponential backoff with deterministic jitter, slept while the
      // slot is Busy (held exclusively) and outside the lock so healthy
      // siblings keep serving. The jitter subtracts up to half the delay,
      // hashed from (seed, slot, attempt) — reproducible, yet de-phased
      // across slots.
      if (HOpts.RespawnBackoffBaseMs > 0) {
        uint64_t Ms = std::min<uint64_t>(
            static_cast<uint64_t>(HOpts.RespawnBackoffBaseMs)
                << std::min(RespawnIndex - 1, 20u),
            HOpts.RespawnBackoffMaxMs);
        uint64_t Jitter =
            splitMixHash(HOpts.JitterSeed ^ (uint64_t(SlotIndex) << 32) ^
                         RespawnIndex) %
            (Ms / 2 + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(Ms - Jitter));
      }
      if (Status St = reviveWorker(SlotIndex); !St.ok())
        Err = "worker respawn failed: " + St.message();
    }
    if (Err.empty()) {
      Transport *Chan = channel(SlotIndex);
      if (!Chan) {
        Err = "request write failed: worker has no channel";
      } else if (Status St = Chan->send(Payload); !St.ok()) {
        Err = "request write failed: " + St.message();
      } else {
        FrameRead F = Chan->recvMs(ReadTimeoutMs);
        if (F.ok()) {
          {
            std::lock_guard<std::mutex> L(M);
            ++S->Served;
            // Any full round trip heals the slot: close the breaker and
            // return a probed slot to rotation.
            S->ConsecutiveFailures = 0;
            S->Health = WorkerHealth::Healthy;
            S->Busy = false;
          }
          FreeCV.notify_all();
          return parseShardResponse(F.Payload);
        }
        Err = F.eof() ? "worker exited before answering"
                      : "response read failed: " + F.Message;
      }
      // The channel state is unknown after an I/O failure; kill the
      // worker so the next borrower revives a clean one. This is also
      // how a socket channel's lazily-detected peer death (EOF at the
      // read) converges with the pipe channel's eagerly-known corpse:
      // both leave the slot channel-less for the retry's revive path.
      killWorker(SlotIndex);
    }
    {
      std::lock_guard<std::mutex> L(M);
      noteFailureLocked(SlotIndex, *S);
      S->Busy = false;
    }
    FreeCV.notify_all();
    FailDetail = Err;
  }
  return Result<ShardResponse>::error("shard discharge failed: " + FailDetail);
}

//===----------------------------------------------------------------------===//
// ShardPool
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<ShardPool>> ShardPool::create(ShardPoolOptions Opts) {
  using R = Result<std::unique_ptr<ShardPool>>;
  if (Opts.Shards == 0)
    return R::error("a shard pool needs at least one worker");
  if (Opts.WorkerExe.empty())
    return R::error("no worker executable configured for the shard pool");
  // Belt and braces next to the per-spawn handler in Subprocess: the pool
  // outlives individual workers, and a worker dying mid-write must
  // surface as a frame error on this side, never a SIGPIPE kill.
  ::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<ShardPool> P(new ShardPool(std::move(Opts)));
  P->initSlots(P->Opts.Shards);
  for (unsigned I = 0; I != P->Opts.Shards; ++I) {
    P->Procs.push_back(std::make_unique<Subprocess>());
    P->Pipes.push_back(nullptr);
    // A failed initial spawn is tolerated: the slot stays Healthy with no
    // process, and the first borrower retries through the respawn path
    // (spending budget there). Creation only fails on misconfiguration,
    // checked above — not on transient spawn trouble.
    (void)P->reviveWorker(I);
  }
  return R(std::move(P));
}

ShardPool::~ShardPool() = default; // Subprocess dtors reap the workers

Status ShardPool::reviveWorker(unsigned I) {
  if (FaultRegistry::shouldFail(FaultSite::WorkerSpawn))
    return Status::error("injected worker-spawn fault");
  if (Status S = Procs[I]->spawn(Opts.WorkerExe, Opts.WorkerArgs); !S.ok())
    return S;
  // Non-owning view of the subprocess pipes: Subprocess manages the fds'
  // lifetime (terminate/respawn), the transport only frames over them.
  Pipes[I] = std::make_unique<PipeTransport>(
      Procs[I]->readFd(), Procs[I]->writeFd(), /*OwnsFds=*/false);
  return Status::success();
}

void ShardPool::killWorker(unsigned I) {
  Procs[I]->terminate();
  Pipes[I].reset();
}

//===----------------------------------------------------------------------===//
// ShardSolver
//===----------------------------------------------------------------------===//

Result<SatResult>
ShardSolver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  return roundTrip(Formulas, nullptr, nullptr);
}

Result<SatResult>
ShardSolver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                               const VarRefSet &Vars, Model &ModelOut) {
  return roundTrip(Formulas, &Vars, &ModelOut);
}

Result<SatResult>
ShardSolver::roundTrip(const std::vector<const BoolExpr *> &Formulas,
                       const VarRefSet *Vars, Model *ModelOut) {
  ++Queries;
  LastSettledBy = "shard";
  LastTrail.clear();
  if (ModelOut)
    // Same convention as the concrete backends: clear a reused caller
    // Model up front so non-Sat verdicts leave no stale witness behind.
    *ModelOut = Model();

  if (QueryDeadline.expired()) {
    LastSettledBy = "deadline";
    return SatResult::Unknown;
  }

  ShardRequest Req;
  Req.Pipeline = WorkerPipeline;
  Req.Bounded = Bounded;
  Req.FinalBoundedStepFactor = FinalBoundedStepFactor;
  Req.WantModel = Vars != nullptr && ModelOut != nullptr;

  // Kind declarations for every free base name (the worker's parser needs
  // them to resolve array-vs-int syntax); sorted for a canonical payload.
  VarRefSet Free;
  for (const BoolExpr *F : Formulas)
    collectFreeVars(F, Free);
  std::map<std::string, VarKind> Kinds;
  for (const VarRef &V : Free) {
    std::string N(Syms.text(V.Name));
    auto [It, Inserted] = Kinds.emplace(N, V.Kind);
    if (!Inserted && It->second != V.Kind)
      return Result<SatResult>::error(
          "cannot serialize query: variable '" + N +
          "' occurs free with both int and array kinds");
  }
  for (const auto &KV : Kinds)
    Req.Vars.emplace_back(KV.first, KV.second);

  Printer P(Syms);
  Req.Formulas.reserve(Formulas.size());
  for (const BoolExpr *F : Formulas)
    Req.Formulas.push_back(P.print(F));

  if (Req.WantModel)
    for (const VarRef &V : *Vars)
      Req.ModelVars.push_back({std::string(Syms.text(V.Name)), V.Tag, V.Kind});

  // Cap the response wait by the time the deadline leaves (the worker
  // itself is uninterruptible, but this side must give up in time).
  Result<ShardResponse> Resp =
      Pool.discharge(Req, QueryDeadline.clampTimeoutMs(-1));
  if (!Resp.ok())
    return Result<SatResult>::error(Resp.message());
  if (Resp->IsError)
    return Result<SatResult>::error(Resp->Error);

  LastSettledBy =
      "shard:" + (Resp->SettledBy.empty() ? std::string("?") : Resp->SettledBy);
  LastTrail = Resp->Trail;

  if (Req.WantModel && Resp->Verdict == SatResult::Sat) {
    // Match wire entries back to the caller's VarRefs by (name, tag).
    std::map<std::pair<std::string, int>, VarRef> ByName;
    for (const VarRef &V : *Vars)
      ByName.emplace(std::make_pair(std::string(Syms.text(V.Name)),
                                    static_cast<int>(V.Tag)),
                     V);
    for (const ShardResponse::IntEntry &E : Resp->Ints) {
      auto It =
          ByName.find({E.Var.Name, static_cast<int>(E.Var.Tag)});
      if (It != ByName.end() && It->second.Kind == VarKind::Int)
        ModelOut->Ints[It->second] = E.Value;
    }
    for (const ShardResponse::ArrayEntry &E : Resp->Arrays) {
      auto It =
          ByName.find({E.Var.Name, static_cast<int>(E.Var.Tag)});
      if (It != ByName.end() && It->second.Kind == VarKind::Array)
        ModelOut->Arrays[It->second] = E.Value;
    }
  }
  return Resp->Verdict;
}
