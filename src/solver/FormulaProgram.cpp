//===- FormulaProgram.cpp - Compiled formula evaluation programs --------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/FormulaProgram.h"

#include "support/Casting.h"
#include "support/PtrMap.h"

#include <cassert>

using namespace relax;

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

namespace relax {

/// Single-use compiler for one program. CSE falls out of the identity maps:
/// hash-consed subterms shared inside the formula map to the same register,
/// so each unique subterm compiles (and later evaluates) exactly once.
class FormulaProgramCompiler {
public:
  explicit FormulaProgramCompiler(FormulaProgramCache *Cache)
      : Cache(Cache), P(new FormulaProgram()) {}

  std::shared_ptr<const FormulaProgram> run(const BoolExpr *Root) {
    P->ResultReg = compileBool(Root);
    return std::shared_ptr<const FormulaProgram>(P.release());
  }

private:
  using Inst = FormulaProgram::Inst;
  using Op = Inst::Op;

  FormulaProgramCache *Cache;
  std::unique_ptr<FormulaProgram> P;
  PtrMap<Expr, uint32_t> IntRegOf;
  PtrMap<BoolExpr, uint32_t> BoolRegOf;
  PtrMap<ArrayExpr, uint32_t> ArrRegOf;

  uint32_t emit(Op K, uint8_t Sub, uint32_t Dst, uint32_t A = 0,
                uint32_t B = 0, uint32_t C = 0, int64_t Imm = 0) {
    Inst I;
    I.K = K;
    I.Sub = Sub;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    I.C = C;
    I.Imm = Imm;
    P->Code.push_back(I);
    return Dst;
  }

  uint32_t intInputSlot(const VarRef &V) {
    for (uint32_t I = 0; I != P->IntIns.size(); ++I)
      if (P->IntIns[I] == V)
        return I;
    P->IntIns.push_back(V);
    return static_cast<uint32_t>(P->IntIns.size() - 1);
  }

  uint32_t arrayInputSlot(const VarRef &V) {
    for (uint32_t I = 0; I != P->ArrIns.size(); ++I)
      if (P->ArrIns[I] == V)
        return I;
    P->ArrIns.push_back(V);
    return static_cast<uint32_t>(P->ArrIns.size() - 1);
  }

  uint32_t compileExpr(const Expr *E) {
    if (const uint32_t *Reg = IntRegOf.find(E))
      return *Reg;
    uint32_t Dst = P->NumIntRegs++;
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      emit(Op::IntConst, 0, Dst, 0, 0, 0, cast<IntLitExpr>(E)->value());
      break;
    case Expr::Kind::Var: {
      const auto *V = cast<VarExpr>(E);
      uint32_t Slot =
          intInputSlot(VarRef{V->name(), V->tag(), VarKind::Int});
      emit(Op::IntInput, 0, Dst, Slot);
      break;
    }
    case Expr::Kind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      uint32_t Base = compileArray(R->base());
      uint32_t Index = compileExpr(R->index());
      emit(Op::ArrayRead, 0, Dst, Base, Index);
      break;
    }
    case Expr::Kind::ArrayLen: {
      uint32_t Base = compileArray(cast<ArrayLenExpr>(E)->base());
      emit(Op::ArrayLen, 0, Dst, Base);
      break;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      uint32_t L = compileExpr(B->lhs());
      uint32_t R = compileExpr(B->rhs());
      emit(Op::IntBinary, static_cast<uint8_t>(B->op()), Dst, L, R);
      break;
    }
    }
    IntRegOf.insert(E, Dst);
    return Dst;
  }

  uint32_t compileArray(const ArrayExpr *A) {
    if (const uint32_t *Reg = ArrRegOf.find(A))
      return *Reg;
    uint32_t Dst = P->NumArrRegs++;
    switch (A->kind()) {
    case ArrayExpr::Kind::Ref: {
      const auto *R = cast<ArrayRefExpr>(A);
      uint32_t Slot =
          arrayInputSlot(VarRef{R->name(), R->tag(), VarKind::Array});
      emit(Op::ArrayInput, 0, Dst, Slot);
      break;
    }
    case ArrayExpr::Kind::Store: {
      const auto *S = cast<ArrayStoreExpr>(A);
      uint32_t Base = compileArray(S->base());
      uint32_t Index = compileExpr(S->index());
      uint32_t Value = compileExpr(S->value());
      emit(Op::ArrayStore, 0, Dst, Base, Index, Value);
      break;
    }
    }
    ArrRegOf.insert(A, Dst);
    return Dst;
  }

  uint32_t compileBool(const BoolExpr *B) {
    if (const uint32_t *Reg = BoolRegOf.find(B))
      return *Reg;
    uint32_t Dst = P->NumBoolRegs++;
    switch (B->kind()) {
    case BoolExpr::Kind::BoolLit:
      emit(Op::BoolConst, 0, Dst, 0, 0, 0, cast<BoolLitExpr>(B)->value());
      break;
    case BoolExpr::Kind::Cmp: {
      const auto *C = cast<CmpExpr>(B);
      uint32_t L = compileExpr(C->lhs());
      uint32_t R = compileExpr(C->rhs());
      emit(Op::Cmp, static_cast<uint8_t>(C->op()), Dst, L, R);
      break;
    }
    case BoolExpr::Kind::ArrayCmp: {
      const auto *C = cast<ArrayCmpExpr>(B);
      uint32_t L = compileArray(C->lhs());
      uint32_t R = compileArray(C->rhs());
      emit(Op::ArrayCmp, C->isEquality() ? 1 : 0, Dst, L, R);
      break;
    }
    case BoolExpr::Kind::Logical: {
      const auto *L = cast<LogicalExpr>(B);
      uint32_t A = compileBool(L->lhs());
      uint32_t R = compileBool(L->rhs());
      emit(Op::Logical, static_cast<uint8_t>(L->op()), Dst, A, R);
      break;
    }
    case BoolExpr::Kind::Not: {
      uint32_t Sub = compileBool(cast<NotExpr>(B)->sub());
      emit(Op::Not, 0, Dst, Sub);
      break;
    }
    case BoolExpr::Kind::Exists: {
      uint32_t SubIdx = compileExists(cast<ExistsExpr>(B));
      emit(Op::Exists, 0, Dst, SubIdx);
      break;
    }
    }
    BoolRegOf.insert(B, Dst);
    return Dst;
  }

  uint32_t compileExists(const ExistsExpr *E) {
    FormulaProgram::SubProgram SP;
    SP.Body = FormulaProgram::compile(E->body(), Cache);
    SP.Bound = VarRef{E->var(), E->tag(), E->varKind()};
    // Wire every body input: the bound variable reads the enumerated
    // value; everything else is free in the enclosing formula too (free
    // variables propagate up past the binder) and reads the parent's
    // input slot of the same VarRef.
    for (const VarRef &V : SP.Body->intInputs()) {
      FormulaProgram::SubInput Src;
      if (V == SP.Bound)
        Src.FromBound = true;
      else
        Src.ParentSlot = intInputSlot(V);
      SP.IntSources.push_back(Src);
    }
    for (const VarRef &V : SP.Body->arrayInputs()) {
      FormulaProgram::SubInput Src;
      if (V == SP.Bound)
        Src.FromBound = true;
      else
        Src.ParentSlot = arrayInputSlot(V);
      SP.ArrSources.push_back(Src);
    }
    P->Subs.push_back(std::move(SP));
    return static_cast<uint32_t>(P->Subs.size() - 1);
  }
};

} // namespace relax

std::shared_ptr<const FormulaProgram>
FormulaProgram::compile(const BoolExpr *Root, FormulaProgramCache *Cache) {
  if (Cache)
    if (std::shared_ptr<const FormulaProgram> Hit = Cache->lookup(Root))
      return Hit;
  std::shared_ptr<const FormulaProgram> P =
      FormulaProgramCompiler(Cache).run(Root);
  if (Cache)
    Cache->insert(Root, P);
  return P;
}

void FormulaProgram::supportVars(std::vector<VarRef> &Out) const {
  Out.insert(Out.end(), IntIns.begin(), IntIns.end());
  Out.insert(Out.end(), ArrIns.begin(), ArrIns.end());
}

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

FormulaProgram::Executor::Executor(const FormulaProgram &P)
    : P(P), Ints(P.NumIntRegs), Bools(P.NumBoolRegs), Arrs(P.NumArrRegs),
      SubStates(P.Subs.size()) {}

bool FormulaProgram::Executor::run(const int64_t *IntIn,
                                   const ArrayModelValue *const *ArrIn,
                                   const FormulaEvalOptions &Opts,
                                   EvalBudget *Budget) {
  if (Budget && Budget->Tripped)
    return false; // fast abort; the caller must check Tripped
  for (const Inst &I : P.Code) {
    switch (I.K) {
    case Inst::Op::IntConst:
      Ints[I.Dst] = I.Imm;
      break;
    case Inst::Op::IntInput:
      Ints[I.Dst] = IntIn[I.A];
      break;
    case Inst::Op::ArrayInput:
      Arrs[I.Dst] = *ArrIn[I.A];
      break;
    case Inst::Op::ArrayStore: {
      // Copy-then-update keeps register banks independent; out-of-range
      // stores change only unobservable content and are dropped, matching
      // evalArrayExpr.
      ArrayModelValue V = Arrs[I.A];
      int64_t Index = Ints[I.B];
      if (Index >= 0 && Index < static_cast<int64_t>(V.Elems.size()))
        V.Elems[static_cast<size_t>(Index)] = Ints[I.C];
      Arrs[I.Dst] = std::move(V);
      break;
    }
    case Inst::Op::ArrayRead: {
      const ArrayModelValue &V = Arrs[I.A];
      int64_t Index = Ints[I.B];
      Ints[I.Dst] = (Index >= 0 &&
                     Index < static_cast<int64_t>(V.Elems.size()))
                        ? V.Elems[static_cast<size_t>(Index)]
                        : 0;
      break;
    }
    case Inst::Op::ArrayLen:
      Ints[I.Dst] = Arrs[I.A].Length;
      break;
    case Inst::Op::IntBinary: {
      int64_t L = Ints[I.A], R = Ints[I.B];
      switch (static_cast<BinaryOp>(I.Sub)) {
      case BinaryOp::Add:
        Ints[I.Dst] = wrapAdd(L, R);
        break;
      case BinaryOp::Sub:
        Ints[I.Dst] = wrapSub(L, R);
        break;
      case BinaryOp::Mul:
        Ints[I.Dst] = wrapMul(L, R);
        break;
      case BinaryOp::Div:
        Ints[I.Dst] = euclideanDiv(L, R);
        break;
      case BinaryOp::Mod:
        Ints[I.Dst] = euclideanMod(L, R);
        break;
      }
      break;
    }
    case Inst::Op::BoolConst:
      Bools[I.Dst] = I.Imm != 0;
      break;
    case Inst::Op::Cmp:
      Bools[I.Dst] =
          evalCmpOp(static_cast<CmpOp>(I.Sub), Ints[I.A], Ints[I.B]);
      break;
    case Inst::Op::ArrayCmp:
      Bools[I.Dst] = (Arrs[I.A] == Arrs[I.B]) == (I.Sub != 0);
      break;
    case Inst::Op::Logical: {
      bool L = Bools[I.A] != 0, R = Bools[I.B] != 0;
      switch (static_cast<LogicalOp>(I.Sub)) {
      case LogicalOp::And:
        Bools[I.Dst] = L && R;
        break;
      case LogicalOp::Or:
        Bools[I.Dst] = L || R;
        break;
      case LogicalOp::Implies:
        Bools[I.Dst] = !L || R;
        break;
      case LogicalOp::Iff:
        Bools[I.Dst] = L == R;
        break;
      }
      break;
    }
    case Inst::Op::Not:
      Bools[I.Dst] = !(Bools[I.A] != 0);
      break;
    case Inst::Op::Exists:
      Bools[I.Dst] = runExists(I, IntIn, ArrIn, Opts, Budget);
      if (Budget && Budget->Tripped)
        return false; // result meaningless once the budget tripped
      break;
    }
  }
  return Bools[P.ResultReg] != 0;
}

bool FormulaProgram::Executor::runExists(const Inst &I, const int64_t *IntIn,
                                         const ArrayModelValue *const *ArrIn,
                                         const FormulaEvalOptions &Opts,
                                         EvalBudget *Budget) {
  const SubProgram &SP = P.Subs[I.A];
  SubState &S = SubStates[I.A];
  if (!S.Exec) {
    S.Exec = std::make_unique<Executor>(*SP.Body);
    S.IntIn.resize(SP.Body->intInputs().size());
    S.ArrIn.resize(SP.Body->arrayInputs().size());
  }

  // Feed the non-bound inputs through from the parent's inputs; remember
  // which slots (if any) the bound variable occupies.
  size_t BoundInt = SIZE_MAX, BoundArr = SIZE_MAX;
  for (size_t Slot = 0; Slot != SP.IntSources.size(); ++Slot) {
    if (SP.IntSources[Slot].FromBound)
      BoundInt = Slot;
    else
      S.IntIn[Slot] = IntIn[SP.IntSources[Slot].ParentSlot];
  }
  for (size_t Slot = 0; Slot != SP.ArrSources.size(); ++Slot) {
    if (SP.ArrSources[Slot].FromBound) {
      BoundArr = Slot;
      S.ArrIn[Slot] = &S.BoundArr;
    } else {
      S.ArrIn[Slot] = ArrIn[SP.ArrSources[Slot].ParentSlot];
    }
  }

  if (SP.Bound.Kind == VarKind::Int) {
    for (int64_t V = Opts.IntLo; V <= Opts.IntHi; ++V) {
      if (Budget && !Budget->charge())
        return false;
      if (BoundInt != SIZE_MAX)
        S.IntIn[BoundInt] = V;
      if (S.Exec->run(S.IntIn.data(), S.ArrIn.data(), Opts, Budget))
        return true;
      if (Budget && Budget->Tripped)
        return false;
      if (BoundInt == SIZE_MAX)
        return false; // body ignores the bound variable
    }
    return false;
  }

  // Arrays: walk the shared bounded array domain.
  ArrayDomain D(Opts);
  S.BoundArr = ArrayModelValue();
  do {
    if (Budget && !Budget->charge())
      return false;
    if (S.Exec->run(S.IntIn.data(), S.ArrIn.data(), Opts, Budget))
      return true;
    if (Budget && Budget->Tripped)
      return false;
    if (BoundArr == SIZE_MAX)
      return false; // body ignores the bound variable
  } while (D.advance(S.BoundArr));
  return false;
}

bool FormulaProgram::evaluateOnce(const BoolExpr *Root, const Model &M,
                                  const FormulaEvalOptions &Opts) {
  std::shared_ptr<const FormulaProgram> P = compile(Root);
  std::vector<int64_t> IntIn;
  IntIn.reserve(P->intInputs().size());
  for (const VarRef &V : P->intInputs()) {
    auto It = M.Ints.find(V);
    IntIn.push_back(It == M.Ints.end() ? 0 : It->second);
  }
  std::vector<ArrayModelValue> ArrVals;
  ArrVals.reserve(P->arrayInputs().size());
  for (const VarRef &V : P->arrayInputs()) {
    auto It = M.Arrays.find(V);
    ArrVals.push_back(It == M.Arrays.end() ? ArrayModelValue() : It->second);
  }
  std::vector<const ArrayModelValue *> ArrIn;
  ArrIn.reserve(ArrVals.size());
  for (const ArrayModelValue &A : ArrVals)
    ArrIn.push_back(&A);
  Executor E(*P);
  return E.run(IntIn.data(), ArrIn.data(), Opts);
}
