//===- ShardPool.h - Out-of-process discharge shards ---------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded discharge tier: a pool of worker *processes* (the driver's
/// hidden `--discharge-worker` mode), each owning its own AstContext and
/// solver backends, plus the `Solver` adapter that routes a query to the
/// pool and the wire structs both ends share.
///
/// ## Why processes
///
/// Every in-process tier shares the one AstContext and (with Z3) the one
/// z3 context, so discharge throughput caps out at what a single address
/// space can do no matter how many scheduler threads run. Relational
/// acceptability VCs are independent of each other, which makes the
/// workload embarrassingly shardable: each worker process rebuilds the
/// obligation from its serialized form in a private context and answers
/// the verdict.
///
/// ## Wire format
///
/// One request/response per frame (support/Subprocess.h framing). The
/// payload is line-based text; formulas ride in the `.rlx` concrete
/// syntax — the same printer/parser pair the golden round-trip tests pin
/// — together with the free variables' kind declarations, so the worker
/// can re-parse them into its own context. Serialization is *total* for
/// generated VC formulas: element reads over `store(...)` and freshened
/// names (`x'1`) print and re-parse (pinned by shard_tests).
///
/// ## Determinism
///
/// A worker's verdict is a pure function of the request: the tail tiers
/// it runs are the deterministic in-process tiers, configured entirely by
/// the request (tier spec, domains, budgets). Which worker serves a query
/// therefore cannot change the answer, and the scheduler's by-index merge
/// keeps reports bit-identical to in-process discharge.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_SHARDPOOL_H
#define RELAXC_SOLVER_SHARDPOOL_H

#include "solver/BoundedSolver.h"
#include "support/Subprocess.h"
#include "support/Transport.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace relax {

/// A logical variable on the wire: base name text + execution tag + kind.
struct WireVar {
  std::string Name;
  VarTag Tag = VarTag::Plain;
  VarKind Kind = VarKind::Int;
};

/// One discharge request: the tail tier chain the worker should run, its
/// bounded-tier configuration, the query formulas (printed), the free
/// variables' kind declarations (for re-parsing), and — when the caller
/// wants a witness — the variables to extract from the model.
struct ShardRequest {
  std::string Pipeline = "z3"; ///< tail tiers, e.g. "z3" or "bounded"
  BoundedSolverOptions Bounded;
  uint64_t FinalBoundedStepFactor = 16;
  bool WantModel = false;
  /// Kind declarations for every free base name in Formulas.
  std::vector<std::pair<std::string, VarKind>> Vars;
  std::vector<std::string> Formulas;
  std::vector<WireVar> ModelVars; ///< only meaningful with WantModel
};

/// One verdict: either a diagnosed error or a sat result with the
/// worker-side settling-tier name, give-up trail, and requested model.
struct ShardResponse {
  bool IsError = false;
  std::string Error;
  SatResult Verdict = SatResult::Unknown;
  std::string SettledBy;
  std::string Trail;
  struct IntEntry {
    WireVar Var;
    int64_t Value = 0;
  };
  struct ArrayEntry {
    WireVar Var;
    ArrayModelValue Value;
  };
  std::vector<IntEntry> Ints;
  std::vector<ArrayEntry> Arrays;
};

/// Wire codecs. Parsers return diagnosed errors on any malformed payload
/// (never crash, never accept silently) — fuzzed in shard_tests.
std::string serializeShardRequest(const ShardRequest &R);
Result<ShardRequest> parseShardRequest(std::string_view Payload);
std::string serializeShardResponse(const ShardResponse &R);
Result<ShardResponse> parseShardResponse(std::string_view Payload);

/// Health state of one pool worker slot (see the health model below).
enum class WorkerHealth : uint8_t { Healthy, Quarantined, Dead };

/// Aggregated pool statistics, identical across pool flavors so the
/// driver and the chaos pins read one shape.
struct PoolStats {
  uint64_t Requests = 0; ///< discharge() calls (not per-attempt)
  uint64_t Attempts = 0; ///< slot borrows, including the sound retries
  uint64_t Respawns = 0; ///< process respawns / connection re-dials
  uint64_t Failures = 0;    ///< failed round-trip attempts
  uint64_t Quarantines = 0; ///< circuit-breaker trips across all slots
  uint64_t DegradedFallbacks = 0; ///< queries answered by the fallback
  bool Degraded = false;          ///< every slot is Dead
  std::vector<uint64_t> PerWorker; ///< requests served per shard
  std::vector<WorkerHealth> PerWorkerHealth;
};

/// The abstract pool the portfolio's shard tier dispatches to: a
/// subprocess pool (ShardPool), a remote socket pool (RemotePool), or a
/// test double. All flavors share the retry/health/degradation contract
/// documented on ShardPool.
class DischargePool {
public:
  using WorkerHealth = ::relax::WorkerHealth;
  using Stats = PoolStats;

  virtual ~DischargePool() = default;

  virtual unsigned shardCount() const = 0;

  /// Serializes \p R, round-trips it on any free healthy (or probe-due)
  /// worker, and parses the response. A dead worker is revived with
  /// backoff (bounded by MaxRespawnsPerWorker) and the request retried on
  /// failure exactly once — the single sound retry: worker answers are
  /// pure functions of the request, so a retry cannot change a verdict,
  /// and a request that failed twice is reported as an error rather than
  /// guessed at. \p TimeoutMs, when >= 0, caps the response read below
  /// RoundTripTimeoutMs (the discharge deadline plumbs through here).
  virtual Result<ShardResponse> discharge(const ShardRequest &R,
                                          int TimeoutMs = -1) = 0;

  /// Sticky: true once every slot has died for good. The portfolio checks
  /// this to route shard-tier queries straight to the in-process tail.
  virtual bool degraded() const = 0;

  /// Called by the portfolio each time a shard-tier query is answered by
  /// the in-process fallback instead of the pool (shown in --solver-stats).
  virtual void noteFallback() = 0;

  virtual PoolStats stats() const = 0;
};

/// Health-machine knobs shared by every worker-backed pool flavor.
struct PoolHealthOptions {
  /// Per-round-trip read timeout; a hung worker is diagnosed, not waited
  /// on forever.
  int RoundTripTimeoutMs = 600'000;
  /// Lifetime revive budget per worker slot (process respawns on the
  /// pipe flavor, reconnects on the socket flavor); an exhausted slot
  /// with no live channel transitions to Dead.
  unsigned MaxRespawnsPerWorker = 3;
  /// Exponential revive backoff: revive K of a slot sleeps
  /// min(Base << (K-1), Max) ms minus a deterministic jitter (hashed from
  /// JitterSeed, the slot index, and K — no wall-clock randomness), so
  /// all slots crashing at once do not revive in lockstep. Base 0
  /// disables the sleep (tests use this to keep chaos runs fast).
  unsigned RespawnBackoffBaseMs = 25;
  unsigned RespawnBackoffMaxMs = 1000;
  uint64_t JitterSeed = 0x5eed;
  /// Consecutive round-trip failures that trip a slot's circuit breaker
  /// into Quarantined.
  unsigned CircuitBreakerThreshold = 2;
  /// Quarantine length: quarantine K of a slot lasts
  /// min(Base << (K-1), Max) ms, after which one borrower probes it.
  unsigned QuarantineBaseMs = 100;
  unsigned QuarantineMaxMs = 2000;
};

/// The shared machinery of a worker-backed pool: slot borrowing, the
/// per-slot health state machine, the single sound retry, revive
/// backoff, and statistics. Subclasses provide the channel operations —
/// a subprocess pipe pair (ShardPool) or a socket connection
/// (RemotePool) — under the borrow discipline: channel calls on slot I
/// happen either while its borrower holds it Busy or under the pool
/// lock for a free slot.
class WorkerPoolBase : public DischargePool {
public:
  unsigned shardCount() const override {
    return static_cast<unsigned>(Slots.size());
  }
  Result<ShardResponse> discharge(const ShardRequest &R,
                                  int TimeoutMs = -1) override;
  bool degraded() const override;
  void noteFallback() override;
  PoolStats stats() const override;

  /// Test hook: kills worker \p I's channel — SIGKILL of the subprocess
  /// on the pipe flavor, connection drop on the socket flavor (no state
  /// change — the next borrower finds the corpse and takes the revive
  /// path). The chaos suite uses this to kill workers between requests;
  /// it must not race an in-flight borrow of the same slot.
  void terminateWorker(unsigned I);

protected:
  explicit WorkerPoolBase(const PoolHealthOptions &H) : HOpts(H) {}

  /// Sizes the slot table; called once by the subclass factory before
  /// any discharge().
  void initSlots(unsigned N);

  /// True when slot \p I has a live channel. The pipe flavor sees a
  /// kill eagerly (waitpid knows the corpse); the socket flavor only
  /// lazily (a dead peer surfaces at the next read), which is why the
  /// two transports report different stats *values* for the same
  /// kill-between-requests scenario through the same stats *fields*.
  virtual bool workerAlive(unsigned I) = 0;
  /// (Re)creates slot \p I's channel: spawn the subprocess / dial the
  /// endpoint. Implementations draw the WorkerSpawn fault site.
  virtual Status reviveWorker(unsigned I) = 0;
  /// Destroys the channel so the next borrower revives a clean one.
  virtual void killWorker(unsigned I) = 0;
  /// The framed channel of a live slot (null when none).
  virtual Transport *channel(unsigned I) = 0;

private:
  struct Slot {
    bool Busy = false;
    unsigned Respawns = 0;
    uint64_t Served = 0;
    unsigned ConsecutiveFailures = 0;
    unsigned Quarantines = 0;
    WorkerHealth Health = WorkerHealth::Healthy;
    /// When Quarantined: the earliest time a probe may borrow the slot.
    std::chrono::steady_clock::time_point ProbeAt{};
  };

  PoolHealthOptions HOpts;
  mutable std::mutex M;
  std::condition_variable FreeCV;
  std::vector<std::unique_ptr<Slot>> Slots;
  uint64_t Requests = 0;
  uint64_t Attempts = 0;
  uint64_t Respawns = 0;
  uint64_t Failures = 0;
  uint64_t QuarantinesTotal = 0;
  uint64_t DegradedFallbacks = 0;
  bool DegradedFlag = false;

  /// Records a failed attempt on \p S under the lock: bumps the
  /// consecutive-failure count and advances the health state machine.
  void noteFailureLocked(unsigned I, Slot &S);
};

/// Pool configuration. Inherits the health knobs so existing callers
/// keep setting them as direct members.
struct ShardPoolOptions : PoolHealthOptions {
  unsigned Shards = 2;
  /// The worker executable — normally currentExecutablePath() of the
  /// relaxc driver itself.
  std::string WorkerExe;
  std::vector<std::string> WorkerArgs = {"--discharge-worker"};
};

/// A fixed pool of discharge worker processes. Thread-safe: scheduler
/// workers borrow one subprocess each for the duration of a round trip,
/// blocking when all are busy.
///
/// ## Health model (per slot)
///
///     Healthy --(CircuitBreakerThreshold consecutive failures)--> Quarantined
///     Quarantined --(quarantine elapses; one probe request)--> Healthy | back
///     any --(respawn budget exhausted && process gone)--> Dead  (terminal)
///
/// A successful round trip resets the consecutive-failure count and
/// returns the slot to Healthy. When every slot is Dead the pool is
/// *degraded* (sticky): discharge() fails fast and the portfolio's shard
/// tier switches to its in-process fallback tail — same verdicts, no pool.
class ShardPool final : public WorkerPoolBase {
public:
  /// Creates the pool and spawns the workers. A worker that cannot be
  /// started at creation is left for on-demand respawn (it costs one unit
  /// of that slot's respawn budget later) — under fault injection or fork
  /// pressure a partially-started pool must degrade, not abort the run.
  static Result<std::unique_ptr<ShardPool>> create(ShardPoolOptions Opts);
  ~ShardPool() override;

private:
  explicit ShardPool(ShardPoolOptions O)
      : WorkerPoolBase(O), Opts(std::move(O)) {}

  ShardPoolOptions Opts;
  /// Parallel to the base's slots; entries are only touched under the
  /// borrow discipline.
  std::vector<std::unique_ptr<Subprocess>> Procs;
  std::vector<std::unique_ptr<PipeTransport>> Pipes;

  bool workerAlive(unsigned I) override { return Procs[I]->running(); }
  Status reviveWorker(unsigned I) override;
  void killWorker(unsigned I) override;
  Transport *channel(unsigned I) override { return Pipes[I].get(); }
};

/// The `Solver` face of a pool: serializes each query (formulas, free
/// variables, tail-tier config), round-trips it, and surfaces the
/// worker's verdict/trail. One ShardSolver per portfolio instance; many
/// may share one pool — of any DischargePool flavor.
class ShardSolver : public Solver {
public:
  ShardSolver(DischargePool &Pool, const Interner &Syms,
              std::string WorkerPipeline, BoundedSolverOptions Bounded,
              uint64_t FinalBoundedStepFactor)
      : Pool(Pool), Syms(Syms), WorkerPipeline(std::move(WorkerPipeline)),
        Bounded(Bounded), FinalBoundedStepFactor(FinalBoundedStepFactor) {}

  const char *name() const override { return "shard"; }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override;

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override;

  /// "shard:<worker settling tier>", e.g. "shard:z3"; "deadline" when the
  /// query deadline expired before the round trip could run.
  const char *settledBy() const override { return LastSettledBy.c_str(); }

  /// The worker-side give-up trail of the last query.
  std::string giveUpTrail() const override { return LastTrail; }

  bool lastQueryDeadlined() const override {
    return LastSettledBy == "deadline";
  }

private:
  DischargePool &Pool;
  const Interner &Syms;
  std::string WorkerPipeline;
  BoundedSolverOptions Bounded;
  uint64_t FinalBoundedStepFactor;
  std::string LastSettledBy = "shard";
  std::string LastTrail;

  Result<SatResult> roundTrip(const std::vector<const BoolExpr *> &Formulas,
                              const VarRefSet *Vars, Model *ModelOut);
};

} // namespace relax

#endif // RELAXC_SOLVER_SHARDPOOL_H
