//===- ShardPool.h - Out-of-process discharge shards ---------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded discharge tier: a pool of worker *processes* (the driver's
/// hidden `--discharge-worker` mode), each owning its own AstContext and
/// solver backends, plus the `Solver` adapter that routes a query to the
/// pool and the wire structs both ends share.
///
/// ## Why processes
///
/// Every in-process tier shares the one AstContext and (with Z3) the one
/// z3 context, so discharge throughput caps out at what a single address
/// space can do no matter how many scheduler threads run. Relational
/// acceptability VCs are independent of each other, which makes the
/// workload embarrassingly shardable: each worker process rebuilds the
/// obligation from its serialized form in a private context and answers
/// the verdict.
///
/// ## Wire format
///
/// One request/response per frame (support/Subprocess.h framing). The
/// payload is line-based text; formulas ride in the `.rlx` concrete
/// syntax — the same printer/parser pair the golden round-trip tests pin
/// — together with the free variables' kind declarations, so the worker
/// can re-parse them into its own context. Serialization is *total* for
/// generated VC formulas: element reads over `store(...)` and freshened
/// names (`x'1`) print and re-parse (pinned by shard_tests).
///
/// ## Determinism
///
/// A worker's verdict is a pure function of the request: the tail tiers
/// it runs are the deterministic in-process tiers, configured entirely by
/// the request (tier spec, domains, budgets). Which worker serves a query
/// therefore cannot change the answer, and the scheduler's by-index merge
/// keeps reports bit-identical to in-process discharge.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_SHARDPOOL_H
#define RELAXC_SOLVER_SHARDPOOL_H

#include "solver/BoundedSolver.h"
#include "support/Subprocess.h"

#include <condition_variable>
#include <memory>
#include <mutex>

namespace relax {

/// A logical variable on the wire: base name text + execution tag + kind.
struct WireVar {
  std::string Name;
  VarTag Tag = VarTag::Plain;
  VarKind Kind = VarKind::Int;
};

/// One discharge request: the tail tier chain the worker should run, its
/// bounded-tier configuration, the query formulas (printed), the free
/// variables' kind declarations (for re-parsing), and — when the caller
/// wants a witness — the variables to extract from the model.
struct ShardRequest {
  std::string Pipeline = "z3"; ///< tail tiers, e.g. "z3" or "bounded"
  BoundedSolverOptions Bounded;
  uint64_t FinalBoundedStepFactor = 16;
  bool WantModel = false;
  /// Kind declarations for every free base name in Formulas.
  std::vector<std::pair<std::string, VarKind>> Vars;
  std::vector<std::string> Formulas;
  std::vector<WireVar> ModelVars; ///< only meaningful with WantModel
};

/// One verdict: either a diagnosed error or a sat result with the
/// worker-side settling-tier name, give-up trail, and requested model.
struct ShardResponse {
  bool IsError = false;
  std::string Error;
  SatResult Verdict = SatResult::Unknown;
  std::string SettledBy;
  std::string Trail;
  struct IntEntry {
    WireVar Var;
    int64_t Value = 0;
  };
  struct ArrayEntry {
    WireVar Var;
    ArrayModelValue Value;
  };
  std::vector<IntEntry> Ints;
  std::vector<ArrayEntry> Arrays;
};

/// Wire codecs. Parsers return diagnosed errors on any malformed payload
/// (never crash, never accept silently) — fuzzed in shard_tests.
std::string serializeShardRequest(const ShardRequest &R);
Result<ShardRequest> parseShardRequest(std::string_view Payload);
std::string serializeShardResponse(const ShardResponse &R);
Result<ShardResponse> parseShardResponse(std::string_view Payload);

/// Pool configuration.
struct ShardPoolOptions {
  unsigned Shards = 2;
  /// The worker executable — normally currentExecutablePath() of the
  /// relaxc driver itself.
  std::string WorkerExe;
  std::vector<std::string> WorkerArgs = {"--discharge-worker"};
  /// Per-round-trip read timeout; a hung worker is diagnosed, not waited
  /// on forever.
  int RoundTripTimeoutMs = 600'000;
  /// How often a dead worker slot is respawned before its requests fail.
  unsigned MaxRespawnsPerWorker = 1;
};

/// A fixed pool of discharge worker processes. Thread-safe: scheduler
/// workers borrow one subprocess each for the duration of a round trip,
/// blocking when all are busy.
class ShardPool {
public:
  /// Spawns the workers; fails if any cannot be started.
  static Result<std::unique_ptr<ShardPool>> create(ShardPoolOptions Opts);
  ~ShardPool();

  unsigned shardCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Serializes \p R, round-trips it on any free worker, and parses the
  /// response. A dead worker is respawned (bounded by MaxRespawnsPerWorker)
  /// and the request retried once — the retry cannot change the verdict,
  /// because worker answers are pure functions of the request.
  Result<ShardResponse> discharge(const ShardRequest &R);

  struct Stats {
    uint64_t Requests = 0;
    uint64_t Respawns = 0;
    std::vector<uint64_t> PerWorker; ///< requests served per shard
  };
  Stats stats() const;

private:
  explicit ShardPool(ShardPoolOptions Opts) : Opts(std::move(Opts)) {}

  struct WorkerSlot {
    Subprocess Proc;
    bool Busy = false;
    unsigned Respawns = 0;
    uint64_t Served = 0;
  };

  ShardPoolOptions Opts;
  mutable std::mutex M;
  std::condition_variable FreeCV;
  std::vector<std::unique_ptr<WorkerSlot>> Workers;
  uint64_t Requests = 0;
  uint64_t Respawns = 0;

  Status spawnWorker(WorkerSlot &Slot);
};

/// The `Solver` face of the pool: serializes each query (formulas, free
/// variables, tail-tier config), round-trips it, and surfaces the
/// worker's verdict/trail. One ShardSolver per portfolio instance; many
/// may share one pool.
class ShardSolver : public Solver {
public:
  ShardSolver(ShardPool &Pool, const Interner &Syms, std::string WorkerPipeline,
              BoundedSolverOptions Bounded, uint64_t FinalBoundedStepFactor)
      : Pool(Pool), Syms(Syms), WorkerPipeline(std::move(WorkerPipeline)),
        Bounded(Bounded), FinalBoundedStepFactor(FinalBoundedStepFactor) {}

  const char *name() const override { return "shard"; }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override;

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override;

  /// "shard:<worker settling tier>", e.g. "shard:z3".
  const char *settledBy() const override { return LastSettledBy.c_str(); }

  /// The worker-side give-up trail of the last query.
  std::string giveUpTrail() const override { return LastTrail; }

private:
  ShardPool &Pool;
  const Interner &Syms;
  std::string WorkerPipeline;
  BoundedSolverOptions Bounded;
  uint64_t FinalBoundedStepFactor;
  std::string LastSettledBy = "shard";
  std::string LastTrail;

  Result<SatResult> roundTrip(const std::vector<const BoolExpr *> &Formulas,
                              const VarRefSet *Vars, Model *ModelOut);
};

} // namespace relax

#endif // RELAXC_SOLVER_SHARDPOOL_H
