//===- Solver.cpp - Decision procedure interface ------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

using namespace relax;

Solver::~Solver() = default;

std::string relax::formatModel(const Interner &Syms, const Model &M) {
  std::string Out;
  auto Sep = [&] {
    if (!Out.empty())
      Out += ", ";
  };
  for (const auto &[V, Value] : M.Ints) {
    Sep();
    Out += std::string(Syms.text(V.Name)) + varTagSuffix(V.Tag) + " = " +
           std::to_string(Value);
  }
  for (const auto &[V, A] : M.Arrays) {
    Sep();
    Out += std::string(Syms.text(V.Name)) + varTagSuffix(V.Tag) + " = [";
    for (size_t I = 0, E = A.Elems.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(A.Elems[I]);
    }
    Out += "]";
  }
  return Out.empty() ? "(empty model)" : Out;
}

const std::vector<const char *> &relax::knownSolverNames() {
  static const std::vector<const char *> Names = {"z3", "bounded"};
  return Names;
}

bool relax::isKnownSolverName(std::string_view Name) {
  for (const char *Known : knownSolverNames())
    if (Name == Known)
      return true;
  return false;
}

std::string relax::knownSolverNamesForDiagnostics() {
  std::string Out;
  for (const char *Known : knownSolverNames()) {
    if (!Out.empty())
      Out += ", ";
    Out += Known;
  }
  return Out;
}

const char *relax::satResultName(SatResult R) {
  switch (R) {
  case SatResult::Sat:
    return "sat";
  case SatResult::Unsat:
    return "unsat";
  case SatResult::Unknown:
    return "unknown";
  }
  return "unknown";
}

Result<bool> Solver::isValid(AstContext &Ctx, const BoolExpr *F) {
  Result<SatResult> R = checkSat({Ctx.notExpr(F)});
  if (!R.ok())
    return R.status();
  switch (*R) {
  case SatResult::Unsat:
    return true;
  case SatResult::Sat:
    return false;
  case SatResult::Unknown:
    return Result<bool>::error(std::string(name()) +
                               " returned unknown for a validity query");
  }
  return false;
}

Result<bool> Solver::entails(AstContext &Ctx, const BoolExpr *P,
                             const BoolExpr *Q) {
  // P |= Q  iff  P /\ ¬Q unsatisfiable.
  Result<SatResult> R = checkSat({P, Ctx.notExpr(Q)});
  if (!R.ok())
    return R.status();
  switch (*R) {
  case SatResult::Unsat:
    return true;
  case SatResult::Sat:
    return false;
  case SatResult::Unknown:
    return Result<bool>::error(std::string(name()) +
                               " returned unknown for an entailment query");
  }
  return false;
}
