//===- CachingSolver.h - Result-caching solver wrapper -------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes checkSat results keyed by the structural hashes of the query's
/// formulas. The verifier re-discharges many identical side conditions
/// (convergence checks, repeated invariant obligations), so the cache cuts
/// solver load substantially (measured in bench/solver_ablation).
///
/// Hash-consing makes the key computation a cached field read per formula,
/// and every cached entry keeps its (canonicalized) query so a hit is
/// verified by pointer/structural equality — a 64-bit collision can no
/// longer alias two different queries to one result. Queries are
/// canonicalized by sorting on structural hash, so permuted-but-identical
/// obligation sets hit the same entry. Hit/miss/collision counters feed
/// the ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_CACHINGSOLVER_H
#define RELAXC_SOLVER_CACHINGSOLVER_H

#include "ast/Structural.h"
#include "solver/Solver.h"
#include "support/Hashing.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace relax {

/// A verified sat-result memo table, shared by CachingSolver and the
/// parallel VC discharger (which guards it with a mutex).
class SolverResultCache {
public:
  /// Canonical form of a query: the conjunction is order-insensitive, so
  /// the formulas are sorted by structural hash (pointer as tie-break —
  /// stable for the cache's lifetime since hash-consed nodes never move).
  /// Permuted-but-identical obligation sets thus share one entry. A
  /// foreign-context duplicate whose hash collides with a sibling may sort
  /// differently and miss; that only costs a hit, never correctness,
  /// because every lookup is verified by sameQuery below.
  static std::vector<const BoolExpr *>
  canonicalize(const std::vector<const BoolExpr *> &Formulas) {
    std::vector<const BoolExpr *> C(Formulas);
    std::sort(C.begin(), C.end(), [](const BoolExpr *A, const BoolExpr *B) {
      uint64_t HA = structuralHash(A), HB = structuralHash(B);
      if (HA != HB)
        return HA < HB;
      return std::less<const BoolExpr *>()(A, B);
    });
    return C;
  }

  /// Key over the canonicalized query.
  static uint64_t keyOf(const std::vector<const BoolExpr *> &Canonical) {
    uint64_t Key = 0xcafef00dULL;
    for (const BoolExpr *F : Canonical)
      Key = hashCombine(Key, structuralHash(F));
    return Key;
  }

  std::optional<SatResult>
  lookup(const std::vector<const BoolExpr *> &Formulas) {
    return lookupCanonical(canonicalize(Formulas));
  }

  void insert(const std::vector<const BoolExpr *> &Formulas, SatResult R) {
    insertCanonical(canonicalize(Formulas), R);
  }

  /// Variants taking an already-canonicalized query, so a miss-then-insert
  /// caller sorts the query once, not twice.
  std::optional<SatResult>
  lookupCanonical(const std::vector<const BoolExpr *> &Canonical) {
    auto It = Cache.find(keyOf(Canonical));
    if (It == Cache.end()) {
      ++Misses;
      return std::nullopt;
    }
    for (const Entry &E : It->second)
      if (sameQuery(E.Formulas, Canonical)) {
        ++Hits;
        return E.R;
      }
    // 64-bit key matched a different query: a genuine hash collision.
    ++Collisions;
    ++Misses;
    return std::nullopt;
  }

  void insertCanonical(std::vector<const BoolExpr *> Canonical, SatResult R) {
    std::vector<Entry> &Bucket = Cache[keyOf(Canonical)];
    for (const Entry &E : Bucket)
      if (sameQuery(E.Formulas, Canonical))
        return; // already present (racing insert in the parallel path)
    Bucket.push_back(Entry{std::move(Canonical), R});
  }

  uint64_t hitCount() const { return Hits; }
  uint64_t missCount() const { return Misses; }
  uint64_t collisionCount() const { return Collisions; }

private:
  struct Entry {
    std::vector<const BoolExpr *> Formulas;
    SatResult R;
  };

  static bool sameQuery(const std::vector<const BoolExpr *> &A,
                        const std::vector<const BoolExpr *> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I != A.size(); ++I)
      // Pointer equality for same-context (hash-consed) formulas; the
      // structural walk only runs for foreign-context nodes.
      if (A[I] != B[I] && !structurallyEqual(A[I], B[I]))
        return false;
    return true;
  }

  std::unordered_map<uint64_t, std::vector<Entry>> Cache;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Collisions = 0;
};

/// Wraps an underlying solver with a sat-result cache. Model-producing
/// queries always pass through (models are not cached).
class CachingSolver : public Solver {
public:
  explicit CachingSolver(Solver &Underlying) : Underlying(Underlying) {}

  const char *name() const override { return Underlying.name(); }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override {
    ++Queries;
    std::vector<const BoolExpr *> Canonical =
        SolverResultCache::canonicalize(Formulas);
    if (std::optional<SatResult> Cached = Cache.lookupCanonical(Canonical))
      return *Cached;
    Result<SatResult> R = Underlying.checkSat(Formulas);
    // Deadline gave-ups are time-dependent, not verdicts about the query;
    // caching one would freeze "ran out of time" into "unknowable".
    if (R.ok() && !Underlying.lastQueryDeadlined())
      Cache.insertCanonical(std::move(Canonical), *R);
    return R;
  }

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override {
    // Model queries bypass the cache entirely (models are not cached), so
    // they are counted apart from Queries: folding them in would deflate
    // the reported hit rate with queries the cache never saw.
    ++ModelPassThroughs;
    return Underlying.checkSatWithModel(Formulas, Vars, ModelOut);
  }

  void setDeadline(const Deadline &D) override { Underlying.setDeadline(D); }

  bool lastQueryDeadlined() const override {
    return Underlying.lastQueryDeadlined();
  }

  uint64_t hitCount() const { return Cache.hitCount(); }
  uint64_t missCount() const { return Cache.missCount(); }
  uint64_t collisionCount() const { return Cache.collisionCount(); }
  /// Model queries forwarded uncached (surfaced in `--solver-stats`).
  uint64_t modelPassThroughCount() const { return ModelPassThroughs; }

private:
  Solver &Underlying;
  SolverResultCache Cache;
  uint64_t ModelPassThroughs = 0;
};

} // namespace relax

#endif // RELAXC_SOLVER_CACHINGSOLVER_H
