//===- CachingSolver.h - Result-caching solver wrapper -------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes checkSat results keyed by the structural hashes of the query's
/// formulas. The verifier re-discharges many identical side conditions
/// (convergence checks, repeated invariant obligations), so the cache cuts
/// solver load substantially (measured in bench/solver_ablation).
///
/// Hash-consing makes the key computation a cached field read per formula,
/// and every cached entry keeps its query so a hit is verified by
/// pointer/structural equality — a 64-bit collision can no longer alias two
/// different queries to one result. Hit/miss/collision counters feed the
/// ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_CACHINGSOLVER_H
#define RELAXC_SOLVER_CACHINGSOLVER_H

#include "ast/Structural.h"
#include "solver/Solver.h"
#include "support/Hashing.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace relax {

/// A verified sat-result memo table, shared by CachingSolver and the
/// parallel VC discharger (which guards it with a mutex).
class SolverResultCache {
public:
  /// Order-sensitive key over the query's formulas; queries are generated
  /// deterministically, so order sensitivity costs no hits.
  static uint64_t keyOf(const std::vector<const BoolExpr *> &Formulas) {
    uint64_t Key = 0xcafef00dULL;
    for (const BoolExpr *F : Formulas)
      Key = hashCombine(Key, structuralHash(F));
    return Key;
  }

  std::optional<SatResult>
  lookup(const std::vector<const BoolExpr *> &Formulas) {
    uint64_t Key = keyOf(Formulas);
    auto It = Cache.find(Key);
    if (It == Cache.end()) {
      ++Misses;
      return std::nullopt;
    }
    for (const Entry &E : It->second)
      if (sameQuery(E.Formulas, Formulas)) {
        ++Hits;
        return E.R;
      }
    // 64-bit key matched a different query: a genuine hash collision.
    ++Collisions;
    ++Misses;
    return std::nullopt;
  }

  void insert(const std::vector<const BoolExpr *> &Formulas, SatResult R) {
    uint64_t Key = keyOf(Formulas);
    std::vector<Entry> &Bucket = Cache[Key];
    for (const Entry &E : Bucket)
      if (sameQuery(E.Formulas, Formulas))
        return; // already present (racing insert in the parallel path)
    Bucket.push_back(Entry{Formulas, R});
  }

  uint64_t hitCount() const { return Hits; }
  uint64_t missCount() const { return Misses; }
  uint64_t collisionCount() const { return Collisions; }

private:
  struct Entry {
    std::vector<const BoolExpr *> Formulas;
    SatResult R;
  };

  static bool sameQuery(const std::vector<const BoolExpr *> &A,
                        const std::vector<const BoolExpr *> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I != A.size(); ++I)
      // Pointer equality for same-context (hash-consed) formulas; the
      // structural walk only runs for foreign-context nodes.
      if (A[I] != B[I] && !structurallyEqual(A[I], B[I]))
        return false;
    return true;
  }

  std::unordered_map<uint64_t, std::vector<Entry>> Cache;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Collisions = 0;
};

/// Wraps an underlying solver with a sat-result cache. Model-producing
/// queries always pass through (models are not cached).
class CachingSolver : public Solver {
public:
  explicit CachingSolver(Solver &Underlying) : Underlying(Underlying) {}

  const char *name() const override { return Underlying.name(); }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override {
    ++Queries;
    if (std::optional<SatResult> Cached = Cache.lookup(Formulas))
      return *Cached;
    Result<SatResult> R = Underlying.checkSat(Formulas);
    if (R.ok())
      Cache.insert(Formulas, *R);
    return R;
  }

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override {
    ++Queries;
    return Underlying.checkSatWithModel(Formulas, Vars, ModelOut);
  }

  uint64_t hitCount() const { return Cache.hitCount(); }
  uint64_t missCount() const { return Cache.missCount(); }
  uint64_t collisionCount() const { return Cache.collisionCount(); }

private:
  Solver &Underlying;
  SolverResultCache Cache;
};

} // namespace relax

#endif // RELAXC_SOLVER_CACHINGSOLVER_H
