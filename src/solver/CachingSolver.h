//===- CachingSolver.h - Result-caching solver wrapper -------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes checkSat results keyed by the structural hashes of the query's
/// formulas. The verifier re-discharges many identical side conditions
/// (convergence checks, repeated invariant obligations), so the cache cuts
/// solver load substantially (measured in bench/solver_ablation).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_CACHINGSOLVER_H
#define RELAXC_SOLVER_CACHINGSOLVER_H

#include "ast/Structural.h"
#include "solver/Solver.h"
#include "support/Hashing.h"

#include <unordered_map>

namespace relax {

/// Wraps an underlying solver with a sat-result cache. Model-producing
/// queries always pass through (models are not cached).
class CachingSolver : public Solver {
public:
  explicit CachingSolver(Solver &Underlying) : Underlying(Underlying) {}

  const char *name() const override { return Underlying.name(); }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override {
    ++Queries;
    uint64_t Key = 0xcafef00dULL;
    // Order-sensitive combine; queries are generated deterministically.
    for (const BoolExpr *F : Formulas)
      Key = hashCombine(Key, structuralHash(F));
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      ++Hits;
      return It->second;
    }
    Result<SatResult> R = Underlying.checkSat(Formulas);
    if (R.ok())
      Cache.emplace(Key, *R);
    return R;
  }

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override {
    ++Queries;
    return Underlying.checkSatWithModel(Formulas, Vars, ModelOut);
  }

  uint64_t hitCount() const { return Hits; }

private:
  Solver &Underlying;
  std::unordered_map<uint64_t, SatResult> Cache;
  uint64_t Hits = 0;
};

} // namespace relax

#endif // RELAXC_SOLVER_CACHINGSOLVER_H
