//===- BoundedSolver.h - Propagating small-domain backend ----------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pure-C++ decision procedure over small bounded domains. `Sat` answers
/// are definite (a concrete witness was found); `Unsat` answers mean "no
/// model in the bounded domain" and are therefore only approximate — they
/// are exact for formulas whose models, if any, must lie in the domain
/// (the case for the generated test workloads).
///
/// This backend exists (a) as the Z3 ablation baseline (experiment A1),
/// (b) as a differential-testing partner for the Z3 translation, and
/// (c) as a fallback when Z3 is unavailable.
///
/// The default engine is a backtracking search: the query is split into
/// conjuncts — through P ∧ Q, and through the negations ¬(P ∨ Q),
/// ¬(P → Q), ¬¬P, which conjoin under De Morgan; negation is tracked as
/// a flag so no AST node is built. Each conjunct is compiled once into a flat
/// `FormulaProgram`, variables are ordered so every conjunct is checked
/// the moment its last support variable is assigned, and a failing prefix
/// backtracks immediately — pruning whole subtrees of the assignment
/// space. With `Jobs > 1` the top variable's domain is chunked across a
/// worker pool; a replay of the per-chunk outcomes in domain order keeps
/// verdicts, witnesses, and budget behavior identical to the sequential
/// path. The pre-refactor generate-and-test odometer survives as
/// `Engine::Enumerate` for differential testing and candidate-count
/// ablation.
///
/// The search is conflict-driven: a failing conjunct records the assigned
/// support variables that fed the failing program as a *nogood*, unit
/// nogoods forbid values before any conjunct program runs (skipped values
/// are not counted as candidates), variable activity (VSIDS-style decay)
/// reorders undecided variables at Luby-scheduled restart points, and a
/// witness found under a restart-permuted order triggers a canonical
/// re-search so the reported model is always the one the non-learning
/// search returns. All learned state is local to one top-variable value,
/// which is what keeps the `Jobs` chunk replay bit-identical to the
/// sequential path. See the conflict-driven-search section of
/// `src/support/README.md` for the invariants.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_BOUNDEDSOLVER_H
#define RELAXC_SOLVER_BOUNDEDSOLVER_H

#include "solver/FormulaEval.h"
#include "solver/Solver.h"

namespace relax {

/// Configuration for the bounded search.
struct BoundedSolverOptions {
  int64_t IntLo = -6;
  int64_t IntHi = 6;
  int64_t MaxArrayLen = 3;
  int64_t ArrayElemLo = -2;
  int64_t ArrayElemHi = 2;
  /// Abort with Unknown after this many candidate assignments. The search
  /// engine counts every variable-value assignment it attempts (partial
  /// assignments included); the enumerate engine counts full models.
  uint64_t MaxCandidates = 4'000'000;
  /// Per-query budget on quantifier-body evaluations inside conjunct
  /// checks (see EvalBudget in FormulaEval.h); 0 = unlimited. Candidate
  /// counting does not bound quantifier enumeration — this does, which is
  /// what makes quantified corpora safely dischargeable at full domains.
  /// Tripping reports Unknown at a deterministic point (search engine
  /// only; the legacy enumerate engine ignores it).
  uint64_t MaxQuantSteps = 0;
  /// When false, domain exhaustion reports Unknown instead of Unsat.
  bool ExhaustionMeansUnsat = true;
  /// Search = compiled programs + prefix pruning (default);
  /// Enumerate = the legacy full-space odometer.
  enum class Engine : uint8_t { Search, Enumerate };
  Engine Eng = Engine::Search;
  /// Worker threads for the search engine; the top variable's domain is
  /// chunked across them. Verdicts and witnesses are independent of Jobs.
  unsigned Jobs = 1;
  /// Nogood learning: record the support of each failing conjunct as a
  /// forbidden partial assignment and propagate it so the forbidden value
  /// is skipped (uncounted) before any conjunct program runs. Learned
  /// state never crosses a top-variable value boundary, so verdicts,
  /// witnesses, and budget trips are identical to the non-learning search.
  bool Learning = true;
  /// Activity-ordered restarts on a Luby schedule of conflict counts
  /// (search engine, Learning only). A witness found under a permuted
  /// order is re-derived in canonical order, so the reported model is
  /// unchanged.
  bool Restarts = true;
  /// Cap on stored nogoods per top-variable value; 0 = unlimited. When
  /// full, new conflicts stop being stored (trail-scoped forbids still
  /// apply) and restarts compact the store to the most active half.
  uint32_t MaxNogoods = 10'000;
};

/// Counters for the conflict-driven search, cumulative across queries.
/// Sums are independent of `Jobs` for queries that exhaust their domain
/// or trip a budget; a Sat query counts whatever the chunks explored
/// (parallel chunks past the witness may have run, exactly as the
/// pre-learning candidate counter behaves).
struct BoundedSearchStats {
  uint64_t Conflicts = 0;        ///< conjunct checks that failed
  uint64_t LearnedNogoods = 0;   ///< nogoods recorded in the store
  uint64_t EvictedNogoods = 0;   ///< nogoods dropped by restart compaction
  uint64_t UnitPropagations = 0; ///< values skipped by a forbidding nogood
  uint64_t Backjumps = 0; ///< exhausted domains whose conflict cause
                          ///< excluded the parent variable (rest skipped)
  uint64_t Restarts = 0;         ///< restart epochs entered
  uint64_t MaxTrailDepth = 0;    ///< deepest assignment trail reached

  void merge(const BoundedSearchStats &O) {
    Conflicts += O.Conflicts;
    LearnedNogoods += O.LearnedNogoods;
    EvictedNogoods += O.EvictedNogoods;
    UnitPropagations += O.UnitPropagations;
    Backjumps += O.Backjumps;
    Restarts += O.Restarts;
    if (O.MaxTrailDepth > MaxTrailDepth)
      MaxTrailDepth = O.MaxTrailDepth;
  }
};

/// Bounded-domain solver (backtracking search or exhaustive enumeration).
class BoundedSolver : public Solver {
public:
  /// \p Ctx, when given, supplies the context-owned compiled-program memo
  /// so repeated queries over the same formulas skip recompilation. The
  /// solver must not outlive the context (programs cache node pointers).
  explicit BoundedSolver(BoundedSolverOptions Opts = BoundedSolverOptions(),
                         AstContext *Ctx = nullptr)
      : Opts(Opts), Ctx(Ctx) {}

  const char *name() const override { return "bounded"; }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override;

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override;

  /// Cumulative candidate assignments attempted across all queries — the
  /// ablation metric the search engine is built to shrink.
  uint64_t candidatesEvaluated() const { return Candidates; }

  /// Cumulative quantifier-body evaluations across all queries.
  uint64_t quantStepsEvaluated() const { return QuantSteps; }

  /// Cumulative conflict-driven-search counters (search engine only).
  const BoundedSearchStats &searchStats() const { return SearchStats; }

  /// Why the most recent query stopped. Budget reasons accompany an
  /// Unknown verdict and let a portfolio report *which* per-query budget
  /// (candidates vs quantifier steps) caused the give-up.
  enum class StopReason : uint8_t {
    Decided,         ///< Sat witness found or domain exhausted
    CandidateBudget, ///< MaxCandidates tripped
    StepBudget,      ///< MaxQuantSteps tripped
    Deadline,        ///< the installed deadline expired mid-search
  };
  StopReason lastStop() const { return LastStop; }

  bool lastQueryDeadlined() const override {
    return LastStop == StopReason::Deadline;
  }

  uint64_t lastQueryBoundedConflicts() const override {
    return LastQueryConflicts;
  }

private:
  BoundedSolverOptions Opts;
  AstContext *Ctx;
  uint64_t Candidates = 0;
  uint64_t QuantSteps = 0;
  BoundedSearchStats SearchStats;
  uint64_t LastQueryConflicts = 0;
  StopReason LastStop = StopReason::Decided;

  SatResult search(const std::vector<const BoolExpr *> &Formulas,
                   const VarRefSet &Vars, Model *ModelOut);
  SatResult enumerate(const std::vector<const BoolExpr *> &Formulas,
                      const VarRefSet &Vars, Model *ModelOut);
};

} // namespace relax

#endif // RELAXC_SOLVER_BOUNDEDSOLVER_H
