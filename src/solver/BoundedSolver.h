//===- BoundedSolver.h - Exhaustive small-domain backend -----------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pure-C++ decision procedure that enumerates models over small bounded
/// domains. `Sat` answers are definite (a concrete witness was found);
/// `Unsat` answers mean "no model in the bounded domain" and are therefore
/// only approximate — they are exact for formulas whose models, if any,
/// must lie in the domain (the case for the generated test workloads).
///
/// This backend exists (a) as the Z3 ablation baseline (experiment A1),
/// (b) as a differential-testing partner for the Z3 translation, and
/// (c) as a fallback when Z3 is unavailable.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_BOUNDEDSOLVER_H
#define RELAXC_SOLVER_BOUNDEDSOLVER_H

#include "solver/FormulaEval.h"
#include "solver/Solver.h"

namespace relax {

/// Configuration for the bounded search.
struct BoundedSolverOptions {
  int64_t IntLo = -6;
  int64_t IntHi = 6;
  int64_t MaxArrayLen = 3;
  int64_t ArrayElemLo = -2;
  int64_t ArrayElemHi = 2;
  /// Abort with Unknown after this many candidate models.
  uint64_t MaxCandidates = 4'000'000;
  /// When false, domain exhaustion reports Unknown instead of Unsat.
  bool ExhaustionMeansUnsat = true;
};

/// Exhaustive-enumeration solver.
class BoundedSolver : public Solver {
public:
  explicit BoundedSolver(BoundedSolverOptions Opts = BoundedSolverOptions())
      : Opts(Opts) {}

  const char *name() const override { return "bounded"; }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override;

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override;

private:
  BoundedSolverOptions Opts;

  SatResult search(const std::vector<const BoolExpr *> &Formulas,
                   const VarRefSet &Vars, Model *ModelOut);
};

} // namespace relax

#endif // RELAXC_SOLVER_BOUNDEDSOLVER_H
