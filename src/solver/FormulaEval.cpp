//===- FormulaEval.cpp - Total formula evaluation -----------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/FormulaEval.h"

#include "support/Casting.h"

#include <cassert>

using namespace relax;

uint64_t ArrayDomain::size() const {
  uint64_t Total = 1; // the empty array
  if (ElemHi >= ElemLo) {
    uint64_t Span = static_cast<uint64_t>(ElemHi - ElemLo) + 1;
    uint64_t Combos = 1;
    for (int64_t Len = 1; Len <= MaxLen; ++Len) {
      Combos *= Span;
      Total += Combos;
    }
  }
  return Total;
}

ArrayModelValue ArrayDomain::valueAt(uint64_t Index) const {
  uint64_t Span =
      ElemHi >= ElemLo ? static_cast<uint64_t>(ElemHi - ElemLo) + 1 : 0;
  uint64_t Combos = 1; // values of the current length
  for (int64_t Len = 0; Len <= MaxLen; ++Len) {
    if (Len > 0)
      Combos *= Span;
    if (Index < Combos) {
      ArrayModelValue A;
      A.Length = Len;
      for (int64_t K = 0; K < Len; ++K) {
        A.Elems.push_back(ElemLo + static_cast<int64_t>(Index % Span));
        Index /= Span;
      }
      return A;
    }
    Index -= Combos;
  }
  assert(false && "array domain index out of range");
  return ArrayModelValue();
}

bool ArrayDomain::advance(ArrayModelValue &A) const {
  // Advance elements as digits; then grow the length.
  for (int64_t &E : A.Elems) {
    if (E < ElemHi) {
      ++E;
      return true;
    }
    E = ElemLo;
  }
  if (A.Length < MaxLen && ElemHi >= ElemLo) {
    ++A.Length;
    A.Elems.assign(static_cast<size_t>(A.Length), ElemLo);
    return true;
  }
  return false;
}

int64_t relax::evalExpr(const Expr *E, const Model &M) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E)->value();
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = M.Ints.find(VarRef{V->name(), V->tag(), VarKind::Int});
    return It == M.Ints.end() ? 0 : It->second;
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    ArrayModelValue A = evalArrayExpr(R->base(), M);
    int64_t I = evalExpr(R->index(), M);
    if (I < 0 || I >= static_cast<int64_t>(A.Elems.size()))
      return 0; // logic semantics: total, default 0 out of range
    return A.Elems[static_cast<size_t>(I)];
  }
  case Expr::Kind::ArrayLen:
    return evalArrayExpr(cast<ArrayLenExpr>(E)->base(), M).Length;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int64_t L = evalExpr(B->lhs(), M);
    int64_t R = evalExpr(B->rhs(), M);
    switch (B->op()) {
    case BinaryOp::Add:
      return wrapAdd(L, R);
    case BinaryOp::Sub:
      return wrapSub(L, R);
    case BinaryOp::Mul:
      return wrapMul(L, R);
    case BinaryOp::Div:
      return euclideanDiv(L, R);
    case BinaryOp::Mod:
      return euclideanMod(L, R);
    }
    return 0;
  }
  }
  return 0;
}

ArrayModelValue relax::evalArrayExpr(const ArrayExpr *A, const Model &M) {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    auto It = M.Arrays.find(VarRef{R->name(), R->tag(), VarKind::Array});
    return It == M.Arrays.end() ? ArrayModelValue() : It->second;
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    ArrayModelValue Base = evalArrayExpr(S->base(), M);
    int64_t I = evalExpr(S->index(), M);
    int64_t V = evalExpr(S->value(), M);
    if (I >= 0 && I < static_cast<int64_t>(Base.Elems.size()))
      Base.Elems[static_cast<size_t>(I)] = V;
    // Out-of-range stores change only unobservable content; drop them.
    return Base;
  }
  }
  return ArrayModelValue();
}

namespace {

/// Enumerates assignments for one quantified variable.
bool existsWitness(const ExistsExpr *E, const Model &M,
                   const FormulaEvalOptions &Opts) {
  VarRef Bound{E->var(), E->tag(), E->varKind()};
  if (E->varKind() == VarKind::Int) {
    for (int64_t V = Opts.IntLo; V <= Opts.IntHi; ++V) {
      Model Ext = M;
      Ext.Ints[Bound] = V;
      if (evalFormula(E->body(), Ext, Opts))
        return true;
    }
    return false;
  }
  // Arrays: walk the shared bounded array domain.
  ArrayDomain D(Opts);
  ArrayModelValue A;
  do {
    Model Ext = M;
    Ext.Arrays[Bound] = A;
    if (evalFormula(E->body(), Ext, Opts))
      return true;
  } while (D.advance(A));
  return false;
}

} // namespace

bool relax::evalFormula(const BoolExpr *B, const Model &M,
                        const FormulaEvalOptions &Opts) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return cast<BoolLitExpr>(B)->value();
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    return evalCmpOp(C->op(), evalExpr(C->lhs(), M), evalExpr(C->rhs(), M));
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    bool Equal = evalArrayExpr(C->lhs(), M) == evalArrayExpr(C->rhs(), M);
    return C->isEquality() ? Equal : !Equal;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    bool A = evalFormula(L->lhs(), M, Opts);
    bool R = evalFormula(L->rhs(), M, Opts);
    switch (L->op()) {
    case LogicalOp::And:
      return A && R;
    case LogicalOp::Or:
      return A || R;
    case LogicalOp::Implies:
      return !A || R;
    case LogicalOp::Iff:
      return A == R;
    }
    return false;
  }
  case BoolExpr::Kind::Not:
    return !evalFormula(cast<NotExpr>(B)->sub(), M, Opts);
  case BoolExpr::Kind::Exists:
    return existsWitness(cast<ExistsExpr>(B), M, Opts);
  }
  return false;
}
