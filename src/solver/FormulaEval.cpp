//===- FormulaEval.cpp - Total formula evaluation -----------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/FormulaEval.h"

#include "support/Casting.h"

using namespace relax;

int64_t relax::evalExpr(const Expr *E, const Model &M) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E)->value();
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = M.Ints.find(VarRef{V->name(), V->tag(), VarKind::Int});
    return It == M.Ints.end() ? 0 : It->second;
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    ArrayModelValue A = evalArrayExpr(R->base(), M);
    int64_t I = evalExpr(R->index(), M);
    if (I < 0 || I >= static_cast<int64_t>(A.Elems.size()))
      return 0; // logic semantics: total, default 0 out of range
    return A.Elems[static_cast<size_t>(I)];
  }
  case Expr::Kind::ArrayLen:
    return evalArrayExpr(cast<ArrayLenExpr>(E)->base(), M).Length;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int64_t L = evalExpr(B->lhs(), M);
    int64_t R = evalExpr(B->rhs(), M);
    switch (B->op()) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      return euclideanDiv(L, R);
    case BinaryOp::Mod:
      return euclideanMod(L, R);
    }
    return 0;
  }
  }
  return 0;
}

ArrayModelValue relax::evalArrayExpr(const ArrayExpr *A, const Model &M) {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    auto It = M.Arrays.find(VarRef{R->name(), R->tag(), VarKind::Array});
    return It == M.Arrays.end() ? ArrayModelValue() : It->second;
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    ArrayModelValue Base = evalArrayExpr(S->base(), M);
    int64_t I = evalExpr(S->index(), M);
    int64_t V = evalExpr(S->value(), M);
    if (I >= 0 && I < static_cast<int64_t>(Base.Elems.size()))
      Base.Elems[static_cast<size_t>(I)] = V;
    // Out-of-range stores change only unobservable content; drop them.
    return Base;
  }
  }
  return ArrayModelValue();
}

namespace {

/// Enumerates assignments for one quantified variable.
bool existsWitness(const ExistsExpr *E, const Model &M,
                   const FormulaEvalOptions &Opts) {
  VarRef Bound{E->var(), E->tag(), E->varKind()};
  if (E->varKind() == VarKind::Int) {
    for (int64_t V = Opts.IntLo; V <= Opts.IntHi; ++V) {
      Model Ext = M;
      Ext.Ints[Bound] = V;
      if (evalFormula(E->body(), Ext, Opts))
        return true;
    }
    return false;
  }
  // Arrays: enumerate lengths, then element tuples in a small domain.
  int64_t Span = Opts.ArrayElemHi - Opts.ArrayElemLo + 1;
  for (int64_t Len = 0; Len <= Opts.MaxArrayLen; ++Len) {
    uint64_t Combos = 1;
    for (int64_t I = 0; I < Len; ++I)
      Combos *= static_cast<uint64_t>(Span);
    for (uint64_t C = 0; C != Combos; ++C) {
      ArrayModelValue A;
      A.Length = Len;
      uint64_t Rest = C;
      for (int64_t I = 0; I < Len; ++I) {
        A.Elems.push_back(Opts.ArrayElemLo +
                          static_cast<int64_t>(Rest % Span));
        Rest /= static_cast<uint64_t>(Span);
      }
      Model Ext = M;
      Ext.Arrays[Bound] = A;
      if (evalFormula(E->body(), Ext, Opts))
        return true;
    }
  }
  return false;
}

} // namespace

bool relax::evalFormula(const BoolExpr *B, const Model &M,
                        const FormulaEvalOptions &Opts) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return cast<BoolLitExpr>(B)->value();
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    return evalCmpOp(C->op(), evalExpr(C->lhs(), M), evalExpr(C->rhs(), M));
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    bool Equal = evalArrayExpr(C->lhs(), M) == evalArrayExpr(C->rhs(), M);
    return C->isEquality() ? Equal : !Equal;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    bool A = evalFormula(L->lhs(), M, Opts);
    bool R = evalFormula(L->rhs(), M, Opts);
    switch (L->op()) {
    case LogicalOp::And:
      return A && R;
    case LogicalOp::Or:
      return A || R;
    case LogicalOp::Implies:
      return !A || R;
    case LogicalOp::Iff:
      return A == R;
    }
    return false;
  }
  case BoolExpr::Kind::Not:
    return !evalFormula(cast<NotExpr>(B)->sub(), M, Opts);
  case BoolExpr::Kind::Exists:
    return existsWitness(cast<ExistsExpr>(B), M, Opts);
  }
  return false;
}
