//===- RemotePool.h - Socket-backed discharge shard tier -----------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ShardPool-shaped client whose workers are *remote*: each slot is a
/// socket connection to a discharge worker started elsewhere with
/// `relaxc --discharge-worker --listen=<addr>` (or any process speaking
/// the shard wire over the frame protocol). Reached from the driver as
/// `--remote-workers=host:port,unix:/path,...`.
///
/// The health machine is byte-identical to the in-process pool's — same
/// retry-once soundness, circuit breaker, quarantine probes, and sticky
/// degraded() fallback to the in-process tail — because it *is* the same
/// code (solver/ShardPool.h, WorkerPoolBase). Only the revive verb
/// differs: instead of respawning a subprocess, a slot reconnects to its
/// endpoint.
///
/// One observable asymmetry is pinned by tests: a pipe worker's death is
/// visible eagerly (waitpid at borrow → revive *before* the first write,
/// costing a respawn but no failure), while a socket peer's death is
/// lazy — the kernel happily buffers the request write and only the
/// response read sees EOF. The round trip therefore costs one failure
/// plus the sound retry, which reconnects and succeeds. Same stats
/// fields, same verdicts; never a parse error.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_REMOTEPOOL_H
#define RELAXC_SOLVER_REMOTEPOOL_H

#include "solver/ShardPool.h"

namespace relax {

struct RemotePoolOptions : PoolHealthOptions {
  /// One slot per endpoint; duplicates are allowed (N connections to one
  /// daemon give N concurrent in-flight requests).
  std::vector<std::string> Endpoints;
  int ConnectTimeoutMs = 10'000;
};

class RemotePool final : public WorkerPoolBase {
public:
  /// Fails only on misconfiguration (no endpoints / bad grammar); an
  /// unreachable endpoint is tolerated at create and retried through the
  /// revive path, exactly like a failed initial spawn in ShardPool.
  static Result<std::unique_ptr<RemotePool>> create(RemotePoolOptions Opts);
  ~RemotePool() override;

private:
  explicit RemotePool(RemotePoolOptions O)
      : WorkerPoolBase(O), Opts(std::move(O)) {}

  RemotePoolOptions Opts;
  std::vector<std::unique_ptr<Transport>> Chans; ///< parallel to base slots

  bool workerAlive(unsigned I) override { return Chans[I] != nullptr; }
  Status reviveWorker(unsigned I) override;
  void killWorker(unsigned I) override { Chans[I].reset(); }
  Transport *channel(unsigned I) override { return Chans[I].get(); }
};

} // namespace relax

#endif // RELAXC_SOLVER_REMOTEPOOL_H
