//===- FormulaProgram.h - Compiled formula evaluation programs -----*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a hash-consed `BoolExpr` once into a flat post-order evaluation
/// program, so the bounded backend evaluates candidates without re-walking
/// the tree. Pointer identity of hash-consed subterms drives common
/// subexpression elimination: a subformula shared N times in the tree
/// compiles to one instruction and evaluates once per candidate.
///
/// Programs read their variables from caller-supplied input arrays (one
/// slot per free variable, split by kind), write into three register banks
/// (ints, bools, array values), and are immutable after compilation — one
/// compiled program may be executed concurrently from many threads, each
/// thread owning its own `Executor` (the mutable register state).
///
/// Existential quantifiers compile to nested subprograms over the body;
/// the `Exists` instruction enumerates the bound variable's domain and runs
/// the subprogram, feeding non-bound inputs through from the parent's
/// inputs. Evaluation semantics match `evalFormula` exactly (total
/// functions, Euclidean division, out-of-range reads yield 0).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_FORMULAPROGRAM_H
#define RELAXC_SOLVER_FORMULAPROGRAM_H

#include "ast/AstContext.h"
#include "solver/FormulaEval.h"

#include <memory>
#include <vector>

namespace relax {

/// A flat, post-order evaluation program for one formula.
class FormulaProgram {
public:
  /// One evaluation step. Registers are bank-local indices; which bank
  /// `Dst`/`A`/`B`/`C` address is determined by the opcode.
  struct Inst {
    enum class Op : uint8_t {
      IntConst,   ///< Ints[Dst] = Imm
      IntInput,   ///< Ints[Dst] = IntIn[A]
      ArrayInput, ///< Arrs[Dst] = ArrIn[A]
      ArrayStore, ///< Arrs[Dst] = store(Arrs[A], Ints[B], Ints[C])
      ArrayRead,  ///< Ints[Dst] = Arrs[A][Ints[B]] (0 out of range)
      ArrayLen,   ///< Ints[Dst] = Arrs[A].Length
      IntBinary,  ///< Ints[Dst] = Ints[A] <Sub: BinaryOp> Ints[B]
      BoolConst,  ///< Bools[Dst] = Imm != 0
      Cmp,        ///< Bools[Dst] = evalCmpOp(Sub, Ints[A], Ints[B])
      ArrayCmp,   ///< Bools[Dst] = (Arrs[A] == Arrs[B]) == (Sub != 0)
      Logical,    ///< Bools[Dst] = <Sub: LogicalOp>(Bools[A], Bools[B])
      Not,        ///< Bools[Dst] = !Bools[A]
      Exists,     ///< Bools[Dst] = enumerate SubPrograms[A] (see below)
    };
    Op K;
    uint8_t Sub = 0;
    uint32_t Dst = 0;
    uint32_t A = 0;
    uint32_t B = 0;
    uint32_t C = 0;
    int64_t Imm = 0;
  };

  /// Where one subprogram input reads its value during an Exists
  /// enumeration: the enumerated bound variable itself, or a slot of the
  /// parent program's input array of the same kind.
  struct SubInput {
    bool FromBound = false;
    uint32_t ParentSlot = 0;
  };

  /// A compiled quantifier body plus the input wiring for enumerating it.
  struct SubProgram {
    std::shared_ptr<const FormulaProgram> Body;
    VarRef Bound;
    std::vector<SubInput> IntSources; ///< parallel to Body->intInputs()
    std::vector<SubInput> ArrSources; ///< parallel to Body->arrayInputs()
  };

  /// Compiles \p Root. When \p Cache is non-null, the root and every
  /// quantifier body are looked up / recorded there, keyed by node
  /// identity (sound for hash-consed nodes; see AstContext).
  static std::shared_ptr<const FormulaProgram>
  compile(const BoolExpr *Root, FormulaProgramCache *Cache = nullptr);

  /// The free scalar / array variables the program reads, in first-use
  /// order. Callers supply one value per entry to Executor::run.
  const std::vector<VarRef> &intInputs() const { return IntIns; }
  const std::vector<VarRef> &arrayInputs() const { return ArrIns; }

  /// Number of distinct variables the program reads — the bounded
  /// planner's support-size ordering key.
  size_t supportSize() const { return IntIns.size() + ArrIns.size(); }

  /// Appends every variable the program reads (ints, then arrays) to
  /// \p Out. Input slots are allocated on first reference during
  /// compilation, so this is the exact evaluated slice — a variable whose
  /// occurrences all folded away claims no slot — which is what makes the
  /// set a sound conflict support: when the program returns false, only
  /// these variables fed the failure.
  void supportVars(std::vector<VarRef> &Out) const;

  const std::vector<Inst> &instructions() const { return Code; }
  const std::vector<SubProgram> &subPrograms() const { return Subs; }

  /// Mutable evaluation state for one program: the register banks and the
  /// (lazily built) executors of quantifier subprograms. One Executor per
  /// thread; the program itself is shared and immutable.
  class Executor {
  public:
    explicit Executor(const FormulaProgram &P);

    /// Evaluates the program. \p IntIn holds one value and \p ArrIn one
    /// pointer per intInputs() / arrayInputs() entry (pointers, so hot
    /// callers bind array variables without copying a value per check);
    /// \p Opts bounds quantifier enumeration (matching evalFormula).
    /// \p Budget, when non-null, is charged one step per quantifier-body
    /// evaluation; once it trips the run aborts and the returned boolean
    /// is meaningless — check `Budget->Tripped` after every run.
    bool run(const int64_t *IntIn, const ArrayModelValue *const *ArrIn,
             const FormulaEvalOptions &Opts, EvalBudget *Budget = nullptr);

  private:
    const FormulaProgram &P;
    std::vector<int64_t> Ints;
    std::vector<uint8_t> Bools;
    std::vector<ArrayModelValue> Arrs;
    /// Per-subprogram executor and input scratch, built on first use.
    struct SubState {
      std::unique_ptr<Executor> Exec;
      std::vector<int64_t> IntIn;
      std::vector<const ArrayModelValue *> ArrIn;
      ArrayModelValue BoundArr; ///< storage for an enumerated array
    };
    std::vector<SubState> SubStates;

    bool runExists(const Inst &I, const int64_t *IntIn,
                   const ArrayModelValue *const *ArrIn,
                   const FormulaEvalOptions &Opts, EvalBudget *Budget);
  };

  /// Convenience: compiles (uncached) and evaluates under a Model.
  /// Equivalent to evalFormula; used by the property tests.
  static bool evaluateOnce(const BoolExpr *Root, const Model &M,
                           const FormulaEvalOptions &Opts);

private:
  friend class FormulaProgramCompiler;
  FormulaProgram() = default;

  std::vector<Inst> Code;
  std::vector<SubProgram> Subs;
  std::vector<VarRef> IntIns;
  std::vector<VarRef> ArrIns;
  uint32_t NumIntRegs = 0;
  uint32_t NumBoolRegs = 0;
  uint32_t NumArrRegs = 0;
  /// Register holding the final result (always a bool register).
  uint32_t ResultReg = 0;
};

} // namespace relax

#endif // RELAXC_SOLVER_FORMULAPROGRAM_H
