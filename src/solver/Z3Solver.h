//===- Z3Solver.h - Z3 backend --------------------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates assertion-logic formulas to Z3 over linear integer arithmetic
/// plus the theory of arrays and decides them with the native Z3 API.
///
/// Encoding:
///  * scalar `x` / `x<o>` / `x<r>`  ->  Int constants `x`, `x!o`, `x!r`;
///  * array `a` (per tag)           ->  Array(Int,Int) constant `a!arr`
///                                      plus an Int length `a!len` with an
///                                      implicit `a!len >= 0` axiom;
///  * `store(a, i, v)`              ->  Z3 store; lengths pass through;
///  * `a == b`                      ->  array equality /\ length equality;
///  * `exists` over arrays binds both the content and the length.
///
/// Any z3::exception is caught at this boundary and converted to a Status.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_Z3SOLVER_H
#define RELAXC_SOLVER_Z3SOLVER_H

#include "solver/Solver.h"

#include <memory>

/// Set by the build system; defaults to "available" for builds that do not
/// go through CMake. When 0, Z3Solver compiles to a stub whose every query
/// reports a backend error.
#ifndef RELAXC_HAVE_Z3
#define RELAXC_HAVE_Z3 1
#endif

namespace relax {

/// Options for the Z3 backend.
struct Z3SolverOptions {
  unsigned TimeoutMs = 30000;
  /// Cap on extracted array lengths (models with larger lengths are
  /// truncated; the oracle never requests arrays this large).
  int64_t MaxExtractedArrayLen = 4096;
};

/// Decision procedure backed by the native Z3 API.
///
/// Holds a reference to the interner that produced the formulas' symbols
/// (variable names are mangled into Z3 constant names).
///
/// One z3::context lives for the solver's lifetime, with translation memos
/// keyed by hash-consed node identity; consequently an instance must only
/// be fed formulas from one live AstContext, and is not safe for
/// concurrent use — the parallel verifier builds one instance per worker.
class Z3Solver : public Solver {
public:
  explicit Z3Solver(const Interner &Syms,
                    Z3SolverOptions Opts = Z3SolverOptions());
  ~Z3Solver() override;

  const char *name() const override { return "z3"; }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override;

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override;

  /// Renders the conjunction of \p Formulas (plus the implicit
  /// length-nonnegativity axioms) as an SMT-LIB 2 script, for debugging
  /// generated VCs or handing them to another solver.
  Result<std::string>
  toSmtLib(const std::vector<const BoolExpr *> &Formulas);

  bool lastQueryDeadlined() const override { return LastDeadlined; }

private:
  struct Impl; // hides z3++.h from users of this header
  std::unique_ptr<Impl> P;
  /// The most recent query gave up on the installed deadline (expired on
  /// entry, or z3 answered unknown after its capped per-query timeout).
  bool LastDeadlined = false;
};

} // namespace relax

#endif // RELAXC_SOLVER_Z3SOLVER_H
