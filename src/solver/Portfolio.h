//===- Portfolio.h - Tiered solver portfolio -----------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A composable chain of decision-procedure tiers, cheapest first. Each
/// tier either settles a query (Sat / Unsat, or Unknown from the final
/// tier) or gives up with a reason, escalating to the next tier:
///
///   * `simplify` — the persistent simplifier; settles exactly the
///     queries it folds to ⊤ (Sat) or ⊥ (Unsat). The simplifier is
///     equivalence-preserving, so a constant verdict is exact. Builds
///     nodes through the AstContext and therefore must run on the thread
///     that owns the context (see firstWorkerTier()).
///   * `bounded` — the backtracking bounded search under per-query
///     candidate and quantifier-step budgets. Sat answers carry a real
///     witness and are exact; as a non-final tier, exhaustion and budget
///     trips both escalate (bounded Unsat is only "no model in the
///     domain"). As the final tier it keeps the classic authoritative
///     exhaustion-means-Unsat convention.
///   * `z3` — the SMT backend. When Z3 is not built (or no backend
///     factory is supplied) the tier degrades to `bounded-full`: the
///     bounded search at the same domains with a relaxed (16x) step
///     budget and authoritative exhaustion.
///   * `shard` — the out-of-process tier: escalated queries are
///     serialized over the wire to a pool of `--discharge-worker`
///     subprocesses (solver/ShardPool.h), each owning its own AstContext
///     and solver backends. The workers run the tail tier chain named by
///     `PortfolioOptions::ShardWorkerPipeline` under the same bounded
///     configuration, so a sharded verdict equals the in-process verdict
///     the replaced tier would have produced. Without a pool the tier
///     degrades to that in-process tail (so `--shards=0` and a pool-less
///     test config mean "same pipeline, no processes").
///
/// Tier ordering invariants (checked at construction): the chain is
/// non-empty, `simplify` may only appear first, no tier kind repeats,
/// and `shard` may only appear last (it owns the final verdict; any
/// tier after it could never run).
///
/// A PortfolioSolver is a `Solver`, so everything programmed against the
/// decision-procedure interface — the verifier's discharge path, the
/// proof checker's re-discharge and model sampling, the solver oracles —
/// runs the same tier chain and can never disagree on backend semantics.
/// Like the concrete backends it is not safe for concurrent use: the
/// parallel discharger builds one portfolio per worker.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_PORTFOLIO_H
#define RELAXC_SOLVER_PORTFOLIO_H

#include "logic/Simplify.h"
#include "solver/BoundedSolver.h"

#include <functional>
#include <memory>

namespace relax {

class DischargePool;

/// One tier of the portfolio.
enum class TierKind : uint8_t { Simplify, Bounded, Smt, Shard };

/// Returns "simplify" / "bounded" / "z3" / "shard".
const char *tierKindName(TierKind K);

/// Parses a `--pipeline=` spec such as "simplify,bounded,z3" and checks
/// the tier-ordering invariants.
Result<std::vector<TierKind>> parsePipelineSpec(std::string_view Spec);

/// Renders a tier chain as "simplify,bounded,z3".
std::string formatPipeline(const std::vector<TierKind> &Tiers);

/// Configuration of a portfolio.
struct PortfolioOptions {
  std::vector<TierKind> Tiers = {TierKind::Simplify, TierKind::Bounded,
                                 TierKind::Smt};
  /// Domains and per-query budgets of the `bounded` tier. Defaults add a
  /// quantifier-step budget (unlike a standalone BoundedSolver) so
  /// quantified queries escalate instead of enumerating unbounded, and
  /// shrink the candidate budget so a hopeless search escalates quickly —
  /// as a non-final tier its job is to settle the easy obligations fast,
  /// not to exhaust huge assignment spaces.
  BoundedSolverOptions Bounded = []() {
    BoundedSolverOptions B;
    B.MaxCandidates = 100'000;
    B.MaxQuantSteps = 200'000;
    return B;
  }();
  /// Budget multipliers for the `bounded-full` final-tier fallback
  /// (applied to the corresponding `Bounded` budgets).
  uint64_t FinalBoundedStepFactor = 16;
  /// Worker-process pool backing the `shard` tier. Not owned; many
  /// portfolios (one per scheduler worker) share one pool. Null degrades
  /// the shard tier to the in-process ShardWorkerPipeline tail.
  DischargePool *Pool = nullptr;
  /// The tail tier chain shard workers run ("z3" or "bounded"),
  /// configured per request so every worker — and the pool-less
  /// degradation — answers from identical solver settings.
  std::string ShardWorkerPipeline = "z3";
};

/// One-line fingerprint of a bounded configuration's verdict-relevant
/// knobs (domains, budgets, engine, exhaustion authority). `Jobs` is
/// excluded: the parallel search partitions work but — by the replay
/// aggregator's construction — never changes a verdict or witness.
std::string boundedOptionsFingerprint(const BoundedSolverOptions &Opts);

/// One-line fingerprint of every knob that can change a portfolio
/// verdict, for the persistent verdict cache's on-disk keys: the
/// effective tier chain (a trailing `shard` tier is replaced by its
/// ShardWorkerPipeline tail, because sharded and in-process verdicts are
/// identical by construction), the bounded configuration, the final-tier
/// budget factor, and whether an SMT backend actually backs the `z3`
/// tier (\p HaveSmtBackend — the bounded-full degradation is a different
/// decision procedure, so its verdicts must not be served to a real-Z3
/// run or vice versa).
std::string portfolioConfigFingerprint(const PortfolioOptions &Opts,
                                       bool HaveSmtBackend);

/// Per-run portfolio statistics, mergeable across workers.
struct PortfolioStats {
  struct TierStat {
    uint64_t Settled = 0;     ///< queries this tier answered definitively
    uint64_t GaveUp = 0;      ///< queries it escalated (or ended Unknown)
    uint64_t BudgetTrips = 0; ///< give-ups caused by a per-query budget
  };
  std::vector<TierStat> Tiers; ///< parallel to the pipeline
  uint64_t Queries = 0;
  uint64_t Escalations = 0; ///< tier hand-offs (non-final give-ups)

  void merge(const PortfolioStats &O);
};

/// The tiered portfolio backend.
class PortfolioSolver : public Solver {
public:
  using BackendFactory = std::function<std::unique_ptr<Solver>()>;

  /// \p SmtFactory supplies the `z3` tier's backend; pass nullptr to
  /// degrade that tier to bounded-at-full-domain. The portfolio must not
  /// outlive \p Ctx (the bounded tiers cache compiled programs there).
  PortfolioSolver(AstContext &Ctx, PortfolioOptions Opts,
                  BackendFactory SmtFactory = nullptr);

  const char *name() const override { return "portfolio"; }

  Result<SatResult>
  checkSat(const std::vector<const BoolExpr *> &Formulas) override;

  Result<SatResult>
  checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                    const VarRefSet &Vars, Model &ModelOut) override;

  /// Runs only tiers [\p From, \p To) — the scheduler's staging interface.
  /// Returns the first settling tier's verdict, or Unknown when every
  /// tier in the range gave up (query unsettled if To < tierCount()).
  /// \p Vars/\p ModelOut as in checkSatWithModel; pass nullptr to skip
  /// model extraction.
  Result<SatResult> checkRange(size_t From, size_t To,
                               const std::vector<const BoolExpr *> &Formulas,
                               const VarRefSet *Vars, Model *ModelOut);

  /// True when the last checkSat/checkRange call settled its query.
  bool lastSettled() const { return LastSettled; }

  /// Index of the tier that settled the last query, or -1 when nothing
  /// settled (range exhausted, cache-served, or no query yet). Lets a
  /// counterexample re-query start at the settling tier instead of
  /// re-paying every earlier tier's give-up budget.
  int lastSettledTier() const { return LastSettledTier; }

  size_t tierCount() const { return Opts.Tiers.size(); }
  TierKind tier(size_t I) const { return Opts.Tiers[I]; }

  /// Index of the first tier that may run on a discharge worker thread.
  /// Tiers before it (the simplify prefix) build nodes through the
  /// AstContext and must run on the thread that owns it.
  size_t firstWorkerTier() const;

  /// Index of the first escalation-stage tier: the parallel scheduler
  /// runs tiers [firstWorkerTier, firstEscalationTier) inline on the
  /// submitting worker and queues the rest.
  size_t firstEscalationTier() const;

  /// Display name of the tier that settled the last query ("simplify",
  /// "bounded", "z3", "bounded-full"), or the portfolio name when
  /// nothing settled.
  const char *settledBy() const override { return LastSettledBy; }

  /// Human-readable give-up trail of the last query, e.g.
  /// "simplify: not a constant; bounded: quantifier-step budget
  /// (200000) tripped".
  std::string giveUpTrail() const override { return LastTrail; }

  const PortfolioStats &stats() const { return Stats; }

  /// Suspends statistics collection while alive. Used for the
  /// counterexample-model re-query a failed validity obligation
  /// triggers: it re-runs the tier chain, and counting it again would
  /// inflate the per-tier settled counts and the query total.
  class ScopedStatsPause {
  public:
    explicit ScopedStatsPause(PortfolioSolver &P) : P(P) {
      P.StatsPaused = true;
    }
    ~ScopedStatsPause() { P.StatsPaused = false; }
    ScopedStatsPause(const ScopedStatsPause &) = delete;
    ScopedStatsPause &operator=(const ScopedStatsPause &) = delete;

  private:
    PortfolioSolver &P;
  };

  /// Cumulative bounded-tier work counters (all bounded tiers summed).
  uint64_t boundedCandidates() const;
  uint64_t boundedQuantSteps() const;

  /// Cumulative conflict-driven-search counters, summed across every
  /// bounded tier (including a shard tier's in-process fallback).
  BoundedSearchStats boundedSearchStats() const;

  /// True when the last query settled as a deadline gave-up (settledBy()
  /// reports "deadline"); such verdicts are never cached.
  bool lastQueryDeadlined() const override { return LastDeadlined; }

  /// Bounded-search conflicts attributable to the last checkSat /
  /// checkRange call (snapshot delta over boundedSearchStats().Conflicts;
  /// shard-settled queries report 0 — their conflicts happened out of
  /// process).
  uint64_t lastQueryBoundedConflicts() const override {
    return LastConflicts;
  }

private:
  AstContext &Ctx;
  PortfolioOptions Opts;
  Simplifier Simp;
  /// Backend per tier; null for the simplify tier.
  std::vector<std::unique_ptr<Solver>> Backends;
  /// Non-null where the tier's backend is a BoundedSolver (for counters
  /// and stop reasons).
  std::vector<BoundedSolver *> BoundedTier;
  /// Display name per tier ("z3" vs "bounded-full" depends on what the
  /// Smt tier degraded to).
  std::vector<const char *> TierNames;
  PortfolioStats Stats;
  bool StatsPaused = false;

  /// In-process fallback tail for a pool-backed shard tier: the solver
  /// the workers themselves run (same ShardWorkerPipeline, same bounded
  /// configuration), built alongside the ShardSolver. When the pool is
  /// degraded — or one round trip fails past its sound retry — the shard
  /// tier answers from this tail instead of erroring out. Because worker
  /// verdicts are pure functions of the request and the tail is the very
  /// solver the request configures, the fallback verdict is identical to
  /// what a healthy worker would have said: degradation is invisible in
  /// the report (only SettledBy, which is excluded from pins, changes).
  std::unique_ptr<Solver> ShardFallback;
  BoundedSolver *ShardFallbackBounded = nullptr;
  const char *ShardFallbackName = nullptr;
  std::string ShardFallbackSettledBy;

  bool LastSettled = false;
  int LastSettledTier = -1;
  const char *LastSettledBy = "portfolio";
  std::string LastTrail;
  bool LastDeadlined = false;
  uint64_t LastConflicts = 0;

  Result<SatResult> runSimplifyTier(size_t I,
                                    const std::vector<const BoolExpr *> &F,
                                    Model *ModelOut, bool &Settled);
  Result<SatResult> checkRangeImpl(size_t From, size_t To,
                                   const std::vector<const BoolExpr *> &F,
                                   const VarRefSet *Vars, Model *ModelOut);
};

} // namespace relax

#endif // RELAXC_SOLVER_PORTFOLIO_H
