//===- BoundedSolver.cpp - Propagating small-domain backend -------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/BoundedSolver.h"

#include "solver/FormulaProgram.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <thread>

using namespace relax;

namespace {

//===----------------------------------------------------------------------===//
// Domains
//===----------------------------------------------------------------------===//

/// The bounded array domain (shared with the quantifier evaluators; see
/// ArrayDomain in FormulaEval.h — one definition of the order).
ArrayDomain arrayDomain(const BoundedSolverOptions &Opts) {
  return ArrayDomain(Opts.MaxArrayLen, Opts.ArrayElemLo, Opts.ArrayElemHi);
}

/// Number of values in one variable's bounded domain.
uint64_t domainSize(const VarRef &V, const BoundedSolverOptions &Opts) {
  if (V.Kind == VarKind::Int)
    return Opts.IntHi >= Opts.IntLo
               ? static_cast<uint64_t>(Opts.IntHi - Opts.IntLo) + 1
               : 0;
  return arrayDomain(Opts).size();
}

//===----------------------------------------------------------------------===//
// Conjunct splitting
//===----------------------------------------------------------------------===//

/// A conjunct is a (formula, negated) pair — negation is tracked as a flag
/// so ¬(P → Q), ¬(P ∨ Q), and ¬¬P split without building AST nodes (the
/// factories are not thread-safe, and solver queries may run on discharge
/// workers).
struct ConjunctRef {
  const BoolExpr *F;
  bool Negated;
};

/// Splits \p F (under \p Negated) into conjuncts; sets \p False when a
/// constant-false conjunct appears.
void splitConjuncts(const BoolExpr *F, bool Negated,
                    std::vector<ConjunctRef> &Out, bool &False) {
  switch (F->kind()) {
  case BoolExpr::Kind::BoolLit:
    if (cast<BoolLitExpr>(F)->value() == Negated)
      False = true;
    return; // constant-true conjuncts fold away
  case BoolExpr::Kind::Not:
    splitConjuncts(cast<NotExpr>(F)->sub(), !Negated, Out, False);
    return;
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(F);
    if (L->op() == LogicalOp::And && !Negated) {
      splitConjuncts(L->lhs(), false, Out, False);
      splitConjuncts(L->rhs(), false, Out, False);
      return;
    }
    if (L->op() == LogicalOp::Or && Negated) {
      splitConjuncts(L->lhs(), true, Out, False);
      splitConjuncts(L->rhs(), true, Out, False);
      return;
    }
    if (L->op() == LogicalOp::Implies && Negated) {
      splitConjuncts(L->lhs(), false, Out, False);
      splitConjuncts(L->rhs(), true, Out, False);
      return;
    }
    break;
  }
  default:
    break;
  }
  Out.push_back(ConjunctRef{F, Negated});
}

//===----------------------------------------------------------------------===//
// Search plan
//===----------------------------------------------------------------------===//

/// One compiled conjunct with its support resolved to variable-order
/// positions.
struct PlannedConjunct {
  const BoolExpr *F = nullptr;
  bool Negated = false;
  std::shared_ptr<const FormulaProgram> Prog;
  std::vector<uint32_t> IntArgPos; ///< order position per program int input
  std::vector<uint32_t> ArrArgPos; ///< order position per array input
};

/// Everything the search needs, built once per query on the calling
/// thread. Immutable during the (possibly parallel) search.
struct SearchPlan {
  std::vector<PlannedConjunct> Conjuncts;
  std::vector<VarRef> Order;
  /// Conjunct indices to check after assigning the variable at each order
  /// position (each conjunct appears exactly once, at the position of its
  /// last support variable).
  std::vector<std::vector<uint32_t>> ChecksAt;
  /// Conjuncts with no free variables, checked once before the search.
  std::vector<uint32_t> RootChecks;
  bool TriviallyFalse = false;
};

SearchPlan buildPlan(const std::vector<const BoolExpr *> &Formulas,
                     const VarRefSet &ExtraVars, AstContext *Ctx) {
  SearchPlan Plan;

  std::vector<ConjunctRef> Refs;
  for (const BoolExpr *F : Formulas)
    splitConjuncts(F, /*Negated=*/false, Refs, Plan.TriviallyFalse);
  if (Plan.TriviallyFalse)
    return Plan;

  // Dedupe pointer-identical conjuncts (hash-consing makes structural
  // duplicates pointer-identical), keeping first-occurrence order.
  std::vector<ConjunctRef> Unique;
  for (const ConjunctRef &R : Refs) {
    bool Seen = false;
    for (const ConjunctRef &U : Unique)
      if (U.F == R.F && U.Negated == R.Negated) {
        Seen = true;
        break;
      }
    if (!Seen)
      Unique.push_back(R);
  }

  FormulaProgramCache *Cache = Ctx ? &Ctx->formulaProgramCache() : nullptr;
  for (const ConjunctRef &R : Unique) {
    PlannedConjunct C;
    C.F = R.F;
    C.Negated = R.Negated;
    C.Prog = FormulaProgram::compile(R.F, Cache);
    Plan.Conjuncts.push_back(std::move(C));
  }

  // Variable order: conjuncts sorted by support size (stable, so equal
  // sizes keep query order) contribute their variables first — small
  // conjuncts become checkable after few assignments, which is where the
  // prefix pruning comes from. Extra (unconstrained) variables go last:
  // the search only reaches them once every conjunct already passed.
  std::vector<uint32_t> BySupport(Plan.Conjuncts.size());
  for (uint32_t I = 0; I != BySupport.size(); ++I)
    BySupport[I] = I;
  std::stable_sort(BySupport.begin(), BySupport.end(),
                   [&](uint32_t A, uint32_t B) {
                     const PlannedConjunct &CA = Plan.Conjuncts[A];
                     const PlannedConjunct &CB = Plan.Conjuncts[B];
                     size_t SA = CA.Prog->intInputs().size() +
                                 CA.Prog->arrayInputs().size();
                     size_t SB = CB.Prog->intInputs().size() +
                                 CB.Prog->arrayInputs().size();
                     return SA < SB;
                   });

  std::map<VarRef, uint32_t> Pos;
  auto Place = [&](const VarRef &V) {
    if (Pos.count(V))
      return;
    Pos[V] = static_cast<uint32_t>(Plan.Order.size());
    Plan.Order.push_back(V);
  };
  for (uint32_t CI : BySupport) {
    for (const VarRef &V : Plan.Conjuncts[CI].Prog->intInputs())
      Place(V);
    for (const VarRef &V : Plan.Conjuncts[CI].Prog->arrayInputs())
      Place(V);
  }
  for (const VarRef &V : ExtraVars)
    Place(V);

  // Resolve conjunct arguments and attach each conjunct to the depth of
  // its last support variable.
  Plan.ChecksAt.assign(Plan.Order.size(), {});
  for (uint32_t CI = 0; CI != Plan.Conjuncts.size(); ++CI) {
    PlannedConjunct &C = Plan.Conjuncts[CI];
    uint32_t Depth = 0;
    bool HasVars = false;
    for (const VarRef &V : C.Prog->intInputs()) {
      uint32_t P = Pos.at(V);
      C.IntArgPos.push_back(P);
      Depth = std::max(Depth, P);
      HasVars = true;
    }
    for (const VarRef &V : C.Prog->arrayInputs()) {
      uint32_t P = Pos.at(V);
      C.ArrArgPos.push_back(P);
      Depth = std::max(Depth, P);
      HasVars = true;
    }
    if (HasVars)
      Plan.ChecksAt[Depth].push_back(CI);
    else
      Plan.RootChecks.push_back(CI);
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Search worker
//===----------------------------------------------------------------------===//

/// Per-thread search state: one executor and input scratch per conjunct,
/// plus the value of every order position. The plan is shared read-only.
class SearchWorker {
public:
  enum class Status : uint8_t { Sat, Exhausted, Budget, Deadline };
  struct Outcome {
    Status St = Status::Exhausted;
    uint64_t Count = 0; ///< assignments attempted in this chunk
    uint64_t Steps = 0; ///< quantifier-body evaluations in this chunk
    bool StepTrip = false; ///< Budget status came from the step budget
    Model Witness;      ///< populated when St == Sat
  };

  SearchWorker(const SearchPlan &Plan, const BoundedSolverOptions &Opts,
               const FormulaEvalOptions &EvalOpts,
               const Deadline &DL = Deadline())
      : Plan(Plan), Opts(Opts), EvalOpts(EvalOpts), DL(DL),
        Dom(arrayDomain(Opts)), IntVal(Plan.Order.size()),
        ArrVal(Plan.Order.size()) {
    Budget.MaxSteps = Opts.MaxQuantSteps;
    Execs.reserve(Plan.Conjuncts.size());
    IntScratch.resize(Plan.Conjuncts.size());
    ArrScratch.resize(Plan.Conjuncts.size());
    for (size_t I = 0; I != Plan.Conjuncts.size(); ++I) {
      const PlannedConjunct &C = Plan.Conjuncts[I];
      Execs.emplace_back(*C.Prog);
      IntScratch[I].resize(C.IntArgPos.size());
      // ArrVal never reallocates, so the argument pointers are fixed for
      // the worker's lifetime — bind them once instead of copying array
      // values on every conjunct check.
      for (uint32_t Pos : C.ArrArgPos)
        ArrScratch[I].push_back(&ArrVal[Pos]);
    }
  }

  /// Evaluates the variable-free conjuncts (once, before any search).
  /// A step-budget trip during a root check surfaces as `tripped()`.
  bool checkRoots() {
    for (uint32_t CI : Plan.RootChecks)
      if (!checkConjunct(CI) || Budget.Tripped)
        return false;
    return true;
  }

  bool tripped() const { return Budget.Tripped; }
  uint64_t steps() const { return Budget.Steps; }

  /// Searches the subtree where the top variable takes domain indices in
  /// [\p TopLo, \p TopHi). Requires a non-empty order.
  Outcome run(uint64_t TopLo, uint64_t TopHi) {
    Outcome Out;
    Out.St = descend(0, TopLo, TopHi, Out);
    Out.Steps = Budget.Steps;
    return Out;
  }

private:
  const SearchPlan &Plan;
  const BoundedSolverOptions &Opts;
  const FormulaEvalOptions &EvalOpts;
  Deadline DL;
  ArrayDomain Dom;
  std::vector<int64_t> IntVal;
  std::vector<ArrayModelValue> ArrVal;
  std::vector<FormulaProgram::Executor> Execs;
  std::vector<std::vector<int64_t>> IntScratch;
  std::vector<std::vector<const ArrayModelValue *>> ArrScratch;
  uint64_t Count = 0;
  EvalBudget Budget;

  bool checkConjunct(uint32_t CI) {
    const PlannedConjunct &C = Plan.Conjuncts[CI];
    std::vector<int64_t> &IntIn = IntScratch[CI];
    for (size_t I = 0; I != C.IntArgPos.size(); ++I)
      IntIn[I] = IntVal[C.IntArgPos[I]];
    bool R = Execs[CI].run(IntIn.data(), ArrScratch[CI].data(), EvalOpts,
                           &Budget);
    return C.Negated ? !R : R;
  }

  Status descend(uint32_t Depth, uint64_t Lo, uint64_t Hi, Outcome &Out) {
    const VarRef &V = Plan.Order[Depth];
    bool Leaf = Depth + 1 == Plan.Order.size();
    for (uint64_t Index = Lo; Index != Hi; ++Index) {
      if (++Count > Opts.MaxCandidates) {
        Out.Count = Count;
        return Status::Budget;
      }
      // A clock read every 4096 candidates keeps deadline latency in the
      // microsecond-per-check range without measurably slowing the search
      // (the expired() call is a single branch when no deadline is armed).
      if ((Count & 0xFFF) == 0 && DL.expired()) {
        Out.Count = Count;
        return Status::Deadline;
      }
      if (V.Kind == VarKind::Int)
        IntVal[Depth] = Opts.IntLo + static_cast<int64_t>(Index);
      else if (Index == Lo)
        ArrVal[Depth] = Dom.valueAt(Index); // decode once per subtree entry
      else
        Dom.advance(ArrVal[Depth]);

      bool Pruned = false;
      for (uint32_t CI : Plan.ChecksAt[Depth]) {
        bool Holds = checkConjunct(CI);
        if (Budget.Tripped) {
          // The step budget tripped mid-evaluation; the conjunct's value
          // is meaningless and the search must give up here.
          Out.Count = Count;
          Out.StepTrip = true;
          return Status::Budget;
        }
        if (!Holds) {
          Pruned = true;
          break;
        }
      }
      if (Pruned)
        continue; // the entire subtree under this prefix is dead

      if (Leaf) {
        captureWitness(Out.Witness);
        Out.Count = Count;
        return Status::Sat;
      }
      Status St =
          descend(Depth + 1, 0, domainSize(Plan.Order[Depth + 1], Opts), Out);
      if (St != Status::Exhausted)
        return St;
    }
    Out.Count = Count;
    return Status::Exhausted;
  }

  void captureWitness(Model &W) {
    for (size_t I = 0; I != Plan.Order.size(); ++I) {
      const VarRef &V = Plan.Order[I];
      if (V.Kind == VarKind::Int)
        W.Ints[V] = IntVal[I];
      else
        W.Arrays[V] = ArrVal[I];
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Search engine
//===----------------------------------------------------------------------===//

SatResult BoundedSolver::search(const std::vector<const BoolExpr *> &Formulas,
                                const VarRefSet &ExtraVars, Model *ModelOut) {
  // Clear stale entries from a reused caller Model up front, so non-Sat
  // verdicts never leave a previous witness behind.
  if (ModelOut) {
    ModelOut->Ints.clear();
    ModelOut->Arrays.clear();
  }

  FormulaEvalOptions EvalOpts;
  EvalOpts.IntLo = Opts.IntLo;
  EvalOpts.IntHi = Opts.IntHi;
  EvalOpts.MaxArrayLen = Opts.MaxArrayLen;
  EvalOpts.ArrayElemLo = Opts.ArrayElemLo;
  EvalOpts.ArrayElemHi = Opts.ArrayElemHi;

  SatResult Exhausted =
      Opts.ExhaustionMeansUnsat ? SatResult::Unsat : SatResult::Unknown;
  LastStop = StopReason::Decided;

  if (QueryDeadline.expired()) {
    LastStop = StopReason::Deadline;
    return SatResult::Unknown;
  }

  SearchPlan Plan = buildPlan(Formulas, ExtraVars, Ctx);
  if (Plan.TriviallyFalse)
    return Exhausted;

  size_t N = Plan.Order.size();
  if (N == 0) {
    // One (empty) candidate: the conjuncts are all variable-free.
    ++Candidates;
    SearchWorker Root(Plan, Opts, EvalOpts, QueryDeadline);
    bool Hold = Root.checkRoots();
    QuantSteps += Root.steps();
    if (Root.tripped()) {
      LastStop = StopReason::StepBudget;
      return SatResult::Unknown;
    }
    return Hold ? SatResult::Sat : Exhausted;
  }

  // The root checks run once on this thread; their quantifier steps stay
  // charged to Main's budget, so chunk 0 (which reuses Main) continues the
  // exact sequential counter.
  SearchWorker Main(Plan, Opts, EvalOpts, QueryDeadline);
  if (!Main.checkRoots()) {
    QuantSteps += Main.steps();
    if (Main.tripped()) {
      LastStop = StopReason::StepBudget;
      return SatResult::Unknown;
    }
    return Exhausted;
  }

  uint64_t TopDomain = domainSize(Plan.Order[0], Opts);
  if (TopDomain == 0)
    return Exhausted;

  // Chunk the top variable's domain contiguously across the workers. Every
  // chunk searches independently with the full candidate budget; the
  // replay below reconstructs the sequential verdict exactly, so Jobs
  // never changes the answer, the witness, or a budget trip.
  uint64_t Chunks = std::min<uint64_t>(std::max(1u, Opts.Jobs), TopDomain);
  std::vector<SearchWorker::Outcome> Outcomes(Chunks);
  auto ChunkLo = [&](uint64_t I) { return TopDomain * I / Chunks; };

  // Chunks 1..C-1 go to spawned workers; chunk 0 runs on this thread,
  // reusing Main's executors (with Chunks == 1 this is simply the
  // sequential path, no threads involved).
  std::vector<std::thread> Pool;
  Pool.reserve(Chunks - 1);
  for (uint64_t I = 1; I != Chunks; ++I)
    Pool.emplace_back([&, I] {
      SearchWorker W(Plan, Opts, EvalOpts, QueryDeadline);
      Outcomes[I] = W.run(ChunkLo(I), ChunkLo(I + 1));
    });
  Outcomes[0] = Main.run(0, ChunkLo(1));
  for (std::thread &T : Pool)
    T.join();

  for (const SearchWorker::Outcome &O : Outcomes) {
    Candidates += O.Count;
    QuantSteps += O.Steps;
  }

  // A deadline trip anywhere means the query ran out of time; the verdict
  // is Unknown regardless of what other chunks found (which chunk trips
  // first is time-dependent, so no replay can make this deterministic —
  // that is exactly why deadline verdicts are never cached or pinned).
  for (const SearchWorker::Outcome &O : Outcomes)
    if (O.St == SearchWorker::Status::Deadline) {
      LastStop = StopReason::Deadline;
      return SatResult::Unknown;
    }

  // Replay the chunks in domain order. Chunk searches are independent, so
  // each chunk's candidate and quantifier-step counts are identical to
  // what a sequential run would spend inside it; accumulating the counts
  // in order therefore reproduces the sequential budget checks, and
  // taking the first Sat reproduces the sequential first witness. (A Sat
  // chunk's counts stop at its witness, so "the sequential run trips
  // before reaching this chunk's witness" is decidable from the sums.)
  uint64_t CumCand = 0, CumSteps = 0;
  for (const SearchWorker::Outcome &O : Outcomes) {
    if (CumCand + O.Count > Opts.MaxCandidates) {
      // A sequential run trips inside this chunk. When both budgets would
      // trip in the same chunk the candidate budget is reported; the
      // verdict (Unknown) never depends on the choice.
      LastStop = StopReason::CandidateBudget;
      return SatResult::Unknown;
    }
    if (Opts.MaxQuantSteps != 0 && CumSteps + O.Steps > Opts.MaxQuantSteps) {
      LastStop = StopReason::StepBudget;
      return SatResult::Unknown;
    }
    if (O.St == SearchWorker::Status::Budget) {
      // Defensive: a local trip always exceeds the cumulative budget too.
      LastStop = O.StepTrip ? StopReason::StepBudget
                            : StopReason::CandidateBudget;
      return SatResult::Unknown;
    }
    CumCand += O.Count;
    CumSteps += O.Steps;
    if (O.St == SearchWorker::Status::Sat) {
      if (ModelOut)
        *ModelOut = O.Witness;
      return SatResult::Sat;
    }
  }
  return Exhausted;
}

//===----------------------------------------------------------------------===//
// Legacy enumerate engine (differential partner / ablation baseline)
//===----------------------------------------------------------------------===//

namespace {

/// Odometer over the full assignment space: scalars range over
/// [IntLo, IntHi]; arrays range over lengths 0..MaxArrayLen with elements
/// in [ArrayElemLo, ArrayElemHi].
class AssignmentEnumerator {
public:
  AssignmentEnumerator(const std::vector<VarRef> &Vars,
                       const BoundedSolverOptions &Opts)
      : Vars(Vars), Opts(Opts), Dom(arrayDomain(Opts)) {
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        Current.Ints[V] = Opts.IntLo;
      } else {
        Current.Arrays[V] = ArrayModelValue(); // length 0
      }
    }
  }

  const Model &current() const { return Current; }

  /// Advances to the next assignment; returns false when wrapped around.
  bool advance() {
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        int64_t &Val = Current.Ints[V];
        if (Val < Opts.IntHi) {
          ++Val;
          return true;
        }
        Val = Opts.IntLo; // carry
        continue;
      }
      if (Dom.advance(Current.Arrays[V]))
        return true;
      Current.Arrays[V] = ArrayModelValue(); // carry
    }
    return false;
  }

private:
  const std::vector<VarRef> &Vars;
  const BoundedSolverOptions &Opts;
  ArrayDomain Dom;
  Model Current;
};

} // namespace

SatResult
BoundedSolver::enumerate(const std::vector<const BoolExpr *> &Formulas,
                         const VarRefSet &ExtraVars, Model *ModelOut) {
  if (ModelOut) {
    ModelOut->Ints.clear();
    ModelOut->Arrays.clear();
  }

  VarRefSet VarSet = ExtraVars;
  for (const BoolExpr *F : Formulas)
    collectFreeVars(F, VarSet);
  std::vector<VarRef> Vars(VarSet.begin(), VarSet.end());

  FormulaEvalOptions EvalOpts;
  EvalOpts.IntLo = Opts.IntLo;
  EvalOpts.IntHi = Opts.IntHi;
  EvalOpts.MaxArrayLen = Opts.MaxArrayLen;
  EvalOpts.ArrayElemLo = Opts.ArrayElemLo;
  EvalOpts.ArrayElemHi = Opts.ArrayElemHi;

  LastStop = StopReason::Decided;
  if (QueryDeadline.expired()) {
    LastStop = StopReason::Deadline;
    return SatResult::Unknown;
  }
  AssignmentEnumerator Enum(Vars, Opts);
  uint64_t Evaluated = 0;
  do {
    if (++Evaluated > Opts.MaxCandidates) {
      Candidates += Evaluated - 1;
      LastStop = StopReason::CandidateBudget;
      return SatResult::Unknown;
    }
    if ((Evaluated & 0xFFF) == 0 && QueryDeadline.expired()) {
      Candidates += Evaluated;
      LastStop = StopReason::Deadline;
      return SatResult::Unknown;
    }
    const Model &M = Enum.current();
    bool AllHold = true;
    for (const BoolExpr *F : Formulas) {
      if (!evalFormula(F, M, EvalOpts)) {
        AllHold = false;
        break;
      }
    }
    if (AllHold) {
      Candidates += Evaluated;
      if (ModelOut)
        *ModelOut = M;
      return SatResult::Sat;
    }
  } while (Enum.advance());

  Candidates += Evaluated;
  return Opts.ExhaustionMeansUnsat ? SatResult::Unsat : SatResult::Unknown;
}

//===----------------------------------------------------------------------===//
// Solver interface
//===----------------------------------------------------------------------===//

Result<SatResult>
BoundedSolver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  ++Queries;
  return Opts.Eng == BoundedSolverOptions::Engine::Search
             ? search(Formulas, VarRefSet(), nullptr)
             : enumerate(Formulas, VarRefSet(), nullptr);
}

Result<SatResult>
BoundedSolver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                                 const VarRefSet &Vars, Model &ModelOut) {
  ++Queries;
  return Opts.Eng == BoundedSolverOptions::Engine::Search
             ? search(Formulas, Vars, &ModelOut)
             : enumerate(Formulas, Vars, &ModelOut);
}
