//===- BoundedSolver.cpp - Propagating small-domain backend -------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/BoundedSolver.h"

#include "logic/FormulaOps.h"
#include "solver/FormulaProgram.h"
#include "support/Casting.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <map>
#include <thread>

using namespace relax;

namespace {

//===----------------------------------------------------------------------===//
// Domains
//===----------------------------------------------------------------------===//

/// The bounded array domain (shared with the quantifier evaluators; see
/// ArrayDomain in FormulaEval.h — one definition of the order).
ArrayDomain arrayDomain(const BoundedSolverOptions &Opts) {
  return ArrayDomain(Opts.MaxArrayLen, Opts.ArrayElemLo, Opts.ArrayElemHi);
}

/// Number of values in one variable's bounded domain.
uint64_t domainSize(const VarRef &V, const BoundedSolverOptions &Opts) {
  if (V.Kind == VarKind::Int)
    return Opts.IntHi >= Opts.IntLo
               ? static_cast<uint64_t>(Opts.IntHi - Opts.IntLo) + 1
               : 0;
  return arrayDomain(Opts).size();
}

//===----------------------------------------------------------------------===//
// Conjunct splitting
//===----------------------------------------------------------------------===//

/// A conjunct is a (formula, negated) pair — negation is tracked as a flag
/// so ¬(P → Q), ¬(P ∨ Q), and ¬¬P split without building AST nodes (the
/// factories are not thread-safe, and solver queries may run on discharge
/// workers).
struct ConjunctRef {
  const BoolExpr *F;
  bool Negated;
};

/// Splits \p F (under \p Negated) into conjuncts; sets \p False when a
/// constant-false conjunct appears.
void splitConjuncts(const BoolExpr *F, bool Negated,
                    std::vector<ConjunctRef> &Out, bool &False) {
  switch (F->kind()) {
  case BoolExpr::Kind::BoolLit:
    if (cast<BoolLitExpr>(F)->value() == Negated)
      False = true;
    return; // constant-true conjuncts fold away
  case BoolExpr::Kind::Not:
    splitConjuncts(cast<NotExpr>(F)->sub(), !Negated, Out, False);
    return;
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(F);
    if (L->op() == LogicalOp::And && !Negated) {
      splitConjuncts(L->lhs(), false, Out, False);
      splitConjuncts(L->rhs(), false, Out, False);
      return;
    }
    if (L->op() == LogicalOp::Or && Negated) {
      splitConjuncts(L->lhs(), true, Out, False);
      splitConjuncts(L->rhs(), true, Out, False);
      return;
    }
    if (L->op() == LogicalOp::Implies && Negated) {
      splitConjuncts(L->lhs(), false, Out, False);
      splitConjuncts(L->rhs(), true, Out, False);
      return;
    }
    break;
  }
  default:
    break;
  }
  Out.push_back(ConjunctRef{F, Negated});
}

//===----------------------------------------------------------------------===//
// Search plan
//===----------------------------------------------------------------------===//

/// A domain-narrowing rule extracted from a comparison conjunct with a
/// bare variable on one side: `v REL <expr>` (after normalizing negation
/// and side, REL ∈ {==, <=, <, >=, >}). Once every variable the other
/// side reads is assigned, the conjunct confines `v` to a contiguous
/// index range — a single value for `==` — so the search iterates only
/// that range instead of scanning values the conjunct check would reject
/// one by one. Array rules are the `==` case between two array variables.
struct ForcedRule {
  bool IsArray = false;
  CmpOp Rel = CmpOp::Eq;     ///< relation of `target Rel rhs`; never Ne
  uint32_t Target = 0;       ///< canonical order position being narrowed
  const Expr *Rhs = nullptr; ///< int rule: the bounding expression
  uint32_t OtherArr = 0;     ///< array rule: position of the equal array
  /// Every variable the rhs reads, with its canonical order position.
  std::vector<std::pair<VarRef, uint32_t>> RhsVars;
};

/// One compiled conjunct with its support resolved to variable-order
/// positions.
struct PlannedConjunct {
  const BoolExpr *F = nullptr;
  bool Negated = false;
  std::shared_ptr<const FormulaProgram> Prog;
  std::vector<uint32_t> IntArgPos; ///< order position per program int input
  std::vector<uint32_t> ArrArgPos; ///< order position per array input
  /// Sorted, deduped canonical order positions of every input the program
  /// reads — the compile-time support mask. The program's input lists are
  /// built on first reference, so this is exactly the evaluated slice:
  /// when the conjunct fails, these (and only these) assignments fed the
  /// failure, which is what makes them a sound nogood.
  std::vector<uint32_t> Support;
  /// `Support` as a bitset over canonical order positions, for O(words)
  /// conflict-cause unions during backjumping.
  std::vector<uint64_t> SupportMask;
  /// Forced-value rules this conjunct yields (at most two: either side of
  /// an equality may be the bare variable).
  std::vector<ForcedRule> Forced;
};

/// Everything the search needs, built once per query on the calling
/// thread. Immutable during the (possibly parallel) search.
struct SearchPlan {
  std::vector<PlannedConjunct> Conjuncts;
  std::vector<VarRef> Order;
  /// Conjunct indices to check after assigning the variable at each order
  /// position (each conjunct appears exactly once, at the position of its
  /// last support variable).
  std::vector<std::vector<uint32_t>> ChecksAt;
  /// Conjuncts with no free variables, checked once before the search.
  std::vector<uint32_t> RootChecks;
  /// Order positions [0, NumConstrained) carry conjunct support variables;
  /// [NumConstrained, Order.size()) are the unconstrained extras. Restart
  /// reordering only permutes constrained positions (minus the top), so
  /// the search still reaches the extras only after every conjunct passed.
  uint32_t NumConstrained = 0;
  bool TriviallyFalse = false;
  bool HasForced = false; ///< any conjunct carries a forced-value rule
};

SearchPlan buildPlan(const std::vector<const BoolExpr *> &Formulas,
                     const VarRefSet &ExtraVars, AstContext *Ctx) {
  SearchPlan Plan;

  std::vector<ConjunctRef> Refs;
  for (const BoolExpr *F : Formulas)
    splitConjuncts(F, /*Negated=*/false, Refs, Plan.TriviallyFalse);
  if (Plan.TriviallyFalse)
    return Plan;

  // Dedupe pointer-identical conjuncts (hash-consing makes structural
  // duplicates pointer-identical), keeping first-occurrence order.
  std::vector<ConjunctRef> Unique;
  for (const ConjunctRef &R : Refs) {
    bool Seen = false;
    for (const ConjunctRef &U : Unique)
      if (U.F == R.F && U.Negated == R.Negated) {
        Seen = true;
        break;
      }
    if (!Seen)
      Unique.push_back(R);
  }

  FormulaProgramCache *Cache = Ctx ? &Ctx->formulaProgramCache() : nullptr;
  for (const ConjunctRef &R : Unique) {
    PlannedConjunct C;
    C.F = R.F;
    C.Negated = R.Negated;
    C.Prog = FormulaProgram::compile(R.F, Cache);
    Plan.Conjuncts.push_back(std::move(C));
  }

  // Variable order: conjuncts sorted by support size (stable, so equal
  // sizes keep query order) contribute their variables first — small
  // conjuncts become checkable after few assignments, which is where the
  // prefix pruning comes from. Extra (unconstrained) variables go last:
  // the search only reaches them once every conjunct already passed.
  std::vector<uint32_t> BySupport(Plan.Conjuncts.size());
  for (uint32_t I = 0; I != BySupport.size(); ++I)
    BySupport[I] = I;
  std::stable_sort(BySupport.begin(), BySupport.end(),
                   [&](uint32_t A, uint32_t B) {
                     return Plan.Conjuncts[A].Prog->supportSize() <
                            Plan.Conjuncts[B].Prog->supportSize();
                   });

  std::map<VarRef, uint32_t> Pos;
  auto Place = [&](const VarRef &V) {
    if (Pos.count(V))
      return;
    Pos[V] = static_cast<uint32_t>(Plan.Order.size());
    Plan.Order.push_back(V);
  };
  for (uint32_t CI : BySupport) {
    for (const VarRef &V : Plan.Conjuncts[CI].Prog->intInputs())
      Place(V);
    for (const VarRef &V : Plan.Conjuncts[CI].Prog->arrayInputs())
      Place(V);
  }
  Plan.NumConstrained = static_cast<uint32_t>(Plan.Order.size());
  for (const VarRef &V : ExtraVars)
    Place(V);

  // Resolve conjunct arguments and attach each conjunct to the depth of
  // its last support variable.
  Plan.ChecksAt.assign(Plan.Order.size(), {});
  for (uint32_t CI = 0; CI != Plan.Conjuncts.size(); ++CI) {
    PlannedConjunct &C = Plan.Conjuncts[CI];
    uint32_t Depth = 0;
    bool HasVars = false;
    for (const VarRef &V : C.Prog->intInputs()) {
      uint32_t P = Pos.at(V);
      C.IntArgPos.push_back(P);
      Depth = std::max(Depth, P);
      HasVars = true;
    }
    for (const VarRef &V : C.Prog->arrayInputs()) {
      uint32_t P = Pos.at(V);
      C.ArrArgPos.push_back(P);
      Depth = std::max(Depth, P);
      HasVars = true;
    }
    C.Support = C.IntArgPos;
    C.Support.insert(C.Support.end(), C.ArrArgPos.begin(), C.ArrArgPos.end());
    std::sort(C.Support.begin(), C.Support.end());
    C.Support.erase(std::unique(C.Support.begin(), C.Support.end()),
                    C.Support.end());
    C.SupportMask.assign((Plan.Order.size() + 63) / 64, 0);
    for (uint32_t P : C.Support)
      C.SupportMask[P / 64] |= uint64_t(1) << (P % 64);

    // Domain-narrowing rules: a comparison with a bare variable on one
    // side confines that variable once the other side's inputs are
    // assigned. The target must be in the compiled program's support —
    // a folded-away occurrence would make domain narrowing unsound —
    // and the other side must not read the target. Both orientations are
    // recorded; which rules apply under the epoch's variable order is
    // decided by the worker.
    auto AddIntRule = [&](const Expr *Bare, const Expr *Other, CmpOp Rel) {
      const auto *VE = dyn_cast<VarExpr>(Bare);
      if (!VE)
        return;
      auto TIt = Pos.find(VarRef{VE->name(), VE->tag(), VarKind::Int});
      if (TIt == Pos.end() ||
          !std::binary_search(C.Support.begin(), C.Support.end(), TIt->second))
        return;
      ForcedRule R;
      R.Rel = Rel;
      R.Target = TIt->second;
      R.Rhs = Other;
      for (const VarRef &RV : freeVars(Other)) {
        auto It = Pos.find(RV);
        if (It == Pos.end())
          return; // reads a variable outside the search order
        if (It->second == R.Target)
          return; // self-referential: does not determine the target
        R.RhsVars.emplace_back(RV, It->second);
      }
      C.Forced.push_back(std::move(R));
    };
    // ¬(v Op e) and the var-on-the-right mirror image, as relations on v.
    auto Flip = [](CmpOp Op) {
      switch (Op) {
      case CmpOp::Eq:
        return CmpOp::Ne;
      case CmpOp::Ne:
        return CmpOp::Eq;
      case CmpOp::Lt:
        return CmpOp::Ge;
      case CmpOp::Le:
        return CmpOp::Gt;
      case CmpOp::Gt:
        return CmpOp::Le;
      case CmpOp::Ge:
        return CmpOp::Lt;
      }
      return Op;
    };
    auto Mirror = [](CmpOp Op) {
      switch (Op) {
      case CmpOp::Lt:
        return CmpOp::Gt;
      case CmpOp::Le:
        return CmpOp::Ge;
      case CmpOp::Gt:
        return CmpOp::Lt;
      case CmpOp::Ge:
        return CmpOp::Le;
      default:
        return Op;
      }
    };
    if (C.F->kind() == BoolExpr::Kind::Cmp) {
      const auto *Cmp = cast<CmpExpr>(C.F);
      CmpOp Eff = C.Negated ? Flip(Cmp->op()) : Cmp->op();
      if (Eff != CmpOp::Ne) { // != excludes one value: not contiguous
        AddIntRule(Cmp->lhs(), Cmp->rhs(), Eff);
        AddIntRule(Cmp->rhs(), Cmp->lhs(), Mirror(Eff));
      }
    } else if (C.F->kind() == BoolExpr::Kind::ArrayCmp) {
      const auto *AC = cast<ArrayCmpExpr>(C.F);
      const auto *L = dyn_cast<ArrayRefExpr>(AC->lhs());
      const auto *Rr = dyn_cast<ArrayRefExpr>(AC->rhs());
      if (AC->isEquality() != C.Negated && L && Rr) {
        auto LIt = Pos.find(VarRef{L->name(), L->tag(), VarKind::Array});
        auto RIt = Pos.find(VarRef{Rr->name(), Rr->tag(), VarKind::Array});
        if (LIt != Pos.end() && RIt != Pos.end() &&
            LIt->second != RIt->second) {
          auto AddArrRule = [&](uint32_t Tgt, const VarRef &OV,
                                uint32_t Other) {
            if (!std::binary_search(C.Support.begin(), C.Support.end(), Tgt))
              return;
            ForcedRule R;
            R.IsArray = true;
            R.Target = Tgt;
            R.OtherArr = Other;
            R.RhsVars.emplace_back(OV, Other);
            C.Forced.push_back(std::move(R));
          };
          AddArrRule(LIt->second, RIt->first, RIt->second);
          AddArrRule(RIt->second, LIt->first, LIt->second);
        }
      }
    }
    Plan.HasForced = Plan.HasForced || !C.Forced.empty();

    if (HasVars)
      Plan.ChecksAt[Depth].push_back(CI);
    else
      Plan.RootChecks.push_back(CI);
  }
  // Within a depth, check the smallest-support conjunct first: when
  // several conjuncts reject a value, the one with the fewest inputs
  // yields the most general conflict cause (smallest nogood, deepest
  // backjump). Stable, so equal sizes keep query order — deterministic.
  for (std::vector<uint32_t> &Cs : Plan.ChecksAt)
    std::stable_sort(Cs.begin(), Cs.end(), [&](uint32_t A, uint32_t B) {
      return Plan.Conjuncts[A].Support.size() <
             Plan.Conjuncts[B].Support.size();
    });
  return Plan;
}

//===----------------------------------------------------------------------===//
// Restart schedule
//===----------------------------------------------------------------------===//

/// Conflicts allowed in the first restart epoch; later epochs scale it by
/// the Luby sequence. Purely a function of conflict counts — no clocks —
/// so restart points are deterministic.
constexpr uint64_t RestartUnit = 256;

/// The Luby sequence 1, 1, 2, 1, 1, 2, 4, ... (1-based).
uint64_t luby(uint64_t I) {
  for (;;) {
    uint64_t K = 1;
    while ((uint64_t(1) << K) - 1 < I)
      ++K;
    if ((uint64_t(1) << K) - 1 == I)
      return uint64_t(1) << (K - 1);
    I -= (uint64_t(1) << (K - 1)) - 1;
  }
}

//===----------------------------------------------------------------------===//
// Search worker
//===----------------------------------------------------------------------===//

/// Per-thread search state: one executor and input scratch per conjunct,
/// plus the value of every order position. The plan is shared read-only.
///
/// The conflict-driven layer lives entirely inside one worker and resets
/// at every top-variable value boundary, so each top-value subtree is a
/// pure function of (plan, top value, options) — the property the Jobs
/// chunk replay relies on. Values are indexed by *canonical* order
/// position (`IntVal`/`ArrVal` never move under reordering, keeping the
/// pre-bound `ArrScratch` pointers valid); a permutation layer
/// (`Perm`/`DepthOf`) maps search depth to canonical position. Within one
/// epoch the search assigns depths in a fixed order, so a nogood's
/// literals sorted by depth give a static two-watched scheme: the
/// second-deepest literal is the watch (trigger) and the deepest is the
/// forced target — assigning the trigger depth its literal value, with
/// every shallower literal already holding, forbids the target value
/// before any conjunct program runs.
class SearchWorker {
public:
  enum class Status : uint8_t { Sat, Exhausted, Budget, Deadline, Restart };
  struct Outcome {
    Status St = Status::Exhausted;
    uint64_t Count = 0; ///< assignments attempted in this chunk
    uint64_t Steps = 0; ///< quantifier-body evaluations in this chunk
    bool StepTrip = false; ///< Budget status came from the step budget
    Model Witness;      ///< populated when St == Sat
    BoundedSearchStats Search; ///< this chunk's conflict-driven counters
  };

  SearchWorker(const SearchPlan &Plan, const BoundedSolverOptions &Opts,
               const FormulaEvalOptions &EvalOpts,
               const Deadline &DL = Deadline())
      : Plan(Plan), Opts(Opts), EvalOpts(EvalOpts), DL(DL),
        Dom(arrayDomain(Opts)), IntVal(Plan.Order.size()),
        ArrVal(Plan.Order.size()),
        NumVars(static_cast<uint32_t>(Plan.Order.size())) {
    Budget.MaxSteps = Opts.MaxQuantSteps;
    Execs.reserve(Plan.Conjuncts.size());
    IntScratch.resize(Plan.Conjuncts.size());
    ArrScratch.resize(Plan.Conjuncts.size());
    for (size_t I = 0; I != Plan.Conjuncts.size(); ++I) {
      const PlannedConjunct &C = Plan.Conjuncts[I];
      Execs.emplace_back(*C.Prog);
      IntScratch[I].resize(C.IntArgPos.size());
      // ArrVal never reallocates, so the argument pointers are fixed for
      // the worker's lifetime — bind them once instead of copying array
      // values on every conjunct check.
      for (uint32_t Pos : C.ArrArgPos)
        ArrScratch[I].push_back(&ArrVal[Pos]);
    }
    Learn = Opts.Learning && NumVars > 1;
    UseRestarts = Learn && Opts.Restarts;
    Perm.resize(NumVars);
    DepthOf.resize(NumVars);
    for (uint32_t I = 0; I != NumVars; ++I)
      Perm[I] = DepthOf[I] = I;
    Checks = &Plan.ChecksAt;
    if (Learn) {
      ValIdx.assign(NumVars, 0);
      WatchAt.resize(NumVars);
      ForbidCount.resize(NumVars);
      ForbidTrail.resize(NumVars);
      Activity.assign(NumVars, 0.0);
      MaskWords = (NumVars + 63) / 64;
      Cause.assign(NumVars, std::vector<uint64_t>(MaskWords, 0));
      ForbidEverCause.assign(NumVars, std::vector<uint64_t>(MaskWords, 0));
      rebuildForcedAt();
    }
  }

  /// Evaluates the variable-free conjuncts (once, before any search).
  /// A step-budget trip during a root check surfaces as `tripped()`.
  bool checkRoots() {
    for (uint32_t CI : Plan.RootChecks)
      if (!checkConjunct(CI) || Budget.Tripped)
        return false;
    return true;
  }

  bool tripped() const { return Budget.Tripped; }
  uint64_t steps() const { return Budget.Steps; }

  /// Searches the subtree where the top variable takes domain indices in
  /// [\p TopLo, \p TopHi). Requires a non-empty order.
  Outcome run(uint64_t TopLo, uint64_t TopHi) {
    Outcome Out;
    Out.St = topLoop(TopLo, TopHi, Out);
    Out.Steps = Budget.Steps;
    Out.Search = Stats;
    return Out;
  }

private:
  const SearchPlan &Plan;
  const BoundedSolverOptions &Opts;
  const FormulaEvalOptions &EvalOpts;
  Deadline DL;
  ArrayDomain Dom;
  std::vector<int64_t> IntVal;
  std::vector<ArrayModelValue> ArrVal;
  std::vector<FormulaProgram::Executor> Execs;
  std::vector<std::vector<int64_t>> IntScratch;
  std::vector<std::vector<const ArrayModelValue *>> ArrScratch;
  uint32_t NumVars;
  uint64_t Count = 0;
  EvalBudget Budget;

  bool Learn = false;       ///< learning active (Opts.Learning, >1 var)
  bool UseRestarts = false; ///< Luby restarts active (implies Learn)

  /// Depth → canonical order position and its inverse. Identity except in
  /// restart-permuted epochs; Perm[0] is always 0 (the chunked top var).
  std::vector<uint32_t> Perm, DepthOf;
  /// Conjuncts to check per depth under the current order: points at
  /// Plan.ChecksAt in canonical epochs, at PermChecks after a reorder.
  const std::vector<std::vector<uint32_t>> *Checks;
  std::vector<std::vector<uint32_t>> PermChecks;
  bool Permuted = false;  ///< current epoch order differs from canonical
  bool Canonical = false; ///< canonical re-search: restarts suppressed

  /// Canonical-position → current domain index, valid for assigned depths.
  std::vector<uint64_t> ValIdx;

  /// A nogood literal (canonical position, domain index); a nogood is a
  /// conjunction of literals some conjunct falsifies. Literals are kept
  /// sorted by current depth; the top variable never appears (the store is
  /// top-value-local, so its literal is constant).
  struct NgLit {
    uint32_t Var;
    uint64_t Val;
  };
  struct Nogood {
    std::vector<NgLit> Lits;
    double Act = 0.0; ///< compaction priority: creation recency + hits
  };
  std::vector<Nogood> Store;
  std::vector<NgLit> NgScratch;
  /// Per depth, per trigger domain index: store indices of nogoods whose
  /// trigger (second-deepest) literal is that (depth, value) pair. Keyed
  /// by value so an assignment only touches nogoods it can actually fire
  /// (a flat per-depth list degrades to a full-store scan per assignment
  /// once the store grows). Inner vectors are sized lazily, like
  /// ForbidCount.
  std::vector<std::vector<std::vector<uint32_t>>> WatchAt;
  /// Per depth: how many active nogoods forbid each domain index (sized
  /// lazily on first forbid in an epoch). A nonzero count skips the value.
  std::vector<std::vector<uint32_t>> ForbidCount;
  /// Forbids to undo when the depth that created them changes value.
  struct ForbidRef {
    uint32_t Depth;
    uint64_t Val;
  };
  std::vector<std::vector<ForbidRef>> ForbidTrail;

  /// Backjump cause analysis. `Cause[D]` accumulates, as a bitset over
  /// canonical positions, every variable the exhaustion of depth D's
  /// domain depended on: failing conjuncts' supports, forbidding nogoods'
  /// literals, and child exhaust causes. A parent whose own variable is
  /// absent from its child's cause skips the rest of its domain — each
  /// remaining value would reproduce the identical dead subtree.
  /// `ForbidEverCause[D]` over-approximates the literal set of every
  /// nogood that forbade a value at D this epoch (monotone, cleared at
  /// epoch boundaries), standing in for per-value cause tracking.
  uint32_t MaskWords = 0;
  std::vector<std::vector<uint64_t>> Cause;
  std::vector<std::vector<uint64_t>> ForbidEverCause;

  /// The domain-narrowing rules active at each depth under the current
  /// order: every rule whose target sits at that depth with all rhs
  /// variables assigned strictly shallower. Applied in plan order —
  /// deterministic — with their ranges intersected.
  struct ForcedRef {
    uint32_t CI = 0;
    uint32_t Rule = 0;
  };
  std::vector<std::vector<ForcedRef>> ForcedAt;
  Model ForcedScratch; ///< rhs evaluation model, rebuilt per narrowed depth

  std::vector<double> Activity; ///< per canonical position, VSIDS-style
  double ActInc = 1.0;

  uint64_t ConflictsHere = 0; ///< conflicts since the last restart
  uint64_t RestartLimit = RestartUnit;
  uint64_t LubyIdx = 0;

  uint64_t Work = 0; ///< deadline-poll units since the last poll
  BoundedSearchStats Stats;

  bool checkConjunct(uint32_t CI) {
    const PlannedConjunct &C = Plan.Conjuncts[CI];
    std::vector<int64_t> &IntIn = IntScratch[CI];
    for (size_t I = 0; I != C.IntArgPos.size(); ++I)
      IntIn[I] = IntVal[C.IntArgPos[I]];
    bool R = Execs[CI].run(IntIn.data(), ArrScratch[CI].data(), EvalOpts,
                           &Budget);
    return C.Negated ? !R : R;
  }

  /// Deadline poll on a *work* counter: one unit per attempted candidate,
  /// per propagation-skipped value, and per watch-list entry traversed.
  /// With learning off the counter equals the candidate count, preserving
  /// the pre-learning 4096-candidate poll cadence; with learning on, runs
  /// that skip candidates wholesale still reach the clock at the same
  /// rate (the skipped work is exactly what a candidate-count poll fails
  /// to charge). The deadline-poll fault site forces an expiry so tests
  /// can pin the cadence without racing a real clock.
  bool chargeWork(uint64_t Units) {
    Work += Units;
    if (Work < 4096)
      return false;
    Work = 0;
    if (FaultRegistry::shouldFail(FaultSite::DeadlinePoll))
      return true;
    return DL.expired();
  }

  /// Iterates the top variable's chunk. Learned state never survives a top
  /// value change: each subtree search starts from a clean store.
  Status topLoop(uint64_t Lo, uint64_t Hi, Outcome &Out) {
    const VarRef &V = Plan.Order[0];
    const bool Leaf = NumVars == 1;
    bool Contig = false;
    for (uint64_t Index = Lo; Index != Hi; ++Index) {
      if (++Count > Opts.MaxCandidates) {
        Out.Count = Count;
        return Status::Budget;
      }
      if (chargeWork(1)) {
        Out.Count = Count;
        return Status::Deadline;
      }
      if (Stats.MaxTrailDepth < 1)
        Stats.MaxTrailDepth = 1;
      if (V.Kind == VarKind::Int)
        IntVal[0] = Opts.IntLo + static_cast<int64_t>(Index);
      else if (Contig)
        Dom.advance(ArrVal[0]);
      else
        ArrVal[0] = Dom.valueAt(Index);
      Contig = true;

      bool Pruned = false;
      for (uint32_t CI : Plan.ChecksAt[0]) {
        bool Holds = checkConjunct(CI);
        if (Budget.Tripped) {
          Out.Count = Count;
          Out.StepTrip = true;
          return Status::Budget;
        }
        if (!Holds) {
          Pruned = true;
          break;
        }
      }
      if (Pruned) {
        ++Stats.Conflicts; // top-level conflicts are counted, never learned
        continue;
      }
      if (Leaf) {
        captureWitness(Out.Witness);
        Out.Count = Count;
        return Status::Sat;
      }
      if (Learn)
        resetLearning();
      Status St = searchSubtree(Out);
      if (St != Status::Exhausted)
        return St;
    }
    Out.Count = Count;
    return Status::Exhausted;
  }

  /// Drives one top value's subtree: descend with learning, honoring
  /// restart requests (epoch rebuilds under activity order) and re-running
  /// in canonical order when a witness was found under a permuted one.
  Status searchSubtree(Outcome &Out) {
    for (;;) {
      Status St = descend(1, 0, domainSize(Plan.Order[Perm[1]], Opts), Out);
      if (St == Status::Restart) {
        ++Stats.Restarts;
        ++LubyIdx;
        compactStoreIfFull();
        rebuildEpoch(/*IdentityOrder=*/false);
        continue;
      }
      if (St == Status::Sat && Permuted) {
        // The witness was found under a restart-permuted order, so it need
        // not be the lexicographically-first model. Re-search in canonical
        // order with every learned nogood kept: nogoods only exclude
        // assignments some conjunct falsifies, so the model just found
        // still exists and the re-search stops at the canonical first
        // witness — bit-identical to the non-learning search's answer.
        Canonical = true;
        rebuildEpoch(/*IdentityOrder=*/true);
        continue;
      }
      return St;
    }
  }

  Status descend(uint32_t Depth, uint64_t Lo, uint64_t Hi, Outcome &Out) {
    const uint32_t VId = Perm[Depth];
    const VarRef &V = Plan.Order[VId];
    const bool Leaf = Depth + 1 == NumVars;
    bool Contig = false;
    bool ForcedHere = false;
    if (Learn) {
      std::fill(Cause[Depth].begin(), Cause[Depth].end(), 0);
      if (!ForcedAt[Depth].empty()) {
        // Domain-narrowing rules: comparison conjuncts over strictly
        // shallower assignments confine this variable to a contiguous
        // index range (one value per equality), so iterate only the
        // intersection. Every narrowed-out value is a unit propagation
        // whose cause is the rule conjunct's support. The conjuncts
        // themselves still run on the surviving values, so an evaluator
        // mismatch could only lose witnesses, never admit false ones —
        // and the differential suite pins witness identity against the
        // non-propagating engines.
        const int64_t H0 = static_cast<int64_t>(Hi);
        int64_t NLo = static_cast<int64_t>(Lo), NHi = H0;
        for (const ForcedRef &FR : ForcedAt[Depth]) {
          const PlannedConjunct &FC = Plan.Conjuncts[FR.CI];
          const ForcedRule &R = FC.Forced[FR.Rule];
          orCause(Depth, FC.SupportMask);
          if (chargeWork(1)) {
            Out.Count = Count;
            return Status::Deadline;
          }
          int64_t VIdx; // rhs value as a 0-based index, clamped to [-1,H0]
          if (R.IsArray) {
            VIdx = static_cast<int64_t>(arrayIndexOf(ArrVal[R.OtherArr]));
          } else {
            ForcedScratch.Ints.clear();
            ForcedScratch.Arrays.clear();
            for (const auto &RV : R.RhsVars) {
              if (RV.first.Kind == VarKind::Int)
                ForcedScratch.Ints[RV.first] = IntVal[RV.second];
              else
                ForcedScratch.Arrays[RV.first] = ArrVal[RV.second];
            }
            int64_t Val = evalExpr(R.Rhs, ForcedScratch);
            if (Val < Opts.IntLo)
              VIdx = -1; // below the domain; comparisons saturate
            else if (Val - Opts.IntLo >= H0)
              VIdx = H0; // above the domain
            else
              VIdx = Val - Opts.IntLo;
          }
          switch (R.Rel) {
          case CmpOp::Eq:
            NLo = std::max(NLo, VIdx);
            NHi = std::min(NHi, VIdx + 1);
            break;
          case CmpOp::Le:
            NHi = std::min(NHi, VIdx + 1);
            break;
          case CmpOp::Lt:
            NHi = std::min(NHi, VIdx);
            break;
          case CmpOp::Ge:
            NLo = std::max(NLo, VIdx);
            break;
          case CmpOp::Gt:
            NLo = std::max(NLo, VIdx + 1);
            break;
          default:
            break; // Ne is never stored
          }
          if (NLo >= NHi)
            break;
        }
        if (NLo >= NHi) {
          // Narrowed to nothing: every value dies, with the rule
          // conjuncts' supports as the exhaust cause.
          Stats.UnitPropagations += Hi - Lo;
          Lo = Hi = 0;
        } else {
          const uint64_t Width = static_cast<uint64_t>(NHi - NLo);
          Stats.UnitPropagations += (Hi - Lo) - Width;
          // A range pinned to a single value resolves by propagation
          // alone: like nogood-skipped values it never charges the
          // candidate (decision) budget — deadline-poll and
          // quantifier-step budgets still see the work.
          ForcedHere = Width == 1 && Width != Hi - Lo;
          Lo = static_cast<uint64_t>(NLo);
          Hi = static_cast<uint64_t>(NHi);
        }
      }
    }
    for (uint64_t Index = Lo; Index != Hi; ++Index) {
      if (Learn) {
        // Retract forbids tied to this depth's previous value, then skip
        // the value outright if an active nogood forbids it: every full
        // assignment under it falsifies that nogood's conjunct, so the
        // skip drops no witness and is not counted as a candidate. It is
        // charged to the deadline poll, though — skipping is the work.
        undoForbids(Depth);
        const std::vector<uint32_t> &FC = ForbidCount[Depth];
        if (Index < FC.size() && FC[Index] != 0) {
          ++Stats.UnitPropagations;
          // The forbid's cause: over-approximated by every variable any
          // forbid placed on this depth has depended on this epoch —
          // still a sound exhaust explanation (superset of the union).
          orCause(Depth, ForbidEverCause[Depth]);
          Contig = false;
          if (chargeWork(1)) {
            Out.Count = Count;
            return Status::Deadline;
          }
          continue;
        }
      }
      if (!ForcedHere && ++Count > Opts.MaxCandidates) {
        Out.Count = Count;
        return Status::Budget;
      }
      if (chargeWork(1)) {
        Out.Count = Count;
        return Status::Deadline;
      }
      if (Stats.MaxTrailDepth < Depth + 1)
        Stats.MaxTrailDepth = Depth + 1;
      if (V.Kind == VarKind::Int)
        IntVal[VId] = Opts.IntLo + static_cast<int64_t>(Index);
      else if (Contig)
        Dom.advance(ArrVal[VId]); // decode once, then step in domain order
      else
        ArrVal[VId] = Dom.valueAt(Index);
      Contig = true;

      if (Learn) {
        ValIdx[VId] = Index;
        if (chargeWork(propagate(Depth, Index))) {
          Out.Count = Count;
          return Status::Deadline;
        }
      }

      bool Pruned = false;
      uint32_t FailedCI = 0;
      for (uint32_t CI : (*Checks)[Depth]) {
        bool Holds = checkConjunct(CI);
        if (Budget.Tripped) {
          // The step budget tripped mid-evaluation; the conjunct's value
          // is meaningless and the search must give up here.
          Out.Count = Count;
          Out.StepTrip = true;
          return Status::Budget;
        }
        if (!Holds) {
          Pruned = true;
          FailedCI = CI;
          break;
        }
      }
      if (Pruned) { // the entire subtree under this prefix is dead
        ++Stats.Conflicts;
        if (Learn) {
          orCause(Depth, Plan.Conjuncts[FailedCI].SupportMask);
          learnFrom(FailedCI, Depth, Index);
          if (UseRestarts && !Canonical && ++ConflictsHere >= RestartLimit) {
            Out.Count = Count;
            return Status::Restart;
          }
        }
        continue;
      }

      if (Leaf) {
        captureWitness(Out.Witness);
        Out.Count = Count;
        return Status::Sat;
      }
      Status St =
          descend(Depth + 1, 0, domainSize(Plan.Order[Perm[Depth + 1]], Opts),
                  Out);
      if (St != Status::Exhausted)
        return St;
      if (Learn) {
        // Conflict-directed backjump: the child reports which variables
        // its exhaustion depended on (its own bit already cleared). If
        // this variable is not among them, every remaining value here
        // yields the identical dead subtree — skip them all. Sound
        // because each child value died through conjunct supports or
        // nogood literals, none of which read this variable.
        const std::vector<uint64_t> &ChildCause = Cause[Depth + 1];
        orCause(Depth, ChildCause);
        if (!maskTest(ChildCause, VId)) {
          ++Stats.Backjumps;
          if (chargeWork(1)) {
            Out.Count = Count;
            return Status::Deadline;
          }
          break;
        }
      }
    }
    if (Learn) {
      undoForbids(Depth);
      Cause[Depth][VId / 64] &= ~(uint64_t(1) << (VId % 64));
    }
    Out.Count = Count;
    return Status::Exhausted;
  }

  //===--------------------------------------------------------------------===//
  // Nogood store, forbids, propagation
  //===--------------------------------------------------------------------===//

  void orCause(uint32_t Depth, const std::vector<uint64_t> &Src) {
    std::vector<uint64_t> &D = Cause[Depth];
    for (uint32_t I = 0; I != MaskWords; ++I)
      D[I] |= Src[I];
  }

  static bool maskTest(const std::vector<uint64_t> &M, uint32_t VId) {
    return (M[VId / 64] >> (VId % 64)) & 1;
  }

  /// Forbids domain index \p Val at \p TgtDepth until the depth that
  /// deduced it (\p AtDepth, strictly shallower) changes value.
  void forbid(uint32_t TgtDepth, uint64_t Val, uint32_t AtDepth) {
    bumpForbid(TgtDepth, Val);
    ForbidTrail[AtDepth].push_back(ForbidRef{TgtDepth, Val});
  }

  /// Forbids for the rest of the epoch (unit nogoods: no context to
  /// retract on — the only other literal is the fixed top value).
  void forbidForEpoch(uint32_t TgtDepth, uint64_t Val) {
    bumpForbid(TgtDepth, Val);
  }

  void bumpForbid(uint32_t TgtDepth, uint64_t Val) {
    std::vector<uint32_t> &FC = ForbidCount[TgtDepth];
    if (FC.empty())
      FC.assign(domainSize(Plan.Order[Perm[TgtDepth]], Opts), 0);
    ++FC[Val];
  }

  /// Registers store entry \p NgIdx under its trigger literal's
  /// (depth, value) watch bucket.
  void watchNogood(uint32_t NgIdx, const NgLit &Trigger) {
    uint32_t D = DepthOf[Trigger.Var];
    std::vector<std::vector<uint32_t>> &ByVal = WatchAt[D];
    if (ByVal.empty())
      ByVal.resize(domainSize(Plan.Order[Perm[D]], Opts));
    ByVal[Trigger.Val].push_back(NgIdx);
  }

  void undoForbids(uint32_t Depth) {
    std::vector<ForbidRef> &T = ForbidTrail[Depth];
    if (T.empty())
      return;
    for (const ForbidRef &F : T)
      --ForbidCount[F.Depth][F.Val];
    T.clear();
  }

  /// Runs the nogoods watching \p Depth after it was assigned domain index
  /// \p Index: any nogood whose trigger matches and whose shallower
  /// literals all hold forbids its (strictly deeper) target value on this
  /// depth's trail. Returns the watch-list entries traversed, as deadline
  /// -poll work.
  uint64_t propagate(uint32_t Depth, uint64_t Index) {
    const std::vector<std::vector<uint32_t>> &ByVal = WatchAt[Depth];
    if (Index >= ByVal.size())
      return 0;
    const std::vector<uint32_t> &WL = ByVal[Index];
    for (uint32_t NgIdx : WL) {
      Nogood &Ng = Store[NgIdx];
      size_t K = Ng.Lits.size();
      bool Holds = true;
      for (size_t I = 0; I + 2 < K; ++I)
        if (ValIdx[Ng.Lits[I].Var] != Ng.Lits[I].Val) {
          Holds = false;
          break;
        }
      if (!Holds)
        continue;
      const NgLit &Tgt = Ng.Lits[K - 1];
      uint32_t TgtDepth = DepthOf[Tgt.Var];
      forbid(TgtDepth, Tgt.Val, Depth);
      // Record the forbid's dependencies for backjump cause analysis (a
      // monotone per-epoch over-approximation; see the skip path).
      std::vector<uint64_t> &FE = ForbidEverCause[TgtDepth];
      for (const NgLit &L : Ng.Lits)
        FE[L.Var / 64] |= uint64_t(1) << (L.Var % 64);
      Ng.Act += ActInc;
    }
    return WL.size();
  }

  /// Records the failing conjunct's support as a nogood: the assigned
  /// values of every support variable except the chunk-fixed top one.
  /// Bumps activity for the conflict variables (VSIDS: the increment
  /// grows, implicitly decaying older bumps), immediately forbids the
  /// failing value while its trigger context holds (so the combination
  /// cannot re-fail before backtracking), and stores the nogood for
  /// watched propagation across restart epochs unless the store is full.
  void learnFrom(uint32_t CI, uint32_t Depth, uint64_t Index) {
    const PlannedConjunct &C = Plan.Conjuncts[CI];
    NgScratch.clear();
    for (uint32_t VId : C.Support) {
      if (VId == 0)
        continue;
      Activity[VId] += ActInc;
      NgScratch.push_back(NgLit{VId, ValIdx[VId]});
    }
    ActInc *= (1.0 / 0.95);
    if (ActInc > 1e100)
      rescaleActivities();
    if (NgScratch.empty())
      return; // supported by the top var alone; the top loop owns it
    std::sort(NgScratch.begin(), NgScratch.end(),
              [&](const NgLit &A, const NgLit &B) {
                return DepthOf[A.Var] < DepthOf[B.Var];
              });
    if (NgScratch.size() == 1) {
      forbidForEpoch(Depth, Index);
    } else {
      forbid(Depth, Index, DepthOf[NgScratch[NgScratch.size() - 2].Var]);
      std::vector<uint64_t> &FE = ForbidEverCause[Depth];
      for (const NgLit &L : NgScratch)
        FE[L.Var / 64] |= uint64_t(1) << (L.Var % 64);
    }
    if (Opts.MaxNogoods != 0 && Store.size() >= Opts.MaxNogoods)
      return; // full: keep the forbid, skip the store
    if (NgScratch.size() >= 2)
      watchNogood(static_cast<uint32_t>(Store.size()),
                  NgScratch[NgScratch.size() - 2]);
    Store.push_back(Nogood{NgScratch, ActInc});
    ++Stats.LearnedNogoods;
  }

  void rescaleActivities() {
    for (double &A : Activity)
      A *= 1e-100;
    for (Nogood &Ng : Store)
      Ng.Act *= 1e-100;
    ActInc *= 1e-100;
  }

  //===--------------------------------------------------------------------===//
  // Epochs
  //===--------------------------------------------------------------------===//

  /// Drops all learned state at a top-variable value boundary. Everything
  /// the conflict-driven machinery knows derives from the current top
  /// value's subtree, which makes each subtree a pure function of
  /// (plan, top value, options) — the property the Jobs chunk replay and
  /// the shard tier rely on for bit-identical verdicts.
  void resetLearning() {
    Store.clear();
    for (uint32_t D = 0; D != NumVars; ++D) {
      WatchAt[D].clear();
      ForbidCount[D].clear();
      ForbidTrail[D].clear();
      std::fill(ForbidEverCause[D].begin(), ForbidEverCause[D].end(), 0);
    }
    std::fill(Activity.begin(), Activity.end(), 0.0);
    ActInc = 1.0;
    LubyIdx = 0;
    ConflictsHere = 0;
    RestartLimit = RestartUnit;
    Canonical = false;
    if (Permuted)
      applyIdentityOrder();
  }

  void applyIdentityOrder() {
    for (uint32_t I = 0; I != NumVars; ++I)
      Perm[I] = DepthOf[I] = I;
    Checks = &Plan.ChecksAt;
    Permuted = false;
    rebuildForcedAt();
  }

  /// Recomputes which domain-narrowing rules fire at each depth under
  /// the current Perm/DepthOf.
  void rebuildForcedAt() {
    ForcedAt.assign(NumVars, {});
    if (!Plan.HasForced)
      return;
    for (uint32_t CI = 0; CI != Plan.Conjuncts.size(); ++CI) {
      const PlannedConjunct &C = Plan.Conjuncts[CI];
      for (uint32_t RI = 0; RI != C.Forced.size(); ++RI) {
        const ForcedRule &R = C.Forced[RI];
        uint32_t D = DepthOf[R.Target];
        if (D == 0)
          continue; // the top depth is the chunked loop
        bool Applies = true;
        for (const auto &RV : R.RhsVars)
          if (DepthOf[RV.second] >= D) {
            Applies = false;
            break;
          }
        if (Applies)
          ForcedAt[D].push_back(ForcedRef{CI, RI});
      }
    }
  }

  /// Inverse of ArrayDomain::valueAt for this worker's domain: lengths
  /// ascending (all values of length L precede length L+1's block), then
  /// element digits least-significant first over [ElemLo, ElemHi].
  uint64_t arrayIndexOf(const ArrayModelValue &A) const {
    uint64_t Span = Dom.ElemHi >= Dom.ElemLo
                        ? static_cast<uint64_t>(Dom.ElemHi - Dom.ElemLo) + 1
                        : 0;
    uint64_t Idx = 0, Pow = 1;
    for (int64_t K = 0; K != A.Length; ++K) {
      Idx += Pow;
      Idx += static_cast<uint64_t>(A.Elems[K] - Dom.ElemLo) * Pow;
      Pow *= Span;
    }
    return Idx;
  }

  /// Starts a new search epoch after a restart (activity order) or for the
  /// canonical re-search (identity order): reorders the constrained inner
  /// variables, recomputes which depth checks each conjunct, re-sorts
  /// every stored nogood under the new order, and reinstalls watches and
  /// epoch forbids. Support-completeness survives any permutation because
  /// a conjunct is re-attached at the maximum depth of its support.
  void rebuildEpoch(bool IdentityOrder) {
    ConflictsHere = 0;
    RestartLimit = RestartUnit * luby(LubyIdx + 1);
    if (IdentityOrder) {
      applyIdentityOrder();
    } else {
      // Constrained variables (minus the fixed top) by activity, most
      // active first; ties and untouched variables keep canonical order
      // (stable sort), and unconstrained extras keep their tail positions.
      std::vector<uint32_t> Inner;
      for (uint32_t VId = 1; VId < Plan.NumConstrained; ++VId)
        Inner.push_back(VId);
      std::stable_sort(Inner.begin(), Inner.end(),
                       [&](uint32_t A, uint32_t B) {
                         return Activity[A] > Activity[B];
                       });
      Perm[0] = 0;
      for (uint32_t I = 0; I != Inner.size(); ++I)
        Perm[1 + I] = Inner[I];
      for (uint32_t VId = Plan.NumConstrained; VId < NumVars; ++VId)
        Perm[VId] = VId;
      Permuted = false;
      for (uint32_t I = 0; I != NumVars; ++I) {
        DepthOf[Perm[I]] = I;
        if (Perm[I] != I)
          Permuted = true;
      }
      if (!Permuted) {
        Checks = &Plan.ChecksAt;
        rebuildForcedAt();
      } else {
        PermChecks.assign(NumVars, {});
        for (uint32_t CI = 0; CI != Plan.Conjuncts.size(); ++CI) {
          const PlannedConjunct &C = Plan.Conjuncts[CI];
          if (C.Support.empty())
            continue; // variable-free: a root check, not depth-attached
          uint32_t D = 0;
          for (uint32_t VId : C.Support)
            D = std::max(D, DepthOf[VId]);
          PermChecks[D].push_back(CI);
        }
        // Same smallest-support-first discipline as the canonical plan.
        for (std::vector<uint32_t> &Cs : PermChecks)
          std::stable_sort(Cs.begin(), Cs.end(),
                           [&](uint32_t A, uint32_t B) {
                             return Plan.Conjuncts[A].Support.size() <
                                    Plan.Conjuncts[B].Support.size();
                           });
        Checks = &PermChecks;
        rebuildForcedAt();
      }
    }
    for (uint32_t D = 0; D != NumVars; ++D) {
      WatchAt[D].clear();
      ForbidCount[D].clear();
      ForbidTrail[D].clear();
      std::fill(ForbidEverCause[D].begin(), ForbidEverCause[D].end(), 0);
    }
    for (uint32_t I = 0; I != Store.size(); ++I) {
      Nogood &Ng = Store[I];
      std::sort(Ng.Lits.begin(), Ng.Lits.end(),
                [&](const NgLit &A, const NgLit &B) {
                  return DepthOf[A.Var] < DepthOf[B.Var];
                });
      if (Ng.Lits.size() == 1)
        forbidForEpoch(DepthOf[Ng.Lits[0].Var], Ng.Lits[0].Val);
      else
        watchNogood(I, Ng.Lits[Ng.Lits.size() - 2]);
    }
  }

  /// At a restart with a full store, keeps the most active half (stable:
  /// ties keep older nogoods — deterministic). The dropped forbids die
  /// with the epoch the caller is about to rebuild.
  void compactStoreIfFull() {
    if (Opts.MaxNogoods == 0 || Store.size() < Opts.MaxNogoods)
      return;
    std::vector<uint32_t> Idx(Store.size());
    for (uint32_t I = 0; I != Idx.size(); ++I)
      Idx[I] = I;
    std::stable_sort(Idx.begin(), Idx.end(), [&](uint32_t A, uint32_t B) {
      return Store[A].Act > Store[B].Act;
    });
    size_t Keep = std::max<size_t>(1, Opts.MaxNogoods / 2);
    Idx.resize(Keep);
    std::sort(Idx.begin(), Idx.end()); // keep insertion order
    std::vector<Nogood> Next;
    Next.reserve(Keep);
    for (uint32_t I : Idx)
      Next.push_back(std::move(Store[I]));
    Stats.EvictedNogoods += Store.size() - Next.size();
    Store.swap(Next);
  }

  void captureWitness(Model &W) {
    for (size_t I = 0; I != Plan.Order.size(); ++I) {
      const VarRef &V = Plan.Order[I];
      if (V.Kind == VarKind::Int)
        W.Ints[V] = IntVal[I];
      else
        W.Arrays[V] = ArrVal[I];
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Search engine
//===----------------------------------------------------------------------===//

SatResult BoundedSolver::search(const std::vector<const BoolExpr *> &Formulas,
                                const VarRefSet &ExtraVars, Model *ModelOut) {
  // Clear stale entries from a reused caller Model up front, so non-Sat
  // verdicts never leave a previous witness behind.
  if (ModelOut) {
    ModelOut->Ints.clear();
    ModelOut->Arrays.clear();
  }

  FormulaEvalOptions EvalOpts;
  EvalOpts.IntLo = Opts.IntLo;
  EvalOpts.IntHi = Opts.IntHi;
  EvalOpts.MaxArrayLen = Opts.MaxArrayLen;
  EvalOpts.ArrayElemLo = Opts.ArrayElemLo;
  EvalOpts.ArrayElemHi = Opts.ArrayElemHi;

  SatResult Exhausted =
      Opts.ExhaustionMeansUnsat ? SatResult::Unsat : SatResult::Unknown;
  LastStop = StopReason::Decided;
  LastQueryConflicts = 0;

  if (QueryDeadline.expired()) {
    LastStop = StopReason::Deadline;
    return SatResult::Unknown;
  }

  SearchPlan Plan = buildPlan(Formulas, ExtraVars, Ctx);
  if (Plan.TriviallyFalse)
    return Exhausted;

  size_t N = Plan.Order.size();
  if (N == 0) {
    // One (empty) candidate: the conjuncts are all variable-free.
    ++Candidates;
    SearchWorker Root(Plan, Opts, EvalOpts, QueryDeadline);
    bool Hold = Root.checkRoots();
    QuantSteps += Root.steps();
    if (Root.tripped()) {
      LastStop = StopReason::StepBudget;
      return SatResult::Unknown;
    }
    return Hold ? SatResult::Sat : Exhausted;
  }

  // The root checks run once on this thread; their quantifier steps stay
  // charged to Main's budget, so chunk 0 (which reuses Main) continues the
  // exact sequential counter.
  SearchWorker Main(Plan, Opts, EvalOpts, QueryDeadline);
  if (!Main.checkRoots()) {
    QuantSteps += Main.steps();
    if (Main.tripped()) {
      LastStop = StopReason::StepBudget;
      return SatResult::Unknown;
    }
    return Exhausted;
  }

  uint64_t TopDomain = domainSize(Plan.Order[0], Opts);
  if (TopDomain == 0)
    return Exhausted;

  // Chunk the top variable's domain contiguously across the workers. Every
  // chunk searches independently with the full candidate budget; the
  // replay below reconstructs the sequential verdict exactly, so Jobs
  // never changes the answer, the witness, or a budget trip.
  uint64_t Chunks = std::min<uint64_t>(std::max(1u, Opts.Jobs), TopDomain);
  std::vector<SearchWorker::Outcome> Outcomes(Chunks);
  auto ChunkLo = [&](uint64_t I) { return TopDomain * I / Chunks; };

  // Chunks 1..C-1 go to spawned workers; chunk 0 runs on this thread,
  // reusing Main's executors (with Chunks == 1 this is simply the
  // sequential path, no threads involved).
  std::vector<std::thread> Pool;
  Pool.reserve(Chunks - 1);
  for (uint64_t I = 1; I != Chunks; ++I)
    Pool.emplace_back([&, I] {
      SearchWorker W(Plan, Opts, EvalOpts, QueryDeadline);
      Outcomes[I] = W.run(ChunkLo(I), ChunkLo(I + 1));
    });
  Outcomes[0] = Main.run(0, ChunkLo(1));
  for (std::thread &T : Pool)
    T.join();

  for (const SearchWorker::Outcome &O : Outcomes) {
    Candidates += O.Count;
    QuantSteps += O.Steps;
    SearchStats.merge(O.Search);
    LastQueryConflicts += O.Search.Conflicts;
  }

  // A deadline trip anywhere means the query ran out of time; the verdict
  // is Unknown regardless of what other chunks found (which chunk trips
  // first is time-dependent, so no replay can make this deterministic —
  // that is exactly why deadline verdicts are never cached or pinned).
  for (const SearchWorker::Outcome &O : Outcomes)
    if (O.St == SearchWorker::Status::Deadline) {
      LastStop = StopReason::Deadline;
      return SatResult::Unknown;
    }

  // Replay the chunks in domain order. Chunk searches are independent, so
  // each chunk's candidate and quantifier-step counts are identical to
  // what a sequential run would spend inside it; accumulating the counts
  // in order therefore reproduces the sequential budget checks, and
  // taking the first Sat reproduces the sequential first witness. (A Sat
  // chunk's counts stop at its witness, so "the sequential run trips
  // before reaching this chunk's witness" is decidable from the sums.)
  uint64_t CumCand = 0, CumSteps = 0;
  for (const SearchWorker::Outcome &O : Outcomes) {
    if (CumCand + O.Count > Opts.MaxCandidates) {
      // A sequential run trips inside this chunk. When both budgets would
      // trip in the same chunk the candidate budget is reported; the
      // verdict (Unknown) never depends on the choice.
      LastStop = StopReason::CandidateBudget;
      return SatResult::Unknown;
    }
    if (Opts.MaxQuantSteps != 0 && CumSteps + O.Steps > Opts.MaxQuantSteps) {
      LastStop = StopReason::StepBudget;
      return SatResult::Unknown;
    }
    if (O.St == SearchWorker::Status::Budget) {
      // Defensive: a local trip always exceeds the cumulative budget too.
      LastStop = O.StepTrip ? StopReason::StepBudget
                            : StopReason::CandidateBudget;
      return SatResult::Unknown;
    }
    CumCand += O.Count;
    CumSteps += O.Steps;
    if (O.St == SearchWorker::Status::Sat) {
      if (ModelOut)
        *ModelOut = O.Witness;
      return SatResult::Sat;
    }
  }
  return Exhausted;
}

//===----------------------------------------------------------------------===//
// Legacy enumerate engine (differential partner / ablation baseline)
//===----------------------------------------------------------------------===//

namespace {

/// Odometer over the full assignment space: scalars range over
/// [IntLo, IntHi]; arrays range over lengths 0..MaxArrayLen with elements
/// in [ArrayElemLo, ArrayElemHi].
class AssignmentEnumerator {
public:
  AssignmentEnumerator(const std::vector<VarRef> &Vars,
                       const BoundedSolverOptions &Opts)
      : Vars(Vars), Opts(Opts), Dom(arrayDomain(Opts)) {
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        Current.Ints[V] = Opts.IntLo;
      } else {
        Current.Arrays[V] = ArrayModelValue(); // length 0
      }
    }
  }

  const Model &current() const { return Current; }

  /// Advances to the next assignment; returns false when wrapped around.
  bool advance() {
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        int64_t &Val = Current.Ints[V];
        if (Val < Opts.IntHi) {
          ++Val;
          return true;
        }
        Val = Opts.IntLo; // carry
        continue;
      }
      if (Dom.advance(Current.Arrays[V]))
        return true;
      Current.Arrays[V] = ArrayModelValue(); // carry
    }
    return false;
  }

private:
  const std::vector<VarRef> &Vars;
  const BoundedSolverOptions &Opts;
  ArrayDomain Dom;
  Model Current;
};

} // namespace

SatResult
BoundedSolver::enumerate(const std::vector<const BoolExpr *> &Formulas,
                         const VarRefSet &ExtraVars, Model *ModelOut) {
  if (ModelOut) {
    ModelOut->Ints.clear();
    ModelOut->Arrays.clear();
  }

  VarRefSet VarSet = ExtraVars;
  for (const BoolExpr *F : Formulas)
    collectFreeVars(F, VarSet);
  std::vector<VarRef> Vars(VarSet.begin(), VarSet.end());

  FormulaEvalOptions EvalOpts;
  EvalOpts.IntLo = Opts.IntLo;
  EvalOpts.IntHi = Opts.IntHi;
  EvalOpts.MaxArrayLen = Opts.MaxArrayLen;
  EvalOpts.ArrayElemLo = Opts.ArrayElemLo;
  EvalOpts.ArrayElemHi = Opts.ArrayElemHi;

  LastStop = StopReason::Decided;
  LastQueryConflicts = 0;
  if (QueryDeadline.expired()) {
    LastStop = StopReason::Deadline;
    return SatResult::Unknown;
  }
  AssignmentEnumerator Enum(Vars, Opts);
  uint64_t Evaluated = 0;
  do {
    if (++Evaluated > Opts.MaxCandidates) {
      Candidates += Evaluated - 1;
      LastStop = StopReason::CandidateBudget;
      return SatResult::Unknown;
    }
    if ((Evaluated & 0xFFF) == 0 && QueryDeadline.expired()) {
      Candidates += Evaluated;
      LastStop = StopReason::Deadline;
      return SatResult::Unknown;
    }
    const Model &M = Enum.current();
    bool AllHold = true;
    for (const BoolExpr *F : Formulas) {
      if (!evalFormula(F, M, EvalOpts)) {
        AllHold = false;
        break;
      }
    }
    if (AllHold) {
      Candidates += Evaluated;
      if (ModelOut)
        *ModelOut = M;
      return SatResult::Sat;
    }
  } while (Enum.advance());

  Candidates += Evaluated;
  return Opts.ExhaustionMeansUnsat ? SatResult::Unsat : SatResult::Unknown;
}

//===----------------------------------------------------------------------===//
// Solver interface
//===----------------------------------------------------------------------===//

Result<SatResult>
BoundedSolver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  ++Queries;
  return Opts.Eng == BoundedSolverOptions::Engine::Search
             ? search(Formulas, VarRefSet(), nullptr)
             : enumerate(Formulas, VarRefSet(), nullptr);
}

Result<SatResult>
BoundedSolver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                                 const VarRefSet &Vars, Model &ModelOut) {
  ++Queries;
  return Opts.Eng == BoundedSolverOptions::Engine::Search
             ? search(Formulas, Vars, &ModelOut)
             : enumerate(Formulas, Vars, &ModelOut);
}
