//===- BoundedSolver.cpp - Exhaustive small-domain backend --------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/BoundedSolver.h"

#include <cassert>

using namespace relax;

namespace {

/// Odometer over the assignment space: scalars range over [IntLo, IntHi];
/// arrays range over lengths 0..MaxArrayLen with elements in
/// [ArrayElemLo, ArrayElemHi].
class AssignmentEnumerator {
public:
  AssignmentEnumerator(const std::vector<VarRef> &Vars,
                       const BoundedSolverOptions &Opts)
      : Vars(Vars), Opts(Opts) {
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        Current.Ints[V] = Opts.IntLo;
      } else {
        Current.Arrays[V] = ArrayModelValue(); // length 0
      }
    }
  }

  const Model &current() const { return Current; }

  /// Advances to the next assignment; returns false when wrapped around.
  bool advance() {
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        int64_t &Val = Current.Ints[V];
        if (Val < Opts.IntHi) {
          ++Val;
          return true;
        }
        Val = Opts.IntLo; // carry
        continue;
      }
      if (advanceArray(Current.Arrays[V]))
        return true;
      Current.Arrays[V] = ArrayModelValue(); // carry
    }
    return false;
  }

private:
  const std::vector<VarRef> &Vars;
  const BoundedSolverOptions &Opts;
  Model Current;

  bool advanceArray(ArrayModelValue &A) {
    // Advance elements as digits; then grow the length.
    for (int64_t &E : A.Elems) {
      if (E < Opts.ArrayElemHi) {
        ++E;
        return true;
      }
      E = Opts.ArrayElemLo;
    }
    if (A.Length < Opts.MaxArrayLen) {
      ++A.Length;
      A.Elems.assign(static_cast<size_t>(A.Length), Opts.ArrayElemLo);
      return true;
    }
    return false;
  }
};

} // namespace

SatResult BoundedSolver::search(const std::vector<const BoolExpr *> &Formulas,
                                const VarRefSet &ExtraVars, Model *ModelOut) {
  VarRefSet VarSet = ExtraVars;
  for (const BoolExpr *F : Formulas)
    collectFreeVars(F, VarSet);
  std::vector<VarRef> Vars(VarSet.begin(), VarSet.end());

  FormulaEvalOptions EvalOpts;
  EvalOpts.IntLo = Opts.IntLo;
  EvalOpts.IntHi = Opts.IntHi;
  EvalOpts.MaxArrayLen = Opts.MaxArrayLen;
  EvalOpts.ArrayElemLo = Opts.ArrayElemLo;
  EvalOpts.ArrayElemHi = Opts.ArrayElemHi;

  AssignmentEnumerator Enum(Vars, Opts);
  uint64_t Candidates = 0;
  do {
    if (++Candidates > Opts.MaxCandidates)
      return SatResult::Unknown;
    const Model &M = Enum.current();
    bool AllHold = true;
    for (const BoolExpr *F : Formulas) {
      if (!evalFormula(F, M, EvalOpts)) {
        AllHold = false;
        break;
      }
    }
    if (AllHold) {
      if (ModelOut)
        *ModelOut = M;
      return SatResult::Sat;
    }
  } while (Enum.advance());

  return Opts.ExhaustionMeansUnsat ? SatResult::Unsat : SatResult::Unknown;
}

Result<SatResult>
BoundedSolver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  ++Queries;
  return search(Formulas, VarRefSet(), nullptr);
}

Result<SatResult>
BoundedSolver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                                 const VarRefSet &Vars, Model &ModelOut) {
  ++Queries;
  return search(Formulas, Vars, &ModelOut);
}
