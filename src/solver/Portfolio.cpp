//===- Portfolio.cpp - Tiered solver portfolio --------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/Portfolio.h"

#include "solver/ShardPool.h"
#include "support/Casting.h"

#include <cassert>

using namespace relax;

const char *relax::tierKindName(TierKind K) {
  switch (K) {
  case TierKind::Simplify:
    return "simplify";
  case TierKind::Bounded:
    return "bounded";
  case TierKind::Smt:
    return "z3";
  case TierKind::Shard:
    return "shard";
  }
  return "?";
}

Result<std::vector<TierKind>> relax::parsePipelineSpec(std::string_view Spec) {
  std::vector<TierKind> Tiers;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Name = Spec.substr(
        Pos, Comma == std::string_view::npos ? Spec.size() - Pos
                                             : Comma - Pos);
    if (Name == "simplify")
      Tiers.push_back(TierKind::Simplify);
    else if (Name == "bounded")
      Tiers.push_back(TierKind::Bounded);
    else if (Name == "z3")
      Tiers.push_back(TierKind::Smt);
    else if (Name == "shard")
      Tiers.push_back(TierKind::Shard);
    else
      return Result<std::vector<TierKind>>::error(
          "unknown pipeline tier '" + std::string(Name) +
          "' (valid tiers: simplify, bounded, z3, shard)");
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  if (Tiers.empty())
    return Result<std::vector<TierKind>>::error("empty pipeline spec");
  for (size_t I = 0; I != Tiers.size(); ++I) {
    if (Tiers[I] == TierKind::Simplify && I != 0)
      return Result<std::vector<TierKind>>::error(
          "the simplify tier must come first in the pipeline (it runs on "
          "the preparing thread, before any escalation)");
    if (Tiers[I] == TierKind::Shard && I + 1 != Tiers.size())
      return Result<std::vector<TierKind>>::error(
          "the shard tier must come last in the pipeline (it hands the "
          "final verdict to the worker pool, so no tier after it could "
          "ever run)");
    for (size_t J = I + 1; J != Tiers.size(); ++J)
      if (Tiers[I] == Tiers[J])
        return Result<std::vector<TierKind>>::error(
            std::string("duplicate pipeline tier '") +
            tierKindName(Tiers[I]) + "'");
  }
  return Tiers;
}

std::string relax::formatPipeline(const std::vector<TierKind> &Tiers) {
  std::string Out;
  for (TierKind K : Tiers) {
    if (!Out.empty())
      Out += ",";
    Out += tierKindName(K);
  }
  return Out;
}

std::string relax::boundedOptionsFingerprint(const BoundedSolverOptions &O) {
  std::string Out = "bounded=";
  for (int64_t V : {O.IntLo, O.IntHi, O.MaxArrayLen, O.ArrayElemLo,
                    O.ArrayElemHi})
    Out += std::to_string(V) + ",";
  Out += std::to_string(O.MaxCandidates) + ",";
  Out += std::to_string(O.MaxQuantSteps) + ",";
  Out += O.ExhaustionMeansUnsat ? "exhaust-unsat," : "exhaust-unknown,";
  Out += O.Eng == BoundedSolverOptions::Engine::Enumerate ? "enumerate"
                                                          : "search";
  // Learning knobs change which budget an identical query trips (skipped
  // candidates are uncounted), so configs differing only here must never
  // share persistent-cache keys.
  Out += O.Learning ? ",learn" : ",no-learn";
  Out += O.Restarts ? ",restarts" : ",no-restarts";
  Out += ",max-nogoods=" + std::to_string(O.MaxNogoods);
  return Out;
}

std::string relax::portfolioConfigFingerprint(const PortfolioOptions &Opts,
                                              bool HaveSmtBackend) {
  // The effective chain: a trailing shard tier answers with exactly the
  // verdict its ShardWorkerPipeline tail would produce in process, so
  // --shards=N and --shards=0 runs of one logical pipeline share keys.
  std::vector<TierKind> Effective = Opts.Tiers;
  if (!Effective.empty() && Effective.back() == TierKind::Shard) {
    Effective.pop_back();
    if (Result<std::vector<TierKind>> Tail =
            parsePipelineSpec(Opts.ShardWorkerPipeline))
      for (TierKind K : *Tail)
        Effective.push_back(K);
    else // unparseable tail: keep the literal spelling distinct
      Effective.push_back(TierKind::Shard);
  }
  std::string Out = "pipeline=" + formatPipeline(Effective);
  Out += " " + boundedOptionsFingerprint(Opts.Bounded);
  Out += " final-step-factor=" + std::to_string(Opts.FinalBoundedStepFactor);
  Out += std::string(" smt=") + (HaveSmtBackend ? "z3" : "bounded-full");
  return Out;
}

void PortfolioStats::merge(const PortfolioStats &O) {
  if (Tiers.size() < O.Tiers.size())
    Tiers.resize(O.Tiers.size());
  for (size_t I = 0; I != O.Tiers.size(); ++I) {
    Tiers[I].Settled += O.Tiers[I].Settled;
    Tiers[I].GaveUp += O.Tiers[I].GaveUp;
    Tiers[I].BudgetTrips += O.Tiers[I].BudgetTrips;
  }
  Queries += O.Queries;
  Escalations += O.Escalations;
}

PortfolioSolver::PortfolioSolver(AstContext &Ctx, PortfolioOptions Opts,
                                 BackendFactory SmtFactory)
    : Ctx(Ctx), Opts(std::move(Opts)), Simp(Ctx) {
  assert(!this->Opts.Tiers.empty() && "portfolio needs at least one tier");
  size_t N = this->Opts.Tiers.size();
  Stats.Tiers.resize(N);
  Backends.resize(N);
  BoundedTier.resize(N, nullptr);
  TierNames.resize(N);
  // The Smt tier's construction, shared with the pool-less shard
  // degradation: the real backend when a factory exists, otherwise
  // bounded-at-full-domain (same domains, relaxed budgets, authoritative
  // exhaustion).
  auto MakeSmtTier = [&](size_t I) {
    if (SmtFactory) {
      Backends[I] = SmtFactory();
      TierNames[I] = Backends[I]->name();
      return;
    }
    BoundedSolverOptions B = this->Opts.Bounded;
    B.ExhaustionMeansUnsat = true;
    if (B.MaxQuantSteps != 0)
      B.MaxQuantSteps *= this->Opts.FinalBoundedStepFactor;
    B.MaxCandidates *= this->Opts.FinalBoundedStepFactor;
    auto S = std::make_unique<BoundedSolver>(B, &Ctx);
    BoundedTier[I] = S.get();
    Backends[I] = std::move(S);
    TierNames[I] = "bounded-full";
  };

  // The in-process tail the shard workers run: exactly what a worker
  // process builds from ShardWorkerPipeline and the request's bounded
  // configuration. Used for the tier itself when there is no pool, and
  // as the runtime fallback when there is one.
  struct Tail {
    std::unique_ptr<Solver> S;
    BoundedSolver *B = nullptr;
    const char *Name = nullptr;
  };
  auto MakeShardTail = [&]() -> Tail {
    Tail T;
    if (this->Opts.ShardWorkerPipeline == "bounded") {
      BoundedSolverOptions B = this->Opts.Bounded;
      B.ExhaustionMeansUnsat = true;
      auto S = std::make_unique<BoundedSolver>(B, &Ctx);
      T.B = S.get();
      T.S = std::move(S);
      T.Name = "bounded";
      return T;
    }
    if (SmtFactory) {
      T.S = SmtFactory();
      T.Name = T.S->name();
      return T;
    }
    BoundedSolverOptions B = this->Opts.Bounded;
    B.ExhaustionMeansUnsat = true;
    if (B.MaxQuantSteps != 0)
      B.MaxQuantSteps *= this->Opts.FinalBoundedStepFactor;
    B.MaxCandidates *= this->Opts.FinalBoundedStepFactor;
    auto S = std::make_unique<BoundedSolver>(B, &Ctx);
    T.B = S.get();
    T.S = std::move(S);
    T.Name = "bounded-full";
    return T;
  };

  for (size_t I = 0; I != N; ++I) {
    TierKind K = this->Opts.Tiers[I];
    bool Last = I + 1 == N;
    switch (K) {
    case TierKind::Simplify:
      assert(I == 0 && "simplify tier must come first");
      TierNames[I] = "simplify";
      break;
    case TierKind::Bounded: {
      BoundedSolverOptions B = this->Opts.Bounded;
      // As a non-final tier, exhaustion escalates: bounded Unsat only
      // means "no model in the domain". As the final tier it keeps the
      // classic authoritative convention.
      B.ExhaustionMeansUnsat = Last;
      auto S = std::make_unique<BoundedSolver>(B, &Ctx);
      BoundedTier[I] = S.get();
      Backends[I] = std::move(S);
      TierNames[I] = "bounded";
      break;
    }
    case TierKind::Smt:
      MakeSmtTier(I);
      break;
    case TierKind::Shard:
      assert(Last && "shard tier must come last");
      if (this->Opts.Pool) {
        Backends[I] = std::make_unique<ShardSolver>(
            *this->Opts.Pool, Ctx.symbols(), this->Opts.ShardWorkerPipeline,
            this->Opts.Bounded, this->Opts.FinalBoundedStepFactor);
        TierNames[I] = "shard";
        // Graceful degradation target: when the pool is unhealthy the
        // tier answers from this identical in-process tail at runtime.
        Tail T = MakeShardTail();
        ShardFallback = std::move(T.S);
        ShardFallbackBounded = T.B;
        ShardFallbackName = T.Name;
        ShardFallbackSettledBy = std::string("shard-degraded:") + T.Name;
      } else {
        // Pool-less degradation to the in-process tail the workers would
        // run (so `--shards=0` and a pool-less test config mean "same
        // pipeline, no processes").
        Tail T = MakeShardTail();
        BoundedTier[I] = T.B;
        Backends[I] = std::move(T.S);
        TierNames[I] = T.Name;
      }
      break;
    }
  }
}

size_t PortfolioSolver::firstWorkerTier() const {
  size_t I = 0;
  while (I != Opts.Tiers.size() && Opts.Tiers[I] == TierKind::Simplify)
    ++I;
  return I;
}

size_t PortfolioSolver::firstEscalationTier() const {
  // Inline stage: the simplify prefix's first successor (typically the
  // budgeted bounded tier); everything after it is queued.
  size_t I = firstWorkerTier();
  return I == Opts.Tiers.size() ? I : I + 1;
}

Result<SatResult>
PortfolioSolver::runSimplifyTier(size_t I,
                                 const std::vector<const BoolExpr *> &F,
                                 Model *ModelOut, bool &Settled) {
  const BoolExpr *Conj = F.size() == 1 ? F[0] : Ctx.conj(F);
  const BoolExpr *S = Simp.simplify(Conj);
  const auto *Lit = dyn_cast<BoolLitExpr>(S);
  if (!Lit) {
    Settled = false;
    return SatResult::Unknown;
  }
  Settled = true;
  if (ModelOut) {
    // A constant query constrains nothing; on Sat any assignment (the
    // defaults) is a model.
    ModelOut->Ints.clear();
    ModelOut->Arrays.clear();
  }
  return Lit->value() ? SatResult::Sat : SatResult::Unsat;
}

Result<SatResult>
PortfolioSolver::checkRange(size_t From, size_t To,
                            const std::vector<const BoolExpr *> &Formulas,
                            const VarRefSet *Vars, Model *ModelOut) {
  // Snapshot-delta so --explain can attribute conflicts to the obligation
  // this call served, whichever bounded tiers it touched. Shard-settled
  // queries contribute 0 (out-of-process search, counters remote).
  uint64_t Before = boundedSearchStats().Conflicts;
  Result<SatResult> R = checkRangeImpl(From, To, Formulas, Vars, ModelOut);
  LastConflicts = boundedSearchStats().Conflicts - Before;
  return R;
}

Result<SatResult>
PortfolioSolver::checkRangeImpl(size_t From, size_t To,
                                const std::vector<const BoolExpr *> &Formulas,
                                const VarRefSet *Vars, Model *ModelOut) {
  size_t N = Opts.Tiers.size();
  assert(From <= To && To <= N);
  LastSettled = false;
  LastSettledTier = -1;
  LastSettledBy = "portfolio";
  LastDeadlined = false;
  // The trail covers one checkRange call; the scheduler concatenates
  // stage trails itself. Queries are counted once per logical query.
  LastTrail.clear();
  // Model re-queries for counterexample details run with stats paused
  // (see ScopedStatsPause) so they do not double-count.
  auto Count = [&](uint64_t &C) {
    if (!StatsPaused)
      ++C;
  };
  if (From == 0)
    Count(Stats.Queries);

  auto AppendTrail = [&](size_t I, const std::string &Why) {
    if (!LastTrail.empty())
      LastTrail += "; ";
    LastTrail += std::string(TierNames[I]) + ": " + Why;
  };

  for (size_t I = From; I != To; ++I) {
    bool LastTier = I + 1 == N;
    // Deadline gate at every tier boundary: an expired deadline settles
    // the query as a gave-up with reason "deadline" — never a hang, and
    // never an answer a tier did not actually compute.
    if (QueryDeadline.expired()) {
      AppendTrail(I, "deadline expired before this tier ran");
      LastSettled = true;
      LastSettledTier = static_cast<int>(I);
      LastSettledBy = "deadline";
      LastDeadlined = true;
      return SatResult::Unknown;
    }
    if (Opts.Tiers[I] == TierKind::Simplify) {
      bool Settled = false;
      Result<SatResult> R = runSimplifyTier(I, Formulas, ModelOut, Settled);
      if (Settled) {
        Count(Stats.Tiers[I].Settled);
        LastSettled = true;
        LastSettledTier = static_cast<int>(I);
        LastSettledBy = TierNames[I];
        return R;
      }
      Count(Stats.Tiers[I].GaveUp);
      if (!LastTier)
        Count(Stats.Escalations);
      AppendTrail(I, "did not fold to a constant");
      continue;
    }

    // Route the pool-backed shard tier to its in-process fallback tail
    // when the pool has degraded (every worker dead). Both sides compute
    // the same pure function of the request, so the switch is invisible
    // in the verdict — only SettledBy records it.
    bool IsShard = Opts.Tiers[I] == TierKind::Shard && Opts.Pool != nullptr &&
                   ShardFallback != nullptr;
    bool UsedFallback = false;
    Solver *Active = Backends[I].get();
    if (IsShard && Opts.Pool->degraded()) {
      Active = ShardFallback.get();
      UsedFallback = true;
      Opts.Pool->noteFallback();
      AppendTrail(I, std::string("pool degraded; answering with the "
                                 "in-process ") +
                         ShardFallbackName + " tail");
    }

    Active->setDeadline(QueryDeadline);
    Result<SatResult> R =
        ModelOut && Vars ? Active->checkSatWithModel(Formulas, *Vars, *ModelOut)
                         : Active->checkSat(Formulas);
    if (!R.ok() && IsShard && !UsedFallback) {
      // The round trip failed past the pool's single sound retry:
      // degrade this query (and, if the pool is now fully dead, all
      // later ones) to the in-process tail instead of erroring out.
      AppendTrail(I, "error: " + R.message() + "; degrading to the "
                                               "in-process " +
                         ShardFallbackName + " tail");
      Opts.Pool->noteFallback();
      Active = ShardFallback.get();
      UsedFallback = true;
      Active->setDeadline(QueryDeadline);
      R = ModelOut && Vars
              ? Active->checkSatWithModel(Formulas, *Vars, *ModelOut)
              : Active->checkSat(Formulas);
    }
    if (!R.ok()) {
      if (LastTier)
        return R; // nothing left to escalate to
      Count(Stats.Tiers[I].GaveUp);
      Count(Stats.Escalations);
      AppendTrail(I, "error: " + R.message());
      continue;
    }
    if (*R != SatResult::Unknown) {
      Count(Stats.Tiers[I].Settled);
      LastSettled = true;
      LastSettledTier = static_cast<int>(I);
      // The shard tier reports which worker-side tier settled
      // ("shard:z3"); the worker's own give-up trail is appended so
      // --explain shows the full escalation path across the process
      // boundary. A fallback-settled query reports "shard-degraded:<tail>".
      if (UsedFallback) {
        LastSettledBy = ShardFallbackSettledBy.c_str();
      } else if (Opts.Tiers[I] == TierKind::Shard) {
        LastSettledBy = Active->settledBy();
        if (std::string WTrail = Active->giveUpTrail(); !WTrail.empty())
          AppendTrail(I, "worker trail: " + WTrail);
      } else {
        LastSettledBy = TierNames[I];
      }
      return *R;
    }

    // Unknown: compose the give-up reason.
    bool TierDeadlined = Active->lastQueryDeadlined();
    std::string Why = "returned unknown";
    bool BudgetTrip = false;
    const BoundedSolver *BS = UsedFallback ? ShardFallbackBounded
                                           : BoundedTier[I];
    if (BS) {
      switch (BS->lastStop()) {
      case BoundedSolver::StopReason::CandidateBudget:
        Why = "candidate budget (" +
              std::to_string(Opts.Bounded.MaxCandidates) + ") tripped";
        BudgetTrip = true;
        break;
      case BoundedSolver::StopReason::StepBudget:
        Why = "quantifier-step budget tripped";
        BudgetTrip = true;
        break;
      case BoundedSolver::StopReason::Decided:
        Why = "domain exhausted without a model";
        break;
      case BoundedSolver::StopReason::Deadline:
        Why = "deadline reached";
        break;
      }
    }
    if (TierDeadlined)
      Why = "deadline reached";
    if (Opts.Tiers[I] == TierKind::Shard && !UsedFallback)
      if (std::string WTrail = Active->giveUpTrail(); !WTrail.empty())
        Why = "worker trail: " + WTrail;
    Count(Stats.Tiers[I].GaveUp);
    if (BudgetTrip)
      Count(Stats.Tiers[I].BudgetTrips);
    AppendTrail(I, Why);
    if (LastTier) {
      // The final tier's Unknown is the portfolio's verdict. A deadline
      // gave-up reports "deadline" so it is never cached or pinned.
      LastSettled = true;
      LastSettledTier = static_cast<int>(I);
      if (TierDeadlined) {
        LastSettledBy = "deadline";
        LastDeadlined = true;
      } else if (UsedFallback) {
        LastSettledBy = ShardFallbackSettledBy.c_str();
      } else if (Opts.Tiers[I] == TierKind::Shard) {
        LastSettledBy = Active->settledBy();
      } else {
        LastSettledBy = TierNames[I];
      }
      return SatResult::Unknown;
    }
    Count(Stats.Escalations);
  }
  return SatResult::Unknown; // unsettled within [From, To)
}

Result<SatResult>
PortfolioSolver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  ++Queries;
  return checkRange(0, tierCount(), Formulas, nullptr, nullptr);
}

Result<SatResult>
PortfolioSolver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                                   const VarRefSet &Vars, Model &ModelOut) {
  ++Queries;
  return checkRange(0, tierCount(), Formulas, &Vars, &ModelOut);
}

uint64_t PortfolioSolver::boundedCandidates() const {
  uint64_t N = 0;
  for (const BoundedSolver *B : BoundedTier)
    if (B)
      N += B->candidatesEvaluated();
  if (ShardFallbackBounded)
    N += ShardFallbackBounded->candidatesEvaluated();
  return N;
}

uint64_t PortfolioSolver::boundedQuantSteps() const {
  uint64_t N = 0;
  for (const BoundedSolver *B : BoundedTier)
    if (B)
      N += B->quantStepsEvaluated();
  if (ShardFallbackBounded)
    N += ShardFallbackBounded->quantStepsEvaluated();
  return N;
}

BoundedSearchStats PortfolioSolver::boundedSearchStats() const {
  BoundedSearchStats S;
  for (const BoundedSolver *B : BoundedTier)
    if (B)
      S.merge(B->searchStats());
  if (ShardFallbackBounded)
    S.merge(ShardFallbackBounded->searchStats());
  return S;
}
