//===- RemotePool.cpp - Socket-backed discharge shard tier --------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/RemotePool.h"

#include "support/FaultInjection.h"
#include "support/Transport.h"

#include <signal.h>

using namespace relax;

Result<std::unique_ptr<RemotePool>> RemotePool::create(RemotePoolOptions Opts) {
  using R = Result<std::unique_ptr<RemotePool>>;
  if (Opts.Endpoints.empty())
    return R::error("a remote pool needs at least one worker endpoint");
  for (const std::string &E : Opts.Endpoints)
    if (E.empty())
      return R::error("empty endpoint in the remote worker list");
  // Same rationale as ShardPool::create: a peer vanishing mid-write must
  // surface as a frame error, never a SIGPIPE kill.
  ::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<RemotePool> P(new RemotePool(std::move(Opts)));
  unsigned N = static_cast<unsigned>(P->Opts.Endpoints.size());
  P->initSlots(N);
  for (unsigned I = 0; I != N; ++I) {
    P->Chans.push_back(nullptr);
    // Eager but tolerant: an endpoint that is down right now is retried
    // by the first borrower through the revive path (spending budget
    // there), matching ShardPool's initial-spawn discipline.
    (void)P->reviveWorker(I);
  }
  return R(std::move(P));
}

RemotePool::~RemotePool() = default; // Transport dtors close the sockets

Status RemotePool::reviveWorker(unsigned I) {
  // A reconnect is this pool's "respawn": draw the same fault site so
  // chaos specs written against ShardPool exercise this path unchanged.
  if (FaultRegistry::shouldFail(FaultSite::WorkerSpawn))
    return Status::error("injected worker-spawn fault");
  auto C = connectSocket(Opts.Endpoints[I], Opts.ConnectTimeoutMs);
  if (!C.ok())
    return Status::error(C.message());
  Chans[I] = std::move(C.value());
  return Status::success();
}
