//===- Z3Solver.cpp - Z3 backend ----------------------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/Z3Solver.h"

#include "support/Casting.h"

#if RELAXC_HAVE_Z3

#include <z3++.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

using namespace relax;

namespace {

/// Mangles a VarRef into a Z3 constant name.
std::string mangle(const Interner &Syms, Symbol Name, VarTag Tag,
                   const char *Suffix = "") {
  std::string Out(Syms.text(Name));
  Out += Suffix;
  switch (Tag) {
  case VarTag::Plain:
    break;
  case VarTag::Orig:
    Out += "!o";
    break;
  case VarTag::Rel:
    Out += "!r";
    break;
  }
  return Out;
}

/// Translation state. One Translator lives as long as its Z3Solver: the
/// z3::context is expensive to construct, and keeping it allows the
/// node-identity-keyed term caches below, which are sound because
/// hash-consed AST nodes are immutable and unique for their structure
/// within the AstContext the solver serves.
class Translator {
public:
  Translator(z3::context &C, const Interner &Syms) : C(C), Syms(Syms) {}

  /// The `len >= 0` axioms for every array mentioned so far.
  const std::vector<z3::expr> &lengthAxioms() const { return LenAxioms; }

  z3::expr intConst(Symbol Name, VarTag Tag) {
    return C.int_const(mangle(Syms, Name, Tag).c_str());
  }

  z3::expr arrayConst(Symbol Name, VarTag Tag) {
    z3::sort ArrSort = C.array_sort(C.int_sort(), C.int_sort());
    return C.constant(mangle(Syms, Name, Tag, "!arr").c_str(), ArrSort);
  }

  z3::expr lenConst(Symbol Name, VarTag Tag) {
    std::string N = mangle(Syms, Name, Tag, "!len");
    z3::expr L = C.int_const(N.c_str());
    if (SeenLens.insert(N).second)
      LenAxioms.push_back(L >= 0);
    return L;
  }

  z3::expr trExpr(const Expr *E) {
    if (auto It = ExprCache.find(E); It != ExprCache.end())
      return It->second;
    z3::expr Out = trExprUncached(E);
    ExprCache.emplace(E, Out);
    return Out;
  }

  z3::expr trArray(const ArrayExpr *A) {
    if (auto It = ArrayCache.find(A); It != ArrayCache.end())
      return It->second;
    z3::expr Out = trArrayUncached(A);
    ArrayCache.emplace(A, Out);
    return Out;
  }

  z3::expr trFormula(const BoolExpr *B) {
    if (auto It = BoolCache.find(B); It != BoolCache.end())
      return It->second;
    z3::expr Out = trFormulaUncached(B);
    BoolCache.emplace(B, Out);
    return Out;
  }

private:
  z3::expr trExprUncached(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return C.int_val(cast<IntLitExpr>(E)->value());
    case Expr::Kind::Var: {
      const auto *V = cast<VarExpr>(E);
      return intConst(V->name(), V->tag());
    }
    case Expr::Kind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      return z3::select(trArray(R->base()), trExpr(R->index()));
    }
    case Expr::Kind::ArrayLen:
      return trArrayLen(cast<ArrayLenExpr>(E)->base());
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      z3::expr L = trExpr(B->lhs());
      z3::expr R = trExpr(B->rhs());
      switch (B->op()) {
      case BinaryOp::Add:
        return L + R;
      case BinaryOp::Sub:
        return L - R;
      case BinaryOp::Mul:
        return L * R;
      case BinaryOp::Div:
        return L / R; // SMT-LIB div (Euclidean)
      case BinaryOp::Mod:
        return z3::mod(L, R);
      }
      break;
    }
    }
    return C.int_val(0);
  }

  z3::expr trArrayUncached(const ArrayExpr *A) {
    switch (A->kind()) {
    case ArrayExpr::Kind::Ref: {
      const auto *R = cast<ArrayRefExpr>(A);
      // Touch the length so its axiom is emitted.
      (void)lenConst(R->name(), R->tag());
      return arrayConst(R->name(), R->tag());
    }
    case ArrayExpr::Kind::Store: {
      const auto *S = cast<ArrayStoreExpr>(A);
      return z3::store(trArray(S->base()), trExpr(S->index()),
                       trExpr(S->value()));
    }
    }
    return arrayConst(Symbol(), VarTag::Plain); // unreachable
  }

  /// Lengths are preserved by store, so the length of any array expression
  /// is the length of the root reference.
  z3::expr trArrayLen(const ArrayExpr *A) {
    const ArrayExpr *Root = A;
    while (const auto *S = dyn_cast<ArrayStoreExpr>(Root))
      Root = S->base();
    const auto *R = cast<ArrayRefExpr>(Root);
    return lenConst(R->name(), R->tag());
  }

  z3::expr trFormulaUncached(const BoolExpr *B) {
    switch (B->kind()) {
    case BoolExpr::Kind::BoolLit:
      return C.bool_val(cast<BoolLitExpr>(B)->value());
    case BoolExpr::Kind::Cmp: {
      const auto *Cm = cast<CmpExpr>(B);
      z3::expr L = trExpr(Cm->lhs());
      z3::expr R = trExpr(Cm->rhs());
      switch (Cm->op()) {
      case CmpOp::Lt:
        return L < R;
      case CmpOp::Le:
        return L <= R;
      case CmpOp::Gt:
        return L > R;
      case CmpOp::Ge:
        return L >= R;
      case CmpOp::Eq:
        return L == R;
      case CmpOp::Ne:
        return L != R;
      }
      break;
    }
    case BoolExpr::Kind::ArrayCmp: {
      const auto *Cm = cast<ArrayCmpExpr>(B);
      z3::expr Contents = trArray(Cm->lhs()) == trArray(Cm->rhs());
      z3::expr Lens = trArrayLen(Cm->lhs()) == trArrayLen(Cm->rhs());
      z3::expr Eq = Contents && Lens;
      return Cm->isEquality() ? Eq : !Eq;
    }
    case BoolExpr::Kind::Logical: {
      const auto *L = cast<LogicalExpr>(B);
      z3::expr A = trFormula(L->lhs());
      z3::expr R = trFormula(L->rhs());
      switch (L->op()) {
      case LogicalOp::And:
        return A && R;
      case LogicalOp::Or:
        return A || R;
      case LogicalOp::Implies:
        return z3::implies(A, R);
      case LogicalOp::Iff:
        return A == R;
      }
      break;
    }
    case BoolExpr::Kind::Not:
      return !trFormula(cast<NotExpr>(B)->sub());
    case BoolExpr::Kind::Exists: {
      const auto *E = cast<ExistsExpr>(B);
      if (E->varKind() == VarKind::Int) {
        z3::expr V = intConst(E->var(), E->tag());
        return z3::exists(V, trFormula(E->body()));
      }
      // Arrays: bind both the content map and the length.
      z3::expr Arr = arrayConst(E->var(), E->tag());
      z3::expr Len = C.int_const(
          mangle(Syms, E->var(), E->tag(), "!len").c_str());
      z3::expr Body = Len >= 0 && trFormula(E->body());
      z3::expr_vector Bound(C);
      Bound.push_back(Arr);
      Bound.push_back(Len);
      return z3::exists(Bound, Body);
    }
    }
    return C.bool_val(false);
  }

  z3::context &C;
  const Interner &Syms;
  std::vector<z3::expr> LenAxioms;
  std::set<std::string> SeenLens;
  // Identity-keyed translation memos (valid for the lifetime of the
  // AstContext whose hash-consed nodes this solver serves).
  std::unordered_map<const Expr *, z3::expr> ExprCache;
  std::unordered_map<const ArrayExpr *, z3::expr> ArrayCache;
  std::unordered_map<const BoolExpr *, z3::expr> BoolCache;
};

std::optional<int64_t> evalInt(z3::model &M, const z3::expr &E) {
  z3::expr V = M.eval(E, /*model_completion=*/true);
  int64_t Out = 0;
  if (V.is_numeral_i64(Out))
    return Out;
  return std::nullopt;
}

} // namespace

struct Z3Solver::Impl {
  const Interner &Syms;
  Z3SolverOptions Opts;
  // One context + translator + incremental solver for this Z3Solver's
  // lifetime: constructing a z3::context (~10ms) and a fresh z3::solver
  // (~5ms) used to dominate small-query discharge time, while a push/pop
  // scope on a persistent solver costs microseconds (bench/solver_ablation
  // measures the difference). The persistent context also lets translated
  // terms be memoized across queries.
  z3::context C;
  Translator T;
  std::optional<z3::solver> S;

  Impl(const Interner &Syms, Z3SolverOptions Opts)
      : Syms(Syms), Opts(Opts), T(C, Syms) {}

  z3::solver &solver() {
    if (!S) {
      S.emplace(C);
      z3::params Params(C);
      Params.set("timeout", Opts.TimeoutMs);
      S->set(Params);
    }
    return *S;
  }

  /// After a z3::exception the solver's scope stack is unknown; drop it so
  /// the next query starts from a fresh one.
  void resetSolver() { S.reset(); }
};

namespace {

/// Pops one scope on destruction — keeps the persistent solver balanced on
/// every exit path of a query.
struct ScopedPush {
  z3::solver &S;
  explicit ScopedPush(z3::solver &S) : S(S) { S.push(); }
  ~ScopedPush() {
    try {
      S.pop();
    } catch (const z3::exception &) {
      // Unbalanced solver; the owner resets it on the error path.
    }
  }
};

} // namespace

Z3Solver::Z3Solver(const Interner &Syms, Z3SolverOptions Opts)
    : P(std::make_unique<Impl>(Syms, Opts)) {}
Z3Solver::~Z3Solver() = default;

Result<std::string>
Z3Solver::toSmtLib(const std::vector<const BoolExpr *> &Formulas) {
  try {
    // A fresh Translator per dump: the script must contain exactly this
    // query's declarations and length axioms, not the axioms accumulated
    // by the persistent query translator.
    z3::solver S(P->C);
    Translator T(P->C, P->Syms);
    for (const BoolExpr *F : Formulas)
      S.add(T.trFormula(F));
    for (const z3::expr &Axiom : T.lengthAxioms())
      S.add(Axiom);
    return std::string(S.to_smt2());
  } catch (const z3::exception &E) {
    return Result<std::string>::error(std::string("z3 error: ") + E.msg());
  }
}

Result<SatResult>
Z3Solver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  Model Ignored;
  return checkSatWithModel(Formulas, VarRefSet(), Ignored);
}

Result<SatResult>
Z3Solver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                            const VarRefSet &Vars, Model &ModelOut) {
  ++Queries;
  // Clear stale entries from a reused caller Model up front, so non-Sat
  // verdicts never leave a previous witness behind.
  ModelOut = Model();
  LastDeadlined = false;
  if (QueryDeadline.expired()) {
    LastDeadlined = true;
    return SatResult::Unknown;
  }
  try {
    z3::solver &S = P->solver();
    // Cap the per-query timeout by the time the deadline leaves, so a
    // query started just before expiry cannot overrun by a full
    // Opts.TimeoutMs. Unarmed deadlines restore the configured value.
    {
      unsigned EffTimeoutMs = P->Opts.TimeoutMs;
      if (QueryDeadline.armed()) {
        int64_t Left = QueryDeadline.remainingMs();
        if (Left < static_cast<int64_t>(EffTimeoutMs))
          EffTimeoutMs = static_cast<unsigned>(Left);
      }
      z3::params Params(P->C);
      Params.set("timeout", EffTimeoutMs);
      S.set(Params);
    }
    ScopedPush Scope(S);

    for (const BoolExpr *F : Formulas)
      S.add(P->T.trFormula(F));
    // All accumulated length axioms are added: `a!len >= 0` over an array
    // the query never mentions is a satisfiable constraint on a fresh
    // constant and cannot change the verdict.
    for (const z3::expr &Axiom : P->T.lengthAxioms())
      S.add(Axiom);

    switch (S.check()) {
    case z3::unsat:
      return SatResult::Unsat;
    case z3::unknown:
      LastDeadlined = QueryDeadline.expired();
      return SatResult::Unknown;
    case z3::sat:
      break;
    }

    z3::model M = S.get_model();
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        z3::expr E = P->T.intConst(V.Name, V.Tag);
        ModelOut.Ints[V] = evalInt(M, E).value_or(0);
        continue;
      }
      z3::expr Arr = P->T.arrayConst(V.Name, V.Tag);
      z3::expr Len = P->T.lenConst(V.Name, V.Tag);
      int64_t N = evalInt(M, Len).value_or(0);
      if (N < 0)
        N = 0;
      if (N > P->Opts.MaxExtractedArrayLen)
        N = P->Opts.MaxExtractedArrayLen;
      ArrayModelValue AV;
      AV.Length = N;
      AV.Elems.reserve(static_cast<size_t>(N));
      for (int64_t I = 0; I != N; ++I)
        AV.Elems.push_back(
            evalInt(M, z3::select(Arr, P->C.int_val(I))).value_or(0));
      ModelOut.Arrays[V] = AV;
    }
    return SatResult::Sat;
  } catch (const z3::exception &E) {
    P->resetSolver();
    return Result<SatResult>::error(std::string("z3 error: ") + E.msg());
  }
}

#else // !RELAXC_HAVE_Z3

//===----------------------------------------------------------------------===//
// Stub backend: keeps the library linkable when z3 is unavailable
// (RELAXC_ENABLE_Z3=OFF). Every query reports a backend error, which the
// verifier surfaces as VCStatus::SolverError.
//===----------------------------------------------------------------------===//

using namespace relax;

namespace {
const char *NoZ3Message =
    "z3 backend not built (configure with RELAXC_ENABLE_Z3=ON); "
    "use --solver=bounded";
} // namespace

struct Z3Solver::Impl {};

Z3Solver::Z3Solver(const Interner &, Z3SolverOptions) {}
Z3Solver::~Z3Solver() = default;

Result<std::string>
Z3Solver::toSmtLib(const std::vector<const BoolExpr *> &) {
  return Result<std::string>::error(NoZ3Message);
}

Result<SatResult>
Z3Solver::checkSat(const std::vector<const BoolExpr *> &) {
  ++Queries;
  return Result<SatResult>::error(NoZ3Message);
}

Result<SatResult>
Z3Solver::checkSatWithModel(const std::vector<const BoolExpr *> &,
                            const VarRefSet &, Model &) {
  ++Queries;
  return Result<SatResult>::error(NoZ3Message);
}

#endif // RELAXC_HAVE_Z3
