//===- Z3Solver.cpp - Z3 backend ----------------------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "solver/Z3Solver.h"

#include "support/Casting.h"

#include <z3++.h>

#include <map>
#include <optional>
#include <set>
#include <string>

using namespace relax;

namespace {

/// Mangles a VarRef into a Z3 constant name.
std::string mangle(const Interner &Syms, Symbol Name, VarTag Tag,
                   const char *Suffix = "") {
  std::string Out(Syms.text(Name));
  Out += Suffix;
  switch (Tag) {
  case VarTag::Plain:
    break;
  case VarTag::Orig:
    Out += "!o";
    break;
  case VarTag::Rel:
    Out += "!r";
    break;
  }
  return Out;
}

/// Per-query translation state.
class Translator {
public:
  Translator(z3::context &C, const Interner &Syms) : C(C), Syms(Syms) {}

  /// The `len >= 0` axioms for every array mentioned so far.
  const std::vector<z3::expr> &lengthAxioms() const { return LenAxioms; }

  z3::expr intConst(Symbol Name, VarTag Tag) {
    return C.int_const(mangle(Syms, Name, Tag).c_str());
  }

  z3::expr arrayConst(Symbol Name, VarTag Tag) {
    z3::sort ArrSort = C.array_sort(C.int_sort(), C.int_sort());
    return C.constant(mangle(Syms, Name, Tag, "!arr").c_str(), ArrSort);
  }

  z3::expr lenConst(Symbol Name, VarTag Tag) {
    std::string N = mangle(Syms, Name, Tag, "!len");
    z3::expr L = C.int_const(N.c_str());
    if (SeenLens.insert(N).second)
      LenAxioms.push_back(L >= 0);
    return L;
  }

  z3::expr trExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return C.int_val(cast<IntLitExpr>(E)->value());
    case Expr::Kind::Var: {
      const auto *V = cast<VarExpr>(E);
      return intConst(V->name(), V->tag());
    }
    case Expr::Kind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      return z3::select(trArray(R->base()), trExpr(R->index()));
    }
    case Expr::Kind::ArrayLen:
      return trArrayLen(cast<ArrayLenExpr>(E)->base());
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      z3::expr L = trExpr(B->lhs());
      z3::expr R = trExpr(B->rhs());
      switch (B->op()) {
      case BinaryOp::Add:
        return L + R;
      case BinaryOp::Sub:
        return L - R;
      case BinaryOp::Mul:
        return L * R;
      case BinaryOp::Div:
        return L / R; // SMT-LIB div (Euclidean)
      case BinaryOp::Mod:
        return z3::mod(L, R);
      }
      break;
    }
    }
    return C.int_val(0);
  }

  z3::expr trArray(const ArrayExpr *A) {
    switch (A->kind()) {
    case ArrayExpr::Kind::Ref: {
      const auto *R = cast<ArrayRefExpr>(A);
      // Touch the length so its axiom is emitted.
      (void)lenConst(R->name(), R->tag());
      return arrayConst(R->name(), R->tag());
    }
    case ArrayExpr::Kind::Store: {
      const auto *S = cast<ArrayStoreExpr>(A);
      return z3::store(trArray(S->base()), trExpr(S->index()),
                       trExpr(S->value()));
    }
    }
    return arrayConst(Symbol(), VarTag::Plain); // unreachable
  }

  /// Lengths are preserved by store, so the length of any array expression
  /// is the length of the root reference.
  z3::expr trArrayLen(const ArrayExpr *A) {
    const ArrayExpr *Root = A;
    while (const auto *S = dyn_cast<ArrayStoreExpr>(Root))
      Root = S->base();
    const auto *R = cast<ArrayRefExpr>(Root);
    return lenConst(R->name(), R->tag());
  }

  z3::expr trFormula(const BoolExpr *B) {
    switch (B->kind()) {
    case BoolExpr::Kind::BoolLit:
      return C.bool_val(cast<BoolLitExpr>(B)->value());
    case BoolExpr::Kind::Cmp: {
      const auto *Cm = cast<CmpExpr>(B);
      z3::expr L = trExpr(Cm->lhs());
      z3::expr R = trExpr(Cm->rhs());
      switch (Cm->op()) {
      case CmpOp::Lt:
        return L < R;
      case CmpOp::Le:
        return L <= R;
      case CmpOp::Gt:
        return L > R;
      case CmpOp::Ge:
        return L >= R;
      case CmpOp::Eq:
        return L == R;
      case CmpOp::Ne:
        return L != R;
      }
      break;
    }
    case BoolExpr::Kind::ArrayCmp: {
      const auto *Cm = cast<ArrayCmpExpr>(B);
      z3::expr Contents = trArray(Cm->lhs()) == trArray(Cm->rhs());
      z3::expr Lens = trArrayLen(Cm->lhs()) == trArrayLen(Cm->rhs());
      z3::expr Eq = Contents && Lens;
      return Cm->isEquality() ? Eq : !Eq;
    }
    case BoolExpr::Kind::Logical: {
      const auto *L = cast<LogicalExpr>(B);
      z3::expr A = trFormula(L->lhs());
      z3::expr R = trFormula(L->rhs());
      switch (L->op()) {
      case LogicalOp::And:
        return A && R;
      case LogicalOp::Or:
        return A || R;
      case LogicalOp::Implies:
        return z3::implies(A, R);
      case LogicalOp::Iff:
        return A == R;
      }
      break;
    }
    case BoolExpr::Kind::Not:
      return !trFormula(cast<NotExpr>(B)->sub());
    case BoolExpr::Kind::Exists: {
      const auto *E = cast<ExistsExpr>(B);
      if (E->varKind() == VarKind::Int) {
        z3::expr V = intConst(E->var(), E->tag());
        return z3::exists(V, trFormula(E->body()));
      }
      // Arrays: bind both the content map and the length.
      z3::expr Arr = arrayConst(E->var(), E->tag());
      z3::expr Len = C.int_const(
          mangle(Syms, E->var(), E->tag(), "!len").c_str());
      z3::expr Body = Len >= 0 && trFormula(E->body());
      z3::expr_vector Bound(C);
      Bound.push_back(Arr);
      Bound.push_back(Len);
      return z3::exists(Bound, Body);
    }
    }
    return C.bool_val(false);
  }

private:
  z3::context &C;
  const Interner &Syms;
  std::vector<z3::expr> LenAxioms;
  std::set<std::string> SeenLens;
};

std::optional<int64_t> evalInt(z3::model &M, const z3::expr &E) {
  z3::expr V = M.eval(E, /*model_completion=*/true);
  int64_t Out = 0;
  if (V.is_numeral_i64(Out))
    return Out;
  return std::nullopt;
}

} // namespace

struct Z3Solver::Impl {
  const Interner &Syms;
  Z3SolverOptions Opts;

  Impl(const Interner &Syms, Z3SolverOptions Opts) : Syms(Syms), Opts(Opts) {}
};

Z3Solver::Z3Solver(const Interner &Syms, Z3SolverOptions Opts)
    : P(std::make_unique<Impl>(Syms, Opts)) {}
Z3Solver::~Z3Solver() = default;

Result<std::string>
Z3Solver::toSmtLib(const std::vector<const BoolExpr *> &Formulas) {
  try {
    z3::context C;
    z3::solver S(C);
    Translator T(C, P->Syms);
    for (const BoolExpr *F : Formulas)
      S.add(T.trFormula(F));
    for (const z3::expr &Axiom : T.lengthAxioms())
      S.add(Axiom);
    return std::string(S.to_smt2());
  } catch (const z3::exception &E) {
    return Result<std::string>::error(std::string("z3 error: ") + E.msg());
  }
}

Result<SatResult>
Z3Solver::checkSat(const std::vector<const BoolExpr *> &Formulas) {
  Model Ignored;
  return checkSatWithModel(Formulas, VarRefSet(), Ignored);
}

Result<SatResult>
Z3Solver::checkSatWithModel(const std::vector<const BoolExpr *> &Formulas,
                            const VarRefSet &Vars, Model &ModelOut) {
  ++Queries;
  try {
    z3::context C;
    z3::solver S(C);
    z3::params Params(C);
    Params.set("timeout", P->Opts.TimeoutMs);
    S.set(Params);

    Translator T(C, P->Syms);
    for (const BoolExpr *F : Formulas)
      S.add(T.trFormula(F));
    for (const z3::expr &Axiom : T.lengthAxioms())
      S.add(Axiom);

    switch (S.check()) {
    case z3::unsat:
      return SatResult::Unsat;
    case z3::unknown:
      return SatResult::Unknown;
    case z3::sat:
      break;
    }

    z3::model M = S.get_model();
    ModelOut = Model();
    for (const VarRef &V : Vars) {
      if (V.Kind == VarKind::Int) {
        z3::expr E = T.intConst(V.Name, V.Tag);
        ModelOut.Ints[V] = evalInt(M, E).value_or(0);
        continue;
      }
      z3::expr Arr = T.arrayConst(V.Name, V.Tag);
      z3::expr Len = T.lenConst(V.Name, V.Tag);
      int64_t N = evalInt(M, Len).value_or(0);
      if (N < 0)
        N = 0;
      if (N > P->Opts.MaxExtractedArrayLen)
        N = P->Opts.MaxExtractedArrayLen;
      ArrayModelValue AV;
      AV.Length = N;
      AV.Elems.reserve(static_cast<size_t>(N));
      for (int64_t I = 0; I != N; ++I)
        AV.Elems.push_back(
            evalInt(M, z3::select(Arr, C.int_val(I))).value_or(0));
      ModelOut.Arrays[V] = AV;
    }
    return SatResult::Sat;
  } catch (const z3::exception &E) {
    return Result<SatResult>::error(std::string("z3 error: ") + E.msg());
  }
}
