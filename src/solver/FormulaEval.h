//===- FormulaEval.h - Total formula evaluation --------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates expressions and formulas under a concrete Model using the
/// *logic* semantics (total functions: Euclidean division, division by zero
/// yields 0, out-of-range array reads yield 0). Quantifiers are evaluated
/// by bounded enumeration. Used by the bounded solver backend and by the
/// property tests that validate the simplifier and the Z3 translation.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SOLVER_FORMULAEVAL_H
#define RELAXC_SOLVER_FORMULAEVAL_H

#include "solver/Solver.h"
#include "support/IntMath.h" // euclideanDiv / euclideanMod

namespace relax {

/// Evaluation options for quantifier enumeration.
struct FormulaEvalOptions {
  int64_t IntLo = -8;         ///< scalar quantifier domain lower bound
  int64_t IntHi = 8;          ///< scalar quantifier domain upper bound
  int64_t MaxArrayLen = 3;    ///< array quantifier length bound
  int64_t ArrayElemLo = -2;   ///< array quantifier element domain
  int64_t ArrayElemHi = 2;
};

/// A per-query budget on quantifier-body evaluations. The compiled
/// `FormulaProgram::Executor` charges one step for every enumeration of a
/// quantifier body; once `Steps` exceeds `MaxSteps` the budget is tripped,
/// every further charge fails fast, and the evaluation's boolean result is
/// meaningless — callers must check `Tripped` after each run and report
/// the query as undecided. Evaluation order is deterministic, so the trip
/// point is a pure function of (query, budget): the same query under the
/// same budget always gives up at the same step.
struct EvalBudget {
  uint64_t MaxSteps = 0; ///< 0 = unlimited (steps still counted for stats)
  uint64_t Steps = 0;    ///< quantifier-body evaluations consumed so far
  bool Tripped = false;

  /// Charges one step; returns false once the budget is exhausted.
  bool charge() {
    if (Tripped)
      return false;
    ++Steps;
    if (MaxSteps != 0 && Steps > MaxSteps)
      Tripped = true;
    return !Tripped;
  }
};

/// The bounded domain of one array variable: lengths 0..MaxLen ascending,
/// then element digits least-significant first over [ElemLo, ElemHi].
/// Every enumerator of array values (the quantifier evaluators, the
/// compiled Exists instruction, the bounded search and its legacy
/// odometer) shares this one definition — witness determinism and the
/// differential suites depend on them agreeing on the order.
struct ArrayDomain {
  int64_t MaxLen = 0;
  int64_t ElemLo = 0;
  int64_t ElemHi = -1;

  ArrayDomain() = default;
  ArrayDomain(int64_t MaxLen, int64_t ElemLo, int64_t ElemHi)
      : MaxLen(MaxLen), ElemLo(ElemLo), ElemHi(ElemHi) {}
  explicit ArrayDomain(const FormulaEvalOptions &Opts)
      : MaxLen(Opts.MaxArrayLen), ElemLo(Opts.ArrayElemLo),
        ElemHi(Opts.ArrayElemHi) {}

  /// Number of values. An empty element range admits only length 0.
  uint64_t size() const;
  /// Decodes the \p Index-th value in enumeration order.
  ArrayModelValue valueAt(uint64_t Index) const;
  /// Advances \p A to its successor in enumeration order (first value:
  /// the default-constructed length-0 array); false when exhausted.
  bool advance(ArrayModelValue &A) const;
};

/// Evaluates \p E under \p M. Unmapped variables default to 0 / empty.
int64_t evalExpr(const Expr *E, const Model &M);

/// Evaluates an array expression to a concrete array value.
ArrayModelValue evalArrayExpr(const ArrayExpr *A, const Model &M);

/// Evaluates \p B under \p M; quantifiers are decided over the bounded
/// domains of \p Opts (an under-approximation of the true Z semantics,
/// which is what makes the bounded backend incomplete).
bool evalFormula(const BoolExpr *B, const Model &M,
                 const FormulaEvalOptions &Opts = FormulaEvalOptions());

} // namespace relax

#endif // RELAXC_SOLVER_FORMULAEVAL_H
