//===- Printer.h - AST pretty printing ----------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions, formulas, statements, and whole programs back into
/// the `.rlx` concrete syntax. Printing is precedence-aware (minimal
/// parentheses) and round-trips through the parser (tested).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_PRINTER_H
#define RELAXC_AST_PRINTER_H

#include "ast/Program.h"

#include <string>

namespace relax {

class Interner;

/// Pretty-prints AST nodes using \p Syms to resolve identifiers.
class Printer {
public:
  explicit Printer(const Interner &Syms) : Syms(Syms) {}

  std::string print(const Expr *E) const;
  std::string print(const ArrayExpr *A) const;
  std::string print(const BoolExpr *B) const;
  std::string print(const Stmt *S, unsigned Indent = 0) const;
  std::string print(const Program &P) const;

private:
  const Interner &Syms;

  void printExpr(const Expr *E, int ParentPrec, std::string &Out) const;
  void printArray(const ArrayExpr *A, std::string &Out) const;
  void printBool(const BoolExpr *B, int ParentPrec, std::string &Out) const;
  void printStmt(const Stmt *S, unsigned Indent, std::string &Out) const;
  void printBlock(const Stmt *S, unsigned Indent, std::string &Out) const;
};

} // namespace relax

#endif // RELAXC_AST_PRINTER_H
