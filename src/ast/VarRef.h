//===- VarRef.h - Logical variable references ----------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VarRef identifies one logical variable as a (name, execution-tag, kind)
/// triple. It lives in the AST layer (rather than logic/, where its
/// operations are defined) so that AstContext can own identity-keyed caches
/// of free-variable sets without depending on the logic library.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_VARREF_H
#define RELAXC_AST_VARREF_H

#include "ast/Expr.h"

#include <memory>
#include <set>
#include <vector>

namespace relax {

/// A (name, execution-tag, kind) triple identifying one logical variable.
struct VarRef {
  Symbol Name;
  VarTag Tag = VarTag::Plain;
  VarKind Kind = VarKind::Int;

  friend bool operator==(const VarRef &A, const VarRef &B) {
    return A.Name == B.Name && A.Tag == B.Tag && A.Kind == B.Kind;
  }
  friend bool operator<(const VarRef &A, const VarRef &B) {
    if (A.Name != B.Name)
      return A.Name < B.Name;
    if (A.Tag != B.Tag)
      return A.Tag < B.Tag;
    return A.Kind < B.Kind;
  }
};

/// Deterministically ordered variable set.
using VarRefSet = std::set<VarRef>;

/// A sorted, deduplicated free-variable list, shared structurally between
/// parent and child nodes by the memoized free-variable computation (a Not
/// node reuses its operand's list unchanged, a conjunction whose operands
/// have equal lists reuses one of them, and so on).
using SharedVarList = std::shared_ptr<const std::vector<VarRef>>;

} // namespace relax

#endif // RELAXC_AST_VARREF_H
