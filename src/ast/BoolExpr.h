//===- BoolExpr.h - Boolean expressions and formulas --------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boolean expressions B / B* and assertion-logic formulas P / P* (Figures
/// 1 and 5 of the paper) share one AST. The formula syntax strictly extends
/// the program boolean syntax with existential quantification, so program
/// positions simply require quantifier-free nodes (checked by sema), and the
/// unary/relational split is carried by the VarTags of the variables inside
/// (see Expr.h). Extensional array comparison supports noninterference
/// predicates such as `RS<o> == RS<r>` from the Water case study.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_BOOLEXPR_H
#define RELAXC_AST_BOOLEXPR_H

#include "ast/Expr.h"

namespace relax {

/// Integer comparison operators (cmp in Figure 1).
enum class CmpOp : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

/// Returns the surface syntax for \p Op.
const char *cmpOpSpelling(CmpOp Op);

/// Evaluates `L cmp R` on concrete integers.
bool evalCmpOp(CmpOp Op, int64_t L, int64_t R);

/// Negates a comparison (Lt <-> Ge, etc.), used by the simplifier.
CmpOp negateCmpOp(CmpOp Op);

/// Binary logical operators (lop in Figure 1, plus implication and
/// equivalence, which the proof rules use pervasively in side conditions).
enum class LogicalOp : uint8_t { And, Or, Implies, Iff };

/// Returns the surface syntax for \p Op.
const char *logicalOpSpelling(LogicalOp Op);

/// A boolean-valued expression / logic formula.
class BoolExpr {
public:
  enum class Kind : uint8_t { BoolLit, Cmp, ArrayCmp, Logical, Not, Exists };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The structural hash, computed once at construction by the hash-consing
  /// factory (see AstContext). Source-location-insensitive.
  uint64_t hash() const { return HashVal; }

  BoolExpr(const BoolExpr &) = delete;
  BoolExpr &operator=(const BoolExpr &) = delete;

protected:
  BoolExpr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  friend class AstContext;
  Kind K;
  SourceLoc Loc;
  uint64_t HashVal = 0;
};

/// `true` or `false`.
class BoolLitExpr : public BoolExpr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : BoolExpr(Kind::BoolLit, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const BoolExpr *B) { return B->kind() == Kind::BoolLit; }

private:
  bool Value;
};

/// A comparison `e1 cmp e2` of integer expressions.
class CmpExpr : public BoolExpr {
public:
  CmpExpr(CmpOp Op, const Expr *LHS, const Expr *RHS, SourceLoc Loc)
      : BoolExpr(Kind::Cmp, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  CmpOp op() const { return Op; }
  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }

  static bool classof(const BoolExpr *B) { return B->kind() == Kind::Cmp; }

private:
  CmpOp Op;
  const Expr *LHS;
  const Expr *RHS;
};

/// Extensional equality / disequality of whole arrays (`a == b`). Two
/// arrays are equal when they have the same length and the same contents at
/// every index in bounds.
class ArrayCmpExpr : public BoolExpr {
public:
  ArrayCmpExpr(bool Equal, const ArrayExpr *LHS, const ArrayExpr *RHS,
               SourceLoc Loc)
      : BoolExpr(Kind::ArrayCmp, Loc), Equal(Equal), LHS(LHS), RHS(RHS) {}

  /// True for `==`, false for `!=`.
  bool isEquality() const { return Equal; }
  const ArrayExpr *lhs() const { return LHS; }
  const ArrayExpr *rhs() const { return RHS; }

  static bool classof(const BoolExpr *B) {
    return B->kind() == Kind::ArrayCmp;
  }

private:
  bool Equal;
  const ArrayExpr *LHS;
  const ArrayExpr *RHS;
};

/// A binary connective `b1 lop b2`.
class LogicalExpr : public BoolExpr {
public:
  LogicalExpr(LogicalOp Op, const BoolExpr *LHS, const BoolExpr *RHS,
              SourceLoc Loc)
      : BoolExpr(Kind::Logical, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  LogicalOp op() const { return Op; }
  const BoolExpr *lhs() const { return LHS; }
  const BoolExpr *rhs() const { return RHS; }

  static bool classof(const BoolExpr *B) { return B->kind() == Kind::Logical; }

private:
  LogicalOp Op;
  const BoolExpr *LHS;
  const BoolExpr *RHS;
};

/// Negation `!b`.
class NotExpr : public BoolExpr {
public:
  NotExpr(const BoolExpr *Sub, SourceLoc Loc)
      : BoolExpr(Kind::Not, Loc), Sub(Sub) {}

  const BoolExpr *sub() const { return Sub; }

  static bool classof(const BoolExpr *B) { return B->kind() == Kind::Not; }

private:
  const BoolExpr *Sub;
};

/// Existential quantification `exists x . P` (Figure 5), over a scalar or a
/// whole array, with the bound variable tagged by execution
/// (`exists x<o> . P*`, `exists x<r> . P*`). Only appears in assertion-logic
/// positions (annotations, generated VCs), never in program booleans.
class ExistsExpr : public BoolExpr {
public:
  ExistsExpr(Symbol Var, VarTag Tag, VarKind VK, const BoolExpr *Body,
             SourceLoc Loc)
      : BoolExpr(Kind::Exists, Loc), Var(Var), Tag(Tag), VK(VK), Body(Body) {}

  Symbol var() const { return Var; }
  VarTag tag() const { return Tag; }
  VarKind varKind() const { return VK; }
  const BoolExpr *body() const { return Body; }

  static bool classof(const BoolExpr *B) { return B->kind() == Kind::Exists; }

private:
  Symbol Var;
  VarTag Tag;
  VarKind VK;
  const BoolExpr *Body;
};

} // namespace relax

#endif // RELAXC_AST_BOOLEXPR_H
