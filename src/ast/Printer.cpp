//===- Printer.cpp - AST pretty printing -------------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"

#include "support/Casting.h"
#include "support/Interner.h"

using namespace relax;

namespace {

// Expression precedence levels; higher binds tighter.
constexpr int PrecAtom = 10;
constexpr int PrecMul = 5;
constexpr int PrecAdd = 4;

// Boolean precedence levels.
constexpr int PrecNot = 6;
constexpr int PrecCmp = 5; // comparisons are atoms of the boolean grammar
constexpr int PrecAnd = 4;
constexpr int PrecOr = 3;
constexpr int PrecImplies = 2;
constexpr int PrecIff = 1;
constexpr int PrecExists = 0;

int exprPrec(const Expr *E) {
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    switch (B->op()) {
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return PrecMul;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return PrecAdd;
    }
  }
  return PrecAtom;
}

int boolPrec(const BoolExpr *B) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
  case BoolExpr::Kind::Cmp:
  case BoolExpr::Kind::ArrayCmp:
    return PrecCmp;
  case BoolExpr::Kind::Not:
    return PrecNot;
  case BoolExpr::Kind::Logical:
    switch (cast<LogicalExpr>(B)->op()) {
    case LogicalOp::And:
      return PrecAnd;
    case LogicalOp::Or:
      return PrecOr;
    case LogicalOp::Implies:
      return PrecImplies;
    case LogicalOp::Iff:
      return PrecIff;
    }
    return PrecAnd;
  case BoolExpr::Kind::Exists:
    return PrecExists;
  }
  return PrecCmp;
}

void indentTo(unsigned Indent, std::string &Out) {
  Out.append(Indent * 2, ' ');
}

} // namespace

void Printer::printExpr(const Expr *E, int ParentPrec, std::string &Out) const {
  int Prec = exprPrec(E);
  bool NeedParens = Prec < ParentPrec;
  if (NeedParens)
    Out += '(';
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    Out += std::to_string(cast<IntLitExpr>(E)->value());
    break;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    Out += Syms.text(V->name());
    Out += varTagSuffix(V->tag());
    break;
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    printArray(R->base(), Out);
    Out += '[';
    printExpr(R->index(), 0, Out);
    Out += ']';
    break;
  }
  case Expr::Kind::ArrayLen: {
    Out += "len(";
    printArray(cast<ArrayLenExpr>(E)->base(), Out);
    Out += ')';
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    // Left-associative: the right operand needs strictly higher precedence.
    printExpr(B->lhs(), Prec, Out);
    Out += ' ';
    Out += binaryOpSpelling(B->op());
    Out += ' ';
    printExpr(B->rhs(), Prec + 1, Out);
    break;
  }
  }
  if (NeedParens)
    Out += ')';
}

void Printer::printArray(const ArrayExpr *A, std::string &Out) const {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    Out += Syms.text(R->name());
    Out += varTagSuffix(R->tag());
    break;
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    Out += "store(";
    printArray(S->base(), Out);
    Out += ", ";
    printExpr(S->index(), 0, Out);
    Out += ", ";
    printExpr(S->value(), 0, Out);
    Out += ')';
    break;
  }
  }
}

void Printer::printBool(const BoolExpr *B, int ParentPrec,
                        std::string &Out) const {
  int Prec = boolPrec(B);
  bool NeedParens = Prec < ParentPrec;
  if (NeedParens)
    Out += '(';
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    Out += cast<BoolLitExpr>(B)->value() ? "true" : "false";
    break;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    printExpr(C->lhs(), 0, Out);
    Out += ' ';
    Out += cmpOpSpelling(C->op());
    Out += ' ';
    printExpr(C->rhs(), 0, Out);
    break;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    printArray(C->lhs(), Out);
    Out += C->isEquality() ? " == " : " != ";
    printArray(C->rhs(), Out);
    break;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    // And/Or associate; Implies is right-associative; Iff non-associative.
    bool RightAssoc = L->op() == LogicalOp::Implies;
    printBool(L->lhs(), RightAssoc ? Prec + 1 : Prec, Out);
    Out += ' ';
    Out += logicalOpSpelling(L->op());
    Out += ' ';
    printBool(L->rhs(), RightAssoc ? Prec : Prec + 1, Out);
    break;
  }
  case BoolExpr::Kind::Not: {
    Out += '!';
    printBool(cast<NotExpr>(B)->sub(), PrecNot + 1, Out);
    break;
  }
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    Out += "exists ";
    if (E->varKind() == VarKind::Array)
      Out += "array ";
    Out += Syms.text(E->var());
    Out += varTagSuffix(E->tag());
    Out += " . ";
    printBool(E->body(), PrecExists, Out);
    break;
  }
  }
  if (NeedParens)
    Out += ')';
}

void Printer::printBlock(const Stmt *S, unsigned Indent,
                         std::string &Out) const {
  Out += "{\n";
  printStmt(S, Indent + 1, Out);
  indentTo(Indent, Out);
  Out += "}";
}

void Printer::printStmt(const Stmt *S, unsigned Indent,
                        std::string &Out) const {
  // Flatten sequences: each component on its own line.
  if (const auto *Seq = dyn_cast<SeqStmt>(S)) {
    printStmt(Seq->first(), Indent, Out);
    printStmt(Seq->second(), Indent, Out);
    return;
  }

  indentTo(Indent, Out);
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    Out += "skip;\n";
    break;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Out += Syms.text(A->var());
    Out += " = ";
    printExpr(A->value(), 0, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    Out += Syms.text(A->array());
    Out += '[';
    printExpr(A->index(), 0, Out);
    Out += "] = ";
    printExpr(A->value(), 0, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *C = cast<ChoiceStmtBase>(S);
    Out += S->kind() == Stmt::Kind::Havoc ? "havoc (" : "relax (";
    for (size_t I = 0, E = C->varCount(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += Syms.text(C->var(I));
    }
    Out += ") st (";
    printBool(C->pred(), 0, Out);
    Out += ");\n";
    break;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Out += "if (";
    printBool(I->cond(), 0, Out);
    Out += ")";
    if (const DivergeAnnotation *D = I->diverge()) {
      Out += "\n";
      indentTo(Indent + 1, Out);
      Out += "diverge";
      if (D->CaseAnalysis)
        Out += " cases";
      auto Clause = [&](const char *Name, const BoolExpr *P) {
        if (!P)
          return;
        Out += ' ';
        Out += Name;
        Out += " (";
        printBool(P, 0, Out);
        Out += ')';
      };
      Clause("pre_orig", D->PreOrig);
      Clause("pre_rel", D->PreRel);
      Clause("post_orig", D->PostOrig);
      Clause("post_rel", D->PostRel);
      Clause("frame", D->Frame);
      Out += "\n";
      indentTo(Indent, Out);
    } else {
      Out += ' ';
    }
    printBlock(I->thenStmt(), Indent, Out);
    // Omit empty else branches.
    if (!isa<SkipStmt>(I->elseStmt())) {
      Out += " else ";
      printBlock(I->elseStmt(), Indent, Out);
    }
    Out += "\n";
    break;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    Out += "while (";
    printBool(W->cond(), 0, Out);
    Out += ")";
    auto Clause = [&](const char *Name, const BoolExpr *P) {
      if (!P)
        return;
      Out += "\n";
      indentTo(Indent + 1, Out);
      Out += Name;
      Out += " (";
      printBool(P, 0, Out);
      Out += ')';
    };
    const LoopAnnotations *Ann = W->annotations();
    Clause("invariant", Ann->Invariant);
    Clause("iinvariant", Ann->IntermediateInvariant);
    Clause("rinvariant", Ann->RelInvariant);
    if (Ann->Variant) {
      Out += "\n";
      indentTo(Indent + 1, Out);
      Out += "decreases (";
      printExpr(Ann->Variant, 0, Out);
      Out += ')';
    }
    if (const DivergeAnnotation *D = W->diverge()) {
      Out += "\n";
      indentTo(Indent + 1, Out);
      Out += "diverge";
      if (D->CaseAnalysis)
        Out += " cases";
      auto DClause = [&](const char *Name, const BoolExpr *P) {
        if (!P)
          return;
        Out += ' ';
        Out += Name;
        Out += " (";
        printBool(P, 0, Out);
        Out += ')';
      };
      DClause("pre_orig", D->PreOrig);
      DClause("pre_rel", D->PreRel);
      DClause("post_orig", D->PostOrig);
      DClause("post_rel", D->PostRel);
      DClause("frame", D->Frame);
    }
    bool HasClauses = Ann->Invariant || Ann->IntermediateInvariant ||
                      Ann->RelInvariant || Ann->Variant || W->diverge();
    if (HasClauses) {
      Out += "\n";
      indentTo(Indent, Out);
    } else {
      Out += ' ';
    }
    printBlock(W->body(), Indent, Out);
    Out += "\n";
    break;
  }
  case Stmt::Kind::Assume: {
    Out += "assume ";
    printBool(cast<AssumeStmt>(S)->pred(), 0, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::Assert: {
    Out += "assert ";
    printBool(cast<AssertStmt>(S)->pred(), 0, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::Relate: {
    const auto *R = cast<RelateStmt>(S);
    Out += "relate ";
    Out += Syms.text(R->label());
    Out += " : ";
    printBool(R->pred(), 0, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::Call: {
    const auto *C = cast<CallStmt>(S);
    Out += "call ";
    Out += Syms.text(C->callee());
    Out += '(';
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      if (I)
        Out += ", ";
      printExpr(C->arg(I), 0, Out);
    }
    Out += ");\n";
    break;
  }
  case Stmt::Kind::Seq:
    break; // handled above
  }
}

std::string Printer::print(const Expr *E) const {
  std::string Out;
  printExpr(E, 0, Out);
  return Out;
}

std::string Printer::print(const ArrayExpr *A) const {
  std::string Out;
  printArray(A, Out);
  return Out;
}

std::string Printer::print(const BoolExpr *B) const {
  std::string Out;
  printBool(B, 0, Out);
  return Out;
}

std::string Printer::print(const Stmt *S, unsigned Indent) const {
  std::string Out;
  printStmt(S, Indent, Out);
  return Out;
}

std::string Printer::print(const Program &P) const {
  std::string Out;
  for (const VarDecl &D : P.decls()) {
    Out += D.Kind == VarKind::Int ? "int " : "array ";
    Out += Syms.text(D.Name);
    Out += ";\n";
  }
  auto Clause = [&](const char *Name, const BoolExpr *B, unsigned Indent) {
    if (!B)
      return;
    indentTo(Indent, Out);
    Out += Name;
    Out += " (";
    printBool(B, 0, Out);
    Out += ");\n";
  };

  // Legacy single-body form, reproduced byte-for-byte: top-level contracts
  // followed by a braced body. Goldens, the shard wire format, and
  // persistent-cache keys all pin this shape.
  if (!P.isExplicitModule()) {
    Clause("requires", P.requiresClause(), 0);
    Clause("ensures", P.ensuresClause(), 0);
    Clause("rrequires", P.relRequiresClause(), 0);
    Clause("rensures", P.relEnsuresClause(), 0);
    Out += "{\n";
    if (P.body())
      printStmt(P.body(), 1, Out);
    Out += "}\n";
    return Out;
  }

  for (const Procedure &Proc : P.procedures()) {
    if (!Out.empty())
      Out += "\n";
    if (!Proc.name().isValid()) {
      // Implicit entry after named procedures: the trailing bare body.
      Clause("requires", Proc.requiresClause(), 0);
      Clause("ensures", Proc.ensuresClause(), 0);
      Clause("rrequires", Proc.relRequiresClause(), 0);
      Clause("rensures", Proc.relEnsuresClause(), 0);
      Out += "{\n";
      if (Proc.body())
        printStmt(Proc.body(), 1, Out);
      Out += "}\n";
      continue;
    }
    Out += "proc ";
    Out += Syms.text(Proc.name());
    Out += '(';
    for (size_t I = 0, E = Proc.params().size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += "int ";
      Out += Syms.text(Proc.params()[I].Name);
    }
    Out += ")\n";
    if (Proc.hasModifiesClause()) {
      indentTo(1, Out);
      Out += "modifies (";
      for (size_t I = 0, E = Proc.modifiesClause().size(); I != E; ++I) {
        if (I)
          Out += ", ";
        Out += Syms.text(Proc.modifiesClause()[I]);
      }
      Out += ")\n";
    }
    Clause("requires", Proc.requiresClause(), 1);
    Clause("ensures", Proc.ensuresClause(), 1);
    Clause("rrequires", Proc.relRequiresClause(), 1);
    Clause("rensures", Proc.relEnsuresClause(), 1);
    Out += "{\n";
    if (Proc.body())
      printStmt(Proc.body(), 1, Out);
    Out += "}\n";
  }
  return Out;
}
