//===- AstContext.cpp - AST ownership and factory ----------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "ast/AstContext.h"

#include "ast/Structural.h"
#include "support/Casting.h"
#include "support/Hashing.h"

#include <cassert>

using namespace relax;

const char *relax::varTagSuffix(VarTag Tag) {
  switch (Tag) {
  case VarTag::Plain:
    return "";
  case VarTag::Orig:
    return "<o>";
  case VarTag::Rel:
    return "<r>";
  }
  return "";
}

const char *relax::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  }
  return "?";
}

const char *relax::cmpOpSpelling(CmpOp Op) {
  switch (Op) {
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  case CmpOp::Eq:
    return "==";
  case CmpOp::Ne:
    return "!=";
  }
  return "?";
}

bool relax::evalCmpOp(CmpOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case CmpOp::Lt:
    return L < R;
  case CmpOp::Le:
    return L <= R;
  case CmpOp::Gt:
    return L > R;
  case CmpOp::Ge:
    return L >= R;
  case CmpOp::Eq:
    return L == R;
  case CmpOp::Ne:
    return L != R;
  }
  return false;
}

CmpOp relax::negateCmpOp(CmpOp Op) {
  switch (Op) {
  case CmpOp::Lt:
    return CmpOp::Ge;
  case CmpOp::Le:
    return CmpOp::Gt;
  case CmpOp::Gt:
    return CmpOp::Le;
  case CmpOp::Ge:
    return CmpOp::Lt;
  case CmpOp::Eq:
    return CmpOp::Ne;
  case CmpOp::Ne:
    return CmpOp::Eq;
  }
  return Op;
}

const char *relax::logicalOpSpelling(LogicalOp Op) {
  switch (Op) {
  case LogicalOp::And:
    return "&&";
  case LogicalOp::Or:
    return "||";
  case LogicalOp::Implies:
    return "==>";
  case LogicalOp::Iff:
    return "<==>";
  }
  return "?";
}

AstContext::AstContext() {
  CachedTrue = boolLit(true);
  CachedFalse = boolLit(false);
}

//===----------------------------------------------------------------------===//
// Hash-consing core
//===----------------------------------------------------------------------===//
//
// Every factory computes the node's structural hash from its operands'
// cached hashes (O(1)), probes the per-context table, and only allocates on
// a miss. The hash formulas must stay in lockstep with the recursive
// fallback in Structural.cpp.

template <typename NodeT, typename MatchFn, typename MakeFn>
const NodeT *AstContext::getOrMake(HashConsTable<NodeT> &Table, uint64_t H,
                                   MatchFn Matches, MakeFn Make) {
  if (const NodeT *Existing = Table.find(H, Matches)) {
    ++HashConsHits;
    return Existing;
  }
  NodeT *Node = Make();
  Node->HashVal = H;
  Table.insert(H, Node);
  ++UniqueNodes;
  return Node;
}

namespace {

uint64_t exprSeed(Expr::Kind K) {
  return hashMix(static_cast<uint64_t>(K) + 101);
}
uint64_t arraySeed(ArrayExpr::Kind K) {
  return hashMix(static_cast<uint64_t>(K) + 211);
}
uint64_t boolSeed(BoolExpr::Kind K) {
  return hashMix(static_cast<uint64_t>(K) + 307);
}

} // namespace

//===----------------------------------------------------------------------===//
// Integer expressions
//===----------------------------------------------------------------------===//

const Expr *AstContext::intLit(int64_t Value, SourceLoc Loc) {
  uint64_t H = hashCombine(exprSeed(Expr::Kind::IntLit),
                           static_cast<uint64_t>(Value));
  return getOrMake(
      ExprTable, H,
      [&](const Expr *N) {
        const auto *L = dyn_cast<IntLitExpr>(N);
        return L && L->value() == Value;
      },
      [&] { return Mem.make<IntLitExpr>(Value, Loc); });
}

const Expr *AstContext::var(Symbol Name, VarTag Tag, SourceLoc Loc) {
  assert(Name.isValid() && "variable needs a valid symbol");
  uint64_t H = hashCombine(hashCombine(exprSeed(Expr::Kind::Var), Name.id()),
                           varTagHashSeed(Tag));
  return getOrMake(
      ExprTable, H,
      [&](const Expr *N) {
        const auto *V = dyn_cast<VarExpr>(N);
        return V && V->name() == Name && V->tag() == Tag;
      },
      [&] { return Mem.make<VarExpr>(Name, Tag, Loc); });
}

const ArrayExpr *AstContext::arrayRef(Symbol Name, VarTag Tag, SourceLoc Loc) {
  assert(Name.isValid() && "array needs a valid symbol");
  uint64_t H =
      hashCombine(hashCombine(arraySeed(ArrayExpr::Kind::Ref), Name.id()),
                  varTagHashSeed(Tag));
  return getOrMake(
      ArrayTable, H,
      [&](const ArrayExpr *N) {
        const auto *R = dyn_cast<ArrayRefExpr>(N);
        return R && R->name() == Name && R->tag() == Tag;
      },
      [&] { return Mem.make<ArrayRefExpr>(Name, Tag, Loc); });
}

const ArrayExpr *AstContext::arrayStore(const ArrayExpr *Base,
                                        const Expr *Index, const Expr *Value,
                                        SourceLoc Loc) {
  uint64_t H = arraySeed(ArrayExpr::Kind::Store);
  H = hashCombine(H, Base->hash());
  H = hashCombine(H, Index->hash());
  H = hashCombine(H, Value->hash());
  return getOrMake(
      ArrayTable, H,
      [&](const ArrayExpr *N) {
        const auto *S = dyn_cast<ArrayStoreExpr>(N);
        return S && S->base() == Base && S->index() == Index &&
               S->value() == Value;
      },
      [&] { return Mem.make<ArrayStoreExpr>(Base, Index, Value, Loc); });
}

const Expr *AstContext::arrayRead(const ArrayExpr *Base, const Expr *Index,
                                  SourceLoc Loc) {
  uint64_t H = hashCombine(
      hashCombine(exprSeed(Expr::Kind::ArrayRead), Base->hash()),
      Index->hash());
  return getOrMake(
      ExprTable, H,
      [&](const Expr *N) {
        const auto *R = dyn_cast<ArrayReadExpr>(N);
        return R && R->base() == Base && R->index() == Index;
      },
      [&] { return Mem.make<ArrayReadExpr>(Base, Index, Loc); });
}

const Expr *AstContext::arrayLen(const ArrayExpr *Base, SourceLoc Loc) {
  uint64_t H = hashCombine(exprSeed(Expr::Kind::ArrayLen), Base->hash());
  return getOrMake(
      ExprTable, H,
      [&](const Expr *N) {
        const auto *L = dyn_cast<ArrayLenExpr>(N);
        return L && L->base() == Base;
      },
      [&] { return Mem.make<ArrayLenExpr>(Base, Loc); });
}

const Expr *AstContext::binary(BinaryOp Op, const Expr *LHS, const Expr *RHS,
                               SourceLoc Loc) {
  uint64_t H = exprSeed(Expr::Kind::Binary);
  H = hashCombine(H, static_cast<uint64_t>(Op));
  H = hashCombine(H, LHS->hash());
  H = hashCombine(H, RHS->hash());
  return getOrMake(
      ExprTable, H,
      [&](const Expr *N) {
        const auto *B = dyn_cast<BinaryExpr>(N);
        return B && B->op() == Op && B->lhs() == LHS && B->rhs() == RHS;
      },
      [&] { return Mem.make<BinaryExpr>(Op, LHS, RHS, Loc); });
}

//===----------------------------------------------------------------------===//
// Boolean expressions
//===----------------------------------------------------------------------===//

const BoolExpr *AstContext::boolLit(bool Value, SourceLoc Loc) {
  // Fast path once the constructor has interned the two literals.
  if (Value && CachedTrue)
    return CachedTrue;
  if (!Value && CachedFalse)
    return CachedFalse;
  uint64_t H = hashCombine(boolSeed(BoolExpr::Kind::BoolLit), Value ? 1 : 0);
  return getOrMake(
      BoolTable, H,
      [&](const BoolExpr *N) {
        const auto *L = dyn_cast<BoolLitExpr>(N);
        return L && L->value() == Value;
      },
      [&] { return Mem.make<BoolLitExpr>(Value, Loc); });
}

const BoolExpr *AstContext::cmp(CmpOp Op, const Expr *LHS, const Expr *RHS,
                                SourceLoc Loc) {
  uint64_t H = boolSeed(BoolExpr::Kind::Cmp);
  H = hashCombine(H, static_cast<uint64_t>(Op));
  H = hashCombine(H, LHS->hash());
  H = hashCombine(H, RHS->hash());
  return getOrMake(
      BoolTable, H,
      [&](const BoolExpr *N) {
        const auto *C = dyn_cast<CmpExpr>(N);
        return C && C->op() == Op && C->lhs() == LHS && C->rhs() == RHS;
      },
      [&] { return Mem.make<CmpExpr>(Op, LHS, RHS, Loc); });
}

const BoolExpr *AstContext::arrayCmp(bool Equal, const ArrayExpr *LHS,
                                     const ArrayExpr *RHS, SourceLoc Loc) {
  uint64_t H = boolSeed(BoolExpr::Kind::ArrayCmp);
  H = hashCombine(H, Equal ? 1 : 0);
  H = hashCombine(H, LHS->hash());
  H = hashCombine(H, RHS->hash());
  return getOrMake(
      BoolTable, H,
      [&](const BoolExpr *N) {
        const auto *C = dyn_cast<ArrayCmpExpr>(N);
        return C && C->isEquality() == Equal && C->lhs() == LHS &&
               C->rhs() == RHS;
      },
      [&] { return Mem.make<ArrayCmpExpr>(Equal, LHS, RHS, Loc); });
}

const BoolExpr *AstContext::logical(LogicalOp Op, const BoolExpr *LHS,
                                    const BoolExpr *RHS, SourceLoc Loc) {
  uint64_t H = boolSeed(BoolExpr::Kind::Logical);
  H = hashCombine(H, static_cast<uint64_t>(Op));
  H = hashCombine(H, LHS->hash());
  H = hashCombine(H, RHS->hash());
  return getOrMake(
      BoolTable, H,
      [&](const BoolExpr *N) {
        const auto *L = dyn_cast<LogicalExpr>(N);
        return L && L->op() == Op && L->lhs() == LHS && L->rhs() == RHS;
      },
      [&] { return Mem.make<LogicalExpr>(Op, LHS, RHS, Loc); });
}

const BoolExpr *AstContext::notExpr(const BoolExpr *Sub, SourceLoc Loc) {
  uint64_t H = hashCombine(boolSeed(BoolExpr::Kind::Not), Sub->hash());
  return getOrMake(
      BoolTable, H,
      [&](const BoolExpr *N) {
        const auto *No = dyn_cast<NotExpr>(N);
        return No && No->sub() == Sub;
      },
      [&] { return Mem.make<NotExpr>(Sub, Loc); });
}

const BoolExpr *
AstContext::conj(std::initializer_list<const BoolExpr *> Parts) {
  return conj(std::vector<const BoolExpr *>(Parts));
}

const BoolExpr *AstContext::conj(const std::vector<const BoolExpr *> &Parts) {
  const BoolExpr *Acc = nullptr;
  for (const BoolExpr *P : Parts) {
    if (!P)
      continue;
    if (const auto *Lit = dyn_cast<BoolLitExpr>(P); Lit && Lit->value())
      continue; // `true` is the unit of conjunction
    Acc = Acc ? andExpr(Acc, P) : P;
  }
  return Acc ? Acc : trueExpr();
}

const BoolExpr *
AstContext::disj(std::initializer_list<const BoolExpr *> Parts) {
  return disj(std::vector<const BoolExpr *>(Parts));
}

const BoolExpr *AstContext::disj(const std::vector<const BoolExpr *> &Parts) {
  const BoolExpr *Acc = nullptr;
  for (const BoolExpr *P : Parts) {
    if (!P)
      continue;
    if (const auto *Lit = dyn_cast<BoolLitExpr>(P); Lit && !Lit->value())
      continue; // `false` is the unit of disjunction
    Acc = Acc ? orExpr(Acc, P) : P;
  }
  return Acc ? Acc : falseExpr();
}

const BoolExpr *AstContext::exists(Symbol Var, VarTag Tag, VarKind VK,
                                   const BoolExpr *Body, SourceLoc Loc) {
  uint64_t H = boolSeed(BoolExpr::Kind::Exists);
  H = hashCombine(H, Var.id());
  H = hashCombine(H, varTagHashSeed(Tag));
  H = hashCombine(H, static_cast<uint64_t>(VK));
  H = hashCombine(H, Body->hash());
  return getOrMake(
      BoolTable, H,
      [&](const BoolExpr *N) {
        const auto *E = dyn_cast<ExistsExpr>(N);
        return E && E->var() == Var && E->tag() == Tag && E->varKind() == VK &&
               E->body() == Body;
      },
      [&] { return Mem.make<ExistsExpr>(Var, Tag, VK, Body, Loc); });
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

const Stmt *AstContext::skip(SourceLoc Loc) { return Mem.make<SkipStmt>(Loc); }

const Stmt *AstContext::assign(Symbol Var, const Expr *Value, SourceLoc Loc) {
  return Mem.make<AssignStmt>(Var, Value, Loc);
}

const Stmt *AstContext::arrayAssign(Symbol Array, const Expr *Index,
                                    const Expr *Value, SourceLoc Loc) {
  return Mem.make<ArrayAssignStmt>(Array, Index, Value, Loc);
}

const Stmt *AstContext::havoc(const std::vector<Symbol> &Vars,
                              const BoolExpr *Pred, SourceLoc Loc) {
  assert(!Vars.empty() && "havoc needs at least one variable");
  Symbol *Copy = Mem.copyArray(Vars.data(), Vars.size());
  return Mem.make<HavocStmt>(Copy, Vars.size(), Pred, Loc);
}

const Stmt *AstContext::relax(const std::vector<Symbol> &Vars,
                              const BoolExpr *Pred, SourceLoc Loc) {
  assert(!Vars.empty() && "relax needs at least one variable");
  Symbol *Copy = Mem.copyArray(Vars.data(), Vars.size());
  return Mem.make<RelaxStmt>(Copy, Vars.size(), Pred, Loc);
}

const Stmt *AstContext::ifStmt(const BoolExpr *Cond, const Stmt *Then,
                               const Stmt *Else,
                               const DivergeAnnotation *Diverge,
                               SourceLoc Loc) {
  if (!Else)
    Else = skip(Loc);
  return Mem.make<IfStmt>(Cond, Then, Else, Diverge, Loc);
}

const Stmt *AstContext::whileStmt(const BoolExpr *Cond, const Stmt *Body,
                                  LoopAnnotations Annotations,
                                  const DivergeAnnotation *Diverge,
                                  SourceLoc Loc) {
  const auto *Ann = Mem.make<LoopAnnotations>(Annotations);
  return Mem.make<WhileStmt>(Cond, Body, Ann, Diverge, Loc);
}

const Stmt *AstContext::assume(const BoolExpr *Pred, SourceLoc Loc) {
  return Mem.make<AssumeStmt>(Pred, Loc);
}

const Stmt *AstContext::assert_(const BoolExpr *Pred, SourceLoc Loc) {
  return Mem.make<AssertStmt>(Pred, Loc);
}

const Stmt *AstContext::relate(Symbol Label, const BoolExpr *Pred,
                               SourceLoc Loc) {
  return Mem.make<RelateStmt>(Label, Pred, Loc);
}

const Stmt *AstContext::call(Symbol Callee,
                             const std::vector<const Expr *> &Args,
                             SourceLoc Loc) {
  const Expr **Copy = Mem.copyArray(Args.data(), Args.size());
  return Mem.make<CallStmt>(Callee, Copy, Args.size(), Loc);
}

const Stmt *AstContext::seq(const Stmt *First, const Stmt *Second,
                            SourceLoc Loc) {
  return Mem.make<SeqStmt>(First, Second, Loc);
}

const Stmt *AstContext::seq(std::initializer_list<const Stmt *> Stmts) {
  return seq(std::vector<const Stmt *>(Stmts));
}

const Stmt *AstContext::seq(const std::vector<const Stmt *> &Stmts) {
  const Stmt *Acc = nullptr;
  // Right-nest so execution order matches list order.
  for (auto It = Stmts.rbegin(), E = Stmts.rend(); It != E; ++It) {
    if (!*It)
      continue;
    Acc = Acc ? seq(*It, Acc) : *It;
  }
  return Acc ? Acc : skip();
}

const DivergeAnnotation *
AstContext::divergeAnnotation(DivergeAnnotation A) {
  return Mem.make<DivergeAnnotation>(A);
}
