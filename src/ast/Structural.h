//===- Structural.h - Structural equality and hashing -------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural (source-location-insensitive) equality and hashing over
/// expressions and formulas. Used by the solver result cache, the
/// simplifier, and the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_STRUCTURAL_H
#define RELAXC_AST_STRUCTURAL_H

#include "ast/Program.h"

#include <cstdint>

namespace relax {

/// Returns true when the two expressions are structurally identical.
///
/// Nodes built by the same AstContext are hash-consed, so for them this is
/// pointer equality (the O(1) fast path). Cross-context comparison falls
/// back to a hash-pruned deep walk; it remains nominal on Symbol ids, so it
/// is only meaningful when both contexts interned identically.
bool structurallyEqual(const Expr *A, const Expr *B);
bool structurallyEqual(const ArrayExpr *A, const ArrayExpr *B);
bool structurallyEqual(const BoolExpr *A, const BoolExpr *B);

/// Statement- and program-level structural equality (source-location
/// insensitive). Statements are not interned, but every formula and
/// expression they reference is, so within one AstContext the leaf
/// comparisons are all pointer equality and the walk costs O(statements)
/// rather than O(AST nodes). Null annotation components compare equal only
/// to null (the VC generators treat null and `true` differently for
/// diagnostics, so the distinction is structural).
bool structurallyEqual(const Stmt *A, const Stmt *B);
bool structurallyEqual(const LoopAnnotations *A, const LoopAnnotations *B);
bool structurallyEqual(const DivergeAnnotation *A, const DivergeAnnotation *B);

/// Whole-module structural equality: declarations (names, kinds, order)
/// and every procedure — name, parameters, modifies frame, all four
/// contract clauses, body, and entry designation. This is what "parse,
/// print, re-parse yields the same program" means for the golden-file
/// round-trip tests: re-parsing the printed form in the same context must
/// reproduce every formula pointer and an isomorphic statement tree.
bool structurallyEqual(const Procedure &A, const Procedure &B);
bool structurallyEqual(const Program &A, const Program &B);

/// Deterministic structural hash (stable across runs and platforms).
/// Hash-consed nodes carry it inline, making this a cached field read.
uint64_t structuralHash(const Expr *E);
uint64_t structuralHash(const ArrayExpr *A);
uint64_t structuralHash(const BoolExpr *B);

/// Statement/procedure/program structural hashes, built on the inline
/// formula hashes. Agree with the equalities above: equal values hash
/// equally.
uint64_t structuralHash(const Stmt *S);
uint64_t structuralHash(const Procedure &P);
uint64_t structuralHash(const Program &P);

/// Seed mixed into variable hashes per execution tag. Shared between the
/// hash-consing factories (AstContext) and the recursive fallback
/// (Structural.cpp); the two must agree on every formula.
inline uint64_t varTagHashSeed(VarTag Tag) {
  return static_cast<uint64_t>(Tag) + 11;
}

} // namespace relax

#endif // RELAXC_AST_STRUCTURAL_H
