//===- Structural.h - Structural equality and hashing -------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural (source-location-insensitive) equality and hashing over
/// expressions and formulas. Used by the solver result cache, the
/// simplifier, and the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_STRUCTURAL_H
#define RELAXC_AST_STRUCTURAL_H

#include "ast/BoolExpr.h"

#include <cstdint>

namespace relax {

/// Returns true when the two expressions are structurally identical.
bool structurallyEqual(const Expr *A, const Expr *B);
bool structurallyEqual(const ArrayExpr *A, const ArrayExpr *B);
bool structurallyEqual(const BoolExpr *A, const BoolExpr *B);

/// Deterministic structural hash (stable across runs and platforms).
uint64_t structuralHash(const Expr *E);
uint64_t structuralHash(const ArrayExpr *A);
uint64_t structuralHash(const BoolExpr *B);

} // namespace relax

#endif // RELAXC_AST_STRUCTURAL_H
