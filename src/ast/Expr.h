//===- Expr.h - Integer and array expressions ---------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer expressions E and relational integer expressions E* (Figure 1 of
/// the paper) share one AST: a variable reference carries a VarTag saying
/// whether it denotes the current execution (`x`, Plain), the original
/// execution (`x<o>`, Orig), or the relaxed execution (`x<r>`, Rel).
/// Program expressions use only Plain variables; relational predicates use
/// only Orig/Rel variables. Sema enforces the discipline that the paper's
/// separate syntactic categories E and E* provide.
///
/// Arrays are the paper's footnote-2 extension, needed by the Water and LU
/// case studies. Array-valued expressions form a small separate hierarchy
/// (a named array or a McCarthy `store`), so that the verification-condition
/// generator can model element assignment precisely; `a[e]` reads an element
/// and `len(a)` is the (execution-invariant) array length.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_EXPR_H
#define RELAXC_AST_EXPR_H

#include "support/Interner.h"
#include "support/SourceLoc.h"

#include <cstdint>

namespace relax {

/// Which execution a variable reference denotes.
enum class VarTag : uint8_t {
  Plain, ///< current execution (program text, unary predicates)
  Orig,  ///< `x<o>`: the original execution, first state component
  Rel,   ///< `x<r>`: the relaxed execution, second state component
};

/// Returns "", "<o>", or "<r>" for printing.
const char *varTagSuffix(VarTag Tag);

/// The type of a program variable.
enum class VarKind : uint8_t { Int, Array };

/// Binary integer operators (iop in Figure 1).
enum class BinaryOp : uint8_t { Add, Sub, Mul, Div, Mod };

/// Returns the surface syntax for \p Op.
const char *binaryOpSpelling(BinaryOp Op);

class Expr;
class AstContext;

//===----------------------------------------------------------------------===//
// Array-valued expressions
//===----------------------------------------------------------------------===//

/// An array-valued expression: a named array or a functional update of one.
class ArrayExpr {
public:
  enum class Kind : uint8_t { Ref, Store };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The structural hash, computed once at construction by the hash-consing
  /// factory (see AstContext). Source-location-insensitive.
  uint64_t hash() const { return HashVal; }

  ArrayExpr(const ArrayExpr &) = delete;
  ArrayExpr &operator=(const ArrayExpr &) = delete;

protected:
  ArrayExpr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  friend class AstContext;
  Kind K;
  SourceLoc Loc;
  uint64_t HashVal = 0;
};

/// A named array `a`, `a<o>`, or `a<r>`.
class ArrayRefExpr : public ArrayExpr {
public:
  ArrayRefExpr(Symbol Name, VarTag Tag, SourceLoc Loc)
      : ArrayExpr(Kind::Ref, Loc), Name(Name), Tag(Tag) {}

  Symbol name() const { return Name; }
  VarTag tag() const { return Tag; }

  static bool classof(const ArrayExpr *A) { return A->kind() == Kind::Ref; }

private:
  Symbol Name;
  VarTag Tag;
};

/// A functional array update `store(a, i, v)`: the array equal to \p base
/// except that index \p i maps to \p v. Only appears in generated
/// verification conditions, never in program text.
class ArrayStoreExpr : public ArrayExpr {
public:
  ArrayStoreExpr(const ArrayExpr *Base, const Expr *Index, const Expr *Value,
                 SourceLoc Loc)
      : ArrayExpr(Kind::Store, Loc), Base(Base), Index(Index), Value(Value) {}

  const ArrayExpr *base() const { return Base; }
  const Expr *index() const { return Index; }
  const Expr *value() const { return Value; }

  static bool classof(const ArrayExpr *A) { return A->kind() == Kind::Store; }

private:
  const ArrayExpr *Base;
  const Expr *Index;
  const Expr *Value;
};

//===----------------------------------------------------------------------===//
// Integer-valued expressions
//===----------------------------------------------------------------------===//

/// An integer-valued expression.
class Expr {
public:
  enum class Kind : uint8_t { IntLit, Var, ArrayRead, ArrayLen, Binary };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The structural hash, computed once at construction by the hash-consing
  /// factory (see AstContext). Source-location-insensitive.
  uint64_t hash() const { return HashVal; }

  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  friend class AstContext;
  Kind K;
  SourceLoc Loc;
  uint64_t HashVal = 0;
};

/// An integer literal `n`.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A scalar variable reference `x`, `x<o>`, or `x<r>`.
class VarExpr : public Expr {
public:
  VarExpr(Symbol Name, VarTag Tag, SourceLoc Loc)
      : Expr(Kind::Var, Loc), Name(Name), Tag(Tag) {}

  Symbol name() const { return Name; }
  VarTag tag() const { return Tag; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  Symbol Name;
  VarTag Tag;
};

/// An array element read `a[e]`.
class ArrayReadExpr : public Expr {
public:
  ArrayReadExpr(const ArrayExpr *Base, const Expr *Index, SourceLoc Loc)
      : Expr(Kind::ArrayRead, Loc), Base(Base), Index(Index) {}

  const ArrayExpr *base() const { return Base; }
  const Expr *index() const { return Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRead; }

private:
  const ArrayExpr *Base;
  const Expr *Index;
};

/// The length of an array, `len(a)`. Lengths are fixed for a whole
/// execution: assignment, havoc, and relax preserve them.
class ArrayLenExpr : public Expr {
public:
  ArrayLenExpr(const ArrayExpr *Base, SourceLoc Loc)
      : Expr(Kind::ArrayLen, Loc), Base(Base) {}

  const ArrayExpr *base() const { return Base; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayLen; }

private:
  const ArrayExpr *Base;
};

/// A binary arithmetic expression `e1 iop e2`.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, const Expr *LHS, const Expr *RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  const Expr *LHS;
  const Expr *RHS;
};

} // namespace relax

#endif // RELAXC_AST_EXPR_H
