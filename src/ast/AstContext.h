//===- AstContext.h - AST ownership and factory --------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AstContext owns every AST node (arena) and every identifier (interner)
/// for one compilation, and exposes factory methods that double as a
/// builder DSL for constructing programs directly from C++ (used by the
/// examples, the tests, and the synthetic-workload generators).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_ASTCONTEXT_H
#define RELAXC_AST_ASTCONTEXT_H

#include "ast/Program.h"
#include "ast/VarRef.h"
#include "support/Arena.h"
#include "support/HashConsTable.h"
#include "support/PtrMap.h"

#include <initializer_list>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace relax {

class FormulaProgram;

/// Identity-keyed memo of compiled formula evaluation programs (see
/// solver/FormulaProgram.h), owned by the AstContext like the simplify and
/// free-variable tables so one formula compiles once per context. Unlike
/// those tables this one is mutex-guarded: the parallel VC discharger hands
/// each worker its own bounded solver, and the workers compile their query
/// programs lazily at discharge time — after node construction has
/// finished, but concurrently with each other. Compilation only *reads*
/// hash-consed nodes, so guarding the memo itself is sufficient.
class FormulaProgramCache {
public:
  std::shared_ptr<const FormulaProgram> lookup(const BoolExpr *B) const {
    std::lock_guard<std::mutex> Lock(M);
    const std::shared_ptr<const FormulaProgram> *P = Map.find(B);
    return P ? *P : nullptr;
  }

  void insert(const BoolExpr *B, std::shared_ptr<const FormulaProgram> P) {
    std::lock_guard<std::mutex> Lock(M);
    Map.insert(B, std::move(P));
  }

private:
  mutable std::mutex M;
  PtrMap<BoolExpr, std::shared_ptr<const FormulaProgram>> Map;
};

/// Owns AST nodes and interned symbols; provides node factories.
///
/// All factory methods return arena-allocated, immutable nodes. Formula
/// factories apply *no* simplification (the logic library has an explicit
/// simplifier) except the `conj`/`disj` list helpers, which fold their
/// neutral elements to keep generated VCs readable.
///
/// Expression and formula factories are *hash-consing*: structurally
/// identical construction requests (ignoring source locations) return the
/// same pointer, so within one context structural equality is pointer
/// equality, `structuralHash` is a cached field read, and identity-keyed
/// memo tables (simplification, free variables, solver-term translation)
/// are sound. Statements are not hash-consed — they carry per-occurrence
/// source locations that diagnostics depend on. Expression-level
/// diagnostics (sema errors, interpreter traps) consequently report the
/// location of the *first* structurally identical occurrence — a
/// deliberate trade of per-occurrence precision for maximal sharing.
///
/// The factories and the caches they feed are NOT thread-safe: all node
/// construction must happen on one thread (the parallel VC discharger
/// pre-builds its query formulas before fanning out).
class AstContext {
public:
  AstContext();
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  Interner &symbols() { return Syms; }
  const Interner &symbols() const { return Syms; }
  Arena &arena() { return Mem; }

  /// Interns \p Name.
  Symbol sym(std::string_view Name) { return Syms.intern(Name); }
  /// Returns the text of \p S.
  std::string_view text(Symbol S) const { return Syms.text(S); }
  /// Returns a symbol fresh with respect to everything interned so far.
  Symbol freshSym(Symbol Base) { return Syms.fresh(Base); }

  //===--------------------------------------------------------------------===//
  // Integer expressions
  //===--------------------------------------------------------------------===//

  const Expr *intLit(int64_t Value, SourceLoc Loc = SourceLoc());
  const Expr *var(Symbol Name, VarTag Tag = VarTag::Plain,
                  SourceLoc Loc = SourceLoc());
  const Expr *var(std::string_view Name, VarTag Tag = VarTag::Plain) {
    return var(sym(Name), Tag);
  }
  /// `x<o>` / `x<r>` shorthands.
  const Expr *varO(std::string_view Name) { return var(sym(Name), VarTag::Orig); }
  const Expr *varR(std::string_view Name) { return var(sym(Name), VarTag::Rel); }

  const ArrayExpr *arrayRef(Symbol Name, VarTag Tag = VarTag::Plain,
                            SourceLoc Loc = SourceLoc());
  const ArrayExpr *arrayRef(std::string_view Name,
                            VarTag Tag = VarTag::Plain) {
    return arrayRef(sym(Name), Tag);
  }
  const ArrayExpr *arrayStore(const ArrayExpr *Base, const Expr *Index,
                              const Expr *Value, SourceLoc Loc = SourceLoc());

  const Expr *arrayRead(const ArrayExpr *Base, const Expr *Index,
                        SourceLoc Loc = SourceLoc());
  const Expr *arrayLen(const ArrayExpr *Base, SourceLoc Loc = SourceLoc());

  const Expr *binary(BinaryOp Op, const Expr *LHS, const Expr *RHS,
                     SourceLoc Loc = SourceLoc());
  const Expr *add(const Expr *L, const Expr *R) {
    return binary(BinaryOp::Add, L, R);
  }
  const Expr *sub(const Expr *L, const Expr *R) {
    return binary(BinaryOp::Sub, L, R);
  }
  const Expr *mul(const Expr *L, const Expr *R) {
    return binary(BinaryOp::Mul, L, R);
  }

  //===--------------------------------------------------------------------===//
  // Boolean expressions / formulas
  //===--------------------------------------------------------------------===//

  const BoolExpr *boolLit(bool Value, SourceLoc Loc = SourceLoc());
  const BoolExpr *trueExpr() { return CachedTrue; }
  const BoolExpr *falseExpr() { return CachedFalse; }

  const BoolExpr *cmp(CmpOp Op, const Expr *LHS, const Expr *RHS,
                      SourceLoc Loc = SourceLoc());
  const BoolExpr *eq(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Eq, L, R);
  }
  const BoolExpr *ne(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Ne, L, R);
  }
  const BoolExpr *lt(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Lt, L, R);
  }
  const BoolExpr *le(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Le, L, R);
  }
  const BoolExpr *gt(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Gt, L, R);
  }
  const BoolExpr *ge(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Ge, L, R);
  }

  const BoolExpr *arrayCmp(bool Equal, const ArrayExpr *LHS,
                           const ArrayExpr *RHS, SourceLoc Loc = SourceLoc());
  const BoolExpr *arrayEq(const ArrayExpr *L, const ArrayExpr *R) {
    return arrayCmp(true, L, R);
  }

  const BoolExpr *logical(LogicalOp Op, const BoolExpr *LHS,
                          const BoolExpr *RHS, SourceLoc Loc = SourceLoc());
  const BoolExpr *andExpr(const BoolExpr *L, const BoolExpr *R) {
    return logical(LogicalOp::And, L, R);
  }
  const BoolExpr *orExpr(const BoolExpr *L, const BoolExpr *R) {
    return logical(LogicalOp::Or, L, R);
  }
  const BoolExpr *implies(const BoolExpr *L, const BoolExpr *R) {
    return logical(LogicalOp::Implies, L, R);
  }
  const BoolExpr *notExpr(const BoolExpr *Sub, SourceLoc Loc = SourceLoc());

  /// Conjunction of a list, folding `true` units: conj({}) == true.
  const BoolExpr *conj(std::initializer_list<const BoolExpr *> Parts);
  const BoolExpr *conj(const std::vector<const BoolExpr *> &Parts);
  /// Disjunction of a list, folding `false` units: disj({}) == false.
  const BoolExpr *disj(std::initializer_list<const BoolExpr *> Parts);
  const BoolExpr *disj(const std::vector<const BoolExpr *> &Parts);

  const BoolExpr *exists(Symbol Var, VarTag Tag, VarKind VK,
                         const BoolExpr *Body, SourceLoc Loc = SourceLoc());

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  const Stmt *skip(SourceLoc Loc = SourceLoc());
  const Stmt *assign(Symbol Var, const Expr *Value,
                     SourceLoc Loc = SourceLoc());
  const Stmt *assign(std::string_view Var, const Expr *Value) {
    return assign(sym(Var), Value);
  }
  const Stmt *arrayAssign(Symbol Array, const Expr *Index, const Expr *Value,
                          SourceLoc Loc = SourceLoc());
  const Stmt *arrayAssign(std::string_view Array, const Expr *Index,
                          const Expr *Value) {
    return arrayAssign(sym(Array), Index, Value);
  }
  const Stmt *havoc(const std::vector<Symbol> &Vars, const BoolExpr *Pred,
                    SourceLoc Loc = SourceLoc());
  const Stmt *relax(const std::vector<Symbol> &Vars, const BoolExpr *Pred,
                    SourceLoc Loc = SourceLoc());
  const Stmt *ifStmt(const BoolExpr *Cond, const Stmt *Then, const Stmt *Else,
                     const DivergeAnnotation *Diverge = nullptr,
                     SourceLoc Loc = SourceLoc());
  const Stmt *whileStmt(const BoolExpr *Cond, const Stmt *Body,
                        LoopAnnotations Annotations = LoopAnnotations(),
                        const DivergeAnnotation *Diverge = nullptr,
                        SourceLoc Loc = SourceLoc());
  const Stmt *assume(const BoolExpr *Pred, SourceLoc Loc = SourceLoc());
  const Stmt *assert_(const BoolExpr *Pred, SourceLoc Loc = SourceLoc());
  const Stmt *relate(Symbol Label, const BoolExpr *Pred,
                     SourceLoc Loc = SourceLoc());
  const Stmt *relate(std::string_view Label, const BoolExpr *Pred) {
    return relate(sym(Label), Pred);
  }
  const Stmt *call(Symbol Callee, const std::vector<const Expr *> &Args,
                   SourceLoc Loc = SourceLoc());
  const Stmt *call(std::string_view Callee,
                   const std::vector<const Expr *> &Args = {}) {
    return call(sym(Callee), Args);
  }
  const Stmt *seq(const Stmt *First, const Stmt *Second,
                  SourceLoc Loc = SourceLoc());
  /// Right-nested sequence of a statement list; seq({}) == skip.
  const Stmt *seq(std::initializer_list<const Stmt *> Stmts);
  const Stmt *seq(const std::vector<const Stmt *> &Stmts);

  /// Arena-allocates a DivergeAnnotation.
  const DivergeAnnotation *divergeAnnotation(DivergeAnnotation A);

  //===--------------------------------------------------------------------===//
  // Hash-consing statistics and identity-keyed caches
  //===--------------------------------------------------------------------===//

  /// Number of factory calls answered by an existing node.
  uint64_t hashConsHits() const { return HashConsHits; }
  /// Number of distinct expression/formula nodes created.
  uint64_t uniqueNodeCount() const { return UniqueNodes; }

  /// Identity-keyed memo tables. Sound because hash-consed nodes are
  /// immutable and identity implies structural identity. Owned here so the
  /// memo survives across Simplifier instances / freeVars call sites.
  PtrMap<BoolExpr, const BoolExpr *> &simplifyCacheBool() {
    return SimpBoolCache;
  }
  PtrMap<Expr, const Expr *> &simplifyCacheExpr() { return SimpExprCache; }
  PtrMap<Expr, SharedVarList> &freeVarsCacheExpr() {
    return FreeVarsExprCache;
  }
  PtrMap<ArrayExpr, SharedVarList> &freeVarsCacheArray() {
    return FreeVarsArrayCache;
  }
  PtrMap<BoolExpr, SharedVarList> &freeVarsCacheBool() {
    return FreeVarsBoolCache;
  }
  FormulaProgramCache &formulaProgramCache() { return FormulaProgCache; }

private:
  Arena Mem;
  Interner Syms;
  const BoolExpr *CachedTrue = nullptr;
  const BoolExpr *CachedFalse = nullptr;

  // Hash-cons tables: open-addressed (structural hash -> node) sets.
  // Full-hash collisions are resolved by a shallow field-and-child-pointer
  // comparison (children are already consed).
  HashConsTable<Expr> ExprTable;
  HashConsTable<ArrayExpr> ArrayTable;
  HashConsTable<BoolExpr> BoolTable;
  uint64_t HashConsHits = 0;
  uint64_t UniqueNodes = 0;

  PtrMap<BoolExpr, const BoolExpr *> SimpBoolCache;
  PtrMap<Expr, const Expr *> SimpExprCache;
  PtrMap<Expr, SharedVarList> FreeVarsExprCache;
  PtrMap<ArrayExpr, SharedVarList> FreeVarsArrayCache;
  PtrMap<BoolExpr, SharedVarList> FreeVarsBoolCache;
  FormulaProgramCache FormulaProgCache;

  /// Returns the node in \p Table matching (\p H, \p Matches), or
  /// constructs one with \p Make, stamps its hash, and interns it.
  template <typename NodeT, typename MatchFn, typename MakeFn>
  const NodeT *getOrMake(HashConsTable<NodeT> &Table, uint64_t H,
                         MatchFn Matches, MakeFn Make);
};

} // namespace relax

#endif // RELAXC_AST_ASTCONTEXT_H
