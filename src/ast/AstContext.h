//===- AstContext.h - AST ownership and factory --------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AstContext owns every AST node (arena) and every identifier (interner)
/// for one compilation, and exposes factory methods that double as a
/// builder DSL for constructing programs directly from C++ (used by the
/// examples, the tests, and the synthetic-workload generators).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_ASTCONTEXT_H
#define RELAXC_AST_ASTCONTEXT_H

#include "ast/Program.h"
#include "support/Arena.h"

#include <initializer_list>
#include <string_view>
#include <vector>

namespace relax {

/// Owns AST nodes and interned symbols; provides node factories.
///
/// All factory methods return arena-allocated, immutable nodes. Formula
/// factories apply *no* simplification (the logic library has an explicit
/// simplifier) except the `conj`/`disj` list helpers, which fold their
/// neutral elements to keep generated VCs readable.
class AstContext {
public:
  AstContext();
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  Interner &symbols() { return Syms; }
  const Interner &symbols() const { return Syms; }
  Arena &arena() { return Mem; }

  /// Interns \p Name.
  Symbol sym(std::string_view Name) { return Syms.intern(Name); }
  /// Returns the text of \p S.
  std::string_view text(Symbol S) const { return Syms.text(S); }
  /// Returns a symbol fresh with respect to everything interned so far.
  Symbol freshSym(Symbol Base) { return Syms.fresh(Base); }

  //===--------------------------------------------------------------------===//
  // Integer expressions
  //===--------------------------------------------------------------------===//

  const Expr *intLit(int64_t Value, SourceLoc Loc = SourceLoc());
  const Expr *var(Symbol Name, VarTag Tag = VarTag::Plain,
                  SourceLoc Loc = SourceLoc());
  const Expr *var(std::string_view Name, VarTag Tag = VarTag::Plain) {
    return var(sym(Name), Tag);
  }
  /// `x<o>` / `x<r>` shorthands.
  const Expr *varO(std::string_view Name) { return var(sym(Name), VarTag::Orig); }
  const Expr *varR(std::string_view Name) { return var(sym(Name), VarTag::Rel); }

  const ArrayExpr *arrayRef(Symbol Name, VarTag Tag = VarTag::Plain,
                            SourceLoc Loc = SourceLoc());
  const ArrayExpr *arrayRef(std::string_view Name,
                            VarTag Tag = VarTag::Plain) {
    return arrayRef(sym(Name), Tag);
  }
  const ArrayExpr *arrayStore(const ArrayExpr *Base, const Expr *Index,
                              const Expr *Value, SourceLoc Loc = SourceLoc());

  const Expr *arrayRead(const ArrayExpr *Base, const Expr *Index,
                        SourceLoc Loc = SourceLoc());
  const Expr *arrayLen(const ArrayExpr *Base, SourceLoc Loc = SourceLoc());

  const Expr *binary(BinaryOp Op, const Expr *LHS, const Expr *RHS,
                     SourceLoc Loc = SourceLoc());
  const Expr *add(const Expr *L, const Expr *R) {
    return binary(BinaryOp::Add, L, R);
  }
  const Expr *sub(const Expr *L, const Expr *R) {
    return binary(BinaryOp::Sub, L, R);
  }
  const Expr *mul(const Expr *L, const Expr *R) {
    return binary(BinaryOp::Mul, L, R);
  }

  //===--------------------------------------------------------------------===//
  // Boolean expressions / formulas
  //===--------------------------------------------------------------------===//

  const BoolExpr *boolLit(bool Value, SourceLoc Loc = SourceLoc());
  const BoolExpr *trueExpr() { return CachedTrue; }
  const BoolExpr *falseExpr() { return CachedFalse; }

  const BoolExpr *cmp(CmpOp Op, const Expr *LHS, const Expr *RHS,
                      SourceLoc Loc = SourceLoc());
  const BoolExpr *eq(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Eq, L, R);
  }
  const BoolExpr *ne(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Ne, L, R);
  }
  const BoolExpr *lt(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Lt, L, R);
  }
  const BoolExpr *le(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Le, L, R);
  }
  const BoolExpr *gt(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Gt, L, R);
  }
  const BoolExpr *ge(const Expr *L, const Expr *R) {
    return cmp(CmpOp::Ge, L, R);
  }

  const BoolExpr *arrayCmp(bool Equal, const ArrayExpr *LHS,
                           const ArrayExpr *RHS, SourceLoc Loc = SourceLoc());
  const BoolExpr *arrayEq(const ArrayExpr *L, const ArrayExpr *R) {
    return arrayCmp(true, L, R);
  }

  const BoolExpr *logical(LogicalOp Op, const BoolExpr *LHS,
                          const BoolExpr *RHS, SourceLoc Loc = SourceLoc());
  const BoolExpr *andExpr(const BoolExpr *L, const BoolExpr *R) {
    return logical(LogicalOp::And, L, R);
  }
  const BoolExpr *orExpr(const BoolExpr *L, const BoolExpr *R) {
    return logical(LogicalOp::Or, L, R);
  }
  const BoolExpr *implies(const BoolExpr *L, const BoolExpr *R) {
    return logical(LogicalOp::Implies, L, R);
  }
  const BoolExpr *notExpr(const BoolExpr *Sub, SourceLoc Loc = SourceLoc());

  /// Conjunction of a list, folding `true` units: conj({}) == true.
  const BoolExpr *conj(std::initializer_list<const BoolExpr *> Parts);
  const BoolExpr *conj(const std::vector<const BoolExpr *> &Parts);
  /// Disjunction of a list, folding `false` units: disj({}) == false.
  const BoolExpr *disj(std::initializer_list<const BoolExpr *> Parts);
  const BoolExpr *disj(const std::vector<const BoolExpr *> &Parts);

  const BoolExpr *exists(Symbol Var, VarTag Tag, VarKind VK,
                         const BoolExpr *Body, SourceLoc Loc = SourceLoc());

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  const Stmt *skip(SourceLoc Loc = SourceLoc());
  const Stmt *assign(Symbol Var, const Expr *Value,
                     SourceLoc Loc = SourceLoc());
  const Stmt *assign(std::string_view Var, const Expr *Value) {
    return assign(sym(Var), Value);
  }
  const Stmt *arrayAssign(Symbol Array, const Expr *Index, const Expr *Value,
                          SourceLoc Loc = SourceLoc());
  const Stmt *arrayAssign(std::string_view Array, const Expr *Index,
                          const Expr *Value) {
    return arrayAssign(sym(Array), Index, Value);
  }
  const Stmt *havoc(const std::vector<Symbol> &Vars, const BoolExpr *Pred,
                    SourceLoc Loc = SourceLoc());
  const Stmt *relax(const std::vector<Symbol> &Vars, const BoolExpr *Pred,
                    SourceLoc Loc = SourceLoc());
  const Stmt *ifStmt(const BoolExpr *Cond, const Stmt *Then, const Stmt *Else,
                     const DivergeAnnotation *Diverge = nullptr,
                     SourceLoc Loc = SourceLoc());
  const Stmt *whileStmt(const BoolExpr *Cond, const Stmt *Body,
                        LoopAnnotations Annotations = LoopAnnotations(),
                        const DivergeAnnotation *Diverge = nullptr,
                        SourceLoc Loc = SourceLoc());
  const Stmt *assume(const BoolExpr *Pred, SourceLoc Loc = SourceLoc());
  const Stmt *assert_(const BoolExpr *Pred, SourceLoc Loc = SourceLoc());
  const Stmt *relate(Symbol Label, const BoolExpr *Pred,
                     SourceLoc Loc = SourceLoc());
  const Stmt *relate(std::string_view Label, const BoolExpr *Pred) {
    return relate(sym(Label), Pred);
  }
  const Stmt *seq(const Stmt *First, const Stmt *Second,
                  SourceLoc Loc = SourceLoc());
  /// Right-nested sequence of a statement list; seq({}) == skip.
  const Stmt *seq(std::initializer_list<const Stmt *> Stmts);
  const Stmt *seq(const std::vector<const Stmt *> &Stmts);

  /// Arena-allocates a DivergeAnnotation.
  const DivergeAnnotation *divergeAnnotation(DivergeAnnotation A);

private:
  Arena Mem;
  Interner Syms;
  const BoolExpr *CachedTrue = nullptr;
  const BoolExpr *CachedFalse = nullptr;
};

} // namespace relax

#endif // RELAXC_AST_ASTCONTEXT_H
