//===- Structural.cpp - Structural equality and hashing ----------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "ast/Structural.h"

#include "support/Casting.h"
#include "support/Hashing.h"

using namespace relax;

bool relax::structurallyEqual(const Expr *A, const Expr *B) {
  if (A == B)
    return true; // hash-consing: same-context structural equality is identity
  // Different cached hashes decide inequality in O(1); equal or missing
  // hashes (cross-context nodes) fall through to the deep walk.
  if (A->hash() && B->hash() && A->hash() != B->hash())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(A)->value() == cast<IntLitExpr>(B)->value();
  case Expr::Kind::Var: {
    const auto *VA = cast<VarExpr>(A), *VB = cast<VarExpr>(B);
    return VA->name() == VB->name() && VA->tag() == VB->tag();
  }
  case Expr::Kind::ArrayRead: {
    const auto *RA = cast<ArrayReadExpr>(A), *RB = cast<ArrayReadExpr>(B);
    return structurallyEqual(RA->base(), RB->base()) &&
           structurallyEqual(RA->index(), RB->index());
  }
  case Expr::Kind::ArrayLen:
    return structurallyEqual(cast<ArrayLenExpr>(A)->base(),
                             cast<ArrayLenExpr>(B)->base());
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && structurallyEqual(BA->lhs(), BB->lhs()) &&
           structurallyEqual(BA->rhs(), BB->rhs());
  }
  }
  return false;
}

bool relax::structurallyEqual(const ArrayExpr *A, const ArrayExpr *B) {
  if (A == B)
    return true; // hash-consing: same-context structural equality is identity
  // Different cached hashes decide inequality in O(1); equal or missing
  // hashes (cross-context nodes) fall through to the deep walk.
  if (A->hash() && B->hash() && A->hash() != B->hash())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *RA = cast<ArrayRefExpr>(A), *RB = cast<ArrayRefExpr>(B);
    return RA->name() == RB->name() && RA->tag() == RB->tag();
  }
  case ArrayExpr::Kind::Store: {
    const auto *SA = cast<ArrayStoreExpr>(A), *SB = cast<ArrayStoreExpr>(B);
    return structurallyEqual(SA->base(), SB->base()) &&
           structurallyEqual(SA->index(), SB->index()) &&
           structurallyEqual(SA->value(), SB->value());
  }
  }
  return false;
}

bool relax::structurallyEqual(const BoolExpr *A, const BoolExpr *B) {
  if (A == B)
    return true; // hash-consing: same-context structural equality is identity
  // Different cached hashes decide inequality in O(1); equal or missing
  // hashes (cross-context nodes) fall through to the deep walk.
  if (A->hash() && B->hash() && A->hash() != B->hash())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case BoolExpr::Kind::BoolLit:
    return cast<BoolLitExpr>(A)->value() == cast<BoolLitExpr>(B)->value();
  case BoolExpr::Kind::Cmp: {
    const auto *CA = cast<CmpExpr>(A), *CB = cast<CmpExpr>(B);
    return CA->op() == CB->op() && structurallyEqual(CA->lhs(), CB->lhs()) &&
           structurallyEqual(CA->rhs(), CB->rhs());
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *CA = cast<ArrayCmpExpr>(A), *CB = cast<ArrayCmpExpr>(B);
    return CA->isEquality() == CB->isEquality() &&
           structurallyEqual(CA->lhs(), CB->lhs()) &&
           structurallyEqual(CA->rhs(), CB->rhs());
  }
  case BoolExpr::Kind::Logical: {
    const auto *LA = cast<LogicalExpr>(A), *LB = cast<LogicalExpr>(B);
    return LA->op() == LB->op() && structurallyEqual(LA->lhs(), LB->lhs()) &&
           structurallyEqual(LA->rhs(), LB->rhs());
  }
  case BoolExpr::Kind::Not:
    return structurallyEqual(cast<NotExpr>(A)->sub(), cast<NotExpr>(B)->sub());
  case BoolExpr::Kind::Exists: {
    const auto *EA = cast<ExistsExpr>(A), *EB = cast<ExistsExpr>(B);
    // Nominal comparison (no alpha-equivalence); fresh-name generation keeps
    // generated binders distinct anyway.
    return EA->var() == EB->var() && EA->tag() == EB->tag() &&
           EA->varKind() == EB->varKind() &&
           structurallyEqual(EA->body(), EB->body());
  }
  }
  return false;
}

uint64_t relax::structuralHash(const Expr *E) {
  // Hash-consed nodes carry their hash inline; the recursion below is the
  // fallback for nodes built outside an AstContext factory.
  if (uint64_t Cached = E->hash())
    return Cached;
  uint64_t H = hashMix(static_cast<uint64_t>(E->kind()) + 101);
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return hashCombine(H, static_cast<uint64_t>(cast<IntLitExpr>(E)->value()));
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    return hashCombine(hashCombine(H, V->name().id()), varTagHashSeed(V->tag()));
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    return hashCombine(hashCombine(H, structuralHash(R->base())),
                       structuralHash(R->index()));
  }
  case Expr::Kind::ArrayLen:
    return hashCombine(H, structuralHash(cast<ArrayLenExpr>(E)->base()));
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    H = hashCombine(H, static_cast<uint64_t>(B->op()));
    H = hashCombine(H, structuralHash(B->lhs()));
    return hashCombine(H, structuralHash(B->rhs()));
  }
  }
  return H;
}

uint64_t relax::structuralHash(const ArrayExpr *A) {
  // Hash-consed nodes carry their hash inline; the recursion below is the
  // fallback for nodes built outside an AstContext factory.
  if (uint64_t Cached = A->hash())
    return Cached;
  uint64_t H = hashMix(static_cast<uint64_t>(A->kind()) + 211);
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    return hashCombine(hashCombine(H, R->name().id()), varTagHashSeed(R->tag()));
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    H = hashCombine(H, structuralHash(S->base()));
    H = hashCombine(H, structuralHash(S->index()));
    return hashCombine(H, structuralHash(S->value()));
  }
  }
  return H;
}

uint64_t relax::structuralHash(const BoolExpr *B) {
  // Hash-consed nodes carry their hash inline; the recursion below is the
  // fallback for nodes built outside an AstContext factory.
  if (uint64_t Cached = B->hash())
    return Cached;
  uint64_t H = hashMix(static_cast<uint64_t>(B->kind()) + 307);
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return hashCombine(H, cast<BoolLitExpr>(B)->value() ? 1 : 0);
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    H = hashCombine(H, static_cast<uint64_t>(C->op()));
    H = hashCombine(H, structuralHash(C->lhs()));
    return hashCombine(H, structuralHash(C->rhs()));
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    H = hashCombine(H, C->isEquality() ? 1 : 0);
    H = hashCombine(H, structuralHash(C->lhs()));
    return hashCombine(H, structuralHash(C->rhs()));
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    H = hashCombine(H, static_cast<uint64_t>(L->op()));
    H = hashCombine(H, structuralHash(L->lhs()));
    return hashCombine(H, structuralHash(L->rhs()));
  }
  case BoolExpr::Kind::Not:
    return hashCombine(H, structuralHash(cast<NotExpr>(B)->sub()));
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    H = hashCombine(H, E->var().id());
    H = hashCombine(H, varTagHashSeed(E->tag()));
    H = hashCombine(H, static_cast<uint64_t>(E->varKind()));
    return hashCombine(H, structuralHash(E->body()));
  }
  }
  return H;
}
