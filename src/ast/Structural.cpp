//===- Structural.cpp - Structural equality and hashing ----------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "ast/Structural.h"

#include "support/Casting.h"
#include "support/Hashing.h"

using namespace relax;

bool relax::structurallyEqual(const Expr *A, const Expr *B) {
  if (A == B)
    return true; // hash-consing: same-context structural equality is identity
  // Different cached hashes decide inequality in O(1); equal or missing
  // hashes (cross-context nodes) fall through to the deep walk.
  if (A->hash() && B->hash() && A->hash() != B->hash())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(A)->value() == cast<IntLitExpr>(B)->value();
  case Expr::Kind::Var: {
    const auto *VA = cast<VarExpr>(A), *VB = cast<VarExpr>(B);
    return VA->name() == VB->name() && VA->tag() == VB->tag();
  }
  case Expr::Kind::ArrayRead: {
    const auto *RA = cast<ArrayReadExpr>(A), *RB = cast<ArrayReadExpr>(B);
    return structurallyEqual(RA->base(), RB->base()) &&
           structurallyEqual(RA->index(), RB->index());
  }
  case Expr::Kind::ArrayLen:
    return structurallyEqual(cast<ArrayLenExpr>(A)->base(),
                             cast<ArrayLenExpr>(B)->base());
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && structurallyEqual(BA->lhs(), BB->lhs()) &&
           structurallyEqual(BA->rhs(), BB->rhs());
  }
  }
  return false;
}

bool relax::structurallyEqual(const ArrayExpr *A, const ArrayExpr *B) {
  if (A == B)
    return true; // hash-consing: same-context structural equality is identity
  // Different cached hashes decide inequality in O(1); equal or missing
  // hashes (cross-context nodes) fall through to the deep walk.
  if (A->hash() && B->hash() && A->hash() != B->hash())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *RA = cast<ArrayRefExpr>(A), *RB = cast<ArrayRefExpr>(B);
    return RA->name() == RB->name() && RA->tag() == RB->tag();
  }
  case ArrayExpr::Kind::Store: {
    const auto *SA = cast<ArrayStoreExpr>(A), *SB = cast<ArrayStoreExpr>(B);
    return structurallyEqual(SA->base(), SB->base()) &&
           structurallyEqual(SA->index(), SB->index()) &&
           structurallyEqual(SA->value(), SB->value());
  }
  }
  return false;
}

bool relax::structurallyEqual(const BoolExpr *A, const BoolExpr *B) {
  if (A == B)
    return true; // hash-consing: same-context structural equality is identity
  // Different cached hashes decide inequality in O(1); equal or missing
  // hashes (cross-context nodes) fall through to the deep walk.
  if (A->hash() && B->hash() && A->hash() != B->hash())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case BoolExpr::Kind::BoolLit:
    return cast<BoolLitExpr>(A)->value() == cast<BoolLitExpr>(B)->value();
  case BoolExpr::Kind::Cmp: {
    const auto *CA = cast<CmpExpr>(A), *CB = cast<CmpExpr>(B);
    return CA->op() == CB->op() && structurallyEqual(CA->lhs(), CB->lhs()) &&
           structurallyEqual(CA->rhs(), CB->rhs());
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *CA = cast<ArrayCmpExpr>(A), *CB = cast<ArrayCmpExpr>(B);
    return CA->isEquality() == CB->isEquality() &&
           structurallyEqual(CA->lhs(), CB->lhs()) &&
           structurallyEqual(CA->rhs(), CB->rhs());
  }
  case BoolExpr::Kind::Logical: {
    const auto *LA = cast<LogicalExpr>(A), *LB = cast<LogicalExpr>(B);
    return LA->op() == LB->op() && structurallyEqual(LA->lhs(), LB->lhs()) &&
           structurallyEqual(LA->rhs(), LB->rhs());
  }
  case BoolExpr::Kind::Not:
    return structurallyEqual(cast<NotExpr>(A)->sub(), cast<NotExpr>(B)->sub());
  case BoolExpr::Kind::Exists: {
    const auto *EA = cast<ExistsExpr>(A), *EB = cast<ExistsExpr>(B);
    // Nominal comparison (no alpha-equivalence); fresh-name generation keeps
    // generated binders distinct anyway.
    return EA->var() == EB->var() && EA->tag() == EB->tag() &&
           EA->varKind() == EB->varKind() &&
           structurallyEqual(EA->body(), EB->body());
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Statement- and program-level equality
//===----------------------------------------------------------------------===//

namespace {

/// Null-tolerant formula comparison for annotation components: null only
/// equals null (absence is structural; the generators diagnose it).
bool eqOpt(const BoolExpr *A, const BoolExpr *B) {
  if (!A || !B)
    return A == B;
  return structurallyEqual(A, B);
}

bool eqOpt(const Expr *A, const Expr *B) {
  if (!A || !B)
    return A == B;
  return structurallyEqual(A, B);
}

} // namespace

bool relax::structurallyEqual(const LoopAnnotations *A,
                              const LoopAnnotations *B) {
  if (!A || !B)
    return A == B;
  return eqOpt(A->Invariant, B->Invariant) &&
         eqOpt(A->IntermediateInvariant, B->IntermediateInvariant) &&
         eqOpt(A->RelInvariant, B->RelInvariant) &&
         eqOpt(A->Variant, B->Variant);
}

bool relax::structurallyEqual(const DivergeAnnotation *A,
                              const DivergeAnnotation *B) {
  if (!A || !B)
    return A == B;
  return A->CaseAnalysis == B->CaseAnalysis &&
         eqOpt(A->PreOrig, B->PreOrig) && eqOpt(A->PreRel, B->PreRel) &&
         eqOpt(A->PostOrig, B->PostOrig) && eqOpt(A->PostRel, B->PostRel) &&
         eqOpt(A->Frame, B->Frame);
}

bool relax::structurallyEqual(const Stmt *A, const Stmt *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Stmt::Kind::Skip:
    return true;
  case Stmt::Kind::Assign: {
    const auto *SA = cast<AssignStmt>(A), *SB = cast<AssignStmt>(B);
    return SA->var() == SB->var() &&
           structurallyEqual(SA->value(), SB->value());
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *SA = cast<ArrayAssignStmt>(A), *SB = cast<ArrayAssignStmt>(B);
    return SA->array() == SB->array() &&
           structurallyEqual(SA->index(), SB->index()) &&
           structurallyEqual(SA->value(), SB->value());
  }
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *CA = cast<ChoiceStmtBase>(A), *CB = cast<ChoiceStmtBase>(B);
    if (CA->varCount() != CB->varCount())
      return false;
    for (size_t I = 0, E = CA->varCount(); I != E; ++I)
      if (CA->var(I) != CB->var(I))
        return false;
    return structurallyEqual(CA->pred(), CB->pred());
  }
  case Stmt::Kind::If: {
    const auto *IA = cast<IfStmt>(A), *IB = cast<IfStmt>(B);
    return structurallyEqual(IA->cond(), IB->cond()) &&
           structurallyEqual(IA->thenStmt(), IB->thenStmt()) &&
           structurallyEqual(IA->elseStmt(), IB->elseStmt()) &&
           structurallyEqual(IA->diverge(), IB->diverge());
  }
  case Stmt::Kind::While: {
    const auto *WA = cast<WhileStmt>(A), *WB = cast<WhileStmt>(B);
    return structurallyEqual(WA->cond(), WB->cond()) &&
           structurallyEqual(WA->body(), WB->body()) &&
           structurallyEqual(WA->annotations(), WB->annotations()) &&
           structurallyEqual(WA->diverge(), WB->diverge());
  }
  case Stmt::Kind::Assume:
    return structurallyEqual(cast<AssumeStmt>(A)->pred(),
                             cast<AssumeStmt>(B)->pred());
  case Stmt::Kind::Assert:
    return structurallyEqual(cast<AssertStmt>(A)->pred(),
                             cast<AssertStmt>(B)->pred());
  case Stmt::Kind::Relate: {
    const auto *RA = cast<RelateStmt>(A), *RB = cast<RelateStmt>(B);
    return RA->label() == RB->label() &&
           structurallyEqual(RA->pred(), RB->pred());
  }
  case Stmt::Kind::Call: {
    const auto *CA = cast<CallStmt>(A), *CB = cast<CallStmt>(B);
    if (CA->callee() != CB->callee() || CA->argCount() != CB->argCount())
      return false;
    for (size_t I = 0, E = CA->argCount(); I != E; ++I)
      if (!structurallyEqual(CA->arg(I), CB->arg(I)))
        return false;
    return true;
  }
  case Stmt::Kind::Seq: {
    const auto *QA = cast<SeqStmt>(A), *QB = cast<SeqStmt>(B);
    return structurallyEqual(QA->first(), QB->first()) &&
           structurallyEqual(QA->second(), QB->second());
  }
  }
  return false;
}

bool relax::structurallyEqual(const Procedure &A, const Procedure &B) {
  if (A.name() != B.name())
    return false;
  if (A.params().size() != B.params().size())
    return false;
  for (size_t I = 0, E = A.params().size(); I != E; ++I)
    if (A.params()[I].Name != B.params()[I].Name)
      return false;
  if (A.hasModifiesClause() != B.hasModifiesClause() ||
      A.modifiesClause() != B.modifiesClause())
    return false;
  return eqOpt(A.requiresClause(), B.requiresClause()) &&
         eqOpt(A.ensuresClause(), B.ensuresClause()) &&
         eqOpt(A.relRequiresClause(), B.relRequiresClause()) &&
         eqOpt(A.relEnsuresClause(), B.relEnsuresClause()) &&
         structurallyEqual(A.body(), B.body());
}

bool relax::structurallyEqual(const Program &A, const Program &B) {
  if (A.decls().size() != B.decls().size())
    return false;
  for (size_t I = 0, E = A.decls().size(); I != E; ++I)
    if (A.decls()[I].Name != B.decls()[I].Name ||
        A.decls()[I].Kind != B.decls()[I].Kind)
      return false;
  if (A.procedures().size() != B.procedures().size())
    return false;
  for (size_t I = 0, E = A.procedures().size(); I != E; ++I) {
    if (A.isEntry(A.procedures()[I]) != B.isEntry(B.procedures()[I]))
      return false;
    if (!structurallyEqual(A.procedures()[I], B.procedures()[I]))
      return false;
  }
  return true;
}

uint64_t relax::structuralHash(const Expr *E) {
  // Hash-consed nodes carry their hash inline; the recursion below is the
  // fallback for nodes built outside an AstContext factory.
  if (uint64_t Cached = E->hash())
    return Cached;
  uint64_t H = hashMix(static_cast<uint64_t>(E->kind()) + 101);
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return hashCombine(H, static_cast<uint64_t>(cast<IntLitExpr>(E)->value()));
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    return hashCombine(hashCombine(H, V->name().id()), varTagHashSeed(V->tag()));
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    return hashCombine(hashCombine(H, structuralHash(R->base())),
                       structuralHash(R->index()));
  }
  case Expr::Kind::ArrayLen:
    return hashCombine(H, structuralHash(cast<ArrayLenExpr>(E)->base()));
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    H = hashCombine(H, static_cast<uint64_t>(B->op()));
    H = hashCombine(H, structuralHash(B->lhs()));
    return hashCombine(H, structuralHash(B->rhs()));
  }
  }
  return H;
}

uint64_t relax::structuralHash(const ArrayExpr *A) {
  // Hash-consed nodes carry their hash inline; the recursion below is the
  // fallback for nodes built outside an AstContext factory.
  if (uint64_t Cached = A->hash())
    return Cached;
  uint64_t H = hashMix(static_cast<uint64_t>(A->kind()) + 211);
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    return hashCombine(hashCombine(H, R->name().id()), varTagHashSeed(R->tag()));
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    H = hashCombine(H, structuralHash(S->base()));
    H = hashCombine(H, structuralHash(S->index()));
    return hashCombine(H, structuralHash(S->value()));
  }
  }
  return H;
}

uint64_t relax::structuralHash(const BoolExpr *B) {
  // Hash-consed nodes carry their hash inline; the recursion below is the
  // fallback for nodes built outside an AstContext factory.
  if (uint64_t Cached = B->hash())
    return Cached;
  uint64_t H = hashMix(static_cast<uint64_t>(B->kind()) + 307);
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return hashCombine(H, cast<BoolLitExpr>(B)->value() ? 1 : 0);
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    H = hashCombine(H, static_cast<uint64_t>(C->op()));
    H = hashCombine(H, structuralHash(C->lhs()));
    return hashCombine(H, structuralHash(C->rhs()));
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    H = hashCombine(H, C->isEquality() ? 1 : 0);
    H = hashCombine(H, structuralHash(C->lhs()));
    return hashCombine(H, structuralHash(C->rhs()));
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    H = hashCombine(H, static_cast<uint64_t>(L->op()));
    H = hashCombine(H, structuralHash(L->lhs()));
    return hashCombine(H, structuralHash(L->rhs()));
  }
  case BoolExpr::Kind::Not:
    return hashCombine(H, structuralHash(cast<NotExpr>(B)->sub()));
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    H = hashCombine(H, E->var().id());
    H = hashCombine(H, varTagHashSeed(E->tag()));
    H = hashCombine(H, static_cast<uint64_t>(E->varKind()));
    return hashCombine(H, structuralHash(E->body()));
  }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Statement- and program-level hashing
//===----------------------------------------------------------------------===//

namespace {

/// Null-tolerant annotation-component hash; distinguishes null from any
/// formula, matching eqOpt.
uint64_t hashOpt(const BoolExpr *B) { return B ? structuralHash(B) : 5; }
uint64_t hashOpt(const Expr *E) { return E ? structuralHash(E) : 5; }

uint64_t hashAnnotations(const LoopAnnotations *A) {
  if (!A)
    return 3;
  uint64_t H = hashMix(401);
  H = hashCombine(H, hashOpt(A->Invariant));
  H = hashCombine(H, hashOpt(A->IntermediateInvariant));
  H = hashCombine(H, hashOpt(A->RelInvariant));
  return hashCombine(H, hashOpt(A->Variant));
}

uint64_t hashDiverge(const DivergeAnnotation *D) {
  if (!D)
    return 3;
  uint64_t H = hashMix(409 + (D->CaseAnalysis ? 1 : 0));
  H = hashCombine(H, hashOpt(D->PreOrig));
  H = hashCombine(H, hashOpt(D->PreRel));
  H = hashCombine(H, hashOpt(D->PostOrig));
  H = hashCombine(H, hashOpt(D->PostRel));
  return hashCombine(H, hashOpt(D->Frame));
}

} // namespace

uint64_t relax::structuralHash(const Stmt *S) {
  uint64_t H = hashMix(static_cast<uint64_t>(S->kind()) + 503);
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return H;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    H = hashCombine(H, A->var().id());
    return hashCombine(H, structuralHash(A->value()));
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    H = hashCombine(H, A->array().id());
    H = hashCombine(H, structuralHash(A->index()));
    return hashCombine(H, structuralHash(A->value()));
  }
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *C = cast<ChoiceStmtBase>(S);
    for (size_t I = 0, E = C->varCount(); I != E; ++I)
      H = hashCombine(H, C->var(I).id());
    return hashCombine(H, structuralHash(C->pred()));
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    H = hashCombine(H, structuralHash(I->cond()));
    H = hashCombine(H, structuralHash(I->thenStmt()));
    H = hashCombine(H, structuralHash(I->elseStmt()));
    return hashCombine(H, hashDiverge(I->diverge()));
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    H = hashCombine(H, structuralHash(W->cond()));
    H = hashCombine(H, structuralHash(W->body()));
    H = hashCombine(H, hashAnnotations(W->annotations()));
    return hashCombine(H, hashDiverge(W->diverge()));
  }
  case Stmt::Kind::Assume:
    return hashCombine(H, structuralHash(cast<AssumeStmt>(S)->pred()));
  case Stmt::Kind::Assert:
    return hashCombine(H, structuralHash(cast<AssertStmt>(S)->pred()));
  case Stmt::Kind::Relate: {
    const auto *R = cast<RelateStmt>(S);
    H = hashCombine(H, R->label().id());
    return hashCombine(H, structuralHash(R->pred()));
  }
  case Stmt::Kind::Call: {
    const auto *C = cast<CallStmt>(S);
    H = hashCombine(H, C->callee().id());
    for (size_t I = 0, E = C->argCount(); I != E; ++I)
      H = hashCombine(H, structuralHash(C->arg(I)));
    return H;
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    H = hashCombine(H, structuralHash(Q->first()));
    return hashCombine(H, structuralHash(Q->second()));
  }
  }
  return H;
}

uint64_t relax::structuralHash(const Procedure &P) {
  uint64_t H = hashMix(607);
  H = hashCombine(H, P.name().id());
  for (const ProcParam &Par : P.params())
    H = hashCombine(H, Par.Name.id());
  H = hashCombine(H, P.hasModifiesClause() ? 1 : 0);
  for (Symbol M : P.modifiesClause())
    H = hashCombine(H, M.id());
  H = hashCombine(H, hashOpt(P.requiresClause()));
  H = hashCombine(H, hashOpt(P.ensuresClause()));
  H = hashCombine(H, hashOpt(P.relRequiresClause()));
  H = hashCombine(H, hashOpt(P.relEnsuresClause()));
  return hashCombine(H, P.body() ? structuralHash(P.body()) : 5);
}

uint64_t relax::structuralHash(const Program &P) {
  uint64_t H = hashMix(601);
  for (const VarDecl &D : P.decls()) {
    H = hashCombine(H, D.Name.id());
    H = hashCombine(H, static_cast<uint64_t>(D.Kind));
  }
  for (const Procedure &Proc : P.procedures()) {
    H = hashCombine(H, P.isEntry(Proc) ? 2 : 1);
    H = hashCombine(H, structuralHash(Proc));
  }
  return H;
}
