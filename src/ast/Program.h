//===- Program.h - Top-level program container --------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program packages the statement under verification with its variable
/// declarations and its contracts: the unary pre/postcondition for the
/// axiomatic original semantics |-o {P} s {Q} and the relational
/// pre/postcondition for the axiomatic relaxed semantics |-r {P*} s {Q*}.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_PROGRAM_H
#define RELAXC_AST_PROGRAM_H

#include "ast/Stmt.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace relax {

/// One declared program variable.
struct VarDecl {
  Symbol Name;
  VarKind Kind = VarKind::Int;
  SourceLoc Loc;
};

/// A complete annotated program.
class Program {
public:
  Program() = default;

  /// Adds a declaration. Returns false when \p Name was already declared.
  bool declare(Symbol Name, VarKind Kind, SourceLoc Loc = SourceLoc()) {
    if (KindMap.count(Name))
      return false;
    Decls.push_back(VarDecl{Name, Kind, Loc});
    KindMap.emplace(Name, Kind);
    return true;
  }

  const std::vector<VarDecl> &decls() const { return Decls; }

  /// Returns the kind of \p Name, or nullopt when undeclared.
  std::optional<VarKind> kindOf(Symbol Name) const {
    auto It = KindMap.find(Name);
    if (It == KindMap.end())
      return std::nullopt;
    return It->second;
  }

  bool isDeclared(Symbol Name) const { return KindMap.count(Name) != 0; }

  void setBody(const Stmt *S) { Body = S; }
  const Stmt *body() const { return Body; }

  /// Unary contract {P} s {Q}; null components mean `true`.
  void setRequires(const BoolExpr *P) { RequiresClause = P; }
  void setEnsures(const BoolExpr *Q) { EnsuresClause = Q; }
  const BoolExpr *requiresClause() const { return RequiresClause; }
  const BoolExpr *ensuresClause() const { return EnsuresClause; }

  /// Relational contract {P*} s {Q*}; null components mean `true` for the
  /// postcondition. A null relational precondition means "all declared
  /// variables agree between the original and relaxed executions", the
  /// canonical starting relation (both executions start from the same
  /// state); the verifier materializes it on demand.
  void setRelRequires(const BoolExpr *P) { RelRequiresClause = P; }
  void setRelEnsures(const BoolExpr *Q) { RelEnsuresClause = Q; }
  const BoolExpr *relRequiresClause() const { return RelRequiresClause; }
  const BoolExpr *relEnsuresClause() const { return RelEnsuresClause; }

private:
  std::vector<VarDecl> Decls;
  std::unordered_map<Symbol, VarKind> KindMap;
  const Stmt *Body = nullptr;
  const BoolExpr *RequiresClause = nullptr;
  const BoolExpr *EnsuresClause = nullptr;
  const BoolExpr *RelRequiresClause = nullptr;
  const BoolExpr *RelEnsuresClause = nullptr;
};

} // namespace relax

#endif // RELAXC_AST_PROGRAM_H
