//===- Program.h - Top-level module container ---------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is a *module*: a set of global variable declarations shared by
/// a list of named procedures, each carrying its own statement body and its
/// own contracts — the unary pre/postcondition for the axiomatic original
/// semantics |-o {P} s {Q} and the relational pre/postcondition for the
/// axiomatic relaxed semantics |-r {P*} s {Q*} — plus a `modifies` frame
/// bounding the global state a call to it may change.
///
/// One procedure is the *entry* (`main`). The classic single-body form of
/// the paper is the degenerate module: a bare body with top-level contracts
/// parses (and prints) as an implicit `main` with no parameters, so the
/// legacy builder surface (`setBody`, `setRequires`, ...) still works — it
/// reads and writes the entry procedure.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_PROGRAM_H
#define RELAXC_AST_PROGRAM_H

#include "ast/Stmt.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace relax {

/// One declared program variable.
struct VarDecl {
  Symbol Name;
  VarKind Kind = VarKind::Int;
  SourceLoc Loc;
};

/// One formal parameter of a procedure: integer-valued, bound by value at
/// the call site, and immutable inside the body (so an `ensures` clause
/// mentioning it always denotes the argument's value at the call).
struct ProcParam {
  Symbol Name;
  SourceLoc Loc;
};

/// A named procedure: formal parameters, a `modifies` frame over the
/// module's globals, the four contract clauses, and a body.
class Procedure {
public:
  /// The procedure's name; invalid for an implicit (legacy) entry, which
  /// reports as "main".
  Symbol name() const { return Name; }
  SourceLoc loc() const { return Loc; }

  const std::vector<ProcParam> &params() const { return Params; }
  bool hasParam(Symbol S) const {
    for (const ProcParam &P : Params)
      if (P.Name == S)
        return true;
    return false;
  }
  void addParam(Symbol Name, SourceLoc ParamLoc = SourceLoc()) {
    Params.push_back(ProcParam{Name, ParamLoc});
  }

  /// Installs an explicit `modifies` frame (may be empty: a pure
  /// procedure).
  void setModifiesClause(std::vector<Symbol> Frame) {
    Modifies = std::move(Frame);
    HasModifies = true;
  }

  /// The explicit `modifies` clause, in source order. Only meaningful when
  /// hasModifiesClause(); without one the effective frame is computed from
  /// the body (see effectiveModifies in sema/Sema.h).
  const std::vector<Symbol> &modifiesClause() const { return Modifies; }
  bool hasModifiesClause() const { return HasModifies; }

  void setBody(const Stmt *S) { Body = S; }
  const Stmt *body() const { return Body; }

  /// Unary contract {P} s {Q}; null components mean `true`.
  void setRequires(const BoolExpr *P) { RequiresClause = P; }
  void setEnsures(const BoolExpr *Q) { EnsuresClause = Q; }
  const BoolExpr *requiresClause() const { return RequiresClause; }
  const BoolExpr *ensuresClause() const { return EnsuresClause; }

  /// Relational contract {P*} s {Q*}; null components mean `true` for the
  /// postcondition. A null relational precondition means "both executions
  /// agree on every global and every parameter, and both satisfy the unary
  /// precondition"; the verifier materializes it on demand.
  void setRelRequires(const BoolExpr *P) { RelRequiresClause = P; }
  void setRelEnsures(const BoolExpr *Q) { RelEnsuresClause = Q; }
  const BoolExpr *relRequiresClause() const { return RelRequiresClause; }
  const BoolExpr *relEnsuresClause() const { return RelEnsuresClause; }

private:
  friend class Program;
  Symbol Name; ///< invalid for the implicit legacy entry
  SourceLoc Loc;
  std::vector<ProcParam> Params;
  std::vector<Symbol> Modifies;
  bool HasModifies = false;
  const Stmt *Body = nullptr;
  const BoolExpr *RequiresClause = nullptr;
  const BoolExpr *EnsuresClause = nullptr;
  const BoolExpr *RelRequiresClause = nullptr;
  const BoolExpr *RelEnsuresClause = nullptr;
};

/// A complete annotated module.
class Program {
public:
  Program() = default;

  /// Adds a global declaration. Returns false when \p Name was already
  /// declared.
  bool declare(Symbol Name, VarKind Kind, SourceLoc Loc = SourceLoc()) {
    if (KindMap.count(Name))
      return false;
    Decls.push_back(VarDecl{Name, Kind, Loc});
    KindMap.emplace(Name, Kind);
    return true;
  }

  const std::vector<VarDecl> &decls() const { return Decls; }

  /// Returns the kind of \p Name, or nullopt when undeclared.
  std::optional<VarKind> kindOf(Symbol Name) const {
    auto It = KindMap.find(Name);
    if (It == KindMap.end())
      return std::nullopt;
    return It->second;
  }

  bool isDeclared(Symbol Name) const { return KindMap.count(Name) != 0; }

  //===--------------------------------------------------------------------===//
  // Procedures
  //===--------------------------------------------------------------------===//

  /// Appends a named procedure. Returns null when the name is already
  /// taken (including by an explicitly named entry).
  Procedure *addProcedure(Symbol Name, SourceLoc Loc = SourceLoc()) {
    for (const Procedure &P : Procs)
      if (P.Name.isValid() && P.Name == Name)
        return nullptr;
    Procs.emplace_back();
    Procs.back().Name = Name;
    Procs.back().Loc = Loc;
    return &Procs.back();
  }

  /// All procedures in declaration order (the entry included, last when it
  /// came from the legacy bare-body form).
  const std::vector<Procedure> &procedures() const { return Procs; }
  std::vector<Procedure> &procedures() { return Procs; }

  /// Looks up a procedure by name (never finds an implicit unnamed entry).
  const Procedure *procedure(Symbol Name) const {
    for (const Procedure &P : Procs)
      if (P.Name.isValid() && P.Name == Name)
        return &P;
    return nullptr;
  }

  /// Marks \p Index as the entry procedure (`proc main()` syntax).
  void setEntryIndex(size_t Index) { EntryIndex = Index; }

  /// The entry procedure, or null when no body/entry was ever provided.
  const Procedure *entry() const {
    if (EntryIndex < Procs.size())
      return &Procs[EntryIndex];
    return nullptr;
  }
  bool isEntry(const Procedure &P) const {
    return EntryIndex < Procs.size() && &Procs[EntryIndex] == &P;
  }

  /// True when the module used explicit `proc` syntax (or the builder
  /// added named procedures); false for the legacy single-body form, which
  /// the printer reproduces byte-for-byte.
  bool isExplicitModule() const {
    return Procs.size() > 1 || (entry() && entry()->name().isValid());
  }

  //===--------------------------------------------------------------------===//
  // Legacy single-body surface: reads/writes the entry procedure,
  // materializing an implicit unnamed `main` on first write.
  //===--------------------------------------------------------------------===//

  void setBody(const Stmt *S) { entryMutable().setBody(S); }
  const Stmt *body() const { return entry() ? entry()->body() : nullptr; }

  void setRequires(const BoolExpr *P) { entryMutable().setRequires(P); }
  void setEnsures(const BoolExpr *Q) { entryMutable().setEnsures(Q); }
  const BoolExpr *requiresClause() const {
    return entry() ? entry()->requiresClause() : nullptr;
  }
  const BoolExpr *ensuresClause() const {
    return entry() ? entry()->ensuresClause() : nullptr;
  }

  void setRelRequires(const BoolExpr *P) { entryMutable().setRelRequires(P); }
  void setRelEnsures(const BoolExpr *Q) { entryMutable().setRelEnsures(Q); }
  const BoolExpr *relRequiresClause() const {
    return entry() ? entry()->relRequiresClause() : nullptr;
  }
  const BoolExpr *relEnsuresClause() const {
    return entry() ? entry()->relEnsuresClause() : nullptr;
  }

private:
  /// The entry for the legacy mutators, created unnamed on first use.
  Procedure &entryMutable() {
    if (EntryIndex >= Procs.size()) {
      EntryIndex = Procs.size();
      Procs.emplace_back();
    }
    return Procs[EntryIndex];
  }

  std::vector<VarDecl> Decls;
  std::unordered_map<Symbol, VarKind> KindMap;
  std::vector<Procedure> Procs;
  size_t EntryIndex = static_cast<size_t>(-1);
};

/// The display name of a procedure: its identifier, or "main" for the
/// implicit legacy entry. \p Syms must be the interner that produced it.
inline std::string procDisplayName(const Procedure &P, const Interner &Syms) {
  return P.name().isValid() ? std::string(Syms.text(P.name()))
                            : std::string("main");
}

} // namespace relax

#endif // RELAXC_AST_PROGRAM_H
