//===- Stmt.h - Statements ----------------------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statements S of Figure 1: skip, assignment, havoc, relax, if, while,
/// assume, assert, relate, and sequential composition, extended with array
/// element assignment (footnote 2) and with the proof annotations a
/// verification-condition generator needs in place of interactive Coq
/// proofs: loop invariants (unary, intermediate, and relational) and
/// diverge annotations (the premises of the `diverge` rule of Figure 8 plus
/// the relational frame the paper mentions in Section 3.3.2).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_AST_STMT_H
#define RELAXC_AST_STMT_H

#include "ast/BoolExpr.h"

#include <cstddef>

namespace relax {

/// Proof annotations attached to a `while` loop.
///
/// `Invariant` serves the axiomatic original semantics |-o; the axiomatic
/// intermediate semantics |-i uses `IntermediateInvariant` when present and
/// falls back to `Invariant` otherwise; `RelInvariant` (a relational
/// formula) serves the lockstep `while` rule of the axiomatic relaxed
/// semantics |-r. Any of them may be null, in which case the corresponding
/// VC generator defaults to `true` (and will typically fail to verify
/// anything interesting — but stays sound).
struct LoopAnnotations {
  const BoolExpr *Invariant = nullptr;
  const BoolExpr *IntermediateInvariant = nullptr;
  const BoolExpr *RelInvariant = nullptr;

  /// Termination variant (`decreases` clause), the paper's Section 6
  /// future-work direction: a unary integer expression that is bounded
  /// below by zero while the loop runs and strictly decreases across each
  /// iteration. Checked in every judgment that proves the loop: |-o and
  /// |-i obtain ordinary termination; the convergent |-r while rule
  /// obtains *relative termination* (the paper's anticipated notion — the
  /// two executions take the same trip count, so the original's variant
  /// bounds the relaxed execution too); diverge-annotated loops obtain
  /// relaxed-side termination through the |-i sub-proof.
  const Expr *Variant = nullptr;
};

/// The premises of the `diverge` rule (Figure 8), written down by the
/// developer at a control-flow construct where original and relaxed
/// executions may branch differently:
///
///   P* |=o PreOrig    P* |=r PreRel
///   |-o {PreOrig} s {PostOrig}    |-i {PreRel} s {PostRel}    no_rel(s)
///   ------------------------------------------------------------------
///   |-r {P*} s {<PostOrig . PostRel> /\ Frame}
///
/// `Frame` is an optional relational formula over variables not modified by
/// the statement; it is carried across the divergent region by the
/// relational frame rule (the VC generator checks free(Frame) is disjoint
/// from the statement's modified-variable set and that P* implies Frame).
struct DivergeAnnotation {
  const BoolExpr *PreOrig = nullptr;  ///< Po (unary); null means `true`
  const BoolExpr *PreRel = nullptr;   ///< Pr (unary); null means `true`
  const BoolExpr *PostOrig = nullptr; ///< Qo (unary); null means `true`
  const BoolExpr *PostRel = nullptr;  ///< Qr (unary); null means `true`
  const BoolExpr *Frame = nullptr;    ///< F* (relational); may be null

  /// `diverge cases`: instead of dropping cross-execution relations, the
  /// relational VC generator case-splits on the four branch combinations
  /// and computes one-sided strongest postconditions, keeping full
  /// relational precision across a divergent `if` (the Benton-style
  /// asymmetric rules of the paper's supplementary-material control-flow
  /// formalization; required by the LU pivot example, whose Lipschitz
  /// relate predicate mentions a variable the divergent branch modifies).
  /// Only valid on `if` with loop-free, relate-free branches; the other
  /// annotation fields must be absent.
  bool CaseAnalysis = false;
};

/// A statement.
class Stmt {
public:
  enum class Kind : uint8_t {
    Skip,
    Assign,
    ArrayAssign,
    Havoc,
    Relax,
    If,
    While,
    Assume,
    Assert,
    Relate,
    Call,
    Seq,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// `skip`.
class SkipStmt : public Stmt {
public:
  explicit SkipStmt(SourceLoc Loc) : Stmt(Kind::Skip, Loc) {}

  static bool classof(const Stmt *S) { return S->kind() == Kind::Skip; }
};

/// Scalar assignment `x = e`.
class AssignStmt : public Stmt {
public:
  AssignStmt(Symbol Var, const Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Var(Var), Value(Value) {}

  Symbol var() const { return Var; }
  const Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  Symbol Var;
  const Expr *Value;
};

/// Array element assignment `a[i] = e`.
class ArrayAssignStmt : public Stmt {
public:
  ArrayAssignStmt(Symbol Array, const Expr *Index, const Expr *Value,
                  SourceLoc Loc)
      : Stmt(Kind::ArrayAssign, Loc), Array(Array), Index(Index),
        Value(Value) {}

  Symbol array() const { return Array; }
  const Expr *index() const { return Index; }
  const Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ArrayAssign; }

private:
  Symbol Array;
  const Expr *Index;
  const Expr *Value;
};

/// Common shape of `havoc (X) st (e)` and `relax (X) st (e)`: a set of
/// modified variables and a predicate the new values must satisfy.
class ChoiceStmtBase : public Stmt {
public:
  /// The modified variable set X.
  const Symbol *varsBegin() const { return Vars; }
  size_t varCount() const { return NumVars; }
  Symbol var(size_t I) const { return Vars[I]; }

  /// The constraint e over the post-state.
  const BoolExpr *pred() const { return Pred; }

  static bool classof(const Stmt *S) {
    return S->kind() == Kind::Havoc || S->kind() == Kind::Relax;
  }

protected:
  ChoiceStmtBase(Kind K, const Symbol *Vars, size_t NumVars,
                 const BoolExpr *Pred, SourceLoc Loc)
      : Stmt(K, Loc), Vars(Vars), NumVars(NumVars), Pred(Pred) {}

private:
  const Symbol *Vars; ///< arena-owned array
  size_t NumVars;
  const BoolExpr *Pred;
};

/// `havoc (X) st (e)`: nondeterministic in *both* semantics.
class HavocStmt : public ChoiceStmtBase {
public:
  HavocStmt(const Symbol *Vars, size_t NumVars, const BoolExpr *Pred,
            SourceLoc Loc)
      : ChoiceStmtBase(Kind::Havoc, Vars, NumVars, Pred, Loc) {}

  static bool classof(const Stmt *S) { return S->kind() == Kind::Havoc; }
};

/// `relax (X) st (e)`: asserts e in the original semantics,
/// nondeterministically reassigns X subject to e in the relaxed semantics.
class RelaxStmt : public ChoiceStmtBase {
public:
  RelaxStmt(const Symbol *Vars, size_t NumVars, const BoolExpr *Pred,
            SourceLoc Loc)
      : ChoiceStmtBase(Kind::Relax, Vars, NumVars, Pred, Loc) {}

  static bool classof(const Stmt *S) { return S->kind() == Kind::Relax; }
};

/// `if (b) {s1} else {s2}`.
class IfStmt : public Stmt {
public:
  IfStmt(const BoolExpr *Cond, const Stmt *Then, const Stmt *Else,
         const DivergeAnnotation *Diverge, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else),
        Diverge(Diverge) {}

  const BoolExpr *cond() const { return Cond; }
  const Stmt *thenStmt() const { return Then; }
  const Stmt *elseStmt() const { return Else; }

  /// Non-null when the developer marked this construct as a divergence
  /// point for the axiomatic relaxed semantics.
  const DivergeAnnotation *diverge() const { return Diverge; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  const BoolExpr *Cond;
  const Stmt *Then;
  const Stmt *Else;
  const DivergeAnnotation *Diverge;
};

/// `while (b) {s}` with proof annotations.
class WhileStmt : public Stmt {
public:
  WhileStmt(const BoolExpr *Cond, const Stmt *Body,
            const LoopAnnotations *Annotations,
            const DivergeAnnotation *Diverge, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body),
        Annotations(Annotations), Diverge(Diverge) {}

  const BoolExpr *cond() const { return Cond; }
  const Stmt *body() const { return Body; }

  /// Never null (an all-null LoopAnnotations is synthesized when absent).
  const LoopAnnotations *annotations() const { return Annotations; }
  const DivergeAnnotation *diverge() const { return Diverge; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  const BoolExpr *Cond;
  const Stmt *Body;
  const LoopAnnotations *Annotations;
  const DivergeAnnotation *Diverge;
};

/// `assume e`: unverified developer belief; failing it yields `ba`.
class AssumeStmt : public Stmt {
public:
  AssumeStmt(const BoolExpr *Pred, SourceLoc Loc)
      : Stmt(Kind::Assume, Loc), Pred(Pred) {}

  const BoolExpr *pred() const { return Pred; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assume; }

private:
  const BoolExpr *Pred;
};

/// `assert e`: verified obligation; failing it yields `wr`.
class AssertStmt : public Stmt {
public:
  AssertStmt(const BoolExpr *Pred, SourceLoc Loc)
      : Stmt(Kind::Assert, Loc), Pred(Pred) {}

  const BoolExpr *pred() const { return Pred; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assert; }

private:
  const BoolExpr *Pred;
};

/// `relate l : e*`: a labeled relational assertion. Executions emit the
/// observation (l, σ); pairs of original/relaxed executions must satisfy e*
/// (Theorem 6, observational compatibility).
class RelateStmt : public Stmt {
public:
  RelateStmt(Symbol Label, const BoolExpr *Pred, SourceLoc Loc)
      : Stmt(Kind::Relate, Loc), Label(Label), Pred(Pred) {}

  Symbol label() const { return Label; }
  const BoolExpr *pred() const { return Pred; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Relate; }

private:
  Symbol Label;
  const BoolExpr *Pred;
};

/// `call f(e1, ..., en)`: procedure invocation. Arguments are integer
/// program expressions bound by value to the callee's (immutable) formal
/// parameters; all other state flows through the module's global variables,
/// bounded by the callee's `modifies` frame. The VC generators never inline
/// the callee — they instantiate its contract (assert `requires`, havoc the
/// frame, assume `ensures` / the relational contract), so a procedure
/// called N times pays one body verification plus N summary instantiations.
class CallStmt : public Stmt {
public:
  CallStmt(Symbol Callee, const Expr *const *Args, size_t NumArgs,
           SourceLoc Loc)
      : Stmt(Kind::Call, Loc), Callee(Callee), Args(Args), NumArgs(NumArgs) {}

  Symbol callee() const { return Callee; }
  size_t argCount() const { return NumArgs; }
  const Expr *arg(size_t I) const { return Args[I]; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }

private:
  Symbol Callee;
  const Expr *const *Args; ///< arena-owned array
  size_t NumArgs;
};

/// Sequential composition `s1 ; s2`.
class SeqStmt : public Stmt {
public:
  SeqStmt(const Stmt *First, const Stmt *Second, SourceLoc Loc)
      : Stmt(Kind::Seq, Loc), First(First), Second(Second) {}

  const Stmt *first() const { return First; }
  const Stmt *second() const { return Second; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Seq; }

private:
  const Stmt *First;
  const Stmt *Second;
};

} // namespace relax

#endif // RELAXC_AST_STMT_H
