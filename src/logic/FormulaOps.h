//===- FormulaOps.h - Operations on formulas -----------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assertion-logic toolbox of Section 3.1: free variables,
/// capture-avoiding (multi-)substitution P[e1,...,en/x1,...,xn], the
/// injections injo/injr that lift a unary formula P into a relational
/// formula over the original or relaxed state component, and classification
/// predicates (quantifier-free, unary, relational) that sema uses to
/// enforce the paper's syntactic categories.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_LOGIC_FORMULAOPS_H
#define RELAXC_LOGIC_FORMULAOPS_H

#include "ast/AstContext.h"

#include <map>

namespace relax {

/// Collects the free variables of a node into \p Out.
void collectFreeVars(const Expr *E, VarRefSet &Out);
void collectFreeVars(const ArrayExpr *A, VarRefSet &Out);
void collectFreeVars(const BoolExpr *B, VarRefSet &Out);

/// Convenience wrappers returning a fresh set.
VarRefSet freeVars(const Expr *E);
VarRefSet freeVars(const BoolExpr *B);

/// Memoized free-variable lists, keyed by node identity in \p Ctx's caches
/// (valid because hash-consing makes identity equal structural identity)
/// and shared structurally between parents and children. Sorted by VarRef
/// order. Not thread-safe; parallel VC discharge must not call these.
const std::vector<VarRef> &freeVarsList(AstContext &Ctx, const Expr *E);
const std::vector<VarRef> &freeVarsList(AstContext &Ctx, const ArrayExpr *A);
const std::vector<VarRef> &freeVarsList(AstContext &Ctx, const BoolExpr *B);

/// True when \p V occurs free in \p B. O(log |free(B)|) after the memoized
/// list is built once.
bool occursFree(AstContext &Ctx, const BoolExpr *B, const VarRef &V);

/// True when \p B contains no quantifier (i.e. is program boolean syntax).
bool isQuantifierFree(const BoolExpr *B);

/// True when every variable in \p B is Plain-tagged (syntactic category
/// P / B of the paper).
bool isUnary(const BoolExpr *B);

/// True when no variable in \p B is Plain-tagged (syntactic category
/// P* / B* of the paper; note `true` is both unary and relational).
bool isRelational(const BoolExpr *B);

/// A simultaneous substitution of expressions for scalar variables and
/// array expressions for array variables, keyed by (name, tag).
class Subst {
public:
  void mapVar(Symbol Name, VarTag Tag, const Expr *Replacement) {
    Scalars[{Name, Tag}] = Replacement;
  }
  void mapArray(Symbol Name, VarTag Tag, const ArrayExpr *Replacement) {
    Arrays[{Name, Tag}] = Replacement;
  }

  bool empty() const { return Scalars.empty() && Arrays.empty(); }

  const Expr *lookupVar(Symbol Name, VarTag Tag) const {
    auto It = Scalars.find({Name, Tag});
    return It == Scalars.end() ? nullptr : It->second;
  }
  const ArrayExpr *lookupArray(Symbol Name, VarTag Tag) const {
    auto It = Arrays.find({Name, Tag});
    return It == Arrays.end() ? nullptr : It->second;
  }

  /// Removes any mapping for (Name, Tag) of the given kind.
  void erase(Symbol Name, VarTag Tag, VarKind Kind) {
    if (Kind == VarKind::Int)
      Scalars.erase({Name, Tag});
    else
      Arrays.erase({Name, Tag});
  }

  /// The free variables of every replacement (for capture checks).
  VarRefSet replacementFreeVars() const;

  /// The substituted-for variables, as VarRefs (sorted). Substitution uses
  /// this to skip whole subtrees none of whose free variables are mapped.
  std::vector<VarRef> domain() const;

private:
  using Key = std::pair<Symbol, VarTag>;
  std::map<Key, const Expr *> Scalars;
  std::map<Key, const ArrayExpr *> Arrays;
};

/// Applies \p S to a node, avoiding capture by alpha-renaming binders when
/// needed (fresh names come from \p Ctx).
const Expr *substitute(AstContext &Ctx, const Expr *E, const Subst &S);
const ArrayExpr *substitute(AstContext &Ctx, const ArrayExpr *A,
                            const Subst &S);
const BoolExpr *substitute(AstContext &Ctx, const BoolExpr *B, const Subst &S);

/// injo / injr (Section 3.1.2): retags every Plain variable (free or bound)
/// of the unary formula \p B to \p Target, producing a relational formula.
/// [[injo(P)]] = {(s1,s2) | s1 in [[P]]} and symmetrically for injr.
const BoolExpr *inject(AstContext &Ctx, const BoolExpr *B, VarTag Target);
const Expr *inject(AstContext &Ctx, const Expr *E, VarTag Target);
const ArrayExpr *inject(AstContext &Ctx, const ArrayExpr *A, VarTag Target);

/// The paper's <P1 . P2> notation: injo(P1) /\ injr(P2).
const BoolExpr *pairPredicate(AstContext &Ctx, const BoolExpr *P1,
                              const BoolExpr *P2);

/// Builds the canonical identity relation for the declared variables of a
/// program: /\_x x<o> == x<r> (extensional equality for arrays). This is
/// the default relational precondition: both executions start in the same
/// state.
const BoolExpr *identityRelation(AstContext &Ctx, const Program &P);

/// The effective relational precondition of \p Proc: its explicit
/// `rrequires`, or the default — both executions agree on every global and
/// every parameter of \p Proc, and both satisfy the unary `requires`.
/// Whole-procedure verification and call-site summary instantiation must
/// agree on this formula, so this is the single source for both.
const BoolExpr *effectiveRelRequires(AstContext &Ctx, const Program &P,
                                     const Procedure &Proc);

} // namespace relax

#endif // RELAXC_LOGIC_FORMULAOPS_H
