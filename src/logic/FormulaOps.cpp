//===- FormulaOps.cpp - Operations on formulas --------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "logic/FormulaOps.h"

#include "support/Casting.h"

#include <cassert>

using namespace relax;

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

void relax::collectFreeVars(const Expr *E, VarRefSet &Out) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    Out.insert(VarRef{V->name(), V->tag(), VarKind::Int});
    return;
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    collectFreeVars(R->base(), Out);
    collectFreeVars(R->index(), Out);
    return;
  }
  case Expr::Kind::ArrayLen:
    collectFreeVars(cast<ArrayLenExpr>(E)->base(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectFreeVars(B->lhs(), Out);
    collectFreeVars(B->rhs(), Out);
    return;
  }
  }
}

void relax::collectFreeVars(const ArrayExpr *A, VarRefSet &Out) {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    Out.insert(VarRef{R->name(), R->tag(), VarKind::Array});
    return;
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    collectFreeVars(S->base(), Out);
    collectFreeVars(S->index(), Out);
    collectFreeVars(S->value(), Out);
    return;
  }
  }
}

void relax::collectFreeVars(const BoolExpr *B, VarRefSet &Out) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    collectFreeVars(C->lhs(), Out);
    collectFreeVars(C->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    collectFreeVars(C->lhs(), Out);
    collectFreeVars(C->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    collectFreeVars(L->lhs(), Out);
    collectFreeVars(L->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::Not:
    collectFreeVars(cast<NotExpr>(B)->sub(), Out);
    return;
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    VarRefSet Body;
    collectFreeVars(E->body(), Body);
    Body.erase(VarRef{E->var(), E->tag(), E->varKind()});
    Out.insert(Body.begin(), Body.end());
    return;
  }
  }
}

VarRefSet relax::freeVars(const Expr *E) {
  VarRefSet Out;
  collectFreeVars(E, Out);
  return Out;
}

VarRefSet relax::freeVars(const BoolExpr *B) {
  VarRefSet Out;
  collectFreeVars(B, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Classification
//===----------------------------------------------------------------------===//

bool relax::isQuantifierFree(const BoolExpr *B) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
  case BoolExpr::Kind::Cmp:
  case BoolExpr::Kind::ArrayCmp:
    return true;
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    return isQuantifierFree(L->lhs()) && isQuantifierFree(L->rhs());
  }
  case BoolExpr::Kind::Not:
    return isQuantifierFree(cast<NotExpr>(B)->sub());
  case BoolExpr::Kind::Exists:
    return false;
  }
  return true;
}

namespace {

/// Checks whether every variable occurrence (free *or* bound, since binders
/// also carry tags) satisfies \p Pred.
template <typename Fn> bool allTags(const BoolExpr *B, Fn Pred) {
  VarRefSet Vars;
  collectFreeVars(B, Vars);
  bool Ok = true;
  for (const VarRef &V : Vars)
    Ok &= Pred(V.Tag);
  // Bound variables: walk quantifiers.
  if (const auto *E = dyn_cast<ExistsExpr>(B))
    Ok &= Pred(E->tag()) && allTags(E->body(), Pred);
  else if (const auto *L = dyn_cast<LogicalExpr>(B))
    Ok &= allTags(L->lhs(), Pred) && allTags(L->rhs(), Pred);
  else if (const auto *N = dyn_cast<NotExpr>(B))
    Ok &= allTags(N->sub(), Pred);
  return Ok;
}

} // namespace

bool relax::isUnary(const BoolExpr *B) {
  return allTags(B, [](VarTag T) { return T == VarTag::Plain; });
}

bool relax::isRelational(const BoolExpr *B) {
  return allTags(B, [](VarTag T) { return T != VarTag::Plain; });
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

VarRefSet Subst::replacementFreeVars() const {
  VarRefSet Out;
  for (const auto &[Key, Repl] : Scalars)
    collectFreeVars(Repl, Out);
  for (const auto &[Key, Repl] : Arrays)
    collectFreeVars(Repl, Out);
  return Out;
}

const Expr *relax::substitute(AstContext &Ctx, const Expr *E, const Subst &S) {
  if (S.empty())
    return E;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return E;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    if (const Expr *Repl = S.lookupVar(V->name(), V->tag()))
      return Repl;
    return E;
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    const ArrayExpr *Base = substitute(Ctx, R->base(), S);
    const Expr *Index = substitute(Ctx, R->index(), S);
    if (Base == R->base() && Index == R->index())
      return E;
    return Ctx.arrayRead(Base, Index, E->loc());
  }
  case Expr::Kind::ArrayLen: {
    const auto *L = cast<ArrayLenExpr>(E);
    const ArrayExpr *Base = substitute(Ctx, L->base(), S);
    if (Base == L->base())
      return E;
    return Ctx.arrayLen(Base, E->loc());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const Expr *L = substitute(Ctx, B->lhs(), S);
    const Expr *R = substitute(Ctx, B->rhs(), S);
    if (L == B->lhs() && R == B->rhs())
      return E;
    return Ctx.binary(B->op(), L, R, E->loc());
  }
  }
  return E;
}

const ArrayExpr *relax::substitute(AstContext &Ctx, const ArrayExpr *A,
                                   const Subst &S) {
  if (S.empty())
    return A;
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    if (const ArrayExpr *Repl = S.lookupArray(R->name(), R->tag()))
      return Repl;
    return A;
  }
  case ArrayExpr::Kind::Store: {
    const auto *St = cast<ArrayStoreExpr>(A);
    const ArrayExpr *Base = substitute(Ctx, St->base(), S);
    const Expr *Index = substitute(Ctx, St->index(), S);
    const Expr *Value = substitute(Ctx, St->value(), S);
    if (Base == St->base() && Index == St->index() && Value == St->value())
      return A;
    return Ctx.arrayStore(Base, Index, Value, A->loc());
  }
  }
  return A;
}

const BoolExpr *relax::substitute(AstContext &Ctx, const BoolExpr *B,
                                  const Subst &S) {
  if (S.empty())
    return B;
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return B;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    const Expr *L = substitute(Ctx, C->lhs(), S);
    const Expr *R = substitute(Ctx, C->rhs(), S);
    if (L == C->lhs() && R == C->rhs())
      return B;
    return Ctx.cmp(C->op(), L, R, B->loc());
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    const ArrayExpr *L = substitute(Ctx, C->lhs(), S);
    const ArrayExpr *R = substitute(Ctx, C->rhs(), S);
    if (L == C->lhs() && R == C->rhs())
      return B;
    return Ctx.arrayCmp(C->isEquality(), L, R, B->loc());
  }
  case BoolExpr::Kind::Logical: {
    const auto *Lo = cast<LogicalExpr>(B);
    const BoolExpr *L = substitute(Ctx, Lo->lhs(), S);
    const BoolExpr *R = substitute(Ctx, Lo->rhs(), S);
    if (L == Lo->lhs() && R == Lo->rhs())
      return B;
    return Ctx.logical(Lo->op(), L, R, B->loc());
  }
  case BoolExpr::Kind::Not: {
    const auto *N = cast<NotExpr>(B);
    const BoolExpr *Sub = substitute(Ctx, N->sub(), S);
    if (Sub == N->sub())
      return B;
    return Ctx.notExpr(Sub, B->loc());
  }
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    VarRef Bound{E->var(), E->tag(), E->varKind()};

    // Shadowing: remove the bound variable from the substitution.
    Subst Inner = S;
    Inner.erase(Bound.Name, Bound.Tag, Bound.Kind);

    // Capture: if the bound variable occurs free in some replacement,
    // alpha-rename the binder first.
    VarRefSet ReplFree = Inner.replacementFreeVars();
    if (ReplFree.count(Bound)) {
      Symbol Fresh = Ctx.freshSym(Bound.Name);
      Subst Rename;
      if (Bound.Kind == VarKind::Int)
        Rename.mapVar(Bound.Name, Bound.Tag, Ctx.var(Fresh, Bound.Tag));
      else
        Rename.mapArray(Bound.Name, Bound.Tag, Ctx.arrayRef(Fresh, Bound.Tag));
      const BoolExpr *RenamedBody = substitute(Ctx, E->body(), Rename);
      return Ctx.exists(Fresh, Bound.Tag, Bound.Kind,
                        substitute(Ctx, RenamedBody, Inner), B->loc());
    }

    const BoolExpr *Body = substitute(Ctx, E->body(), Inner);
    if (Body == E->body())
      return B;
    return Ctx.exists(Bound.Name, Bound.Tag, Bound.Kind, Body, B->loc());
  }
  }
  return B;
}

//===----------------------------------------------------------------------===//
// Injection
//===----------------------------------------------------------------------===//

const Expr *relax::inject(AstContext &Ctx, const Expr *E, VarTag Target) {
  assert(Target != VarTag::Plain && "injection target must be Orig or Rel");
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return E;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    if (V->tag() != VarTag::Plain)
      return E;
    return Ctx.var(V->name(), Target, E->loc());
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    return Ctx.arrayRead(inject(Ctx, R->base(), Target),
                         inject(Ctx, R->index(), Target), E->loc());
  }
  case Expr::Kind::ArrayLen:
    return Ctx.arrayLen(inject(Ctx, cast<ArrayLenExpr>(E)->base(), Target),
                        E->loc());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Ctx.binary(B->op(), inject(Ctx, B->lhs(), Target),
                      inject(Ctx, B->rhs(), Target), E->loc());
  }
  }
  return E;
}

const ArrayExpr *relax::inject(AstContext &Ctx, const ArrayExpr *A,
                               VarTag Target) {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    if (R->tag() != VarTag::Plain)
      return A;
    return Ctx.arrayRef(R->name(), Target, A->loc());
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    return Ctx.arrayStore(inject(Ctx, S->base(), Target),
                          inject(Ctx, S->index(), Target),
                          inject(Ctx, S->value(), Target), A->loc());
  }
  }
  return A;
}

const BoolExpr *relax::inject(AstContext &Ctx, const BoolExpr *B,
                              VarTag Target) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return B;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    return Ctx.cmp(C->op(), inject(Ctx, C->lhs(), Target),
                   inject(Ctx, C->rhs(), Target), B->loc());
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    return Ctx.arrayCmp(C->isEquality(), inject(Ctx, C->lhs(), Target),
                        inject(Ctx, C->rhs(), Target), B->loc());
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    return Ctx.logical(L->op(), inject(Ctx, L->lhs(), Target),
                       inject(Ctx, L->rhs(), Target), B->loc());
  }
  case BoolExpr::Kind::Not:
    return Ctx.notExpr(inject(Ctx, cast<NotExpr>(B)->sub(), Target), B->loc());
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    VarTag BinderTag = E->tag() == VarTag::Plain ? Target : E->tag();
    return Ctx.exists(E->var(), BinderTag, E->varKind(),
                      inject(Ctx, E->body(), Target), B->loc());
  }
  }
  return B;
}

const BoolExpr *relax::pairPredicate(AstContext &Ctx, const BoolExpr *P1,
                                     const BoolExpr *P2) {
  return Ctx.conj(
      {inject(Ctx, P1, VarTag::Orig), inject(Ctx, P2, VarTag::Rel)});
}

const BoolExpr *relax::identityRelation(AstContext &Ctx, const Program &P) {
  std::vector<const BoolExpr *> Parts;
  for (const VarDecl &D : P.decls()) {
    if (D.Kind == VarKind::Int)
      Parts.push_back(Ctx.eq(Ctx.var(D.Name, VarTag::Orig),
                             Ctx.var(D.Name, VarTag::Rel)));
    else
      Parts.push_back(Ctx.arrayEq(Ctx.arrayRef(D.Name, VarTag::Orig),
                                  Ctx.arrayRef(D.Name, VarTag::Rel)));
  }
  return Ctx.conj(Parts);
}
