//===- FormulaOps.cpp - Operations on formulas --------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "logic/FormulaOps.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <unordered_map>

using namespace relax;

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

void relax::collectFreeVars(const Expr *E, VarRefSet &Out) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    Out.insert(VarRef{V->name(), V->tag(), VarKind::Int});
    return;
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    collectFreeVars(R->base(), Out);
    collectFreeVars(R->index(), Out);
    return;
  }
  case Expr::Kind::ArrayLen:
    collectFreeVars(cast<ArrayLenExpr>(E)->base(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectFreeVars(B->lhs(), Out);
    collectFreeVars(B->rhs(), Out);
    return;
  }
  }
}

void relax::collectFreeVars(const ArrayExpr *A, VarRefSet &Out) {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    Out.insert(VarRef{R->name(), R->tag(), VarKind::Array});
    return;
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    collectFreeVars(S->base(), Out);
    collectFreeVars(S->index(), Out);
    collectFreeVars(S->value(), Out);
    return;
  }
  }
}

void relax::collectFreeVars(const BoolExpr *B, VarRefSet &Out) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    collectFreeVars(C->lhs(), Out);
    collectFreeVars(C->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    collectFreeVars(C->lhs(), Out);
    collectFreeVars(C->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    collectFreeVars(L->lhs(), Out);
    collectFreeVars(L->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::Not:
    collectFreeVars(cast<NotExpr>(B)->sub(), Out);
    return;
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    VarRefSet Body;
    collectFreeVars(E->body(), Body);
    Body.erase(VarRef{E->var(), E->tag(), E->varKind()});
    Out.insert(Body.begin(), Body.end());
    return;
  }
  }
}

VarRefSet relax::freeVars(const Expr *E) {
  VarRefSet Out;
  collectFreeVars(E, Out);
  return Out;
}

VarRefSet relax::freeVars(const BoolExpr *B) {
  VarRefSet Out;
  collectFreeVars(B, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Memoized, structurally-shared free-variable lists
//===----------------------------------------------------------------------===//

namespace {

const SharedVarList &emptyVarList() {
  static const SharedVarList Empty =
      std::make_shared<const std::vector<VarRef>>();
  return Empty;
}

SharedVarList singletonVarList(VarRef V) {
  return std::make_shared<const std::vector<VarRef>>(
      std::vector<VarRef>{V});
}

/// Merges two sorted lists. Reuses an input when it subsumes the result.
SharedVarList mergeVarLists(const SharedVarList &A, const SharedVarList &B) {
  if (A->empty() || A == B)
    return B;
  if (B->empty())
    return A;
  std::vector<VarRef> Out;
  Out.reserve(A->size() + B->size());
  std::set_union(A->begin(), A->end(), B->begin(), B->end(),
                 std::back_inserter(Out));
  if (Out.size() == A->size())
    return A; // B ⊆ A
  if (Out.size() == B->size())
    return B; // A ⊆ B
  return std::make_shared<const std::vector<VarRef>>(std::move(Out));
}

SharedVarList removeVar(const SharedVarList &L, VarRef V) {
  if (!std::binary_search(L->begin(), L->end(), V))
    return L;
  std::vector<VarRef> Out;
  Out.reserve(L->size() - 1);
  for (const VarRef &X : *L)
    if (!(X == V))
      Out.push_back(X);
  return std::make_shared<const std::vector<VarRef>>(std::move(Out));
}

SharedVarList fvList(AstContext &Ctx, const Expr *E);
SharedVarList fvList(AstContext &Ctx, const ArrayExpr *A);
SharedVarList fvList(AstContext &Ctx, const BoolExpr *B);

/// Memo helper: values are returned by shared_ptr copy, never by reference
/// into the table (PtrMap slots move on growth).
template <typename NodeT, typename CacheT, typename ComputeFn>
SharedVarList fvMemo(CacheT &Cache, const NodeT *N, ComputeFn Compute) {
  if (const SharedVarList *Hit = Cache.find(N))
    return *Hit;
  SharedVarList Out = Compute();
  Cache.insert(N, Out);
  return Out;
}

SharedVarList fvList(AstContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return emptyVarList();
  default:
    break;
  }
  return fvMemo(Ctx.freeVarsCacheExpr(), E, [&]() -> SharedVarList {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return emptyVarList();
    case Expr::Kind::Var: {
      const auto *V = cast<VarExpr>(E);
      return singletonVarList(VarRef{V->name(), V->tag(), VarKind::Int});
    }
    case Expr::Kind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      return mergeVarLists(fvList(Ctx, R->base()), fvList(Ctx, R->index()));
    }
    case Expr::Kind::ArrayLen:
      return fvList(Ctx, cast<ArrayLenExpr>(E)->base());
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return mergeVarLists(fvList(Ctx, B->lhs()), fvList(Ctx, B->rhs()));
    }
    }
    return emptyVarList();
  });
}

SharedVarList fvList(AstContext &Ctx, const ArrayExpr *A) {
  return fvMemo(Ctx.freeVarsCacheArray(), A, [&]() -> SharedVarList {
    switch (A->kind()) {
    case ArrayExpr::Kind::Ref: {
      const auto *R = cast<ArrayRefExpr>(A);
      return singletonVarList(VarRef{R->name(), R->tag(), VarKind::Array});
    }
    case ArrayExpr::Kind::Store: {
      const auto *S = cast<ArrayStoreExpr>(A);
      return mergeVarLists(
          mergeVarLists(fvList(Ctx, S->base()), fvList(Ctx, S->index())),
          fvList(Ctx, S->value()));
    }
    }
    return emptyVarList();
  });
}

SharedVarList fvList(AstContext &Ctx, const BoolExpr *B) {
  if (B->kind() == BoolExpr::Kind::BoolLit)
    return emptyVarList();
  return fvMemo(Ctx.freeVarsCacheBool(), B, [&]() -> SharedVarList {
    switch (B->kind()) {
    case BoolExpr::Kind::BoolLit:
      return emptyVarList();
    case BoolExpr::Kind::Cmp: {
      const auto *C = cast<CmpExpr>(B);
      return mergeVarLists(fvList(Ctx, C->lhs()), fvList(Ctx, C->rhs()));
    }
    case BoolExpr::Kind::ArrayCmp: {
      const auto *C = cast<ArrayCmpExpr>(B);
      return mergeVarLists(fvList(Ctx, C->lhs()), fvList(Ctx, C->rhs()));
    }
    case BoolExpr::Kind::Logical: {
      const auto *L = cast<LogicalExpr>(B);
      return mergeVarLists(fvList(Ctx, L->lhs()), fvList(Ctx, L->rhs()));
    }
    case BoolExpr::Kind::Not:
      return fvList(Ctx, cast<NotExpr>(B)->sub());
    case BoolExpr::Kind::Exists: {
      const auto *E = cast<ExistsExpr>(B);
      return removeVar(fvList(Ctx, E->body()),
                       VarRef{E->var(), E->tag(), E->varKind()});
    }
    }
    return emptyVarList();
  });
}

} // namespace

// Dereferencing the by-value shared_ptr is safe: the context's cache keeps
// an owning copy alive for the context's lifetime.
const std::vector<VarRef> &relax::freeVarsList(AstContext &Ctx,
                                               const Expr *E) {
  return *fvList(Ctx, E);
}
const std::vector<VarRef> &relax::freeVarsList(AstContext &Ctx,
                                               const ArrayExpr *A) {
  return *fvList(Ctx, A);
}
const std::vector<VarRef> &relax::freeVarsList(AstContext &Ctx,
                                               const BoolExpr *B) {
  return *fvList(Ctx, B);
}

bool relax::occursFree(AstContext &Ctx, const BoolExpr *B, const VarRef &V) {
  const std::vector<VarRef> &L = freeVarsList(Ctx, B);
  return std::binary_search(L.begin(), L.end(), V);
}

//===----------------------------------------------------------------------===//
// Classification
//===----------------------------------------------------------------------===//

bool relax::isQuantifierFree(const BoolExpr *B) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
  case BoolExpr::Kind::Cmp:
  case BoolExpr::Kind::ArrayCmp:
    return true;
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    return isQuantifierFree(L->lhs()) && isQuantifierFree(L->rhs());
  }
  case BoolExpr::Kind::Not:
    return isQuantifierFree(cast<NotExpr>(B)->sub());
  case BoolExpr::Kind::Exists:
    return false;
  }
  return true;
}

namespace {

/// Checks whether every variable occurrence (free *or* bound, since binders
/// also carry tags) satisfies \p Pred.
template <typename Fn> bool allTags(const BoolExpr *B, Fn Pred) {
  VarRefSet Vars;
  collectFreeVars(B, Vars);
  bool Ok = true;
  for (const VarRef &V : Vars)
    Ok &= Pred(V.Tag);
  // Bound variables: walk quantifiers.
  if (const auto *E = dyn_cast<ExistsExpr>(B))
    Ok &= Pred(E->tag()) && allTags(E->body(), Pred);
  else if (const auto *L = dyn_cast<LogicalExpr>(B))
    Ok &= allTags(L->lhs(), Pred) && allTags(L->rhs(), Pred);
  else if (const auto *N = dyn_cast<NotExpr>(B))
    Ok &= allTags(N->sub(), Pred);
  return Ok;
}

} // namespace

bool relax::isUnary(const BoolExpr *B) {
  return allTags(B, [](VarTag T) { return T == VarTag::Plain; });
}

bool relax::isRelational(const BoolExpr *B) {
  return allTags(B, [](VarTag T) { return T != VarTag::Plain; });
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

VarRefSet Subst::replacementFreeVars() const {
  VarRefSet Out;
  for (const auto &[Key, Repl] : Scalars)
    collectFreeVars(Repl, Out);
  for (const auto &[Key, Repl] : Arrays)
    collectFreeVars(Repl, Out);
  return Out;
}

std::vector<VarRef> Subst::domain() const {
  std::vector<VarRef> Out;
  Out.reserve(Scalars.size() + Arrays.size());
  for (const auto &[Key, Repl] : Scalars)
    Out.push_back(VarRef{Key.first, Key.second, VarKind::Int});
  for (const auto &[Key, Repl] : Arrays)
    Out.push_back(VarRef{Key.first, Key.second, VarKind::Array});
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {

/// One substitution pass. The strongest-postcondition generators substitute
/// into formulas that grow with program size while each pass touches only a
/// few variables, so the walker prunes every subtree whose (memoized,
/// shared) free-variable list is disjoint from the substitution domain —
/// hash-consing pays for itself here: untouched subtrees are returned by
/// pointer and all their ancestors dedup onto existing nodes.
class SubstWalker {
public:
  SubstWalker(AstContext &Ctx, const Subst &S)
      : Ctx(Ctx), S(S), Domain(S.domain()) {}

  const Expr *walk(const Expr *E) {
    if (!hits(freeVarsList(Ctx, E)))
      return E;
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return E;
    case Expr::Kind::Var: {
      const auto *V = cast<VarExpr>(E);
      if (const Expr *Repl = S.lookupVar(V->name(), V->tag()))
        return Repl;
      return E;
    }
    case Expr::Kind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      const ArrayExpr *Base = walk(R->base());
      const Expr *Index = walk(R->index());
      if (Base == R->base() && Index == R->index())
        return E;
      return Ctx.arrayRead(Base, Index, E->loc());
    }
    case Expr::Kind::ArrayLen: {
      const auto *L = cast<ArrayLenExpr>(E);
      const ArrayExpr *Base = walk(L->base());
      if (Base == L->base())
        return E;
      return Ctx.arrayLen(Base, E->loc());
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      const Expr *L = walk(B->lhs());
      const Expr *R = walk(B->rhs());
      if (L == B->lhs() && R == B->rhs())
        return E;
      return Ctx.binary(B->op(), L, R, E->loc());
    }
    }
    return E;
  }

  const ArrayExpr *walk(const ArrayExpr *A) {
    if (!hits(freeVarsList(Ctx, A)))
      return A;
    switch (A->kind()) {
    case ArrayExpr::Kind::Ref: {
      const auto *R = cast<ArrayRefExpr>(A);
      if (const ArrayExpr *Repl = S.lookupArray(R->name(), R->tag()))
        return Repl;
      return A;
    }
    case ArrayExpr::Kind::Store: {
      const auto *St = cast<ArrayStoreExpr>(A);
      const ArrayExpr *Base = walk(St->base());
      const Expr *Index = walk(St->index());
      const Expr *Value = walk(St->value());
      if (Base == St->base() && Index == St->index() &&
          Value == St->value())
        return A;
      return Ctx.arrayStore(Base, Index, Value, A->loc());
    }
    }
    return A;
  }

  const BoolExpr *walk(const BoolExpr *B) {
    if (!hits(freeVarsList(Ctx, B)))
      return B;
    auto It = Memo.find(B);
    if (It != Memo.end())
      return It->second;
    const BoolExpr *Out = walkUncached(B);
    Memo.emplace(B, Out);
    return Out;
  }

private:
  bool hits(const std::vector<VarRef> &Free) const {
    for (const VarRef &D : Domain)
      if (std::binary_search(Free.begin(), Free.end(), D))
        return true;
    return false;
  }

  const BoolExpr *walkUncached(const BoolExpr *B) {
    switch (B->kind()) {
    case BoolExpr::Kind::BoolLit:
      return B;
    case BoolExpr::Kind::Cmp: {
      const auto *C = cast<CmpExpr>(B);
      const Expr *L = walk(C->lhs());
      const Expr *R = walk(C->rhs());
      if (L == C->lhs() && R == C->rhs())
        return B;
      return Ctx.cmp(C->op(), L, R, B->loc());
    }
    case BoolExpr::Kind::ArrayCmp: {
      const auto *C = cast<ArrayCmpExpr>(B);
      const ArrayExpr *L = walk(C->lhs());
      const ArrayExpr *R = walk(C->rhs());
      if (L == C->lhs() && R == C->rhs())
        return B;
      return Ctx.arrayCmp(C->isEquality(), L, R, B->loc());
    }
    case BoolExpr::Kind::Logical: {
      const auto *Lo = cast<LogicalExpr>(B);
      const BoolExpr *L = walk(Lo->lhs());
      const BoolExpr *R = walk(Lo->rhs());
      if (L == Lo->lhs() && R == Lo->rhs())
        return B;
      return Ctx.logical(Lo->op(), L, R, B->loc());
    }
    case BoolExpr::Kind::Not: {
      const auto *N = cast<NotExpr>(B);
      const BoolExpr *Sub = walk(N->sub());
      if (Sub == N->sub())
        return B;
      return Ctx.notExpr(Sub, B->loc());
    }
    case BoolExpr::Kind::Exists: {
      const auto *E = cast<ExistsExpr>(B);
      VarRef Bound{E->var(), E->tag(), E->varKind()};

      // Shadowing: remove the bound variable from the substitution.
      Subst Inner = S;
      Inner.erase(Bound.Name, Bound.Tag, Bound.Kind);

      // Capture: if the bound variable occurs free in some replacement,
      // alpha-rename the binder first.
      VarRefSet ReplFree = Inner.replacementFreeVars();
      if (ReplFree.count(Bound)) {
        Symbol Fresh = Ctx.freshSym(Bound.Name);
        Subst Rename;
        if (Bound.Kind == VarKind::Int)
          Rename.mapVar(Bound.Name, Bound.Tag, Ctx.var(Fresh, Bound.Tag));
        else
          Rename.mapArray(Bound.Name, Bound.Tag,
                          Ctx.arrayRef(Fresh, Bound.Tag));
        const BoolExpr *RenamedBody = substitute(Ctx, E->body(), Rename);
        return Ctx.exists(Fresh, Bound.Tag, Bound.Kind,
                          substitute(Ctx, RenamedBody, Inner), B->loc());
      }

      // No shadowing: Inner maps exactly like S, so this walker (and its
      // memo) remains valid for the body.
      const BoolExpr *Body = Bound.Kind == VarKind::Int
                                 ? (S.lookupVar(Bound.Name, Bound.Tag)
                                        ? substitute(Ctx, E->body(), Inner)
                                        : walk(E->body()))
                                 : (S.lookupArray(Bound.Name, Bound.Tag)
                                        ? substitute(Ctx, E->body(), Inner)
                                        : walk(E->body()));
      if (Body == E->body())
        return B;
      return Ctx.exists(Bound.Name, Bound.Tag, Bound.Kind, Body, B->loc());
    }
    }
    return B;
  }

  AstContext &Ctx;
  const Subst &S;
  std::vector<VarRef> Domain;
  std::unordered_map<const BoolExpr *, const BoolExpr *> Memo;
};

} // namespace

const Expr *relax::substitute(AstContext &Ctx, const Expr *E, const Subst &S) {
  if (S.empty())
    return E;
  return SubstWalker(Ctx, S).walk(E);
}

const ArrayExpr *relax::substitute(AstContext &Ctx, const ArrayExpr *A,
                                   const Subst &S) {
  if (S.empty())
    return A;
  return SubstWalker(Ctx, S).walk(A);
}

const BoolExpr *relax::substitute(AstContext &Ctx, const BoolExpr *B,
                                  const Subst &S) {
  if (S.empty())
    return B;
  return SubstWalker(Ctx, S).walk(B);
}

//===----------------------------------------------------------------------===//
// Injection
//===----------------------------------------------------------------------===//

const Expr *relax::inject(AstContext &Ctx, const Expr *E, VarTag Target) {
  assert(Target != VarTag::Plain && "injection target must be Orig or Rel");
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return E;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    if (V->tag() != VarTag::Plain)
      return E;
    return Ctx.var(V->name(), Target, E->loc());
  }
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    return Ctx.arrayRead(inject(Ctx, R->base(), Target),
                         inject(Ctx, R->index(), Target), E->loc());
  }
  case Expr::Kind::ArrayLen:
    return Ctx.arrayLen(inject(Ctx, cast<ArrayLenExpr>(E)->base(), Target),
                        E->loc());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Ctx.binary(B->op(), inject(Ctx, B->lhs(), Target),
                      inject(Ctx, B->rhs(), Target), E->loc());
  }
  }
  return E;
}

const ArrayExpr *relax::inject(AstContext &Ctx, const ArrayExpr *A,
                               VarTag Target) {
  switch (A->kind()) {
  case ArrayExpr::Kind::Ref: {
    const auto *R = cast<ArrayRefExpr>(A);
    if (R->tag() != VarTag::Plain)
      return A;
    return Ctx.arrayRef(R->name(), Target, A->loc());
  }
  case ArrayExpr::Kind::Store: {
    const auto *S = cast<ArrayStoreExpr>(A);
    return Ctx.arrayStore(inject(Ctx, S->base(), Target),
                          inject(Ctx, S->index(), Target),
                          inject(Ctx, S->value(), Target), A->loc());
  }
  }
  return A;
}

const BoolExpr *relax::inject(AstContext &Ctx, const BoolExpr *B,
                              VarTag Target) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return B;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    return Ctx.cmp(C->op(), inject(Ctx, C->lhs(), Target),
                   inject(Ctx, C->rhs(), Target), B->loc());
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    return Ctx.arrayCmp(C->isEquality(), inject(Ctx, C->lhs(), Target),
                        inject(Ctx, C->rhs(), Target), B->loc());
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    return Ctx.logical(L->op(), inject(Ctx, L->lhs(), Target),
                       inject(Ctx, L->rhs(), Target), B->loc());
  }
  case BoolExpr::Kind::Not:
    return Ctx.notExpr(inject(Ctx, cast<NotExpr>(B)->sub(), Target), B->loc());
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    VarTag BinderTag = E->tag() == VarTag::Plain ? Target : E->tag();
    return Ctx.exists(E->var(), BinderTag, E->varKind(),
                      inject(Ctx, E->body(), Target), B->loc());
  }
  }
  return B;
}

const BoolExpr *relax::pairPredicate(AstContext &Ctx, const BoolExpr *P1,
                                     const BoolExpr *P2) {
  return Ctx.conj(
      {inject(Ctx, P1, VarTag::Orig), inject(Ctx, P2, VarTag::Rel)});
}

const BoolExpr *relax::identityRelation(AstContext &Ctx, const Program &P) {
  std::vector<const BoolExpr *> Parts;
  for (const VarDecl &D : P.decls()) {
    if (D.Kind == VarKind::Int)
      Parts.push_back(Ctx.eq(Ctx.var(D.Name, VarTag::Orig),
                             Ctx.var(D.Name, VarTag::Rel)));
    else
      Parts.push_back(Ctx.arrayEq(Ctx.arrayRef(D.Name, VarTag::Orig),
                                  Ctx.arrayRef(D.Name, VarTag::Rel)));
  }
  return Ctx.conj(Parts);
}

const BoolExpr *relax::effectiveRelRequires(AstContext &Ctx, const Program &P,
                                            const Procedure &Proc) {
  if (Proc.relRequiresClause())
    return Proc.relRequiresClause();
  std::vector<const BoolExpr *> Parts;
  Parts.push_back(identityRelation(Ctx, P));
  for (const ProcParam &Param : Proc.params())
    Parts.push_back(Ctx.eq(Ctx.var(Param.Name, VarTag::Orig),
                           Ctx.var(Param.Name, VarTag::Rel)));
  if (const BoolExpr *Req = Proc.requiresClause()) {
    Parts.push_back(inject(Ctx, Req, VarTag::Orig));
    Parts.push_back(inject(Ctx, Req, VarTag::Rel));
  }
  return Ctx.conj(Parts);
}
