//===- Simplify.h - Formula simplification -------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A validity-preserving simplifier for generated verification conditions:
/// constant folding, boolean identities, double-negation elimination,
/// duplicate-conjunct removal, and vacuous-quantifier elimination. Keeps VC
/// dumps readable and reduces solver load; soundness is property-tested
/// against random formulas and states.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_LOGIC_SIMPLIFY_H
#define RELAXC_LOGIC_SIMPLIFY_H

#include "ast/AstContext.h"

namespace relax {

/// Returns a formula logically equivalent to \p B (under every state /
/// state pair), structurally no larger.
const BoolExpr *simplify(AstContext &Ctx, const BoolExpr *B);

/// Returns an expression that evaluates identically to \p E.
const Expr *simplify(AstContext &Ctx, const Expr *E);

/// A memoizing simplifier. Hash-consed nodes are immutable and identity
/// equals structure, so results are cached by node identity in tables owned
/// by the AstContext itself: the memo survives across Simplifier instances
/// and across the strongest-postcondition generators' ever-growing
/// formulas, turning re-simplification of shared subterms into O(1) hits.
class Simplifier {
public:
  explicit Simplifier(AstContext &Ctx) : Ctx(Ctx) {}

  const BoolExpr *simplify(const BoolExpr *B);
  const Expr *simplify(const Expr *E);

private:
  AstContext &Ctx;
};

} // namespace relax

#endif // RELAXC_LOGIC_SIMPLIFY_H
