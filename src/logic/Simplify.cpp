//===- Simplify.cpp - Formula simplification ----------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "logic/Simplify.h"

#include "ast/Structural.h"
#include "logic/FormulaOps.h"
#include "support/Casting.h"

#include <optional>

using namespace relax;

namespace {

std::optional<int64_t> litValue(const Expr *E) {
  if (const auto *L = dyn_cast<IntLitExpr>(E))
    return L->value();
  return std::nullopt;
}

std::optional<bool> litValue(const BoolExpr *B) {
  if (const auto *L = dyn_cast<BoolLitExpr>(B))
    return L->value();
  return std::nullopt;
}

// Euclidean folding matching the logic/evaluator semantics. (The solver
// library, which exports euclideanDiv/euclideanMod for general use, sits
// above logic in the layering, so the two-liners are duplicated here; the
// test suite checks they agree.)
int64_t euclideanDivFold(int64_t L, int64_t R) {
  int64_t Rem = L % R;
  if (Rem < 0)
    Rem += R > 0 ? R : -R;
  return (L - Rem) / R;
}

int64_t euclideanModFold(int64_t L, int64_t R) {
  int64_t Rem = L % R;
  if (Rem < 0)
    Rem += R > 0 ? R : -R;
  return Rem;
}

/// Folds `L op R` when safe. Division/modulo by zero stays unfolded: the
/// evaluator traps it as `wr`, so folding would change program behavior.
std::optional<int64_t> foldBinary(BinaryOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case BinaryOp::Add:
    return L + R;
  case BinaryOp::Sub:
    return L - R;
  case BinaryOp::Mul:
    return L * R;
  case BinaryOp::Div:
    if (R == 0)
      return std::nullopt;
    return euclideanDivFold(L, R);
  case BinaryOp::Mod:
    if (R == 0)
      return std::nullopt;
    return euclideanModFold(L, R);
  }
  return std::nullopt;
}

} // namespace

const Expr *Simplifier::simplify(const Expr *E) {
  auto It = ExprCache.find(E);
  if (It != ExprCache.end())
    return It->second;

  const Expr *Out = E;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Var:
  case Expr::Kind::ArrayLen:
    break;
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    const Expr *Index = simplify(R->index());
    if (Index != R->index())
      Out = Ctx.arrayRead(R->base(), Index, E->loc());
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const Expr *L = simplify(B->lhs());
    const Expr *R = simplify(B->rhs());
    auto LV = litValue(L), RV = litValue(R);
    if (LV && RV) {
      if (auto Folded = foldBinary(B->op(), *LV, *RV)) {
        Out = Ctx.intLit(*Folded, E->loc());
        break;
      }
    }
    // Additive and multiplicative units.
    if (B->op() == BinaryOp::Add && LV == 0) {
      Out = R;
      break;
    }
    if (B->op() == BinaryOp::Add && RV == 0) {
      Out = L;
      break;
    }
    if (B->op() == BinaryOp::Sub && RV == 0) {
      Out = L;
      break;
    }
    if (B->op() == BinaryOp::Mul && LV == 1) {
      Out = R;
      break;
    }
    if (B->op() == BinaryOp::Mul && RV == 1) {
      Out = L;
      break;
    }
    if (L != B->lhs() || R != B->rhs())
      Out = Ctx.binary(B->op(), L, R, E->loc());
    break;
  }
  }
  ExprCache.emplace(E, Out);
  if (Out != E)
    ExprCache.emplace(Out, Out); // already in simplest form
  return Out;
}

const BoolExpr *Simplifier::simplify(const BoolExpr *B) {
  auto It = BoolCache.find(B);
  if (It != BoolCache.end())
    return It->second;

  const BoolExpr *Out = B;
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    break;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    const Expr *L = simplify(C->lhs());
    const Expr *R = simplify(C->rhs());
    auto LV = litValue(L), RV = litValue(R);
    if (LV && RV) {
      Out = Ctx.boolLit(evalCmpOp(C->op(), *LV, *RV));
      break;
    }
    // Identical operands decide reflexive comparisons. Pointer equality
    // suffices here (the memoized simplifier canonicalizes shared
    // subterms); structural equality on distinct nodes is only attempted
    // for cheap shapes via hashing-free shortcuts.
    if (L == R || structurallyEqual(L, R)) {
      switch (C->op()) {
      case CmpOp::Eq:
      case CmpOp::Le:
      case CmpOp::Ge:
        Out = Ctx.trueExpr();
        break;
      case CmpOp::Ne:
      case CmpOp::Lt:
      case CmpOp::Gt:
        Out = Ctx.falseExpr();
        break;
      }
      break;
    }
    if (L != C->lhs() || R != C->rhs())
      Out = Ctx.cmp(C->op(), L, R, B->loc());
    break;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    if (structurallyEqual(C->lhs(), C->rhs()))
      Out = Ctx.boolLit(C->isEquality());
    break;
  }
  case BoolExpr::Kind::Logical: {
    const auto *Lo = cast<LogicalExpr>(B);
    const BoolExpr *L = simplify(Lo->lhs());
    const BoolExpr *R = simplify(Lo->rhs());
    auto LV = litValue(L), RV = litValue(R);
    switch (Lo->op()) {
    case LogicalOp::And:
      if (LV) {
        Out = *LV ? R : Ctx.falseExpr();
        goto done;
      }
      if (RV) {
        Out = *RV ? L : Ctx.falseExpr();
        goto done;
      }
      if (L == R) {
        Out = L;
        goto done;
      }
      break;
    case LogicalOp::Or:
      if (LV) {
        Out = *LV ? Ctx.trueExpr() : R;
        goto done;
      }
      if (RV) {
        Out = *RV ? Ctx.trueExpr() : L;
        goto done;
      }
      if (L == R) {
        Out = L;
        goto done;
      }
      break;
    case LogicalOp::Implies:
      if (LV) {
        Out = *LV ? R : Ctx.trueExpr();
        goto done;
      }
      if (RV && *RV) {
        Out = Ctx.trueExpr();
        goto done;
      }
      if (RV && !*RV) {
        Out = simplify(Ctx.notExpr(L));
        goto done;
      }
      if (L == R) {
        Out = Ctx.trueExpr();
        goto done;
      }
      break;
    case LogicalOp::Iff:
      if (LV) {
        Out = *LV ? R : simplify(Ctx.notExpr(R));
        goto done;
      }
      if (RV) {
        Out = *RV ? L : simplify(Ctx.notExpr(L));
        goto done;
      }
      if (L == R) {
        Out = Ctx.trueExpr();
        goto done;
      }
      break;
    }
    if (L != Lo->lhs() || R != Lo->rhs())
      Out = Ctx.logical(Lo->op(), L, R, B->loc());
    break;
  }
  case BoolExpr::Kind::Not: {
    const BoolExpr *Sub = simplify(cast<NotExpr>(B)->sub());
    if (auto V = litValue(Sub)) {
      Out = Ctx.boolLit(!*V);
      break;
    }
    if (const auto *N = dyn_cast<NotExpr>(Sub)) {
      Out = N->sub(); // double negation
      break;
    }
    if (const auto *C = dyn_cast<CmpExpr>(Sub)) {
      Out = Ctx.cmp(negateCmpOp(C->op()), C->lhs(), C->rhs(), B->loc());
      break;
    }
    if (Sub != cast<NotExpr>(B)->sub())
      Out = Ctx.notExpr(Sub, B->loc());
    break;
  }
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    const BoolExpr *Body = simplify(E->body());
    if (auto V = litValue(Body)) {
      Out = Ctx.boolLit(*V); // domain Z is nonempty
      break;
    }
    VarRefSet Free = freeVars(Body);
    if (!Free.count(VarRef{E->var(), E->tag(), E->varKind()})) {
      Out = Body; // vacuous binder
      break;
    }
    if (Body != E->body())
      Out = Ctx.exists(E->var(), E->tag(), E->varKind(), Body, B->loc());
    break;
  }
  }
done:
  BoolCache.emplace(B, Out);
  if (Out != B)
    BoolCache.emplace(Out, Out);
  return Out;
}

const BoolExpr *relax::simplify(AstContext &Ctx, const BoolExpr *B) {
  Simplifier S(Ctx);
  return S.simplify(B);
}

const Expr *relax::simplify(AstContext &Ctx, const Expr *E) {
  Simplifier S(Ctx);
  return S.simplify(E);
}
