//===- Simplify.cpp - Formula simplification ----------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "logic/Simplify.h"

#include "ast/Structural.h"
#include "logic/FormulaOps.h"
#include "support/Casting.h"
#include "support/IntMath.h"

#include <optional>

using namespace relax;

namespace {

std::optional<int64_t> litValue(const Expr *E) {
  if (const auto *L = dyn_cast<IntLitExpr>(E))
    return L->value();
  return std::nullopt;
}

std::optional<bool> litValue(const BoolExpr *B) {
  if (const auto *L = dyn_cast<BoolLitExpr>(B))
    return L->value();
  return std::nullopt;
}

/// Folds `L op R` when safe. Division/modulo by zero stays unfolded: the
/// evaluator traps it as `wr`, so folding would change program behavior.
/// Overflowing add/sub/mul stay unfolded too: the logic's integers are
/// unbounded, so folding with int64 wrap would hand the Z3 backend a
/// different formula than the unfolded translation.
std::optional<int64_t> foldBinary(BinaryOp Op, int64_t L, int64_t R) {
  int64_t Out;
  switch (Op) {
  case BinaryOp::Add:
    if (__builtin_add_overflow(L, R, &Out))
      return std::nullopt;
    return Out;
  case BinaryOp::Sub:
    if (__builtin_sub_overflow(L, R, &Out))
      return std::nullopt;
    return Out;
  case BinaryOp::Mul:
    if (__builtin_mul_overflow(L, R, &Out))
      return std::nullopt;
    return Out;
  case BinaryOp::Div:
    if (R == 0)
      return std::nullopt;
    return euclideanDiv(L, R);
  case BinaryOp::Mod:
    if (R == 0)
      return std::nullopt;
    return euclideanMod(L, R);
  }
  return std::nullopt;
}

} // namespace

const Expr *Simplifier::simplify(const Expr *E) {
  // Leaves are their own simplest form; keep them out of the memo table.
  if (E->kind() == Expr::Kind::IntLit || E->kind() == Expr::Kind::Var ||
      E->kind() == Expr::Kind::ArrayLen)
    return E;

  auto &ExprCache = Ctx.simplifyCacheExpr();
  if (const Expr *const *Hit = ExprCache.find(E))
    return *Hit;

  const Expr *Out = E;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Var:
  case Expr::Kind::ArrayLen:
    break;
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    const Expr *Index = simplify(R->index());
    if (Index != R->index())
      Out = Ctx.arrayRead(R->base(), Index, E->loc());
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const Expr *L = simplify(B->lhs());
    const Expr *R = simplify(B->rhs());
    auto LV = litValue(L), RV = litValue(R);
    if (LV && RV) {
      if (auto Folded = foldBinary(B->op(), *LV, *RV)) {
        Out = Ctx.intLit(*Folded, E->loc());
        break;
      }
    }
    // Additive and multiplicative units.
    if (B->op() == BinaryOp::Add && LV == 0) {
      Out = R;
      break;
    }
    if (B->op() == BinaryOp::Add && RV == 0) {
      Out = L;
      break;
    }
    if (B->op() == BinaryOp::Sub && RV == 0) {
      Out = L;
      break;
    }
    if (B->op() == BinaryOp::Mul && LV == 1) {
      Out = R;
      break;
    }
    if (B->op() == BinaryOp::Mul && RV == 1) {
      Out = L;
      break;
    }
    if (L != B->lhs() || R != B->rhs())
      Out = Ctx.binary(B->op(), L, R, E->loc());
    break;
  }
  }
  ExprCache.insert(E, Out);
  if (Out != E)
    ExprCache.insert(Out, Out); // already in simplest form
  return Out;
}

const BoolExpr *Simplifier::simplify(const BoolExpr *B) {
  if (B->kind() == BoolExpr::Kind::BoolLit)
    return B;

  auto &BoolCache = Ctx.simplifyCacheBool();
  if (const BoolExpr *const *Hit = BoolCache.find(B))
    return *Hit;

  const BoolExpr *Out = B;
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    break;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    const Expr *L = simplify(C->lhs());
    const Expr *R = simplify(C->rhs());
    auto LV = litValue(L), RV = litValue(R);
    if (LV && RV) {
      Out = Ctx.boolLit(evalCmpOp(C->op(), *LV, *RV));
      break;
    }
    // Identical operands decide reflexive comparisons. Hash-consing makes
    // this pointer equality; the structural fallback only matters for
    // nodes from a foreign context and is hash-pruned to O(1) rejection.
    if (L == R || structurallyEqual(L, R)) {
      switch (C->op()) {
      case CmpOp::Eq:
      case CmpOp::Le:
      case CmpOp::Ge:
        Out = Ctx.trueExpr();
        break;
      case CmpOp::Ne:
      case CmpOp::Lt:
      case CmpOp::Gt:
        Out = Ctx.falseExpr();
        break;
      }
      break;
    }
    if (L != C->lhs() || R != C->rhs())
      Out = Ctx.cmp(C->op(), L, R, B->loc());
    break;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    if (structurallyEqual(C->lhs(), C->rhs()))
      Out = Ctx.boolLit(C->isEquality());
    break;
  }
  case BoolExpr::Kind::Logical: {
    const auto *Lo = cast<LogicalExpr>(B);
    const BoolExpr *L = simplify(Lo->lhs());
    const BoolExpr *R = simplify(Lo->rhs());
    auto LV = litValue(L), RV = litValue(R);
    switch (Lo->op()) {
    case LogicalOp::And:
      if (LV) {
        Out = *LV ? R : Ctx.falseExpr();
        goto done;
      }
      if (RV) {
        Out = *RV ? L : Ctx.falseExpr();
        goto done;
      }
      if (L == R) {
        Out = L;
        goto done;
      }
      break;
    case LogicalOp::Or:
      if (LV) {
        Out = *LV ? Ctx.trueExpr() : R;
        goto done;
      }
      if (RV) {
        Out = *RV ? Ctx.trueExpr() : L;
        goto done;
      }
      if (L == R) {
        Out = L;
        goto done;
      }
      break;
    case LogicalOp::Implies:
      if (LV) {
        Out = *LV ? R : Ctx.trueExpr();
        goto done;
      }
      if (RV && *RV) {
        Out = Ctx.trueExpr();
        goto done;
      }
      if (RV && !*RV) {
        Out = simplify(Ctx.notExpr(L));
        goto done;
      }
      if (L == R) {
        Out = Ctx.trueExpr();
        goto done;
      }
      break;
    case LogicalOp::Iff:
      if (LV) {
        Out = *LV ? R : simplify(Ctx.notExpr(R));
        goto done;
      }
      if (RV) {
        Out = *RV ? L : simplify(Ctx.notExpr(L));
        goto done;
      }
      if (L == R) {
        Out = Ctx.trueExpr();
        goto done;
      }
      break;
    }
    if (L != Lo->lhs() || R != Lo->rhs())
      Out = Ctx.logical(Lo->op(), L, R, B->loc());
    break;
  }
  case BoolExpr::Kind::Not: {
    const BoolExpr *Sub = simplify(cast<NotExpr>(B)->sub());
    if (auto V = litValue(Sub)) {
      Out = Ctx.boolLit(!*V);
      break;
    }
    if (const auto *N = dyn_cast<NotExpr>(Sub)) {
      Out = N->sub(); // double negation
      break;
    }
    if (const auto *C = dyn_cast<CmpExpr>(Sub)) {
      Out = Ctx.cmp(negateCmpOp(C->op()), C->lhs(), C->rhs(), B->loc());
      break;
    }
    if (Sub != cast<NotExpr>(B)->sub())
      Out = Ctx.notExpr(Sub, B->loc());
    break;
  }
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    const BoolExpr *Body = simplify(E->body());
    if (auto V = litValue(Body)) {
      Out = Ctx.boolLit(*V); // domain Z is nonempty
      break;
    }
    if (!occursFree(Ctx, Body, VarRef{E->var(), E->tag(), E->varKind()})) {
      Out = Body; // vacuous binder
      break;
    }
    if (Body != E->body())
      Out = Ctx.exists(E->var(), E->tag(), E->varKind(), Body, B->loc());
    break;
  }
  }
done:
  BoolCache.insert(B, Out);
  if (Out != B)
    BoolCache.insert(Out, Out);
  return Out;
}

const BoolExpr *relax::simplify(AstContext &Ctx, const BoolExpr *B) {
  Simplifier S(Ctx);
  return S.simplify(B);
}

const Expr *relax::simplify(AstContext &Ctx, const Expr *E) {
  Simplifier S(Ctx);
  return S.simplify(E);
}
