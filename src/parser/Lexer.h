//===- Lexer.h - Tokenizer for the .rlx surface syntax ------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes `.rlx` source. Identifiers immediately followed by `<o>` or
/// `<r>` lex as single tagged-identifier tokens (`x<o>`), matching the
/// paper's notation for relational expressions; write a space before `<`
/// to compare against variables literally named `o` or `r`.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_PARSER_LEXER_H
#define RELAXC_PARSER_LEXER_H

#include "ast/Expr.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace relax {

class Interner;

/// Token discriminator.
enum class TokenKind : uint8_t {
  Eof,
  Identifier, ///< possibly tagged; see Token::Tag
  Integer,

  // Keywords.
  KwInt,
  KwArray,
  KwRequires,
  KwEnsures,
  KwRRequires,
  KwREnsures,
  KwSkip,
  KwHavoc,
  KwRelax,
  KwSt,
  KwIf,
  KwElse,
  KwWhile,
  KwAssume,
  KwAssert,
  KwRelate,
  KwInvariant,
  KwIInvariant,
  KwRInvariant,
  KwDecreases,
  KwDiverge,
  KwCases,
  KwPreOrig,
  KwPreRel,
  KwPostOrig,
  KwPostRel,
  KwFrame,
  KwExists,
  KwLen,
  KwStore,
  KwTrue,
  KwFalse,
  KwProc,
  KwCall,
  KwModifies,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Colon,
  Comma,
  Dot,
  Assign,  ///< =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Bang,
  ImpliesArrow, ///< ==>
  IffArrow,     ///< <==>
};

/// Returns a human-readable name for \p Kind (used in diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text;       ///< slice of the source buffer
  int64_t IntValue = 0;        ///< for Integer
  VarTag Tag = VarTag::Plain;  ///< for tagged Identifier tokens

  bool is(TokenKind K) const { return Kind == K; }
};

/// Converts a source buffer into a token vector. Lexing never fails hard:
/// unknown characters produce diagnostics and are skipped, so the parser
/// always sees a well-terminated stream.
class Lexer {
public:
  Lexer(const SourceManager &SM, DiagnosticEngine &Diags)
      : SM(SM), Diags(Diags) {}

  /// Lexes the whole buffer. The result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  const SourceManager &SM;
  DiagnosticEngine &Diags;
  size_t Pos = 0;

  char peek(size_t Ahead = 0) const;
  bool atEnd() const;
  SourceLoc loc() const { return SM.locForOffset(Pos); }

  void skipTrivia();
  Token lexToken();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
};

} // namespace relax

#endif // RELAXC_PARSER_LEXER_H
