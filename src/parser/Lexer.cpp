//===- Lexer.cpp - Tokenizer for the .rlx surface syntax ---------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace relax;

const char *relax::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwRequires:
    return "'requires'";
  case TokenKind::KwEnsures:
    return "'ensures'";
  case TokenKind::KwRRequires:
    return "'rrequires'";
  case TokenKind::KwREnsures:
    return "'rensures'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwHavoc:
    return "'havoc'";
  case TokenKind::KwRelax:
    return "'relax'";
  case TokenKind::KwSt:
    return "'st'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwAssume:
    return "'assume'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwRelate:
    return "'relate'";
  case TokenKind::KwInvariant:
    return "'invariant'";
  case TokenKind::KwIInvariant:
    return "'iinvariant'";
  case TokenKind::KwRInvariant:
    return "'rinvariant'";
  case TokenKind::KwDecreases:
    return "'decreases'";
  case TokenKind::KwDiverge:
    return "'diverge'";
  case TokenKind::KwCases:
    return "'cases'";
  case TokenKind::KwPreOrig:
    return "'pre_orig'";
  case TokenKind::KwPreRel:
    return "'pre_rel'";
  case TokenKind::KwPostOrig:
    return "'post_orig'";
  case TokenKind::KwPostRel:
    return "'post_rel'";
  case TokenKind::KwFrame:
    return "'frame'";
  case TokenKind::KwExists:
    return "'exists'";
  case TokenKind::KwLen:
    return "'len'";
  case TokenKind::KwStore:
    return "'store'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwProc:
    return "'proc'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwModifies:
    return "'modifies'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::ImpliesArrow:
    return "'==>'";
  case TokenKind::IffArrow:
    return "'<==>'";
  }
  return "token";
}

namespace {

const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"int", TokenKind::KwInt},
      {"array", TokenKind::KwArray},
      {"requires", TokenKind::KwRequires},
      {"ensures", TokenKind::KwEnsures},
      {"rrequires", TokenKind::KwRRequires},
      {"rensures", TokenKind::KwREnsures},
      {"skip", TokenKind::KwSkip},
      {"havoc", TokenKind::KwHavoc},
      {"relax", TokenKind::KwRelax},
      {"st", TokenKind::KwSt},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"assume", TokenKind::KwAssume},
      {"assert", TokenKind::KwAssert},
      {"relate", TokenKind::KwRelate},
      {"invariant", TokenKind::KwInvariant},
      {"iinvariant", TokenKind::KwIInvariant},
      {"rinvariant", TokenKind::KwRInvariant},
      {"decreases", TokenKind::KwDecreases},
      {"diverge", TokenKind::KwDiverge},
      {"cases", TokenKind::KwCases},
      {"pre_orig", TokenKind::KwPreOrig},
      {"pre_rel", TokenKind::KwPreRel},
      {"post_orig", TokenKind::KwPostOrig},
      {"post_rel", TokenKind::KwPostRel},
      {"frame", TokenKind::KwFrame},
      {"exists", TokenKind::KwExists},
      {"len", TokenKind::KwLen},
      {"store", TokenKind::KwStore},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"proc", TokenKind::KwProc},
      {"call", TokenKind::KwCall},
      {"modifies", TokenKind::KwModifies},
  };
  return Table;
}

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentCont(char C) {
  // The apostrophe admits freshened names (x'1): capture-avoiding
  // substitution alpha-renames binders with Interner::fresh, those names
  // reach generated VC formulas, and the shard tier's wire format prints
  // and re-parses exactly those formulas. Not an identifier *start*, so
  // program text cannot begin a name with one.
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '\'';
}

} // namespace

char Lexer::peek(size_t Ahead) const {
  std::string_view Buf = SM.buffer();
  return Pos + Ahead < Buf.size() ? Buf[Pos + Ahead] : '\0';
}

bool Lexer::atEnd() const { return Pos >= SM.buffer().size(); }

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      Pos += 2;
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (atEnd()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Start = Pos;
  SourceLoc Loc = loc();
  while (isIdentCont(peek()))
    ++Pos;
  std::string_view Text = SM.buffer().substr(Start, Pos - Start);

  const auto &Keywords = keywordTable();
  if (auto It = Keywords.find(Text); It != Keywords.end())
    return Token{It->second, Loc, Text, 0, VarTag::Plain};

  // Tagged identifier: `x<o>` / `x<r>` with no intervening whitespace.
  VarTag Tag = VarTag::Plain;
  if (peek() == '<' && (peek(1) == 'o' || peek(1) == 'r') && peek(2) == '>') {
    Tag = peek(1) == 'o' ? VarTag::Orig : VarTag::Rel;
    Pos += 3;
  }
  return Token{TokenKind::Identifier, Loc, Text, 0, Tag};
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  SourceLoc Loc = loc();
  while (std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;
  std::string_view Text = SM.buffer().substr(Start, Pos - Start);
  int64_t Value = 0;
  bool Overflow = false;
  for (char C : Text) {
    if (Value > (INT64_MAX - (C - '0')) / 10) {
      Overflow = true;
      break;
    }
    Value = Value * 10 + (C - '0');
  }
  if (Overflow)
    Diags.error(Loc, "integer literal too large");
  return Token{TokenKind::Integer, Loc, Text, Value, VarTag::Plain};
}

Token Lexer::lexToken() {
  skipTrivia();
  SourceLoc Loc = loc();
  if (atEnd())
    return Token{TokenKind::Eof, Loc, {}, 0, VarTag::Plain};

  char C = peek();
  if (isIdentStart(C))
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  auto Make = [&](TokenKind Kind, size_t Len) {
    std::string_view Text = SM.buffer().substr(Pos, Len);
    Pos += Len;
    return Token{Kind, Loc, Text, 0, VarTag::Plain};
  };

  switch (C) {
  case '(':
    return Make(TokenKind::LParen, 1);
  case ')':
    return Make(TokenKind::RParen, 1);
  case '{':
    return Make(TokenKind::LBrace, 1);
  case '}':
    return Make(TokenKind::RBrace, 1);
  case '[':
    return Make(TokenKind::LBracket, 1);
  case ']':
    return Make(TokenKind::RBracket, 1);
  case ';':
    return Make(TokenKind::Semi, 1);
  case ':':
    return Make(TokenKind::Colon, 1);
  case ',':
    return Make(TokenKind::Comma, 1);
  case '.':
    return Make(TokenKind::Dot, 1);
  case '+':
    return Make(TokenKind::Plus, 1);
  case '-':
    return Make(TokenKind::Minus, 1);
  case '*':
    return Make(TokenKind::Star, 1);
  case '/':
    return Make(TokenKind::Slash, 1);
  case '%':
    return Make(TokenKind::Percent, 1);
  case '!':
    if (peek(1) == '=')
      return Make(TokenKind::NotEq, 2);
    return Make(TokenKind::Bang, 1);
  case '&':
    if (peek(1) == '&')
      return Make(TokenKind::AmpAmp, 2);
    break;
  case '|':
    if (peek(1) == '|')
      return Make(TokenKind::PipePipe, 2);
    break;
  case '=':
    if (peek(1) == '=' && peek(2) == '>')
      return Make(TokenKind::ImpliesArrow, 3);
    if (peek(1) == '=')
      return Make(TokenKind::EqEq, 2);
    return Make(TokenKind::Assign, 1);
  case '<':
    if (peek(1) == '=' && peek(2) == '=' && peek(3) == '>')
      return Make(TokenKind::IffArrow, 4);
    if (peek(1) == '=')
      return Make(TokenKind::Le, 2);
    return Make(TokenKind::Lt, 1);
  case '>':
    if (peek(1) == '=')
      return Make(TokenKind::Ge, 2);
    return Make(TokenKind::Gt, 1);
  default:
    break;
  }

  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  ++Pos;
  return lexToken();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(lexToken());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
