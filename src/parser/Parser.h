//===- Parser.h - Recursive-descent parser for .rlx ---------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the `.rlx` surface syntax into an annotated Program:
///
/// \code
///   int x; array A;                       // declarations
///   requires (x >= 0);                    // optional contracts
///   rrequires (x<o> == x<r>);
///   {
///     relax (x) st (x >= 0);
///     while (x < 10)
///       invariant (x <= 10)
///       rinvariant (x<o> == x<r>)
///     { x = x + 1; }
///     relate l1 : x<o> == x<r>;
///   }
/// \endcode
///
/// The parser tracks declared variable kinds so array-valued and
/// integer-valued expressions parse unambiguously, and recovers at
/// statement boundaries so one file can report multiple diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_PARSER_PARSER_H
#define RELAXC_PARSER_PARSER_H

#include "ast/AstContext.h"
#include "parser/Lexer.h"

#include <memory>
#include <optional>
#include <unordered_map>

namespace relax {

/// Parses one source buffer into a Program.
class Parser {
public:
  Parser(AstContext &Ctx, const SourceManager &SM, DiagnosticEngine &Diags);

  /// Parses the whole buffer. Returns nullopt when any syntax error was
  /// reported (partial ASTs are discarded).
  std::optional<Program> parseProgram();

  /// Parses a standalone formula (used by tests and the driver's
  /// `--filter` option). Requires declarations via \p Kinds for array
  /// variables.
  const BoolExpr *
  parseStandaloneFormula(const std::unordered_map<Symbol, VarKind> &Kinds);

private:
  AstContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t Index = 0;

  // Declared variable kinds plus a scope stack for quantifier binders.
  std::unordered_map<Symbol, VarKind> DeclKinds;
  std::vector<std::pair<Symbol, VarKind>> BinderScopes;

  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &tok(size_t Ahead = 0) const;
  bool at(TokenKind Kind) const { return tok().is(Kind); }
  Token consume();
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind);
  void synchronizeToStmtBoundary();

  /// Resolves the kind of an identifier (binder scopes shadow decls).
  std::optional<VarKind> lookupKind(Symbol Name) const;

  //===--------------------------------------------------------------------===//
  // Grammar productions
  //===--------------------------------------------------------------------===//

  bool parseDecls(Program &P);
  bool parseProc(Program &P);
  bool parseProcSignatureAndBody(Program &P, Procedure &Proc);
  bool parseContractClauses(const BoolExpr *&Req, const BoolExpr *&Ens,
                            const BoolExpr *&RReq, const BoolExpr *&REns);
  bool parseContracts(Program &P);
  const Stmt *parseBlock();
  const Stmt *parseStmt();
  const Stmt *parseIf();
  const Stmt *parseWhile();
  const Stmt *parseHavocOrRelax(bool IsRelax);
  const DivergeAnnotation *parseDivergeClause();
  const BoolExpr *parseParenFormula();

  const BoolExpr *parseFormula();
  const BoolExpr *parseIff();
  const BoolExpr *parseImplies();
  const BoolExpr *parseOr();
  const BoolExpr *parseAnd();
  const BoolExpr *parseUnaryFormula();
  const BoolExpr *parseAtomFormula();

  const Expr *parseExpr();
  const Expr *parseTerm();
  const Expr *parseFactor();
  const ArrayExpr *parseArrayExpr();

  /// True when the next tokens begin an array-valued expression.
  bool atArrayExpr() const;
};

} // namespace relax

#endif // RELAXC_PARSER_PARSER_H
