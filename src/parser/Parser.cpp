//===- Parser.cpp - Recursive-descent parser for .rlx ------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <cassert>

using namespace relax;

Parser::Parser(AstContext &Ctx, const SourceManager &SM,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {
  Lexer Lex(SM, Diags);
  Tokens = Lex.lexAll();
}

//===----------------------------------------------------------------------===//
// Token plumbing
//===----------------------------------------------------------------------===//

const Token &Parser::tok(size_t Ahead) const {
  size_t I = Index + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof
  return Tokens[I];
}

Token Parser::consume() {
  Token T = tok();
  if (Index + 1 < Tokens.size())
    ++Index;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!at(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind) {
  if (accept(Kind))
    return true;
  Diags.error(tok().Loc, std::string("expected ") + tokenKindName(Kind) +
                             " but found " + tokenKindName(tok().Kind));
  return false;
}

void Parser::synchronizeToStmtBoundary() {
  while (!at(TokenKind::Eof) && !at(TokenKind::RBrace)) {
    if (accept(TokenKind::Semi))
      return;
    consume();
  }
}

std::optional<VarKind> Parser::lookupKind(Symbol Name) const {
  for (auto It = BinderScopes.rbegin(), E = BinderScopes.rend(); It != E; ++It)
    if (It->first == Name)
      return It->second;
  auto It = DeclKinds.find(Name);
  if (It == DeclKinds.end())
    return std::nullopt;
  return It->second;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::optional<Program> Parser::parseProgram() {
  Program P;
  if (!parseDecls(P))
    return std::nullopt;

  // Zero or more named procedure definitions.
  while (at(TokenKind::KwProc))
    if (!parseProc(P))
      return std::nullopt;

  if (at(TokenKind::Eof)) {
    // Pure-procedure module: the entry must have been `proc main()`.
    if (!P.entry()) {
      Diags.error(tok().Loc, "module has no entry: define 'proc main()' or "
                             "a trailing bare body");
      return std::nullopt;
    }
    if (Diags.hasErrors())
      return std::nullopt;
    return P;
  }

  // Trailing bare contracts + body: the implicit `main` of the legacy
  // single-body form (also allowed after named procedures).
  if (P.entry()) {
    Diags.error(tok().Loc, "module already defines 'proc main()'; a "
                           "trailing bare body is not allowed");
    return std::nullopt;
  }
  if (!parseContracts(P))
    return std::nullopt;
  const Stmt *Body = parseBlock();
  if (!at(TokenKind::Eof))
    Diags.error(tok().Loc, "trailing tokens after program body");
  if (!Body || Diags.hasErrors())
    return std::nullopt;
  P.setBody(Body);
  return P;
}

bool Parser::parseProc(Program &P) {
  assert(at(TokenKind::KwProc) && "caller checks");
  SourceLoc Loc = consume().Loc;
  if (!at(TokenKind::Identifier)) {
    Diags.error(tok().Loc, "expected procedure name after 'proc'");
    return false;
  }
  Token Name = consume();
  if (Name.Tag != VarTag::Plain) {
    Diags.error(Name.Loc, "procedure names are untagged");
    return false;
  }
  Symbol S = Ctx.sym(Name.Text);
  if (DeclKinds.count(S)) {
    Diags.error(Name.Loc, "procedure name '" + std::string(Name.Text) +
                              "' collides with a declared variable");
    return false;
  }
  Procedure *Proc = P.addProcedure(S, Loc);
  if (!Proc) {
    Diags.error(Name.Loc,
                "redefinition of procedure '" + std::string(Name.Text) + "'");
    return false;
  }
  if (Name.Text == "main")
    P.setEntryIndex(P.procedures().size() - 1);

  // Formal parameters: `(int a, int b)`; integer-valued only, visible in
  // the procedure's contracts and body.
  size_t ScopeDepth = BinderScopes.size();
  bool Ok = parseProcSignatureAndBody(P, *Proc);
  BinderScopes.resize(ScopeDepth); // params go out of scope
  return Ok;
}

bool Parser::parseProcSignatureAndBody(Program &P, Procedure &Proc) {
  if (!expect(TokenKind::LParen))
    return false;
  if (!at(TokenKind::RParen)) {
    do {
      if (at(TokenKind::KwArray)) {
        Diags.error(tok().Loc,
                    "array parameters are not supported; pass arrays "
                    "through module globals");
        return false;
      }
      if (!expect(TokenKind::KwInt))
        return false;
      if (!at(TokenKind::Identifier)) {
        Diags.error(tok().Loc, "expected parameter name");
        return false;
      }
      Token Param = consume();
      if (Param.Tag != VarTag::Plain) {
        Diags.error(Param.Loc, "parameter names are untagged");
        return false;
      }
      Symbol PS = Ctx.sym(Param.Text);
      if (DeclKinds.count(PS)) {
        Diags.error(Param.Loc, "parameter '" + std::string(Param.Text) +
                                   "' shadows a global variable");
        return false;
      }
      if (Proc.hasParam(PS)) {
        Diags.error(Param.Loc, "duplicate parameter '" +
                                   std::string(Param.Text) + "'");
        return false;
      }
      Proc.addParam(PS, Param.Loc);
      BinderScopes.emplace_back(PS, VarKind::Int);
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen))
    return false;

  // Optional `modifies (x, y)` frame over declared globals.
  if (accept(TokenKind::KwModifies)) {
    if (!expect(TokenKind::LParen))
      return false;
    std::vector<Symbol> Frame;
    if (!at(TokenKind::RParen)) {
      do {
        if (!at(TokenKind::Identifier)) {
          Diags.error(tok().Loc, "expected variable name in modifies clause");
          return false;
        }
        Token Var = consume();
        if (Var.Tag != VarTag::Plain) {
          Diags.error(Var.Loc, "modifies clauses use untagged names");
          return false;
        }
        Symbol VS = Ctx.sym(Var.Text);
        if (!DeclKinds.count(VS)) {
          Diags.error(Var.Loc, "modifies clause names undeclared variable '" +
                                   std::string(Var.Text) + "'");
          return false;
        }
        for (Symbol Seen : Frame)
          if (Seen == VS) {
            Diags.error(Var.Loc, "duplicate variable '" +
                                     std::string(Var.Text) +
                                     "' in modifies clause");
            return false;
          }
        Frame.push_back(VS);
      } while (accept(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen))
      return false;
    Proc.setModifiesClause(std::move(Frame));
  }

  const BoolExpr *Req = nullptr, *Ens = nullptr, *RReq = nullptr,
                 *REns = nullptr;
  if (!parseContractClauses(Req, Ens, RReq, REns))
    return false;
  if (Req)
    Proc.setRequires(Req);
  if (Ens)
    Proc.setEnsures(Ens);
  if (RReq)
    Proc.setRelRequires(RReq);
  if (REns)
    Proc.setRelEnsures(REns);

  const Stmt *Body = parseBlock();
  if (!Body)
    return false;
  Proc.setBody(Body);
  (void)P;
  return true;
}

bool Parser::parseDecls(Program &P) {
  while (at(TokenKind::KwInt) || at(TokenKind::KwArray)) {
    VarKind Kind =
        consume().Kind == TokenKind::KwInt ? VarKind::Int : VarKind::Array;
    do {
      if (!at(TokenKind::Identifier)) {
        Diags.error(tok().Loc, "expected variable name in declaration");
        return false;
      }
      Token Name = consume();
      if (Name.Tag != VarTag::Plain) {
        Diags.error(Name.Loc, "declarations use untagged names");
        return false;
      }
      Symbol S = Ctx.sym(Name.Text);
      if (!P.declare(S, Kind, Name.Loc)) {
        Diags.error(Name.Loc,
                    "redeclaration of '" + std::string(Name.Text) + "'");
        return false;
      }
      DeclKinds.emplace(S, Kind);
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::Semi))
      return false;
  }
  return true;
}

bool Parser::parseContractClauses(const BoolExpr *&Req, const BoolExpr *&Ens,
                                  const BoolExpr *&RReq,
                                  const BoolExpr *&REns) {
  for (;;) {
    TokenKind K = tok().Kind;
    if (K != TokenKind::KwRequires && K != TokenKind::KwEnsures &&
        K != TokenKind::KwRRequires && K != TokenKind::KwREnsures)
      return true;
    Token Kw = consume();
    const BoolExpr *F = parseParenFormula();
    if (!F || !expect(TokenKind::Semi))
      return false;
    switch (Kw.Kind) {
    case TokenKind::KwRequires:
      Req = F;
      break;
    case TokenKind::KwEnsures:
      Ens = F;
      break;
    case TokenKind::KwRRequires:
      RReq = F;
      break;
    case TokenKind::KwREnsures:
      REns = F;
      break;
    default:
      break;
    }
  }
}

bool Parser::parseContracts(Program &P) {
  const BoolExpr *Req = nullptr, *Ens = nullptr, *RReq = nullptr,
                 *REns = nullptr;
  if (!parseContractClauses(Req, Ens, RReq, REns))
    return false;
  if (Req)
    P.setRequires(Req);
  if (Ens)
    P.setEnsures(Ens);
  if (RReq)
    P.setRelRequires(RReq);
  if (REns)
    P.setRelEnsures(REns);
  return true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

const Stmt *Parser::parseBlock() {
  SourceLoc Loc = tok().Loc;
  if (!expect(TokenKind::LBrace))
    return nullptr;
  std::vector<const Stmt *> Stmts;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    if (const Stmt *S = parseStmt())
      Stmts.push_back(S);
    else
      synchronizeToStmtBoundary();
  }
  expect(TokenKind::RBrace);
  if (Stmts.empty())
    return Ctx.skip(Loc);
  return Ctx.seq(Stmts);
}

const Stmt *Parser::parseStmt() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::KwSkip: {
    consume();
    if (!expect(TokenKind::Semi))
      return nullptr;
    return Ctx.skip(Loc);
  }
  case TokenKind::KwHavoc:
    return parseHavocOrRelax(/*IsRelax=*/false);
  case TokenKind::KwRelax:
    return parseHavocOrRelax(/*IsRelax=*/true);
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwAssume: {
    consume();
    const BoolExpr *F = parseFormula();
    if (!F || !expect(TokenKind::Semi))
      return nullptr;
    return Ctx.assume(F, Loc);
  }
  case TokenKind::KwAssert: {
    consume();
    const BoolExpr *F = parseFormula();
    if (!F || !expect(TokenKind::Semi))
      return nullptr;
    return Ctx.assert_(F, Loc);
  }
  case TokenKind::KwRelate: {
    consume();
    if (!at(TokenKind::Identifier)) {
      Diags.error(tok().Loc, "expected label after 'relate'");
      return nullptr;
    }
    Token Label = consume();
    if (!expect(TokenKind::Colon))
      return nullptr;
    const BoolExpr *F = parseFormula();
    if (!F || !expect(TokenKind::Semi))
      return nullptr;
    return Ctx.relate(Ctx.sym(Label.Text), F, Loc);
  }
  case TokenKind::KwCall: {
    consume();
    if (!at(TokenKind::Identifier)) {
      Diags.error(tok().Loc, "expected procedure name after 'call'");
      return nullptr;
    }
    Token Name = consume();
    if (Name.Tag != VarTag::Plain) {
      Diags.error(Name.Loc, "procedure names are untagged");
      return nullptr;
    }
    Symbol Callee = Ctx.sym(Name.Text);
    if (!expect(TokenKind::LParen))
      return nullptr;
    std::vector<const Expr *> Args;
    if (!at(TokenKind::RParen)) {
      do {
        const Expr *Arg = parseExpr();
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      } while (accept(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen) || !expect(TokenKind::Semi))
      return nullptr;
    return Ctx.call(Callee, Args, Loc);
  }
  case TokenKind::Identifier: {
    Token Name = consume();
    if (Name.Tag != VarTag::Plain) {
      Diags.error(Name.Loc, "cannot assign to a tagged variable");
      return nullptr;
    }
    Symbol S = Ctx.sym(Name.Text);
    if (!lookupKind(S)) {
      Diags.error(Name.Loc,
                  "use of undeclared variable '" + std::string(Name.Text) +
                      "'");
      return nullptr;
    }
    if (accept(TokenKind::LBracket)) {
      const Expr *Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket) ||
          !expect(TokenKind::Assign))
        return nullptr;
      const Expr *Value = parseExpr();
      if (!Value || !expect(TokenKind::Semi))
        return nullptr;
      return Ctx.arrayAssign(S, Index, Value, Loc);
    }
    if (!expect(TokenKind::Assign))
      return nullptr;
    const Expr *Value = parseExpr();
    if (!Value || !expect(TokenKind::Semi))
      return nullptr;
    return Ctx.assign(S, Value, Loc);
  }
  default:
    Diags.error(Loc, std::string("expected a statement but found ") +
                         tokenKindName(tok().Kind));
    return nullptr;
  }
}

const Stmt *Parser::parseHavocOrRelax(bool IsRelax) {
  SourceLoc Loc = consume().Loc;
  if (!expect(TokenKind::LParen))
    return nullptr;
  std::vector<Symbol> Vars;
  do {
    if (!at(TokenKind::Identifier)) {
      Diags.error(tok().Loc, "expected variable name");
      return nullptr;
    }
    Token Name = consume();
    if (Name.Tag != VarTag::Plain) {
      Diags.error(Name.Loc, "modified variables are untagged");
      return nullptr;
    }
    Vars.push_back(Ctx.sym(Name.Text));
  } while (accept(TokenKind::Comma));
  if (!expect(TokenKind::RParen) || !expect(TokenKind::KwSt))
    return nullptr;
  const BoolExpr *Pred = parseParenFormula();
  if (!Pred || !expect(TokenKind::Semi))
    return nullptr;
  return IsRelax ? Ctx.relax(Vars, Pred, Loc) : Ctx.havoc(Vars, Pred, Loc);
}

const BoolExpr *Parser::parseParenFormula() {
  if (!expect(TokenKind::LParen))
    return nullptr;
  const BoolExpr *F = parseFormula();
  if (!F)
    return nullptr;
  if (!expect(TokenKind::RParen))
    return nullptr;
  return F;
}

const DivergeAnnotation *Parser::parseDivergeClause() {
  assert(at(TokenKind::KwDiverge) && "caller checks");
  consume();
  DivergeAnnotation A;
  if (accept(TokenKind::KwCases))
    A.CaseAnalysis = true;
  for (;;) {
    const BoolExpr **Slot = nullptr;
    switch (tok().Kind) {
    case TokenKind::KwPreOrig:
      Slot = &A.PreOrig;
      break;
    case TokenKind::KwPreRel:
      Slot = &A.PreRel;
      break;
    case TokenKind::KwPostOrig:
      Slot = &A.PostOrig;
      break;
    case TokenKind::KwPostRel:
      Slot = &A.PostRel;
      break;
    case TokenKind::KwFrame:
      Slot = &A.Frame;
      break;
    default:
      return Ctx.divergeAnnotation(A);
    }
    Token Kw = consume();
    if (*Slot) {
      Diags.error(Kw.Loc, std::string("duplicate ") + tokenKindName(Kw.Kind) +
                              " clause");
      return nullptr;
    }
    const BoolExpr *F = parseParenFormula();
    if (!F)
      return nullptr;
    *Slot = F;
  }
}

const Stmt *Parser::parseIf() {
  SourceLoc Loc = consume().Loc;
  const BoolExpr *Cond = parseParenFormula();
  if (!Cond)
    return nullptr;
  const DivergeAnnotation *Diverge = nullptr;
  if (at(TokenKind::KwDiverge)) {
    Diverge = parseDivergeClause();
    if (!Diverge)
      return nullptr;
  }
  const Stmt *Then = parseBlock();
  if (!Then)
    return nullptr;
  const Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse)) {
    Else = parseBlock();
    if (!Else)
      return nullptr;
  }
  return Ctx.ifStmt(Cond, Then, Else, Diverge, Loc);
}

const Stmt *Parser::parseWhile() {
  SourceLoc Loc = consume().Loc;
  const BoolExpr *Cond = parseParenFormula();
  if (!Cond)
    return nullptr;
  LoopAnnotations Ann;
  const DivergeAnnotation *Diverge = nullptr;
  for (;;) {
    const BoolExpr **Slot = nullptr;
    const char *Name = nullptr;
    switch (tok().Kind) {
    case TokenKind::KwInvariant:
      Slot = &Ann.Invariant;
      Name = "invariant";
      break;
    case TokenKind::KwIInvariant:
      Slot = &Ann.IntermediateInvariant;
      Name = "iinvariant";
      break;
    case TokenKind::KwRInvariant:
      Slot = &Ann.RelInvariant;
      Name = "rinvariant";
      break;
    case TokenKind::KwDecreases: {
      Token Kw = consume();
      if (Ann.Variant) {
        Diags.error(Kw.Loc, "duplicate decreases clause");
        return nullptr;
      }
      if (!expect(TokenKind::LParen))
        return nullptr;
      const Expr *E = parseExpr();
      if (!E || !expect(TokenKind::RParen))
        return nullptr;
      Ann.Variant = E;
      continue;
    }
    case TokenKind::KwDiverge: {
      if (Diverge) {
        Diags.error(tok().Loc, "duplicate diverge clause");
        return nullptr;
      }
      Diverge = parseDivergeClause();
      if (!Diverge)
        return nullptr;
      continue;
    }
    default:
      Slot = nullptr;
      break;
    }
    if (!Slot)
      break;
    Token Kw = consume();
    if (*Slot) {
      Diags.error(Kw.Loc, std::string("duplicate ") + Name + " clause");
      return nullptr;
    }
    const BoolExpr *F = parseParenFormula();
    if (!F)
      return nullptr;
    *Slot = F;
  }
  const Stmt *Body = parseBlock();
  if (!Body)
    return nullptr;
  return Ctx.whileStmt(Cond, Body, Ann, Diverge, Loc);
}

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

const BoolExpr *Parser::parseFormula() { return parseIff(); }

const BoolExpr *Parser::parseIff() {
  const BoolExpr *L = parseImplies();
  if (!L)
    return nullptr;
  while (at(TokenKind::IffArrow)) {
    SourceLoc Loc = consume().Loc;
    const BoolExpr *R = parseImplies();
    if (!R)
      return nullptr;
    L = Ctx.logical(LogicalOp::Iff, L, R, Loc);
  }
  return L;
}

const BoolExpr *Parser::parseImplies() {
  const BoolExpr *L = parseOr();
  if (!L)
    return nullptr;
  if (at(TokenKind::ImpliesArrow)) {
    SourceLoc Loc = consume().Loc;
    const BoolExpr *R = parseImplies(); // right-associative
    if (!R)
      return nullptr;
    return Ctx.logical(LogicalOp::Implies, L, R, Loc);
  }
  return L;
}

const BoolExpr *Parser::parseOr() {
  const BoolExpr *L = parseAnd();
  if (!L)
    return nullptr;
  while (at(TokenKind::PipePipe)) {
    SourceLoc Loc = consume().Loc;
    const BoolExpr *R = parseAnd();
    if (!R)
      return nullptr;
    L = Ctx.logical(LogicalOp::Or, L, R, Loc);
  }
  return L;
}

const BoolExpr *Parser::parseAnd() {
  const BoolExpr *L = parseUnaryFormula();
  if (!L)
    return nullptr;
  while (at(TokenKind::AmpAmp)) {
    SourceLoc Loc = consume().Loc;
    const BoolExpr *R = parseUnaryFormula();
    if (!R)
      return nullptr;
    L = Ctx.logical(LogicalOp::And, L, R, Loc);
  }
  return L;
}

const BoolExpr *Parser::parseUnaryFormula() {
  if (at(TokenKind::Bang)) {
    SourceLoc Loc = consume().Loc;
    const BoolExpr *Sub = parseUnaryFormula();
    if (!Sub)
      return nullptr;
    return Ctx.notExpr(Sub, Loc);
  }
  if (at(TokenKind::KwExists)) {
    SourceLoc Loc = consume().Loc;
    VarKind Kind = accept(TokenKind::KwArray) ? VarKind::Array : VarKind::Int;
    if (!at(TokenKind::Identifier)) {
      Diags.error(tok().Loc, "expected bound variable after 'exists'");
      return nullptr;
    }
    Token Name = consume();
    Symbol S = Ctx.sym(Name.Text);
    if (!expect(TokenKind::Dot))
      return nullptr;
    BinderScopes.emplace_back(S, Kind);
    const BoolExpr *Body = parseFormula();
    BinderScopes.pop_back();
    if (!Body)
      return nullptr;
    return Ctx.exists(S, Name.Tag, Kind, Body, Loc);
  }
  return parseAtomFormula();
}

bool Parser::atArrayExpr() const {
  if (at(TokenKind::KwStore)) {
    // `store(...)` is array-valued, but `store(...)[i]` is an element
    // read — an integer expression. Scan over the balanced parentheses
    // to see which shape this is. Generated VCs print element reads
    // over stores (assignment substitution builds them), so the wire
    // serialization of obligations depends on both shapes parsing back.
    if (!tok(1).is(TokenKind::LParen))
      return true; // malformed; let parseArrayExpr diagnose it
    size_t Ahead = 2;
    unsigned Depth = 1;
    while (Depth != 0 && !tok(Ahead).is(TokenKind::Eof)) {
      if (tok(Ahead).is(TokenKind::LParen))
        ++Depth;
      else if (tok(Ahead).is(TokenKind::RParen))
        --Depth;
      ++Ahead;
    }
    return !tok(Ahead).is(TokenKind::LBracket);
  }
  if (!at(TokenKind::Identifier))
    return false;
  // An identifier of array kind NOT followed by '[' is an array value;
  // with '[' it is an element read (an integer expression).
  if (tok(1).is(TokenKind::LBracket))
    return false;
  Symbol S;
  // lookupKind needs a Symbol; interning in a const method is fine because
  // the interner is owned by the non-const context — do a read-only scan.
  // (The token text was produced by the lexer from source, so interning it
  // cannot alias a binder unexpectedly.)
  Parser *Self = const_cast<Parser *>(this);
  S = Self->Ctx.sym(tok().Text);
  auto Kind = lookupKind(S);
  return Kind && *Kind == VarKind::Array;
}

const BoolExpr *Parser::parseAtomFormula() {
  SourceLoc Loc = tok().Loc;
  if (accept(TokenKind::KwTrue))
    return Ctx.boolLit(true, Loc);
  if (accept(TokenKind::KwFalse))
    return Ctx.boolLit(false, Loc);

  // Array comparison: arrayexpr (== | !=) arrayexpr.
  if (atArrayExpr()) {
    const ArrayExpr *L = parseArrayExpr();
    if (!L)
      return nullptr;
    bool Equal;
    if (accept(TokenKind::EqEq))
      Equal = true;
    else if (accept(TokenKind::NotEq))
      Equal = false;
    else {
      Diags.error(tok().Loc, "expected '==' or '!=' after array expression");
      return nullptr;
    }
    const ArrayExpr *R = parseArrayExpr();
    if (!R)
      return nullptr;
    return Ctx.arrayCmp(Equal, L, R, Loc);
  }

  // Speculative parse: integer comparison first; fall back to a
  // parenthesized formula.
  size_t SavedIndex = Index;
  size_t SavedDiags = Diags.checkpoint();
  if (const Expr *L = parseExpr()) {
    CmpOp Op;
    bool HaveOp = true;
    switch (tok().Kind) {
    case TokenKind::Lt:
      Op = CmpOp::Lt;
      break;
    case TokenKind::Le:
      Op = CmpOp::Le;
      break;
    case TokenKind::Gt:
      Op = CmpOp::Gt;
      break;
    case TokenKind::Ge:
      Op = CmpOp::Ge;
      break;
    case TokenKind::EqEq:
      Op = CmpOp::Eq;
      break;
    case TokenKind::NotEq:
      Op = CmpOp::Ne;
      break;
    default:
      HaveOp = false;
      break;
    }
    if (HaveOp) {
      SourceLoc OpLoc = consume().Loc;
      const Expr *R = parseExpr();
      if (!R)
        return nullptr;
      return Ctx.cmp(Op, L, R, OpLoc);
    }
  }

  // Rewind; when the atom starts with '(', retry as a parenthesized
  // formula, discarding the speculative diagnostics. Otherwise keep the
  // speculative diagnostics (they are more precise than a generic error).
  Index = SavedIndex;
  if (at(TokenKind::LParen)) {
    Diags.rollback(SavedDiags);
    consume();
    const BoolExpr *F = parseFormula();
    if (!F)
      return nullptr;
    if (!expect(TokenKind::RParen))
      return nullptr;
    return F;
  }
  if (Diags.checkpoint() == SavedDiags)
    Diags.error(Loc, "expected a comparison operator after the integer "
                     "expression");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Integer and array expressions
//===----------------------------------------------------------------------===//

const Expr *Parser::parseExpr() {
  const Expr *L = parseTerm();
  if (!L)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    if (at(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (at(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return L;
    SourceLoc Loc = consume().Loc;
    const Expr *R = parseTerm();
    if (!R)
      return nullptr;
    L = Ctx.binary(Op, L, R, Loc);
  }
}

const Expr *Parser::parseTerm() {
  const Expr *L = parseFactor();
  if (!L)
    return nullptr;
  for (;;) {
    BinaryOp Op;
    if (at(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (at(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (at(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return L;
    SourceLoc Loc = consume().Loc;
    const Expr *R = parseFactor();
    if (!R)
      return nullptr;
    L = Ctx.binary(Op, L, R, Loc);
  }
}

const Expr *Parser::parseFactor() {
  SourceLoc Loc = tok().Loc;
  if (at(TokenKind::Integer))
    return Ctx.intLit(consume().IntValue, Loc);
  if (accept(TokenKind::Minus)) {
    const Expr *Sub = parseFactor();
    if (!Sub)
      return nullptr;
    return Ctx.binary(BinaryOp::Sub, Ctx.intLit(0, Loc), Sub, Loc);
  }
  if (accept(TokenKind::KwLen)) {
    if (!expect(TokenKind::LParen))
      return nullptr;
    const ArrayExpr *A = parseArrayExpr();
    if (!A || !expect(TokenKind::RParen))
      return nullptr;
    return Ctx.arrayLen(A, Loc);
  }
  if (at(TokenKind::KwStore)) {
    // An array-valued `store(...)` in integer position must be an
    // element read: store(a, i, v)[e].
    const ArrayExpr *Base = parseArrayExpr();
    if (!Base)
      return nullptr;
    if (!expect(TokenKind::LBracket))
      return nullptr;
    const Expr *Index = parseExpr();
    if (!Index || !expect(TokenKind::RBracket))
      return nullptr;
    return Ctx.arrayRead(Base, Index, Loc);
  }
  if (at(TokenKind::Identifier)) {
    Token Name = consume();
    Symbol S = Ctx.sym(Name.Text);
    auto Kind = lookupKind(S);
    if (!Kind) {
      Diags.error(Name.Loc, "use of undeclared variable '" +
                                std::string(Name.Text) + "'");
      return nullptr;
    }
    if (*Kind == VarKind::Array) {
      const ArrayExpr *Base = Ctx.arrayRef(S, Name.Tag, Name.Loc);
      if (!expect(TokenKind::LBracket))
        return nullptr;
      const Expr *Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket))
        return nullptr;
      return Ctx.arrayRead(Base, Index, Loc);
    }
    if (at(TokenKind::LBracket)) {
      Diags.error(tok().Loc,
                  "'" + std::string(Name.Text) + "' is not an array");
      return nullptr;
    }
    return Ctx.var(S, Name.Tag, Name.Loc);
  }
  if (accept(TokenKind::LParen)) {
    const Expr *E = parseExpr();
    if (!E || !expect(TokenKind::RParen))
      return nullptr;
    return E;
  }
  Diags.error(Loc, std::string("expected an integer expression but found ") +
                       tokenKindName(tok().Kind));
  return nullptr;
}

const ArrayExpr *Parser::parseArrayExpr() {
  SourceLoc Loc = tok().Loc;
  if (accept(TokenKind::KwStore)) {
    if (!expect(TokenKind::LParen))
      return nullptr;
    const ArrayExpr *Base = parseArrayExpr();
    if (!Base || !expect(TokenKind::Comma))
      return nullptr;
    const Expr *Index = parseExpr();
    if (!Index || !expect(TokenKind::Comma))
      return nullptr;
    const Expr *Value = parseExpr();
    if (!Value || !expect(TokenKind::RParen))
      return nullptr;
    return Ctx.arrayStore(Base, Index, Value, Loc);
  }
  if (!at(TokenKind::Identifier)) {
    Diags.error(Loc, "expected an array expression");
    return nullptr;
  }
  Token Name = consume();
  Symbol S = Ctx.sym(Name.Text);
  auto Kind = lookupKind(S);
  if (!Kind || *Kind != VarKind::Array) {
    Diags.error(Name.Loc,
                "'" + std::string(Name.Text) + "' is not an array");
    return nullptr;
  }
  return Ctx.arrayRef(S, Name.Tag, Loc);
}

//===----------------------------------------------------------------------===//
// Standalone formulas
//===----------------------------------------------------------------------===//

const BoolExpr *Parser::parseStandaloneFormula(
    const std::unordered_map<Symbol, VarKind> &Kinds) {
  DeclKinds = Kinds;
  const BoolExpr *F = parseFormula();
  if (F && !at(TokenKind::Eof)) {
    Diags.error(tok().Loc, "trailing tokens after formula");
    return nullptr;
  }
  return F;
}
