//===- Sema.cpp - Well-formedness analysis -----------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "support/Casting.h"

using namespace relax;

//===----------------------------------------------------------------------===//
// Free analyses
//===----------------------------------------------------------------------===//

bool relax::containsRelate(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Relate:
    return true;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return containsRelate(I->thenStmt()) || containsRelate(I->elseStmt());
  }
  case Stmt::Kind::While:
    return containsRelate(cast<WhileStmt>(S)->body());
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    return containsRelate(Q->first()) || containsRelate(Q->second());
  }
  default:
    return false;
  }
}

bool relax::containsLoop(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::While:
    return true;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return containsLoop(I->thenStmt()) || containsLoop(I->elseStmt());
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    return containsLoop(Q->first()) || containsLoop(Q->second());
  }
  default:
    return false;
  }
}

namespace {

void collectModified(const Stmt *S, const Program &P, VarRefSet &Out) {
  switch (S->kind()) {
  case Stmt::Kind::Assign:
    Out.insert(VarRef{cast<AssignStmt>(S)->var(), VarTag::Plain,
                      VarKind::Int});
    return;
  case Stmt::Kind::ArrayAssign:
    Out.insert(VarRef{cast<ArrayAssignStmt>(S)->array(), VarTag::Plain,
                      VarKind::Array});
    return;
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *C = cast<ChoiceStmtBase>(S);
    for (size_t I = 0, E = C->varCount(); I != E; ++I) {
      VarKind Kind = P.kindOf(C->var(I)).value_or(VarKind::Int);
      Out.insert(VarRef{C->var(I), VarTag::Plain, Kind});
    }
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    collectModified(I->thenStmt(), P, Out);
    collectModified(I->elseStmt(), P, Out);
    return;
  }
  case Stmt::Kind::While:
    collectModified(cast<WhileStmt>(S)->body(), P, Out);
    return;
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    collectModified(Q->first(), P, Out);
    collectModified(Q->second(), P, Out);
    return;
  }
  case Stmt::Kind::Skip:
  case Stmt::Kind::Assume:
  case Stmt::Kind::Assert:
  case Stmt::Kind::Relate:
    return;
  }
}

} // namespace

VarRefSet relax::modifiedVars(const Stmt *S, const Program &P) {
  VarRefSet Out;
  collectModified(S, P, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Sema proper
//===----------------------------------------------------------------------===//

void Sema::checkVarsDeclared(const Expr *E,
                             const std::vector<VarRef> &BoundVars) {
  VarRefSet Free;
  collectFreeVars(E, Free);
  for (const VarRef &V : Free) {
    bool Bound = false;
    for (const VarRef &B : BoundVars)
      Bound |= B.Name == V.Name && B.Tag == V.Tag && B.Kind == V.Kind;
    if (Bound)
      continue;
    auto Kind = Prog.kindOf(V.Name);
    if (!Kind)
      Diags.error(E->loc(), "use of undeclared variable");
    else if (*Kind != V.Kind)
      Diags.error(E->loc(), "variable used with the wrong kind");
  }
}

void Sema::checkVarsDeclared(const ArrayExpr *A,
                             const std::vector<VarRef> &BoundVars) {
  VarRefSet Free;
  collectFreeVars(A, Free);
  for (const VarRef &V : Free) {
    bool Bound = false;
    for (const VarRef &B : BoundVars)
      Bound |= B.Name == V.Name && B.Tag == V.Tag && B.Kind == V.Kind;
    if (Bound)
      continue;
    auto Kind = Prog.kindOf(V.Name);
    if (!Kind)
      Diags.error(A->loc(), "use of undeclared variable");
    else if (*Kind != V.Kind)
      Diags.error(A->loc(), "variable used with the wrong kind");
  }
}

void Sema::checkVarsDeclared(const BoolExpr *B,
                             std::vector<VarRef> &BoundVars) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    checkVarsDeclared(C->lhs(), BoundVars);
    checkVarsDeclared(C->rhs(), BoundVars);
    return;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    checkVarsDeclared(C->lhs(), BoundVars);
    checkVarsDeclared(C->rhs(), BoundVars);
    return;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    checkVarsDeclared(L->lhs(), BoundVars);
    checkVarsDeclared(L->rhs(), BoundVars);
    return;
  }
  case BoolExpr::Kind::Not:
    checkVarsDeclared(cast<NotExpr>(B)->sub(), BoundVars);
    return;
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    BoundVars.push_back(VarRef{E->var(), E->tag(), E->varKind()});
    checkVarsDeclared(E->body(), BoundVars);
    BoundVars.pop_back();
    return;
  }
  }
}

void Sema::requireProgramBool(const BoolExpr *B, const char *What) {
  if (!isQuantifierFree(B))
    Diags.error(B->loc(),
                std::string(What) + " must not contain quantifiers");
  if (!isUnary(B))
    Diags.error(B->loc(), std::string(What) +
                              " must not reference <o>/<r> tagged variables");
  std::vector<VarRef> Bound;
  checkVarsDeclared(B, Bound);
}

void Sema::requireUnaryFormula(const BoolExpr *B, const char *What) {
  if (!isUnary(B))
    Diags.error(B->loc(), std::string(What) +
                              " must not reference <o>/<r> tagged variables");
  std::vector<VarRef> Bound;
  checkVarsDeclared(B, Bound);
}

void Sema::requireRelationalFormula(const BoolExpr *B, const char *What) {
  if (!isRelational(B))
    Diags.error(B->loc(),
                std::string(What) +
                    " is a relational formula: every variable must carry an "
                    "<o> or <r> tag");
  std::vector<VarRef> Bound;
  checkVarsDeclared(B, Bound);
}

void Sema::checkStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    auto Kind = Prog.kindOf(A->var());
    if (!Kind)
      Diags.error(S->loc(), "assignment to undeclared variable");
    else if (*Kind != VarKind::Int)
      Diags.error(S->loc(), "cannot assign an integer to an array variable");
    // The right-hand side is a program expression: Plain variables only.
    VarRefSet Free = freeVars(A->value());
    for (const VarRef &V : Free)
      if (V.Tag != VarTag::Plain)
        Diags.error(S->loc(),
                    "program expressions must not reference tagged variables");
    std::vector<VarRef> Bound;
    checkVarsDeclared(A->value(), Bound);
    return;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    auto Kind = Prog.kindOf(A->array());
    if (!Kind)
      Diags.error(S->loc(), "assignment to undeclared array");
    else if (*Kind != VarKind::Array)
      Diags.error(S->loc(), "indexed assignment requires an array variable");
    std::vector<VarRef> Bound;
    checkVarsDeclared(A->index(), Bound);
    checkVarsDeclared(A->value(), Bound);
    for (const Expr *E : {A->index(), A->value()})
      for (const VarRef &V : freeVars(E))
        if (V.Tag != VarTag::Plain)
          Diags.error(S->loc(), "program expressions must not reference "
                                "tagged variables");
    return;
  }
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *C = cast<ChoiceStmtBase>(S);
    const char *Name = S->kind() == Stmt::Kind::Havoc ? "havoc" : "relax";
    for (size_t I = 0, E = C->varCount(); I != E; ++I)
      if (!Prog.kindOf(C->var(I)))
        Diags.error(S->loc(), std::string(Name) +
                                  " of undeclared variable");
    requireProgramBool(C->pred(), S->kind() == Stmt::Kind::Havoc
                                      ? "a havoc predicate"
                                      : "a relax predicate");
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    requireProgramBool(I->cond(), "a branch condition");
    if (const DivergeAnnotation *D = I->diverge()) {
      if (containsRelate(I->thenStmt()) || containsRelate(I->elseStmt()))
        Diags.error(S->loc(),
                    "a diverge-annotated statement must not contain relate "
                    "statements (no_rel side condition)");
      if (D->CaseAnalysis) {
        if (D->PreOrig || D->PreRel || D->PostOrig || D->PostRel || D->Frame)
          Diags.error(S->loc(),
                      "'diverge cases' takes no pre/post/frame annotations");
        if (containsLoop(I->thenStmt()) || containsLoop(I->elseStmt()))
          Diags.error(S->loc(),
                      "'diverge cases' requires loop-free branches");
      }
      if (D->PreOrig)
        requireUnaryFormula(D->PreOrig, "a diverge pre_orig annotation");
      if (D->PreRel)
        requireUnaryFormula(D->PreRel, "a diverge pre_rel annotation");
      if (D->PostOrig)
        requireUnaryFormula(D->PostOrig, "a diverge post_orig annotation");
      if (D->PostRel)
        requireUnaryFormula(D->PostRel, "a diverge post_rel annotation");
      if (D->Frame)
        requireRelationalFormula(D->Frame, "a diverge frame");
    }
    checkStmt(I->thenStmt());
    checkStmt(I->elseStmt());
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    requireProgramBool(W->cond(), "a loop condition");
    const LoopAnnotations *Ann = W->annotations();
    if (Ann->Invariant)
      requireUnaryFormula(Ann->Invariant, "a loop invariant");
    if (Ann->IntermediateInvariant)
      requireUnaryFormula(Ann->IntermediateInvariant,
                          "an intermediate loop invariant");
    if (Ann->RelInvariant)
      requireRelationalFormula(Ann->RelInvariant,
                               "a relational loop invariant");
    if (Ann->Variant) {
      for (const VarRef &V : freeVars(Ann->Variant))
        if (V.Tag != VarTag::Plain)
          Diags.error(S->loc(), "a decreases clause must not reference "
                                "<o>/<r> tagged variables");
      std::vector<VarRef> Bound;
      checkVarsDeclared(Ann->Variant, Bound);
    }
    if (const DivergeAnnotation *D = W->diverge()) {
      if (containsRelate(W->body()))
        Diags.error(S->loc(),
                    "a diverge-annotated statement must not contain relate "
                    "statements (no_rel side condition)");
      if (D->CaseAnalysis)
        Diags.error(S->loc(),
                    "'diverge cases' applies only to if statements; annotate "
                    "the loop with pre/post/frame clauses instead");
      if (D->PreOrig)
        requireUnaryFormula(D->PreOrig, "a diverge pre_orig annotation");
      if (D->PreRel)
        requireUnaryFormula(D->PreRel, "a diverge pre_rel annotation");
      if (D->PostOrig)
        requireUnaryFormula(D->PostOrig, "a diverge post_orig annotation");
      if (D->PostRel)
        requireUnaryFormula(D->PostRel, "a diverge post_rel annotation");
      if (D->Frame)
        requireRelationalFormula(D->Frame, "a diverge frame");
    }
    checkStmt(W->body());
    return;
  }
  case Stmt::Kind::Assume:
    requireProgramBool(cast<AssumeStmt>(S)->pred(), "an assume predicate");
    return;
  case Stmt::Kind::Assert:
    requireProgramBool(cast<AssertStmt>(S)->pred(), "an assert predicate");
    return;
  case Stmt::Kind::Relate: {
    const auto *R = cast<RelateStmt>(S);
    if (!isQuantifierFree(R->pred()))
      Diags.error(S->loc(), "a relate predicate must not contain quantifiers");
    requireRelationalFormula(R->pred(), "a relate predicate");
    if (Info.RelateMap.count(R->label()))
      Diags.error(S->loc(), "duplicate relate label (labels must be unique "
                            "for observational compatibility)");
    else {
      Info.RelateMap.emplace(R->label(), R->pred());
      Info.RelateLabels.push_back(R->label());
    }
    return;
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    checkStmt(Q->first());
    checkStmt(Q->second());
    return;
  }
  }
}

std::optional<SemaInfo> Sema::run() {
  if (!Prog.body()) {
    Diags.error(SourceLoc(), "program has no body");
    return std::nullopt;
  }

  if (Prog.requiresClause())
    requireUnaryFormula(Prog.requiresClause(), "a requires clause");
  if (Prog.ensuresClause())
    requireUnaryFormula(Prog.ensuresClause(), "an ensures clause");
  if (Prog.relRequiresClause())
    requireRelationalFormula(Prog.relRequiresClause(), "a rrequires clause");
  if (Prog.relEnsuresClause())
    requireRelationalFormula(Prog.relEnsuresClause(), "a rensures clause");

  checkStmt(Prog.body());

  if (Diags.hasErrors())
    return std::nullopt;
  return std::move(Info);
}
