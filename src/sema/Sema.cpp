//===- Sema.cpp - Well-formedness analysis -----------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "support/Casting.h"

using namespace relax;

//===----------------------------------------------------------------------===//
// Free analyses
//===----------------------------------------------------------------------===//

namespace {

// The interprocedural traversals guard against call cycles with a visited
// set so they terminate even on recursive modules (which Sema rejects
// separately); a revisited procedure conservatively contributes nothing.

bool containsRelateImpl(const Stmt *S, const Program *P,
                        std::unordered_set<const Procedure *> &Visited) {
  switch (S->kind()) {
  case Stmt::Kind::Relate:
    return true;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return containsRelateImpl(I->thenStmt(), P, Visited) ||
           containsRelateImpl(I->elseStmt(), P, Visited);
  }
  case Stmt::Kind::While:
    return containsRelateImpl(cast<WhileStmt>(S)->body(), P, Visited);
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    return containsRelateImpl(Q->first(), P, Visited) ||
           containsRelateImpl(Q->second(), P, Visited);
  }
  case Stmt::Kind::Call:
    if (P)
      if (const Procedure *Callee = P->procedure(cast<CallStmt>(S)->callee()))
        if (Callee->body() && Visited.insert(Callee).second)
          return containsRelateImpl(Callee->body(), P, Visited);
    return false;
  default:
    return false;
  }
}

bool containsLoopImpl(const Stmt *S, const Program *P,
                      std::unordered_set<const Procedure *> &Visited) {
  switch (S->kind()) {
  case Stmt::Kind::While:
    return true;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return containsLoopImpl(I->thenStmt(), P, Visited) ||
           containsLoopImpl(I->elseStmt(), P, Visited);
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    return containsLoopImpl(Q->first(), P, Visited) ||
           containsLoopImpl(Q->second(), P, Visited);
  }
  case Stmt::Kind::Call:
    if (P)
      if (const Procedure *Callee = P->procedure(cast<CallStmt>(S)->callee()))
        if (Callee->body() && Visited.insert(Callee).second)
          return containsLoopImpl(Callee->body(), P, Visited);
    return false;
  default:
    return false;
  }
}

/// True when \p S syntactically contains a `call` (not through callees).
bool containsCall(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Call:
    return true;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return containsCall(I->thenStmt()) || containsCall(I->elseStmt());
  }
  case Stmt::Kind::While:
    return containsCall(cast<WhileStmt>(S)->body());
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    return containsCall(Q->first()) || containsCall(Q->second());
  }
  default:
    return false;
  }
}

void collectModified(const Stmt *S, const Program &P,
                     std::unordered_set<const Procedure *> &Visited,
                     VarRefSet &Out) {
  switch (S->kind()) {
  case Stmt::Kind::Assign:
    Out.insert(VarRef{cast<AssignStmt>(S)->var(), VarTag::Plain,
                      VarKind::Int});
    return;
  case Stmt::Kind::ArrayAssign:
    Out.insert(VarRef{cast<ArrayAssignStmt>(S)->array(), VarTag::Plain,
                      VarKind::Array});
    return;
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *C = cast<ChoiceStmtBase>(S);
    for (size_t I = 0, E = C->varCount(); I != E; ++I) {
      VarKind Kind = P.kindOf(C->var(I)).value_or(VarKind::Int);
      Out.insert(VarRef{C->var(I), VarTag::Plain, Kind});
    }
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    collectModified(I->thenStmt(), P, Visited, Out);
    collectModified(I->elseStmt(), P, Visited, Out);
    return;
  }
  case Stmt::Kind::While:
    collectModified(cast<WhileStmt>(S)->body(), P, Visited, Out);
    return;
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    collectModified(Q->first(), P, Visited, Out);
    collectModified(Q->second(), P, Visited, Out);
    return;
  }
  case Stmt::Kind::Call: {
    // A call modifies the callee's effective frame: the explicit
    // `modifies` clause when one was written (a checked superset of the
    // body's effects, so sound here), otherwise the body's transitive
    // modifications. Matching the havoc set of the call summary keeps
    // auto-computed diverge frames consistent with summary instantiation.
    const Procedure *Callee = P.procedure(cast<CallStmt>(S)->callee());
    if (!Callee)
      return;
    if (Callee->hasModifiesClause()) {
      for (Symbol M : Callee->modifiesClause())
        Out.insert(
            VarRef{M, VarTag::Plain, P.kindOf(M).value_or(VarKind::Int)});
      return;
    }
    if (Callee->body() && Visited.insert(Callee).second)
      collectModified(Callee->body(), P, Visited, Out);
    return;
  }
  case Stmt::Kind::Skip:
  case Stmt::Kind::Assume:
  case Stmt::Kind::Assert:
  case Stmt::Kind::Relate:
    return;
  }
}

} // namespace

bool relax::containsRelate(const Stmt *S) {
  std::unordered_set<const Procedure *> Visited;
  return containsRelateImpl(S, nullptr, Visited);
}

bool relax::containsRelate(const Stmt *S, const Program &P) {
  std::unordered_set<const Procedure *> Visited;
  return containsRelateImpl(S, &P, Visited);
}

bool relax::containsLoop(const Stmt *S) {
  std::unordered_set<const Procedure *> Visited;
  return containsLoopImpl(S, nullptr, Visited);
}

bool relax::containsLoop(const Stmt *S, const Program &P) {
  std::unordered_set<const Procedure *> Visited;
  return containsLoopImpl(S, &P, Visited);
}

VarRefSet relax::modifiedVars(const Stmt *S, const Program &P) {
  VarRefSet Out;
  std::unordered_set<const Procedure *> Visited;
  collectModified(S, P, Visited, Out);
  return Out;
}

std::vector<VarRef> relax::effectiveModifies(const Program &P,
                                             const Procedure &Proc) {
  std::vector<VarRef> Frame;
  if (Proc.hasModifiesClause()) {
    for (const VarDecl &D : P.decls())
      for (Symbol M : Proc.modifiesClause())
        if (M == D.Name) {
          Frame.push_back(VarRef{D.Name, VarTag::Plain, D.Kind});
          break;
        }
    return Frame;
  }
  VarRefSet Computed =
      Proc.body() ? modifiedVars(Proc.body(), P) : VarRefSet{};
  for (const VarDecl &D : P.decls())
    if (Computed.count(VarRef{D.Name, VarTag::Plain, D.Kind}))
      Frame.push_back(VarRef{D.Name, VarTag::Plain, D.Kind});
  return Frame;
}

//===----------------------------------------------------------------------===//
// Sema proper
//===----------------------------------------------------------------------===//

void Sema::checkVarsDeclared(const Expr *E,
                             const std::vector<VarRef> &BoundVars) {
  VarRefSet Free;
  collectFreeVars(E, Free);
  for (const VarRef &V : Free) {
    bool Bound = false;
    for (const VarRef &B : BoundVars)
      Bound |= B.Name == V.Name && B.Tag == V.Tag && B.Kind == V.Kind;
    if (Bound)
      continue;
    if (isParam(V.Name)) {
      // Parameters are integer-valued; tag discipline (Plain in unary
      // positions, tagged in relational ones) is enforced by the category
      // checks, so only the kind matters here.
      if (V.Kind != VarKind::Int)
        Diags.error(E->loc(), "variable used with the wrong kind");
      continue;
    }
    auto Kind = Prog.kindOf(V.Name);
    if (!Kind)
      Diags.error(E->loc(), "use of undeclared variable");
    else if (*Kind != V.Kind)
      Diags.error(E->loc(), "variable used with the wrong kind");
  }
}

void Sema::checkVarsDeclared(const ArrayExpr *A,
                             const std::vector<VarRef> &BoundVars) {
  VarRefSet Free;
  collectFreeVars(A, Free);
  for (const VarRef &V : Free) {
    bool Bound = false;
    for (const VarRef &B : BoundVars)
      Bound |= B.Name == V.Name && B.Tag == V.Tag && B.Kind == V.Kind;
    if (Bound)
      continue;
    if (isParam(V.Name)) {
      if (V.Kind != VarKind::Int)
        Diags.error(A->loc(), "variable used with the wrong kind");
      continue;
    }
    auto Kind = Prog.kindOf(V.Name);
    if (!Kind)
      Diags.error(A->loc(), "use of undeclared variable");
    else if (*Kind != V.Kind)
      Diags.error(A->loc(), "variable used with the wrong kind");
  }
}

void Sema::checkVarsDeclared(const BoolExpr *B,
                             std::vector<VarRef> &BoundVars) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    checkVarsDeclared(C->lhs(), BoundVars);
    checkVarsDeclared(C->rhs(), BoundVars);
    return;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    checkVarsDeclared(C->lhs(), BoundVars);
    checkVarsDeclared(C->rhs(), BoundVars);
    return;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    checkVarsDeclared(L->lhs(), BoundVars);
    checkVarsDeclared(L->rhs(), BoundVars);
    return;
  }
  case BoolExpr::Kind::Not:
    checkVarsDeclared(cast<NotExpr>(B)->sub(), BoundVars);
    return;
  case BoolExpr::Kind::Exists: {
    const auto *E = cast<ExistsExpr>(B);
    BoundVars.push_back(VarRef{E->var(), E->tag(), E->varKind()});
    checkVarsDeclared(E->body(), BoundVars);
    BoundVars.pop_back();
    return;
  }
  }
}

void Sema::requireProgramBool(const BoolExpr *B, const char *What) {
  if (!isQuantifierFree(B))
    Diags.error(B->loc(),
                std::string(What) + " must not contain quantifiers");
  if (!isUnary(B))
    Diags.error(B->loc(), std::string(What) +
                              " must not reference <o>/<r> tagged variables");
  std::vector<VarRef> Bound;
  checkVarsDeclared(B, Bound);
}

void Sema::requireUnaryFormula(const BoolExpr *B, const char *What) {
  if (!isUnary(B))
    Diags.error(B->loc(), std::string(What) +
                              " must not reference <o>/<r> tagged variables");
  std::vector<VarRef> Bound;
  checkVarsDeclared(B, Bound);
}

void Sema::requireRelationalFormula(const BoolExpr *B, const char *What) {
  if (!isRelational(B))
    Diags.error(B->loc(),
                std::string(What) +
                    " is a relational formula: every variable must carry an "
                    "<o> or <r> tag");
  std::vector<VarRef> Bound;
  checkVarsDeclared(B, Bound);
}

void Sema::checkStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    if (isParam(A->var()))
      Diags.error(S->loc(),
                  "cannot assign to a parameter (parameters are immutable)");
    else {
      auto Kind = Prog.kindOf(A->var());
      if (!Kind)
        Diags.error(S->loc(), "assignment to undeclared variable");
      else if (*Kind != VarKind::Int)
        Diags.error(S->loc(),
                    "cannot assign an integer to an array variable");
    }
    // The right-hand side is a program expression: Plain variables only.
    VarRefSet Free = freeVars(A->value());
    for (const VarRef &V : Free)
      if (V.Tag != VarTag::Plain)
        Diags.error(S->loc(),
                    "program expressions must not reference tagged variables");
    std::vector<VarRef> Bound;
    checkVarsDeclared(A->value(), Bound);
    return;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    auto Kind = Prog.kindOf(A->array());
    if (!Kind)
      Diags.error(S->loc(), "assignment to undeclared array");
    else if (*Kind != VarKind::Array)
      Diags.error(S->loc(), "indexed assignment requires an array variable");
    std::vector<VarRef> Bound;
    checkVarsDeclared(A->index(), Bound);
    checkVarsDeclared(A->value(), Bound);
    for (const Expr *E : {A->index(), A->value()})
      for (const VarRef &V : freeVars(E))
        if (V.Tag != VarTag::Plain)
          Diags.error(S->loc(), "program expressions must not reference "
                                "tagged variables");
    return;
  }
  case Stmt::Kind::Havoc:
  case Stmt::Kind::Relax: {
    const auto *C = cast<ChoiceStmtBase>(S);
    const char *Name = S->kind() == Stmt::Kind::Havoc ? "havoc" : "relax";
    for (size_t I = 0, E = C->varCount(); I != E; ++I) {
      if (isParam(C->var(I)))
        Diags.error(S->loc(), std::string(Name) +
                                  " of a parameter (parameters are "
                                  "immutable)");
      else if (!Prog.kindOf(C->var(I)))
        Diags.error(S->loc(), std::string(Name) +
                                  " of undeclared variable");
    }
    requireProgramBool(C->pred(), S->kind() == Stmt::Kind::Havoc
                                      ? "a havoc predicate"
                                      : "a relax predicate");
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    requireProgramBool(I->cond(), "a branch condition");
    if (const DivergeAnnotation *D = I->diverge()) {
      if (containsRelate(I->thenStmt(), Prog) ||
          containsRelate(I->elseStmt(), Prog))
        Diags.error(S->loc(),
                    "a diverge-annotated statement must not contain relate "
                    "statements (no_rel side condition)");
      if (D->CaseAnalysis) {
        if (D->PreOrig || D->PreRel || D->PostOrig || D->PostRel || D->Frame)
          Diags.error(S->loc(),
                      "'diverge cases' takes no pre/post/frame annotations");
        if (containsCall(I->thenStmt()) || containsCall(I->elseStmt()))
          Diags.error(S->loc(),
                      "'diverge cases' branches must not contain procedure "
                      "calls");
        if (containsLoop(I->thenStmt(), Prog) ||
            containsLoop(I->elseStmt(), Prog))
          Diags.error(S->loc(),
                      "'diverge cases' requires loop-free branches");
      }
      if (D->PreOrig)
        requireUnaryFormula(D->PreOrig, "a diverge pre_orig annotation");
      if (D->PreRel)
        requireUnaryFormula(D->PreRel, "a diverge pre_rel annotation");
      if (D->PostOrig)
        requireUnaryFormula(D->PostOrig, "a diverge post_orig annotation");
      if (D->PostRel)
        requireUnaryFormula(D->PostRel, "a diverge post_rel annotation");
      if (D->Frame)
        requireRelationalFormula(D->Frame, "a diverge frame");
    }
    checkStmt(I->thenStmt());
    checkStmt(I->elseStmt());
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    requireProgramBool(W->cond(), "a loop condition");
    const LoopAnnotations *Ann = W->annotations();
    if (Ann->Invariant)
      requireUnaryFormula(Ann->Invariant, "a loop invariant");
    if (Ann->IntermediateInvariant)
      requireUnaryFormula(Ann->IntermediateInvariant,
                          "an intermediate loop invariant");
    if (Ann->RelInvariant)
      requireRelationalFormula(Ann->RelInvariant,
                               "a relational loop invariant");
    if (Ann->Variant) {
      for (const VarRef &V : freeVars(Ann->Variant))
        if (V.Tag != VarTag::Plain)
          Diags.error(S->loc(), "a decreases clause must not reference "
                                "<o>/<r> tagged variables");
      std::vector<VarRef> Bound;
      checkVarsDeclared(Ann->Variant, Bound);
    }
    if (const DivergeAnnotation *D = W->diverge()) {
      if (containsRelate(W->body(), Prog))
        Diags.error(S->loc(),
                    "a diverge-annotated statement must not contain relate "
                    "statements (no_rel side condition)");
      if (D->CaseAnalysis)
        Diags.error(S->loc(),
                    "'diverge cases' applies only to if statements; annotate "
                    "the loop with pre/post/frame clauses instead");
      if (D->PreOrig)
        requireUnaryFormula(D->PreOrig, "a diverge pre_orig annotation");
      if (D->PreRel)
        requireUnaryFormula(D->PreRel, "a diverge pre_rel annotation");
      if (D->PostOrig)
        requireUnaryFormula(D->PostOrig, "a diverge post_orig annotation");
      if (D->PostRel)
        requireUnaryFormula(D->PostRel, "a diverge post_rel annotation");
      if (D->Frame)
        requireRelationalFormula(D->Frame, "a diverge frame");
    }
    checkStmt(W->body());
    return;
  }
  case Stmt::Kind::Assume:
    requireProgramBool(cast<AssumeStmt>(S)->pred(), "an assume predicate");
    return;
  case Stmt::Kind::Assert:
    requireProgramBool(cast<AssertStmt>(S)->pred(), "an assert predicate");
    return;
  case Stmt::Kind::Relate: {
    const auto *R = cast<RelateStmt>(S);
    if (!isQuantifierFree(R->pred()))
      Diags.error(S->loc(), "a relate predicate must not contain quantifiers");
    requireRelationalFormula(R->pred(), "a relate predicate");
    if (Info.RelateMap.count(R->label()))
      Diags.error(S->loc(), "duplicate relate label (labels must be unique "
                            "for observational compatibility)");
    else {
      Info.RelateMap.emplace(R->label(), R->pred());
      Info.RelateLabels.push_back(R->label());
    }
    return;
  }
  case Stmt::Kind::Call: {
    const auto *C = cast<CallStmt>(S);
    const Procedure *Callee = Prog.procedure(C->callee());
    if (!Callee)
      Diags.error(S->loc(), "call to undefined procedure");
    else if (Prog.isEntry(*Callee))
      Diags.error(S->loc(), "the entry procedure cannot be called");
    else if (Callee->params().size() != C->argCount())
      Diags.error(S->loc(), "wrong number of arguments in call");
    // Arguments are program expressions: Plain variables only.
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      for (const VarRef &V : freeVars(C->arg(I)))
        if (V.Tag != VarTag::Plain)
          Diags.error(S->loc(),
                      "program expressions must not reference tagged "
                      "variables");
      std::vector<VarRef> Bound;
      checkVarsDeclared(C->arg(I), Bound);
    }
    return;
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    checkStmt(Q->first());
    checkStmt(Q->second());
    return;
  }
  }
}

namespace {

void collectCalls(const Stmt *S, std::vector<const CallStmt *> &Out) {
  switch (S->kind()) {
  case Stmt::Kind::Call:
    Out.push_back(cast<CallStmt>(S));
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    collectCalls(I->thenStmt(), Out);
    collectCalls(I->elseStmt(), Out);
    return;
  }
  case Stmt::Kind::While:
    collectCalls(cast<WhileStmt>(S)->body(), Out);
    return;
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    collectCalls(Q->first(), Out);
    collectCalls(Q->second(), Out);
    return;
  }
  default:
    return;
  }
}

/// Collects callee names of calls that sit under a plain (non-cases)
/// `diverge` annotation within \p S.
void collectCallsUnderDiverge(const Stmt *S, bool Under,
                              std::vector<Symbol> &Out) {
  switch (S->kind()) {
  case Stmt::Kind::Call:
    if (Under)
      Out.push_back(cast<CallStmt>(S)->callee());
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    bool U = Under || (I->diverge() && !I->diverge()->CaseAnalysis);
    collectCallsUnderDiverge(I->thenStmt(), U, Out);
    collectCallsUnderDiverge(I->elseStmt(), U, Out);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    bool U = Under || (W->diverge() && !W->diverge()->CaseAnalysis);
    collectCallsUnderDiverge(W->body(), U, Out);
    return;
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    collectCallsUnderDiverge(Q->first(), Under, Out);
    collectCallsUnderDiverge(Q->second(), Under, Out);
    return;
  }
  default:
    return;
  }
}

} // namespace

void Sema::dfsRecursion(const Procedure *P,
                        std::unordered_map<const Procedure *, int> &Color) {
  Color[P] = 1; // on the DFS stack
  if (P->body()) {
    std::vector<const CallStmt *> Calls;
    collectCalls(P->body(), Calls);
    for (const CallStmt *C : Calls) {
      const Procedure *Callee = Prog.procedure(C->callee());
      if (!Callee)
        continue; // reported by checkStmt
      auto It = Color.find(Callee);
      int State = It == Color.end() ? 0 : It->second;
      if (State == 1)
        Diags.error(C->loc(), "recursive procedure calls are not supported");
      else if (State == 0)
        dfsRecursion(Callee, Color);
    }
  }
  Color[P] = 2;
}

void Sema::checkCallGraph() {
  std::unordered_map<const Procedure *, int> Color;
  for (const Procedure &P : Prog.procedures())
    if (!Color.count(&P))
      dfsRecursion(&P, Color);
}

void Sema::computeFrames() {
  for (const Procedure &P : Prog.procedures()) {
    if (P.hasModifiesClause()) {
      // Frame soundness: the clause must cover everything the body
      // (transitively) modifies, or havocking only the clause at call
      // sites would miss effects.
      VarRefSet Computed =
          P.body() ? modifiedVars(P.body(), Prog) : VarRefSet{};
      for (const VarRef &V : Computed) {
        bool Listed = false;
        for (Symbol M : P.modifiesClause())
          Listed |= M == V.Name;
        if (!Listed)
          Diags.error(P.loc(), "procedure modifies a variable missing from "
                               "its modifies clause");
      }
    }
    Info.EffectiveModifies.emplace(&P, effectiveModifies(Prog, P));
  }
}

void Sema::computeNeedsIntermediate() {
  // Seed: procedures called under a plain diverge annotation anywhere in
  // the module; their bodies get verified under |-i, so every procedure
  // they (transitively) call needs an |-i summary too.
  std::vector<const Procedure *> Work;
  auto Mark = [&](const Procedure *P) {
    if (P && Info.NeedsIntermediateSet.insert(P).second)
      Work.push_back(P);
  };
  for (const Procedure &P : Prog.procedures()) {
    if (!P.body())
      continue;
    std::vector<Symbol> Seed;
    collectCallsUnderDiverge(P.body(), false, Seed);
    for (Symbol S : Seed)
      Mark(Prog.procedure(S));
  }
  while (!Work.empty()) {
    const Procedure *P = Work.back();
    Work.pop_back();
    if (!P->body())
      continue;
    std::vector<const CallStmt *> Calls;
    collectCalls(P->body(), Calls);
    for (const CallStmt *C : Calls)
      Mark(Prog.procedure(C->callee()));
  }
}

void Sema::checkProcedure(const Procedure &P) {
  CurrentProc = &P;
  if (P.requiresClause())
    requireUnaryFormula(P.requiresClause(), "a requires clause");
  if (P.ensuresClause())
    requireUnaryFormula(P.ensuresClause(), "an ensures clause");
  if (P.relRequiresClause())
    requireRelationalFormula(P.relRequiresClause(), "a rrequires clause");
  if (P.relEnsuresClause())
    requireRelationalFormula(P.relEnsuresClause(), "a rensures clause");
  // The parser only admits declared globals into modifies clauses;
  // re-check for builder-constructed modules.
  if (P.hasModifiesClause())
    for (Symbol M : P.modifiesClause())
      if (!Prog.kindOf(M))
        Diags.error(P.loc(), "modifies clause names undeclared variable");
  if (P.body())
    checkStmt(P.body());
  CurrentProc = nullptr;
}

std::optional<SemaInfo> Sema::run() {
  const Procedure *Entry = Prog.entry();
  if (!Entry || !Entry->body()) {
    Diags.error(SourceLoc(), "program has no body");
    return std::nullopt;
  }
  if (!Entry->params().empty())
    Diags.error(Entry->loc(), "the entry procedure takes no parameters");
  for (const Procedure &P : Prog.procedures())
    if (&P != Entry && !P.body())
      Diags.error(P.loc(), "procedure has no body");
  if (Diags.hasErrors())
    return std::nullopt;

  // Reject recursion before anything traverses through calls, so the
  // interprocedural analyses (no_rel, modified-variable sets) terminate.
  checkCallGraph();
  if (Diags.hasErrors())
    return std::nullopt;

  for (const Procedure &P : Prog.procedures())
    checkProcedure(P);

  computeFrames();
  computeNeedsIntermediate();

  if (Diags.hasErrors())
    return std::nullopt;
  return std::move(Info);
}
