//===- Sema.h - Well-formedness analysis ---------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enforces the well-formedness rules that the paper builds into its
/// syntactic categories and side conditions:
///
///  * program expressions (conditions, assignment right-hand sides,
///    havoc/relax predicates, assert/assume predicates, call arguments) are
///    quantifier-free and reference only untagged (Plain) variables —
///    category B;
///  * `relate` predicates are quantifier-free and reference only tagged
///    variables — category B* — and their labels are unique across the
///    whole module (required by the observational-compatibility map Γ);
///  * loop invariants and diverge pre/post annotations are unary formulas;
///    relational invariants, frames, and relational contracts are
///    relational formulas;
///  * every referenced variable is declared with the right kind (procedure
///    parameters are integer-valued and in scope inside that procedure's
///    contracts and body only);
///  * statements carrying a diverge annotation contain no `relate`, even
///    transitively through calls (the no_rel(s) side condition);
///  * calls resolve to defined, non-entry procedures with matching arity,
///    the call graph is acyclic, parameters are immutable, and a
///    procedure's explicit `modifies` clause covers every global its body
///    (transitively) modifies — the frame soundness precondition of the
///    summary rule.
///
/// Also computes the analyses other stages consume: the Γ label map,
/// per-procedure effective `modifies` frames (in global declaration
/// order), and the set of procedures that additionally need an |-i
/// (intermediate-semantics) summary because they are reachable from a call
/// under a plain `diverge` annotation.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SEMA_SEMA_H
#define RELAXC_SEMA_SEMA_H

#include "ast/Program.h"
#include "logic/FormulaOps.h"
#include "support/Diagnostics.h"

#include <unordered_map>
#include <unordered_set>

namespace relax {

/// Results of semantic analysis over one module. Holds pointers into the
/// analyzed Program, which must outlive it.
class SemaInfo {
public:
  /// Γ: relate label -> relational predicate (Theorem 6).
  const std::unordered_map<Symbol, const BoolExpr *> &relateMap() const {
    return RelateMap;
  }

  /// All relate labels in module order (procedures in declaration order,
  /// statements in program order within each).
  const std::vector<Symbol> &relateLabels() const { return RelateLabels; }

  /// The effective `modifies` frame of \p P — its explicit clause when one
  /// was written, otherwise the globals its body transitively modifies —
  /// always in global declaration order. This is exactly the set a call
  /// summary havocs.
  const std::vector<VarRef> &effectiveModifies(const Procedure &P) const {
    static const std::vector<VarRef> Empty;
    auto It = EffectiveModifies.find(&P);
    return It == EffectiveModifies.end() ? Empty : It->second;
  }

  /// True when \p P needs an |-i (intermediate-semantics) summary: it is
  /// transitively reachable from a call under a plain `diverge`
  /// annotation, whose |-i sub-derivation instantiates callee summaries
  /// under the intermediate judgment.
  bool needsIntermediate(const Procedure &P) const {
    return NeedsIntermediateSet.count(&P) != 0;
  }

private:
  friend class Sema;
  std::unordered_map<Symbol, const BoolExpr *> RelateMap;
  std::vector<Symbol> RelateLabels;
  std::unordered_map<const Procedure *, std::vector<VarRef>> EffectiveModifies;
  std::unordered_set<const Procedure *> NeedsIntermediateSet;
};

/// Runs all well-formedness checks.
class Sema {
public:
  Sema(const Program &P, DiagnosticEngine &Diags) : Prog(P), Diags(Diags) {}

  /// Returns the analysis results, or nullopt after reporting diagnostics.
  std::optional<SemaInfo> run();

private:
  const Program &Prog;
  DiagnosticEngine &Diags;
  SemaInfo Info;
  /// The procedure whose contracts/body are being checked; its parameters
  /// are in scope.
  const Procedure *CurrentProc = nullptr;

  bool isParam(Symbol Name) const {
    return CurrentProc && CurrentProc->hasParam(Name);
  }

  void checkProcedure(const Procedure &P);
  void checkStmt(const Stmt *S);
  /// Rejects recursion and reports unresolved / entry / arity-mismatched
  /// calls, so the interprocedural traversals below terminate.
  void checkCallGraph();
  void dfsRecursion(const Procedure *P,
                    std::unordered_map<const Procedure *, int> &Color);
  void computeFrames();
  void computeNeedsIntermediate();

  /// Checks that every variable of \p B is declared with matching kind.
  /// \p BoundVars tracks quantifier binders in scope.
  void checkVarsDeclared(const BoolExpr *B, std::vector<VarRef> &BoundVars);
  void checkVarsDeclared(const Expr *E,
                         const std::vector<VarRef> &BoundVars);
  void checkVarsDeclared(const ArrayExpr *A,
                         const std::vector<VarRef> &BoundVars);

  /// Category checks with diagnostics.
  void requireProgramBool(const BoolExpr *B, const char *What);
  void requireUnaryFormula(const BoolExpr *B, const char *What);
  void requireRelationalFormula(const BoolExpr *B, const char *What);
};

/// True when \p S contains a `relate` statement (the paper's ¬no_rel(s)).
/// The intraprocedural form does not look through calls.
bool containsRelate(const Stmt *S);
/// Interprocedural form: also looks through `call` into callee bodies.
bool containsRelate(const Stmt *S, const Program &P);

/// True when \p S contains a `while` loop (case-analysis divergence
/// requires loop-free branches). The intraprocedural form does not look
/// through calls.
bool containsLoop(const Stmt *S);
/// Interprocedural form: also looks through `call` into callee bodies.
bool containsLoop(const Stmt *S, const Program &P);

/// The set of variables \p S may modify: assignment targets, arrays stored
/// into, havoc/relax variable lists, and — through `call` — the callee's
/// effective frame (its explicit `modifies` clause when present, otherwise
/// its body's transitive modifications). Tags are always Plain.
VarRefSet modifiedVars(const Stmt *S, const Program &P);

/// The effective `modifies` frame of \p Proc: its explicit clause when one
/// was written, otherwise its body's transitive modifications — always in
/// global declaration order, so every generator havocs the same list in
/// the same order. SemaInfo::effectiveModifies caches this per procedure.
std::vector<VarRef> effectiveModifies(const Program &P, const Procedure &Proc);

} // namespace relax

#endif // RELAXC_SEMA_SEMA_H
