//===- Sema.h - Well-formedness analysis ---------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enforces the well-formedness rules that the paper builds into its
/// syntactic categories and side conditions:
///
///  * program expressions (conditions, assignment right-hand sides,
///    havoc/relax predicates, assert/assume predicates) are quantifier-free
///    and reference only untagged (Plain) variables — category B;
///  * `relate` predicates are quantifier-free and reference only tagged
///    variables — category B* — and their labels are unique (required by
///    the observational-compatibility map Γ);
///  * loop invariants and diverge pre/post annotations are unary formulas;
///    relational invariants, frames, and relational contracts are
///    relational formulas;
///  * every referenced variable is declared with the right kind;
///  * statements carrying a diverge annotation contain no `relate`
///    (the no_rel(s) side condition of the diverge rule).
///
/// Also computes the analyses other stages consume: the Γ label map and
/// modified-variable sets.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SEMA_SEMA_H
#define RELAXC_SEMA_SEMA_H

#include "ast/Program.h"
#include "logic/FormulaOps.h"
#include "support/Diagnostics.h"

#include <unordered_map>

namespace relax {

/// Results of semantic analysis over one program.
class SemaInfo {
public:
  /// Γ: relate label -> relational predicate (Theorem 6).
  const std::unordered_map<Symbol, const BoolExpr *> &relateMap() const {
    return RelateMap;
  }

  /// All relate labels in program order.
  const std::vector<Symbol> &relateLabels() const { return RelateLabels; }

private:
  friend class Sema;
  std::unordered_map<Symbol, const BoolExpr *> RelateMap;
  std::vector<Symbol> RelateLabels;
};

/// Runs all well-formedness checks.
class Sema {
public:
  Sema(const Program &P, DiagnosticEngine &Diags) : Prog(P), Diags(Diags) {}

  /// Returns the analysis results, or nullopt after reporting diagnostics.
  std::optional<SemaInfo> run();

private:
  const Program &Prog;
  DiagnosticEngine &Diags;
  SemaInfo Info;

  void checkStmt(const Stmt *S);
  /// Checks that every variable of \p B is declared with matching kind.
  /// \p BoundVars tracks quantifier binders in scope.
  void checkVarsDeclared(const BoolExpr *B, std::vector<VarRef> &BoundVars);
  void checkVarsDeclared(const Expr *E,
                         const std::vector<VarRef> &BoundVars);
  void checkVarsDeclared(const ArrayExpr *A,
                         const std::vector<VarRef> &BoundVars);

  /// Category checks with diagnostics.
  void requireProgramBool(const BoolExpr *B, const char *What);
  void requireUnaryFormula(const BoolExpr *B, const char *What);
  void requireRelationalFormula(const BoolExpr *B, const char *What);
};

/// True when \p S contains a `relate` statement (the paper's ¬no_rel(s)).
bool containsRelate(const Stmt *S);

/// True when \p S contains a `while` loop (case-analysis divergence
/// requires loop-free branches).
bool containsLoop(const Stmt *S);

/// The set of variables \p S may modify: assignment targets, arrays stored
/// into, and havoc/relax variable lists. Tags are always Plain.
VarRefSet modifiedVars(const Stmt *S, const Program &P);

} // namespace relax

#endif // RELAXC_SEMA_SEMA_H
