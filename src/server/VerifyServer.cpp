//===- VerifyServer.cpp - Verification as a service ---------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "server/VerifyServer.h"

#include "parser/Parser.h"
#include "solver/BoundedSolver.h"
#include "solver/Z3Solver.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>

#include <poll.h>

using namespace relax;

//===----------------------------------------------------------------------===//
// Shard-request serving (moved verbatim from the driver so the daemon,
// the pipe worker, and the socket worker answer identically)
//===----------------------------------------------------------------------===//

ShardResponse relax::serveShardRequest(ShardWorkerState &W,
                                       std::string_view Payload) {
  ShardResponse Resp;
  auto Fail = [&](std::string Msg) {
    Resp = ShardResponse();
    Resp.IsError = true;
    Resp.Error = std::move(Msg);
    return Resp;
  };

  Result<ShardRequest> Req = parseShardRequest(Payload);
  if (!Req.ok())
    return Fail("bad request: " + Req.message());
  if (FaultRegistry::shouldFail(FaultSite::SolverCall))
    return Fail("injected solver-call fault");
  Result<std::vector<TierKind>> Tiers = parsePipelineSpec(Req->Pipeline);
  if (!Tiers.ok())
    return Fail("bad worker pipeline: " + Tiers.message());
  for (TierKind K : *Tiers)
    if (K == TierKind::Shard)
      return Fail("a discharge worker cannot itself run a shard tier");

  // The configuration key is the request's own serialization with the
  // per-query parts stripped: any future field added to the bounded
  // wire line automatically participates in config-change detection.
  ShardRequest KeyReq;
  KeyReq.Pipeline = Req->Pipeline;
  KeyReq.Bounded = Req->Bounded;
  KeyReq.FinalBoundedStepFactor = Req->FinalBoundedStepFactor;
  std::string Key = serializeShardRequest(KeyReq);
  if (!W.Ctx || W.ConfigKey != Key) {
    W.Port.reset();
    W.Ctx = std::make_unique<AstContext>();
    PortfolioOptions PO;
    PO.Tiers = *Tiers;
    PO.Bounded = Req->Bounded;
    PO.FinalBoundedStepFactor = Req->FinalBoundedStepFactor;
    PortfolioSolver::BackendFactory Smt;
    if (RELAXC_HAVE_Z3) {
      AstContext *C = W.Ctx.get();
      Smt = [C] { return std::make_unique<Z3Solver>(C->symbols()); };
    }
    W.Port = std::make_unique<PortfolioSolver>(*W.Ctx, PO, Smt);
    W.ConfigKey = Key;
  }

  std::unordered_map<Symbol, VarKind> Kinds;
  for (const auto &[Name, Kind] : Req->Vars)
    Kinds[W.Ctx->sym(Name)] = Kind;

  std::vector<const BoolExpr *> Formulas;
  for (const std::string &Text : Req->Formulas) {
    SourceManager SM;
    SM.setBuffer("<shard-request>", Text);
    DiagnosticEngine Diags;
    Diags.setFileName("<shard-request>");
    Parser P(*W.Ctx, SM, Diags);
    const BoolExpr *F = P.parseStandaloneFormula(Kinds);
    if (!F || Diags.hasErrors())
      return Fail("formula parse error in '" + Text + "': " + Diags.render());
    Formulas.push_back(F);
  }

  Model Mod;
  Result<SatResult> R = SatResult::Unknown;
  if (Req->WantModel) {
    VarRefSet Vars;
    for (const WireVar &V : Req->ModelVars)
      Vars.insert(VarRef{W.Ctx->sym(V.Name), V.Tag, V.Kind});
    R = W.Port->checkSatWithModel(Formulas, Vars, Mod);
  } else {
    R = W.Port->checkSat(Formulas);
  }
  if (!R.ok())
    return Fail(R.message());

  Resp.Verdict = *R;
  Resp.SettledBy = W.Port->settledBy();
  Resp.Trail = W.Port->giveUpTrail();
  if (Req->WantModel && *R == SatResult::Sat) {
    for (const auto &[V, Val] : Mod.Ints)
      Resp.Ints.push_back(
          {{std::string(W.Ctx->text(V.Name)), V.Tag, V.Kind}, Val});
    for (const auto &[V, Val] : Mod.Arrays)
      Resp.Arrays.push_back(
          {{std::string(W.Ctx->text(V.Name)), V.Tag, V.Kind}, Val});
  }
  return Resp;
}

bool relax::isShardRequestPayload(std::string_view Payload) {
  return Payload.rfind("relax-shard-request", 0) == 0;
}

bool relax::isVerifyRequestPayload(std::string_view Payload) {
  return Payload.rfind("relax-verify-request", 0) == 0;
}

//===----------------------------------------------------------------------===//
// The verify wire codec
//===----------------------------------------------------------------------===//

namespace {

const char *VerifyRequestMagic = "relax-verify-request 1";
const char *VerifyResponseMagic = "relax-verify-response 1";

void putLine(std::string &Out, const std::string &S) {
  Out += S;
  Out += '\n';
}

/// `<tag> <len>\n<len bytes>\n` — the blob form for fields that may hold
/// anything (file names with spaces, whole programs, rendered reports).
void putBlob(std::string &Out, const char *Tag, std::string_view Bytes) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(Bytes.size());
  Out += '\n';
  Out.append(Bytes.data(), Bytes.size());
  Out += '\n';
}

/// Cursor over a payload: lines for the fixed fields, counted blobs for
/// the free-form ones. Every malformation is a diagnosed parse error.
struct WireCursor {
  std::string_view S;
  size_t Pos = 0;

  bool line(std::string_view &Out) {
    if (Pos > S.size())
      return false;
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string_view::npos)
      return false;
    Out = S.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  }

  Status blob(const char *Tag, std::string &Out) {
    std::string_view L;
    if (!line(L))
      return Status::error(std::string("missing '") + Tag + "' field");
    size_t TagLen = std::strlen(Tag);
    if (L.compare(0, TagLen, Tag) != 0 || L.size() <= TagLen ||
        L[TagLen] != ' ')
      return Status::error(std::string("expected '") + Tag +
                           " <len>', got '" + std::string(L) + "'");
    uint64_t N = 0;
    for (size_t I = TagLen + 1; I != L.size(); ++I) {
      if (L[I] < '0' || L[I] > '9')
        return Status::error(std::string("bad '") + Tag + "' length");
      N = N * 10 + static_cast<uint64_t>(L[I] - '0');
      if (N > MaxFramePayload)
        return Status::error(std::string("'") + Tag + "' length too large");
    }
    if (Pos + N + 1 > S.size())
      return Status::error(std::string("truncated '") + Tag + "' bytes");
    Out.assign(S.data() + Pos, N);
    Pos += N;
    if (S[Pos] != '\n')
      return Status::error(std::string("'") + Tag +
                           "' bytes not newline-terminated");
    ++Pos;
    return Status::success();
  }
};

bool parseWireUnsigned(std::string_view V, uint64_t &Out) {
  if (V.empty())
    return false;
  Out = 0;
  for (char C : V) {
    if (C < '0' || C > '9')
      return false;
    if (Out > UINT64_MAX / 10)
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

/// `<key> <value>` with exact key match; -1 is the only allowed negative.
Status takeKeyed(WireCursor &C, const char *Key, std::string_view &Value) {
  std::string_view L;
  if (!C.line(L))
    return Status::error(std::string("missing '") + Key + "' field");
  size_t KeyLen = std::strlen(Key);
  if (L.compare(0, KeyLen, Key) != 0 || L.size() <= KeyLen ||
      L[KeyLen] != ' ')
    return Status::error(std::string("expected '") + Key + " <value>', got '" +
                         std::string(L) + "'");
  Value = L.substr(KeyLen + 1);
  return Status::success();
}

Status takeUnsigned(WireCursor &C, const char *Key, uint64_t &Out) {
  std::string_view V;
  if (Status S = takeKeyed(C, Key, V); !S.ok())
    return S;
  if (!parseWireUnsigned(V, Out))
    return Status::error(std::string("bad '") + Key + "' value '" +
                         std::string(V) + "'");
  return Status::success();
}

Status takeMs(WireCursor &C, const char *Key, int64_t &Out) {
  std::string_view V;
  if (Status S = takeKeyed(C, Key, V); !S.ok())
    return S;
  if (V == "-1") {
    Out = -1;
    return Status::success();
  }
  uint64_t N = 0;
  if (!parseWireUnsigned(V, N) || N > uint64_t(INT64_MAX))
    return Status::error(std::string("bad '") + Key + "' value '" +
                         std::string(V) + "'");
  Out = static_cast<int64_t>(N);
  return Status::success();
}

Status takeOnOff(WireCursor &C, const char *Key, bool &Out) {
  std::string_view V;
  if (Status S = takeKeyed(C, Key, V); !S.ok())
    return S;
  if (V != "on" && V != "off")
    return Status::error(std::string("bad '") + Key + "' value '" +
                         std::string(V) + "' (expected on or off)");
  Out = V == "on";
  return Status::success();
}

} // namespace

std::string relax::serializeVerifyRequest(const VerifyWireRequest &R) {
  std::string Out;
  putLine(Out, VerifyRequestMagic);
  putLine(Out, "solver " + R.SolverName);
  putLine(Out, "pipeline " + (R.Pipeline.empty() ? "-" : R.Pipeline));
  putLine(Out, "bounded-steps " + std::to_string(R.BoundedSteps));
  putLine(Out, std::string("learning ") + (R.BoundedLearning ? "on" : "off"));
  putLine(Out, std::string("restarts ") + (R.BoundedRestarts ? "on" : "off"));
  putLine(Out, "max-nogoods " + std::to_string(R.BoundedMaxNogoods));
  putLine(Out, "jobs " + std::to_string(R.Jobs));
  putLine(Out, "solver-jobs " + std::to_string(R.SolverJobs));
  putLine(Out, "timeout-ms " + std::to_string(R.TimeoutMs));
  putLine(Out, "vc-timeout-ms " + std::to_string(R.VcTimeoutMs));
  std::string Flags;
  auto AddFlag = [&](bool On, const char *Name) {
    if (!On)
      return;
    if (!Flags.empty())
      Flags += ' ';
    Flags += Name;
  };
  AddFlag(R.NoSafety, "no-safety");
  AddFlag(R.OriginalOnly, "original-only");
  AddFlag(R.Verbose, "verbose");
  AddFlag(R.SolverStats, "solver-stats");
  putLine(Out, "flags " + (Flags.empty() ? std::string("-") : Flags));
  putBlob(Out, "file", R.FileName);
  putBlob(Out, "source", R.Source);
  return Out;
}

Result<VerifyWireRequest> relax::parseVerifyRequest(std::string_view Payload) {
  using RR = Result<VerifyWireRequest>;
  auto Bad = [](const std::string &Msg) {
    return RR::error("bad verify request: " + Msg);
  };
  WireCursor C{Payload};
  std::string_view L;
  if (!C.line(L) || L != VerifyRequestMagic)
    return Bad("bad magic (stream is not speaking the verify protocol)");
  VerifyWireRequest R;
  std::string_view V;
  if (Status S = takeKeyed(C, "solver", V); !S.ok())
    return Bad(S.message());
  R.SolverName = std::string(V);
  if (Status S = takeKeyed(C, "pipeline", V); !S.ok())
    return Bad(S.message());
  R.Pipeline = V == "-" ? std::string() : std::string(V);
  if (Status S = takeUnsigned(C, "bounded-steps", R.BoundedSteps); !S.ok())
    return Bad(S.message());
  if (Status S = takeOnOff(C, "learning", R.BoundedLearning); !S.ok())
    return Bad(S.message());
  if (Status S = takeOnOff(C, "restarts", R.BoundedRestarts); !S.ok())
    return Bad(S.message());
  if (Status S = takeUnsigned(C, "max-nogoods", R.BoundedMaxNogoods); !S.ok())
    return Bad(S.message());
  uint64_t N = 0;
  if (Status S = takeUnsigned(C, "jobs", N); !S.ok() || N > 1024)
    return Bad(S.ok() ? "bad 'jobs' value (> 1024)" : S.message());
  R.Jobs = static_cast<unsigned>(N);
  if (Status S = takeUnsigned(C, "solver-jobs", N); !S.ok() || N > 1024)
    return Bad(S.ok() ? "bad 'solver-jobs' value (> 1024)" : S.message());
  R.SolverJobs = static_cast<unsigned>(N);
  if (Status S = takeMs(C, "timeout-ms", R.TimeoutMs); !S.ok())
    return Bad(S.message());
  if (Status S = takeMs(C, "vc-timeout-ms", R.VcTimeoutMs); !S.ok())
    return Bad(S.message());
  if (Status S = takeKeyed(C, "flags", V); !S.ok())
    return Bad(S.message());
  if (V != "-") {
    size_t Pos = 0;
    while (Pos < V.size()) {
      size_t Sp = V.find(' ', Pos);
      std::string_view F = V.substr(Pos, Sp == std::string_view::npos
                                             ? std::string_view::npos
                                             : Sp - Pos);
      if (F == "no-safety")
        R.NoSafety = true;
      else if (F == "original-only")
        R.OriginalOnly = true;
      else if (F == "verbose")
        R.Verbose = true;
      else if (F == "solver-stats")
        R.SolverStats = true;
      else
        return Bad("unknown flag '" + std::string(F) + "'");
      Pos = Sp == std::string_view::npos ? V.size() : Sp + 1;
    }
  }
  if (Status S = C.blob("file", R.FileName); !S.ok())
    return Bad(S.message());
  if (Status S = C.blob("source", R.Source); !S.ok())
    return Bad(S.message());
  return RR(std::move(R));
}

std::string relax::serializeVerifyResponse(const VerifyWireResponse &R) {
  std::string Out;
  putLine(Out, VerifyResponseMagic);
  std::string StatusLine = "status " + std::to_string(R.ExitStatus) + " ";
  StatusLine += R.IsError ? (R.Retryable ? "retryable-error" : "error") : "ok";
  putLine(Out, StatusLine);
  putBlob(Out, "error", R.Error);
  putBlob(Out, "diagnostics", R.Diagnostics);
  putBlob(Out, "report", R.Report);
  return Out;
}

Result<VerifyWireResponse>
relax::parseVerifyResponse(std::string_view Payload) {
  using RR = Result<VerifyWireResponse>;
  auto Bad = [](const std::string &Msg) {
    return RR::error("bad verify response: " + Msg);
  };
  WireCursor C{Payload};
  std::string_view L;
  if (!C.line(L) || L != VerifyResponseMagic)
    return Bad("bad magic (stream is not speaking the verify protocol)");
  VerifyWireResponse R;
  std::string_view V;
  if (Status S = takeKeyed(C, "status", V); !S.ok())
    return Bad(S.message());
  size_t Sp = V.find(' ');
  if (Sp == std::string_view::npos)
    return Bad("bad 'status' line '" + std::string(V) + "'");
  uint64_t N = 0;
  if (!parseWireUnsigned(V.substr(0, Sp), N) || N > 3)
    return Bad("bad exit status '" + std::string(V.substr(0, Sp)) + "'");
  R.ExitStatus = static_cast<int>(N);
  std::string_view Kind = V.substr(Sp + 1);
  if (Kind == "ok") {
    R.IsError = false;
  } else if (Kind == "error") {
    R.IsError = true;
  } else if (Kind == "retryable-error") {
    R.IsError = true;
    R.Retryable = true;
  } else {
    return Bad("bad status kind '" + std::string(Kind) + "'");
  }
  if (Status S = C.blob("error", R.Error); !S.ok())
    return Bad(S.message());
  if (Status S = C.blob("diagnostics", R.Diagnostics); !S.ok())
    return Bad(S.message());
  if (Status S = C.blob("report", R.Report); !S.ok())
    return Bad(S.message());
  return RR(std::move(R));
}

//===----------------------------------------------------------------------===//
// Stats renderers (the CLI prints these strings; the daemon ships them)
//===----------------------------------------------------------------------===//

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[1024];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, std::min(static_cast<size_t>(N), sizeof(Buf) - 1));
}

} // namespace

std::string relax::renderSolverStats(const std::string &BackendName,
                                     const std::vector<TierKind> &Tiers,
                                     const DischargeStats &S,
                                     const CachingSolver *Cached,
                                     const PersistentCache *PCache) {
  auto U = [](uint64_t N) { return static_cast<unsigned long long>(N); };
  std::string Out;
  Out += "solver stats:\n";
  if (!Tiers.empty()) {
    appendf(Out, "  pipeline: %s\n", formatPipeline(Tiers).c_str());
    for (size_t I = 0; I != Tiers.size() && I != S.Portfolio.Tiers.size();
         ++I) {
      const PortfolioStats::TierStat &T = S.Portfolio.Tiers[I];
      const char *Name = tierKindName(Tiers[I]);
      bool Degraded = Tiers[I] == TierKind::Smt && !RELAXC_HAVE_Z3;
      appendf(Out,
              "  tier %zu %s%s: settled %llu, gave up %llu"
              " (%llu budget trips)\n",
              I, Name, Degraded ? " (bounded-full fallback)" : "",
              U(T.Settled), U(T.GaveUp), U(T.BudgetTrips));
    }
    appendf(Out,
            "  queries: %llu, tier escalations: %llu, obligations "
            "queued past the inline stage: %llu\n",
            U(S.Portfolio.Queries), U(S.Portfolio.Escalations),
            U(S.EscalatedObligations));
    appendf(Out, "  shared result cache: %llu hits, %llu misses\n",
            U(S.SharedCacheHits), U(S.SharedCacheMisses));
  } else {
    // Single-backend mode: the sequential path runs behind CachingSolver;
    // the parallel path uses the scheduler's shared cache.
    appendf(Out, "  backend: %s\n", BackendName.c_str());
    if (Cached)
      appendf(Out,
              "  caching solver: %llu hits, %llu misses, %llu model "
              "pass-throughs\n",
              U(Cached->hitCount()), U(Cached->missCount()),
              U(Cached->modelPassThroughCount()));
    appendf(Out, "  shared result cache: %llu hits, %llu misses\n",
            U(S.SharedCacheHits), U(S.SharedCacheMisses));
  }
  if (PCache) {
    PersistentCacheStats PS = PCache->stats();
    appendf(Out,
            "  persistent cache: %llu entries loaded, %llu hits, "
            "%llu appended, %llu verify-sampled (%llu verified)\n",
            U(PS.Loaded), U(PS.Hits), U(PS.Appended), U(PS.VerifySampled),
            U(PS.VerifiedHits));
    if (PS.LoadCorrupt)
      appendf(Out, "  persistent cache recovered cold: %s\n",
              PS.LoadDetail.c_str());
  }
  appendf(Out,
          "  bounded work: %llu candidate assignments, %llu "
          "quantifier-body evaluations\n",
          U(S.BoundedCandidates), U(S.BoundedQuantSteps));
  appendf(Out,
          "  bounded search: %llu conflicts, %llu learned nogoods "
          "(%llu evicted), %llu unit propagations, %llu backjumps, "
          "%llu restarts, max trail depth %llu\n",
          U(S.Search.Conflicts), U(S.Search.LearnedNogoods),
          U(S.Search.EvictedNogoods), U(S.Search.UnitPropagations),
          U(S.Search.Backjumps), U(S.Search.Restarts),
          U(S.Search.MaxTrailDepth));
  appendf(Out, "  scheduler: %llu stolen tasks\n", U(S.StolenTasks));
  return Out;
}

std::string relax::renderProcObligations(const VerifyReport &Report) {
  std::vector<std::string> Order;
  std::map<std::string, std::pair<size_t, size_t>> Counts;
  auto Tally = [&](const JudgmentReport &J, bool Relaxed) {
    for (const VCOutcome &O : J.Outcomes) {
      std::string Name =
          O.Condition.Proc.empty() ? std::string("main") : O.Condition.Proc;
      auto [It, New] = Counts.try_emplace(Name, 0, 0);
      if (New)
        Order.push_back(Name);
      ++(Relaxed ? It->second.second : It->second.first);
    }
  };
  Tally(Report.Original, false);
  Tally(Report.Relaxed, true);
  std::string Out;
  Out += "  obligations by procedure:\n";
  for (const std::string &Name : Order)
    appendf(Out, "    %s: %zu |-o, %zu |-r\n", Name.c_str(),
            Counts[Name].first, Counts[Name].second);
  return Out;
}

//===----------------------------------------------------------------------===//
// The served verify job
//===----------------------------------------------------------------------===//

namespace {

/// Mirror of the CLI's makeSolver for a wire request.
std::unique_ptr<Solver> makeJobBackend(const VerifyWireRequest &R,
                                       AstContext &Ctx) {
  if (R.SolverName == "bounded") {
    BoundedSolverOptions BO;
    BO.Jobs = R.SolverJobs == 0 ? 1 : R.SolverJobs;
    BO.Learning = R.BoundedLearning;
    BO.Restarts = R.BoundedRestarts;
    BO.MaxNogoods = static_cast<uint32_t>(R.BoundedMaxNogoods);
    return std::make_unique<BoundedSolver>(BO, &Ctx);
  }
  return std::make_unique<Z3Solver>(Ctx.symbols());
}

/// Mirror of the CLI's portfolio construction — any drift here breaks
/// both served/standalone report identity and cache-fingerprint sharing.
PortfolioOptions makeJobPortfolio(const VerifyWireRequest &R,
                                  const std::vector<TierKind> &Tiers) {
  PortfolioOptions PO;
  PO.Tiers = Tiers;
  PO.Bounded.MaxQuantSteps = R.BoundedSteps;
  PO.Bounded.Jobs = R.SolverJobs == 0 ? 1 : R.SolverJobs;
  PO.Bounded.Learning = R.BoundedLearning;
  PO.Bounded.Restarts = R.BoundedRestarts;
  PO.Bounded.MaxNogoods = static_cast<uint32_t>(R.BoundedMaxNogoods);
  return PO;
}

} // namespace

std::string relax::verifyJobFingerprint(const VerifyWireRequest &R) {
  if (!R.Pipeline.empty()) {
    Result<std::vector<TierKind>> Tiers = parsePipelineSpec(R.Pipeline);
    if (!Tiers.ok())
      return std::string();
    return portfolioConfigFingerprint(makeJobPortfolio(R, *Tiers),
                                      RELAXC_HAVE_Z3 != 0);
  }
  if (R.SolverName == "bounded") {
    BoundedSolverOptions BO; // mirror makeJobBackend: defaults, Jobs excluded
    BO.Learning = R.BoundedLearning;
    BO.Restarts = R.BoundedRestarts;
    BO.MaxNogoods = static_cast<uint32_t>(R.BoundedMaxNogoods);
    return "backend=bounded " + boundedOptionsFingerprint(BO);
  }
  return "backend=z3";
}

VerifyWireResponse relax::runVerifyJob(const VerifyWireRequest &Req,
                                       PersistentCache *PCache) {
  VerifyWireResponse Resp;
  auto Usage = [&](std::string Msg) {
    Resp.IsError = true;
    Resp.ExitStatus = 2;
    Resp.Error = std::move(Msg);
    return Resp;
  };

  if (!isKnownSolverName(Req.SolverName))
    return Usage("unknown solver '" + Req.SolverName + "' (valid choices: " +
                 knownSolverNamesForDiagnostics() + ")");
  std::vector<TierKind> Tiers;
  if (!Req.Pipeline.empty()) {
    Result<std::vector<TierKind>> T = parsePipelineSpec(Req.Pipeline);
    if (!T.ok())
      return Usage(T.message());
    for (TierKind K : *T)
      if (K == TierKind::Shard)
        return Usage("a served verify request cannot run a shard tier "
                     "(the daemon is already the far side of one)");
    Tiers = *T;
  }

  // One fresh AstContext per request — see the file comment in
  // VerifyServer.h for why warm contexts would break report identity.
  AstContext Ctx;
  SourceManager SM;
  SM.setBuffer(Req.FileName, Req.Source);
  DiagnosticEngine Diags;
  Diags.setFileName(Req.FileName);
  Parser P(Ctx, SM, Diags);
  std::optional<Program> Prog = P.parseProgram();
  if (!Prog) {
    Resp.ExitStatus = 2;
    Resp.Diagnostics = Diags.render();
    return Resp;
  }

  std::unique_ptr<Solver> Backend = makeJobBackend(Req, Ctx);
  CachingSolver Cached(*Backend);
  Verifier V(Ctx, *Prog, Cached, Diags);
  Verifier::Options VO;
  VO.GenOpts.CheckSafety = !Req.NoSafety;
  VO.RunRelaxed = !Req.OriginalOnly;
  VO.Jobs = Req.Jobs == 0 ? 1 : Req.Jobs;
  // The request-scoped deadline: armed right before the run, exactly like
  // the CLI, and mapped to the exit-code-style status below (an expired
  // request answers status 3, never hangs the connection).
  if (Req.TimeoutMs >= 0)
    VO.GlobalDeadline = Deadline::inMs(Req.TimeoutMs);
  VO.VcTimeoutMs = Req.VcTimeoutMs;
  DischargeStats Stats;
  VO.StatsOut = &Stats;
  if (!Tiers.empty()) {
    VO.Portfolio = makeJobPortfolio(Req, Tiers);
    if (RELAXC_HAVE_Z3)
      VO.SmtFactory = [&Ctx] {
        return std::make_unique<Z3Solver>(Ctx.symbols());
      };
  } else if (VO.Jobs > 1) {
    VO.SolverFactory = [&Req, &Ctx] { return makeJobBackend(Req, Ctx); };
  }
  VO.PCache = PCache;

  VerifyReport Report = V.run(VO);
  if (Diags.hasErrors())
    Resp.Diagnostics = Diags.render();
  Resp.Report = renderReport(Report, Ctx.symbols(), Req.Verbose);
  if (Req.SolverStats) {
    Resp.Report +=
        renderSolverStats(Req.SolverName, Tiers, Stats, &Cached, PCache);
    Resp.Report += renderProcObligations(Report);
  }

  // Exit-code discipline, identical to the CLI's runVerify.
  if (Report.verified()) {
    Resp.ExitStatus = 0;
  } else if (!Report.SemaOk || Report.GenErrors) {
    Resp.ExitStatus = 2;
  } else {
    size_t Refuted = Report.Original.count(VCStatus::Failed) +
                     Report.Relaxed.count(VCStatus::Failed);
    Resp.ExitStatus = Refuted > 0 ? 1 : 3;
  }
  return Resp;
}

//===----------------------------------------------------------------------===//
// The daemon
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<VerifyServer>>
VerifyServer::create(VerifyServerOptions O) {
  using R = Result<std::unique_ptr<VerifyServer>>;
  if (O.MaxConnections == 0)
    return R::error("the server needs at least one connection slot");
  Result<SocketListener> L = SocketListener::bind(O.Address, O.AcceptBacklog);
  if (!L.ok())
    return R::error(L.message());
  std::unique_ptr<VerifyServer> S(new VerifyServer());
  S->Opts = std::move(O);
  S->Listener = std::move(*L);
  return R(std::move(S));
}

VerifyServer::~VerifyServer() {
  requestStop();
  std::unique_lock<std::mutex> L(M);
  DrainCV.wait(L, [&] { return Active == 0; });
}

PersistentCache *VerifyServer::cacheFor(const std::string &Fingerprint) {
  if (Fingerprint.empty())
    return nullptr;
  std::lock_guard<std::mutex> L(CacheM);
  auto It = Caches.find(Fingerprint);
  if (It != Caches.end())
    return It->second.get();
  // With a CacheDir this is the CLI's on-disk cache (same keys, same
  // file), loaded once and flushed after each request; without one it is
  // a purely in-memory warm store — load()/flush() are simply skipped.
  auto C = std::make_unique<PersistentCache>(Opts.CacheDir, Fingerprint,
                                             /*VerifyPpm=*/0);
  if (!Opts.CacheDir.empty())
    C->load();
  PersistentCache *Raw = C.get();
  Caches.emplace(Fingerprint, std::move(C));
  return Raw;
}

VerifyWireResponse VerifyServer::handleVerify(std::string_view Payload) {
  Result<VerifyWireRequest> Req = parseVerifyRequest(Payload);
  if (!Req.ok()) {
    VerifyWireResponse E;
    E.IsError = true;
    E.ExitStatus = 2;
    E.Error = Req.message();
    return E;
  }
  // Clamp the request deadline to the server's cap so one client cannot
  // pin a handler thread forever.
  if (Opts.MaxRequestTimeoutMs >= 0 &&
      (Req->TimeoutMs < 0 || Req->TimeoutMs > Opts.MaxRequestTimeoutMs))
    Req->TimeoutMs = Opts.MaxRequestTimeoutMs;
  PersistentCache *PC = cacheFor(verifyJobFingerprint(*Req));
  VerifyWireResponse Resp = runVerifyJob(*Req, PC);
  if (PC && !Opts.CacheDir.empty()) {
    if (Status S = PC->flush(); !S.ok())
      std::fprintf(stderr,
                   "relaxc: warning: persistent cache not saved: %s\n",
                   S.message().c_str());
  }
  return Resp;
}

void VerifyServer::serveConnection(std::shared_ptr<Transport> Conn) {
  // Shard-serving context, warm across the frames of this connection —
  // one remote-pool slot maps to one connection, so this mirrors a pipe
  // worker's per-process warm state.
  ShardWorkerState Shard;
  for (;;) {
    if (Stopping.load())
      break;
    // Idle wait: a connected client may sit quiet between requests
    // indefinitely. Only once the first byte of a frame arrives does the
    // whole-frame deadline arm — the anti-slow-loris bound.
    pollfd P{Conn->recvFd(), POLLIN, 0};
    int R = ::poll(&P, 1, 250);
    if (R < 0 && errno != EINTR)
      break;
    if (R <= 0)
      continue;
    FrameRead F = Conn->recv(Opts.FrameReadTimeoutMs < 0
                                 ? Deadline::never()
                                 : Deadline::inMs(Opts.FrameReadTimeoutMs));
    if (F.eof())
      break;
    if (!F.ok()) {
      // Diagnose and drop the connection: after a framing error the
      // stream position is unrecoverable, but the daemon keeps serving
      // everyone else.
      VerifyWireResponse E;
      E.IsError = true;
      E.Error = "frame error: " + F.Message;
      (void)Conn->send(serializeVerifyResponse(E));
      break;
    }
    std::string Out;
    if (isShardRequestPayload(F.Payload)) {
      Out = serializeShardResponse(serveShardRequest(Shard, F.Payload));
    } else if (isVerifyRequestPayload(F.Payload)) {
      Out = serializeVerifyResponse(handleVerify(F.Payload));
    } else {
      VerifyWireResponse E;
      E.IsError = true;
      E.ExitStatus = 2;
      E.Error = "unrecognized request magic";
      Out = serializeVerifyResponse(E);
    }
    if (!Conn->send(Out).ok())
      break;
  }
  {
    std::lock_guard<std::mutex> L(M);
    --Active;
  }
  DrainCV.notify_all();
}

int VerifyServer::run() {
  while (!Stopping.load()) {
    Result<std::unique_ptr<Transport>> C = Listener.accept(Deadline::inMs(250));
    if (!C.ok())
      continue; // timeout tick (Stopping check) or a transient accept error
    {
      std::lock_guard<std::mutex> L(M);
      if (Active >= Opts.MaxConnections) {
        // Backpressure: refuse loudly and retryably rather than queueing
        // without bound. The kernel backlog is the only queue.
        VerifyWireResponse Busy;
        Busy.IsError = true;
        Busy.Retryable = true;
        Busy.Error = "server at capacity (" +
                     std::to_string(Opts.MaxConnections) +
                     " connections); retry";
        (void)(*C)->send(serializeVerifyResponse(Busy));
        continue; // transport destructor closes the connection
      }
      ++Active;
    }
    std::shared_ptr<Transport> Conn(std::move(*C));
    std::thread([this, Conn] { serveConnection(Conn); }).detach();
  }
  std::unique_lock<std::mutex> L(M);
  DrainCV.wait(L, [&] { return Active == 0; });
  return 0;
}
