//===- VerifyServer.h - Verification as a service ------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--serve=<addr>` daemon: a long-lived process accepting framed
/// requests over a Unix-domain or TCP socket (support/Transport.h) and
/// answering them with the same verifier the CLI runs. Two request kinds
/// share the wire, dispatched by payload magic:
///
/// * Shard discharge requests (solver/ShardPool.h wire) — so a daemon
///   doubles as a remote worker for `--remote-workers=`, with a warm
///   per-connection solver context like a pipe worker's.
/// * Verify requests — a whole program plus its solver configuration;
///   the response carries the driver-shaped report, diagnostics, and an
///   exit-code-style status (0 verified / 1 refuted / 2 static error /
///   3 gave up), so `relaxc verify f.rlx --connect=<addr>` is a drop-in
///   for a local run.
///
/// Warm state is chosen to keep verdicts bit-identical to a standalone
/// run: each verify request gets a FRESH AstContext (VC generation
/// through a reused context would drift the Interner's fresh counters —
/// x'1 becomes x'2 on the second run — breaking both report identity and
/// persistent-cache keys), while the per-configuration PersistentCache
/// persists across requests (its keys are printed formulas, portable
/// across contexts). Backpressure is a bounded connection count: a
/// request past it is refused with a *retryable* error response instead
/// of queueing unboundedly.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SERVER_VERIFYSERVER_H
#define RELAXC_SERVER_VERIFYSERVER_H

#include "solver/CachingSolver.h"
#include "solver/Portfolio.h"
#include "solver/ShardPool.h"
#include "support/PersistentCache.h"
#include "support/Transport.h"
#include "vcgen/Verifier.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

namespace relax {

//===----------------------------------------------------------------------===//
// Shard-request serving (shared by the pipe worker, the socket worker,
// and the daemon)
//===----------------------------------------------------------------------===//

/// Persistent across requests of one worker/connection: the context's
/// hash-cons tables, compiled formula programs, and Z3 term memos
/// amortize over the obligations one shard serves. Rebuilt when a
/// request changes the solver configuration. Safe to keep warm — shard
/// queries never run VC generation, so the fresh-counter caveat above
/// does not apply to this state.
struct ShardWorkerState {
  std::string ConfigKey;
  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<PortfolioSolver> Port;
};

/// Answers one shard discharge request (every malformed payload becomes
/// a diagnosed error response, never a crash).
ShardResponse serveShardRequest(ShardWorkerState &W, std::string_view Payload);

/// Payload-magic dispatch for a multiplexed server loop.
bool isShardRequestPayload(std::string_view Payload);
bool isVerifyRequestPayload(std::string_view Payload);

//===----------------------------------------------------------------------===//
// The verify wire
//===----------------------------------------------------------------------===//

/// One whole verification job: the program source plus every
/// verdict-relevant CLI knob. Field defaults mirror the CLI's.
struct VerifyWireRequest {
  std::string FileName = "<request>"; ///< diagnostics rendering only
  std::string Source;                 ///< the program text, verbatim
  std::string SolverName = "z3";      ///< single-backend mode
  std::string Pipeline;               ///< tier spec; "" = single backend
  uint64_t BoundedSteps = 200'000;
  bool BoundedLearning = true;
  bool BoundedRestarts = true;
  uint64_t BoundedMaxNogoods = 10'000;
  unsigned Jobs = 1;
  unsigned SolverJobs = 1;
  int64_t TimeoutMs = -1;   ///< request-scoped global deadline (< 0 none)
  int64_t VcTimeoutMs = -1; ///< per-obligation budget (< 0 none)
  bool NoSafety = false;
  bool OriginalOnly = false;
  bool Verbose = false;
  bool SolverStats = false;
};

std::string serializeVerifyRequest(const VerifyWireRequest &R);
Result<VerifyWireRequest> parseVerifyRequest(std::string_view Payload);

/// The daemon's answer. On success, Report/Diagnostics are the exact
/// bytes a standalone `relaxc verify` would have written to
/// stdout/stderr, and ExitStatus is the exit code it would have
/// returned. On IsError, ExitStatus classifies the failure the same way
/// (2 = request was malformed, 3 = the service could not answer);
/// Retryable marks transient refusals (the daemon at capacity).
struct VerifyWireResponse {
  int ExitStatus = 3;
  bool IsError = false;
  bool Retryable = false;
  std::string Error;
  std::string Diagnostics;
  std::string Report;
};

std::string serializeVerifyResponse(const VerifyWireResponse &R);
Result<VerifyWireResponse> parseVerifyResponse(std::string_view Payload);

//===----------------------------------------------------------------------===//
// The job runner and its stats renderers (shared with the CLI, so a
// served report is byte-identical to a local one)
//===----------------------------------------------------------------------===//

/// The `--solver-stats` block as a string. \p Tiers is the effective
/// chain ("" pipeline = empty vector = single-backend branch); \p Cached
/// may be null in pipeline mode (its counters only print single-backend).
std::string renderSolverStats(const std::string &BackendName,
                              const std::vector<TierKind> &Tiers,
                              const DischargeStats &S,
                              const CachingSolver *Cached,
                              const PersistentCache *PCache);

/// The `--solver-stats` per-procedure obligation counts as a string.
std::string renderProcObligations(const VerifyReport &Report);

/// The persistent-cache config fingerprint of a request, computed
/// exactly as the CLI computes it for the same flags — a daemon given
/// the CLI's --cache-dir= shares its on-disk entries. Empty when the
/// request's pipeline does not parse (the job will diagnose it).
std::string verifyJobFingerprint(const VerifyWireRequest &R);

/// Runs one verification job start to finish in a fresh AstContext.
/// \p PCache may be null; when set it fronts the run's shared result
/// cache (this is the daemon's warm state).
VerifyWireResponse runVerifyJob(const VerifyWireRequest &R,
                                PersistentCache *PCache);

//===----------------------------------------------------------------------===//
// The daemon
//===----------------------------------------------------------------------===//

struct VerifyServerOptions {
  std::string Address;          ///< unix:<path> or host:port (0 = ephemeral)
  unsigned MaxConnections = 8;  ///< concurrent connections; more are refused
  int AcceptBacklog = 16;       ///< kernel accept queue (the only queue)
  /// Whole-frame read budget once a request's first byte arrives: the
  /// anti-slow-loris bound. Idle connections may wait indefinitely.
  int FrameReadTimeoutMs = 30'000;
  /// Cap on any request's TimeoutMs (< 0 = no cap): requests asking for
  /// more (or for no deadline) are clamped, so one client cannot pin a
  /// handler thread forever.
  int64_t MaxRequestTimeoutMs = -1;
  std::string CacheDir; ///< persistent verdict cache ("" = in-memory warm)
};

class VerifyServer {
public:
  /// Binds the address; fails only on bind/grammar errors.
  static Result<std::unique_ptr<VerifyServer>> create(VerifyServerOptions O);
  ~VerifyServer();

  /// The resolved address (TCP port 0 becomes the real ephemeral port).
  const std::string &boundAddress() const { return Listener.address(); }

  /// Serves until requestStop(), then drains in-flight connections.
  /// Returns 0 (kept int-shaped for the driver's exit-code discipline).
  int run();

  /// Thread- and signal-safe stop request; run() notices within ~250ms.
  void requestStop() { Stopping.store(true); }

private:
  VerifyServer() = default;

  void serveConnection(std::shared_ptr<Transport> Conn);
  VerifyWireResponse handleVerify(std::string_view Payload);
  PersistentCache *cacheFor(const std::string &Fingerprint);

  VerifyServerOptions Opts;
  SocketListener Listener;
  std::atomic<bool> Stopping{false};
  std::mutex M;
  std::condition_variable DrainCV;
  unsigned Active = 0;
  std::mutex CacheM;
  std::map<std::string, std::unique_ptr<PersistentCache>> Caches;
};

} // namespace relax

#endif // RELAXC_SERVER_VERIFYSERVER_H
