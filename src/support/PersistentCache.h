//===- PersistentCache.h - On-disk verdict cache -------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed, on-disk cache of settled solver verdicts, fronting
/// the in-memory shared result cache so a warm re-run of an edited program
/// only re-discharges obligations whose formulas actually changed
/// (`--cache-dir=`).
///
/// ## Key discipline
///
/// Keys are opaque strings built by the discharge layer
/// (`persistentCacheKey` in vcgen/Discharge.h) from three parts:
///
///   * a pipeline-config fingerprint (`portfolioConfigFingerprint`), so a
///     verdict proved under one solver strength is never served to a
///     differently configured run;
///   * the free variables' kind declarations, sorted;
///   * the canonical printed `.rlx` serialization of every formula in the
///     query, sorted.
///
/// The printed form — the same serialization the shard wire protocol
/// proved total — is what makes keys process-portable: `Symbol` ids are
/// declaration-order nominal and `structuralHash` values incorporate
/// them, so neither is a safe on-disk identity. Entries are matched by
/// the full key text (exact string equality), so a hash collision cannot
/// alias two queries.
///
/// ## What is never persisted
///
/// Only final Sat/Unsat verdicts are stored. `Unknown` covers every
/// give-up shape (budget trips, deadline expiry, solver "unknown"), all
/// of which are either time-dependent or solver-strength-dependent — a
/// later run with more time or a stronger backend must recompute them.
/// Callers additionally filter deadline verdicts before insert, mirroring
/// the in-memory cache's rule.
///
/// ## File format and corruption tolerance
///
/// One file, `<dir>/verdicts.rlxcache`: a header line, then crc-checked
/// length-prefixed records appended as runs finish. *Any* corruption —
/// truncated header, garbage record, partial final append, crc mismatch,
/// conflicting duplicate — loads as a fully cold cache (never an error,
/// never a served bad verdict) and schedules a fresh rewrite on the next
/// flush. A cache file is a pure accelerator: losing it costs solver
/// time, trusting a damaged one could cost soundness, so the policy is
/// maximally suspicious.
///
/// ## Verify-on-hit sampling
///
/// With a nonzero parts-per-million rate (`--cache-verify=<ppm>`), a
/// deterministic sample of lookups decline their hit so the caller
/// re-discharges the query; the recomputed verdict is checked against the
/// stored one at insert time and any divergence hard-fails through the
/// divergence handler (default: report and abort). The sample is a pure
/// function of the key, so repeated runs audit the same entries.
///
/// Thread-safe: all public methods lock an internal mutex (lookups come
/// from concurrent discharge workers via SharedSolverCache).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_PERSISTENTCACHE_H
#define RELAXC_SUPPORT_PERSISTENTCACHE_H

#include "solver/Solver.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace relax {

/// Counters of one cache's lifetime, for the `--solver-stats` block.
struct PersistentCacheStats {
  uint64_t Loaded = 0;        ///< entries read from disk at load()
  uint64_t Hits = 0;          ///< lookups served from the store
  uint64_t Misses = 0;        ///< lookups that found nothing
  uint64_t Appended = 0;      ///< fresh verdicts recorded this process
  uint64_t VerifySampled = 0; ///< hits withheld for re-discharge
  uint64_t VerifiedHits = 0;  ///< sampled hits whose recomputation matched
  bool LoadCorrupt = false;   ///< load() found damage and went cold
  std::string LoadDetail;     ///< what the damage was (diagnostic only)
};

/// The on-disk verdict cache (see the file comment).
class PersistentCache {
public:
  /// Called when a recomputed verdict contradicts a stored one — a
  /// soundness alarm, not a recoverable condition.
  using DivergenceHandler = std::function<void(
      const std::string &Key, SatResult Stored, SatResult Recomputed)>;

  /// \p Dir is created (one level) at flush time if missing.
  /// \p ConfigFingerprint (see `portfolioConfigFingerprint`) becomes the
  /// first line of every key built against this cache. \p VerifyPpm is
  /// the verify-on-hit sampling rate in parts per million (0 = off).
  PersistentCache(std::string Dir, std::string ConfigFingerprint,
                  uint64_t VerifyPpm = 0);

  /// `<dir>/verdicts.rlxcache`.
  const std::string &filePath() const { return Path; }

  /// The pipeline-config fingerprint keys are built against.
  const std::string &fingerprint() const { return Fingerprint; }

  /// Reads the cache file. A missing file is simply cold; any corruption
  /// is also cold (stats().LoadCorrupt set, rewrite scheduled). Always
  /// succeeds — a damaged accelerator must never fail the run.
  void load();

  /// Returns the stored verdict for \p Key, or nullopt on a miss — or on
  /// a verify-sampled hit, which the caller must then recompute.
  std::optional<SatResult> lookup(const std::string &Key);

  /// Records \p R for \p Key. Unknown is never persisted (the never-
  /// persist-gave-up rule). A conflicting existing entry triggers the
  /// divergence handler; a matching one on a verify-sampled key counts as
  /// a verified hit.
  void insert(const std::string &Key, SatResult R);

  /// Writes pending entries: an append of the fresh records normally, a
  /// full temp-file-and-rename rewrite after a corrupt load. Failure
  /// (disk full, injected cache-write fault) leaves verdicts unaffected —
  /// callers warn and move on.
  Status flush();

  /// Replaces the default report-and-abort divergence handler (tests).
  void setDivergenceHandler(DivergenceHandler H);

  PersistentCacheStats stats() const;

  /// Whether \p Key falls in the verify-on-hit sample for \p Ppm — pure,
  /// so tests can pin the sample.
  static bool sampledForVerify(const std::string &Key, uint64_t Ppm);

private:
  std::string Dir;
  std::string Path;
  std::string Fingerprint;
  uint64_t VerifyPpm;
  DivergenceHandler OnDivergence;

  mutable std::mutex M;
  /// Ordered so a rewrite emits records deterministically.
  std::map<std::string, SatResult> Entries;
  /// Keys inserted this process, in insertion order (the append batch).
  std::vector<std::string> Fresh;
  /// Keys whose hit was withheld for verification; cleared as the
  /// recomputed verdicts arrive.
  std::set<std::string> AwaitingVerify;
  bool RewriteNeeded = false;
  PersistentCacheStats St;

  void goColdLocked(const std::string &Detail);
  Status writeAllLocked();
  Status appendLocked();
};

} // namespace relax

#endif // RELAXC_SUPPORT_PERSISTENTCACHE_H
