//===- HashConsTable.h - Open-addressed hash-consing table ---------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe table behind AstContext's hash-consing factories. An
/// open-addressed, linear-probing set of (hash, node) slots tuned for the
/// factory hot path: a hit costs one mixed index plus a short scan of
/// inline slots, no per-node heap allocation (unlike a bucketed
/// unordered_map), and insertion never invalidates the consed nodes
/// themselves (they live in the AstContext arena). Nodes are never removed:
/// the table only grows, mirroring the arena's monotonic lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_HASHCONSTABLE_H
#define RELAXC_SUPPORT_HASHCONSTABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relax {

/// An open-addressed (hash -> node) set with linear probing.
template <typename NodeT> class HashConsTable {
public:
  /// Returns the interned node with hash \p H accepted by \p Matches, or
  /// nullptr. \p Matches is only called on candidates whose full 64-bit
  /// hash equals \p H.
  template <typename MatchFn>
  const NodeT *find(uint64_t H, MatchFn Matches) const {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = static_cast<size_t>(H) & Mask;; I = (I + 1) & Mask) {
      const Slot &S = Slots[I];
      if (!S.Node)
        return nullptr;
      if (S.Hash == H && Matches(S.Node))
        return S.Node;
    }
  }

  /// Interns \p N under hash \p H. The caller has already established via
  /// find() that no equivalent node is present.
  void insert(uint64_t H, const NodeT *N) {
    if ((Count + 1) * 4 >= Slots.size() * 3) // load factor 3/4
      grow();
    place(H, N);
    ++Count;
  }

  size_t size() const { return Count; }

private:
  struct Slot {
    uint64_t Hash = 0;
    const NodeT *Node = nullptr;
  };

  void place(uint64_t H, const NodeT *N) {
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(H) & Mask;
    while (Slots[I].Node)
      I = (I + 1) & Mask;
    Slots[I] = Slot{H, N};
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 1024 : Old.size() * 2, Slot());
    for (const Slot &S : Old)
      if (S.Node)
        place(S.Hash, S.Node);
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

} // namespace relax

#endif // RELAXC_SUPPORT_HASHCONSTABLE_H
