//===- Arena.cpp - Bump-pointer allocation --------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <algorithm>
#include <cassert>

using namespace relax;

void Arena::newSlab(size_t MinSize) {
  size_t Size = std::max(SlabSize, MinSize);
  Slabs.push_back(std::make_unique<char[]>(Size));
  Cur = Slabs.back().get();
  End = Cur + Size;
}

void *Arena::allocate(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
  size_t Needed = (Aligned - P) + Size;
  if (Cur == nullptr || static_cast<size_t>(End - Cur) < Needed) {
    newSlab(Size + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
  }
  Cur = reinterpret_cast<char *>(Aligned) + Size;
  BytesAllocated += Size;
  return reinterpret_cast<void *>(Aligned);
}
