//===- Diagnostics.h - Diagnostic reporting ----------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects parser/sema/verifier diagnostics with source locations and
/// renders them in the conventional `file:line:col: severity: message`
/// format (messages start lowercase and carry no trailing period, per the
/// LLVM error-message style).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_DIAGNOSTICS_H
#define RELAXC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace relax {

/// Severity of a diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics for one compilation/verification.
class DiagnosticEngine {
public:
  /// Sets the file name used when rendering diagnostics.
  void setFileName(std::string Name) { FileName = std::move(Name); }
  const std::string &fileName() const { return FileName; }

  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);
  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string render() const;

  /// Renders a single diagnostic.
  std::string render(const Diagnostic &D) const;

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Checkpoint/rollback support for speculative parsing: rollback removes
  /// every diagnostic reported after the checkpoint was taken.
  size_t checkpoint() const { return Diags.size(); }
  void rollback(size_t Checkpoint) {
    while (Diags.size() > Checkpoint) {
      if (Diags.back().Severity == DiagSeverity::Error)
        --NumErrors;
      Diags.pop_back();
    }
  }

private:
  std::string FileName = "<input>";
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace relax

#endif // RELAXC_SUPPORT_DIAGNOSTICS_H
