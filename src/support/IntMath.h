//===- IntMath.h - Shared integer arithmetic helpers ---------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Euclidean division and modulo with SMT-LIB semantics, shared by every
/// layer that folds or evaluates integer arithmetic (the logic simplifier,
/// the formula evaluator, the interpreter). Living in support/ keeps the
/// logic and solver libraries from re-implementing each other's two-liners.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_INTMATH_H
#define RELAXC_SUPPORT_INTMATH_H

#include <cstdint>

namespace relax {

/// Euclidean division (SMT-LIB semantics): the unique q in L = q*R + r with
/// 0 <= r < |R|. Division by zero yields 0 in the logic.
inline int64_t euclideanDiv(int64_t L, int64_t R) {
  if (R == 0)
    return 0;
  int64_t Rem = L % R; // truncated toward zero
  if (Rem < 0)
    Rem += R > 0 ? R : -R;
  return (L - Rem) / R;
}

/// Euclidean modulo: the unique r in L = q*R + r with 0 <= r < |R|.
/// Modulo by zero yields 0 in the logic.
inline int64_t euclideanMod(int64_t L, int64_t R) {
  if (R == 0)
    return 0;
  int64_t Rem = L % R; // truncated
  if (Rem < 0)
    Rem += R > 0 ? R : -R;
  return Rem;
}

} // namespace relax

#endif // RELAXC_SUPPORT_INTMATH_H
