//===- IntMath.h - Shared integer arithmetic helpers ---------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Euclidean division and modulo with SMT-LIB semantics, shared by every
/// layer that folds or evaluates integer arithmetic (the logic simplifier,
/// the formula evaluator, the interpreter). Living in support/ keeps the
/// logic and solver libraries from re-implementing each other's two-liners.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_INTMATH_H
#define RELAXC_SUPPORT_INTMATH_H

#include <cstdint>

namespace relax {

/// Two's-complement wrapping add/sub/mul. The logic has unbounded
/// integers and the verified workloads stay far from the int64 edges, but
/// the *random* property-test programs do not — evaluating them must be
/// well-defined (wrap) rather than UB, or the sanitizer configuration
/// cannot run the differential suites. Routing through uint64 makes the
/// wrap explicit and defined.
inline int64_t wrapAdd(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) +
                              static_cast<uint64_t>(R));
}
inline int64_t wrapSub(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) -
                              static_cast<uint64_t>(R));
}
inline int64_t wrapMul(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) *
                              static_cast<uint64_t>(R));
}

/// Euclidean division (SMT-LIB semantics): the unique q in L = q*R + r with
/// 0 <= r < |R|. Division by zero yields 0 in the logic. Defined for the
/// whole int64 range: the quotient is computed by adjusting truncated
/// division (never `(L - Rem) / R`, whose subtraction can leave int64),
/// and the one case whose true quotient is unrepresentable —
/// INT64_MIN / -1 = 2^63 — wraps to INT64_MIN like the evaluators above.
inline int64_t euclideanDiv(int64_t L, int64_t R) {
  if (R == 0)
    return 0;
  if (R == -1)
    return wrapSub(0, L);
  int64_t Q = L / R; // safe: (INT64_MIN, -1) is handled above
  if (L % R < 0)
    Q -= R > 0 ? 1 : -1; // |Q| <= 2^62 whenever |R| >= 2; R == 1 never adjusts
  return Q;
}

/// Euclidean modulo: the unique r in L = q*R + r with 0 <= r < |R|.
/// Modulo by zero yields 0 in the logic. The result is always
/// representable (0 <= r < 2^63); the adjustment wraps through uint64 so
/// |R| for R = INT64_MIN needs no signed negation.
inline int64_t euclideanMod(int64_t L, int64_t R) {
  if (R == 0)
    return 0;
  if (R == -1)
    return 0; // every integer is a multiple of -1; avoids INT64_MIN % -1 UB
  int64_t Rem = L % R; // truncated
  if (Rem < 0)
    Rem = wrapAdd(Rem, R > 0 ? R : wrapSub(0, R));
  return Rem;
}

} // namespace relax

#endif // RELAXC_SUPPORT_INTMATH_H
