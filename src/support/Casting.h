//===- Casting.h - isa/cast/dyn_cast without RTTI -----------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style checked casting built on each class's `classof` predicate.
/// AST nodes carry a Kind discriminator instead of C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_CASTING_H
#define RELAXC_SUPPORT_CASTING_H

#include <cassert>

namespace relax {

/// Returns true if \p Val dynamically is a To. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checking downcast; returns null when \p Val is not a To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace relax

#endif // RELAXC_SUPPORT_CASTING_H
