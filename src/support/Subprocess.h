//===- Subprocess.h - Child processes and pipe framing -------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process/pipe substrate of the sharded discharge tier: a small
/// fork/exec wrapper whose child speaks a length-prefixed frame protocol
/// over its stdin/stdout, plus the frame reader/writer both sides share.
///
/// ## Frame format
///
/// Every message is one frame: a 4-byte magic (`RLXF`), a 4-byte
/// little-endian payload length, then the payload bytes. The reader
/// distinguishes three outcomes — a complete frame, a clean end-of-stream
/// (EOF exactly on a frame boundary, the normal shutdown signal), and a
/// diagnosed error (bad magic, oversized length, EOF mid-frame, read
/// timeout). Truncated or garbage input must never be silently accepted
/// or hang the reader: the magic rejects garbage immediately, the length
/// cap rejects absurd frames before any allocation, and every read can
/// carry a poll(2) timeout.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_SUBPROCESS_H
#define RELAXC_SUPPORT_SUBPROCESS_H

#include "support/Deadline.h"
#include "support/Status.h"

#include <string>
#include <string_view>
#include <vector>

namespace relax {

/// Upper bound on a frame payload; a length prefix beyond this is
/// diagnosed as garbage rather than allocated.
constexpr size_t MaxFramePayload = 64u << 20; // 64 MiB

/// Outcome of readFrame.
struct FrameRead {
  enum class Kind : uint8_t {
    Ok,    ///< Payload holds one complete frame
    Eof,   ///< clean end-of-stream on a frame boundary
    Error, ///< Message diagnoses truncation / garbage / timeout
  };
  Kind K = Kind::Error;
  std::string Payload;
  std::string Message;

  bool ok() const { return K == Kind::Ok; }
  bool eof() const { return K == Kind::Eof; }
};

/// Writes one frame (magic + length + payload) to \p Fd, retrying short
/// writes. Fails on a closed/broken pipe.
Status writeFrame(int Fd, std::string_view Payload);

/// Reads one frame from \p Fd. \p TimeoutMs < 0 blocks indefinitely;
/// otherwise the WHOLE frame (header and payload) must arrive within
/// that budget before a timeout is diagnosed (the anti-hang guarantee
/// for garbage, trickling, or dead peers).
FrameRead readFrame(int Fd, int TimeoutMs = -1);

/// Deadline-aware variant: the frame must complete before \p D expires.
/// An unarmed deadline blocks indefinitely.
FrameRead readFrame(int Fd, const Deadline &D);

/// The per-poll timeout the frame reader uses under \p D: -1 when
/// unarmed, otherwise the remaining time clamped into poll(2)'s int
/// domain. Exposed for the overflow regression pin: a huge remainder
/// (up to an unarmed deadline's INT64_MAX) must clamp to INT_MAX, never
/// wrap negative into an accidental infinite poll.
int framePollTimeoutMs(const Deadline &D);

/// Absolute path of the running executable (/proc/self/exe on Linux,
/// falling back to \p Argv0 when the proc link is unavailable).
std::string currentExecutablePath(const char *Argv0 = nullptr);

/// A child process with pipes on its stdin and stdout (stderr is
/// inherited, so worker diagnostics land on the parent's stderr).
class Subprocess {
public:
  Subprocess() = default;
  ~Subprocess();
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;
  Subprocess(Subprocess &&O) noexcept { *this = std::move(O); }
  Subprocess &operator=(Subprocess &&O) noexcept;

  /// Fork/execs \p Exe with \p Args (argv[0] is supplied automatically).
  /// Any previous child is terminated first. With \p MergeStderr the
  /// child's stderr joins its stdout pipe (used by the CLI tests to
  /// assert on diagnostics); by default stderr is inherited.
  Status spawn(const std::string &Exe, const std::vector<std::string> &Args,
               bool MergeStderr = false);

  bool running() const { return Pid > 0; }
  int writeFd() const { return InFd; }
  int readFd() const { return OutFd; }

  /// Closes the child's stdin (signals end-of-requests to a frame loop).
  void closeStdin();

  /// SIGKILLs and reaps the child; safe to call when not running.
  void terminate();

  /// Closes stdin and reaps the child, returning its exit code (or -1
  /// for abnormal termination / no child).
  int waitForExit();

private:
  long Pid = -1;
  int InFd = -1;  ///< parent-side write end of the child's stdin
  int OutFd = -1; ///< parent-side read end of the child's stdout

  void reset();
};

} // namespace relax

#endif // RELAXC_SUPPORT_SUBPROCESS_H
