//===- Arena.h - Bump-pointer allocation -------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena that owns AST nodes and logic formulas. Nodes are
/// trivially freed all at once when the arena dies; destructors of allocated
/// objects are *not* run, so arena types must be trivially destructible or
/// must not own resources (our AST nodes store only Symbols, ints, and
/// pointers into the same arena).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_ARENA_H
#define RELAXC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace relax {

/// A monotonically growing bump allocator.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align);

  /// Constructs a T in the arena. T's destructor will not run.
  template <typename T, typename... Args> T *make(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return ::new (Mem) T(std::forward<Args>(As)...);
  }

  /// Copies an array of T into the arena and returns its start.
  template <typename T> T *copyArray(const T *Data, size_t Count) {
    if (Count == 0)
      return nullptr;
    void *Mem = allocate(sizeof(T) * Count, alignof(T));
    T *Out = static_cast<T *>(Mem);
    for (size_t I = 0; I != Count; ++I)
      ::new (static_cast<void *>(Out + I)) T(Data[I]);
    return Out;
  }

  /// Total bytes handed out so far (for statistics).
  size_t bytesAllocated() const { return BytesAllocated; }

private:
  static constexpr size_t SlabSize = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;

  void newSlab(size_t MinSize);
};

} // namespace relax

#endif // RELAXC_SUPPORT_ARENA_H
