//===- Deadline.h - Monotonic deadlines for bounded discharge ------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A copyable wall-clock deadline on the monotonic clock, threaded from
/// the driver's `--timeout-ms` / `--vc-timeout-ms` flags through the
/// discharge scheduler into every solver tier. Built on steady_clock so
/// NTP adjustments can neither extend nor shorten a verification budget.
///
/// Deadline verdicts are *time-dependent* gave-ups: they are reported
/// with reason "deadline", mapped to exit code 3, and — unlike every
/// other verdict — never inserted into any result cache (a later run
/// with more time must be free to do better).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_DEADLINE_H
#define RELAXC_SUPPORT_DEADLINE_H

#include <chrono>
#include <cstdint>

namespace relax {

/// A point on the monotonic clock that work must not run past. The
/// default-constructed value is unarmed ("never"): it never expires and
/// imposes no timeout, so unconditional `expired()` checks on hot paths
/// cost one branch when no deadline was requested.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// The unarmed deadline (same as default construction).
  static Deadline never() { return Deadline(); }

  /// A deadline \p Ms milliseconds from now. Ms <= 0 is already expired —
  /// `--timeout-ms=0` deterministically settles every obligation as a
  /// deadline gave-up, which is what the CLI exit-code pin relies on.
  static Deadline inMs(int64_t Ms) {
    Deadline D;
    D.IsArmed = true;
    D.When = Clock::now() + std::chrono::milliseconds(Ms < 0 ? 0 : Ms);
    return D;
  }

  bool armed() const { return IsArmed; }

  bool expired() const { return IsArmed && Clock::now() >= When; }

  /// Milliseconds until expiry: 0 when expired, INT64_MAX when unarmed.
  int64_t remainingMs() const {
    if (!IsArmed)
      return INT64_MAX;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        When - Clock::now());
    return Left.count() < 0 ? 0 : Left.count();
  }

  /// The tighter of two deadlines (unarmed loses to any armed one).
  static Deadline earliest(const Deadline &A, const Deadline &B) {
    if (!A.IsArmed)
      return B;
    if (!B.IsArmed)
      return A;
    return A.When <= B.When ? A : B;
  }

  /// Caps a poll-style timeout (-1 = infinite) by the time remaining, so
  /// blocking I/O under a deadline wakes up in time to give up cleanly.
  int clampTimeoutMs(int TimeoutMs) const {
    if (!IsArmed)
      return TimeoutMs;
    int64_t Left = remainingMs();
    int Capped = Left > INT32_MAX ? INT32_MAX : static_cast<int>(Left);
    return TimeoutMs < 0 || Capped < TimeoutMs ? Capped : TimeoutMs;
  }

private:
  bool IsArmed = false;
  Clock::time_point When{};
};

} // namespace relax

#endif // RELAXC_SUPPORT_DEADLINE_H
