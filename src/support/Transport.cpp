//===- Transport.cpp - Framed byte transports (pipes and sockets) -------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Transport.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace relax;

namespace {

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

void setCloexec(int Fd) { ::fcntl(Fd, F_SETFD, FD_CLOEXEC); }

/// Splits an endpoint into (IsUnix, host/path, port). Diagnoses the
/// grammar; `unix:` with an empty path and a TCP address without a port
/// are rejected here, before any syscall.
Status parseAddress(const std::string &Addr, bool &IsUnix, std::string &Host,
                    std::string &Port) {
  if (Addr.rfind("unix:", 0) == 0) {
    IsUnix = true;
    Host = Addr.substr(5);
    if (Host.empty())
      return Status::error("bad socket address '" + Addr +
                           "' (expected unix:<path>)");
    sockaddr_un SU;
    if (Host.size() >= sizeof(SU.sun_path))
      return Status::error("unix socket path '" + Host + "' exceeds the " +
                           std::to_string(sizeof(SU.sun_path) - 1) +
                           "-byte limit");
    return Status::success();
  }
  IsUnix = false;
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Addr.size())
    return Status::error("bad socket address '" + Addr +
                         "' (expected unix:<path> or host:port)");
  Host = Addr.substr(0, Colon);
  Port = Addr.substr(Colon + 1);
  for (char C : Port)
    if (C < '0' || C > '9')
      return Status::error("bad port in socket address '" + Addr + "'");
  return Status::success();
}

/// Waits until \p Fd is ready for \p Events or \p D expires.
/// Returns 1 ready, 0 timed out, -1 poll error (errno set).
int pollUntil(int Fd, short Events, const Deadline &D) {
  for (;;) {
    pollfd P{Fd, Events, 0};
    int R = ::poll(&P, 1, framePollTimeoutMs(D));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R > 0)
      return 1;
    if (!D.armed() || D.expired())
      return 0;
    // An INT_MAX-clamped wait elapsed before the deadline: poll again.
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// PipeTransport
//===----------------------------------------------------------------------===//

Status PipeTransport::send(std::string_view Payload) {
  if (WFd < 0)
    return Status::error("transport is closed");
  return writeFrame(WFd, Payload);
}

FrameRead PipeTransport::recv(const Deadline &D) {
  if (RFd < 0) {
    FrameRead F;
    F.Message = "transport is closed";
    return F;
  }
  return readFrame(RFd, D);
}

void PipeTransport::closeSend() {
  if (WFd >= 0 && Owns)
    ::close(WFd);
  WFd = -1;
}

void PipeTransport::close() {
  closeSend();
  if (RFd >= 0 && Owns)
    ::close(RFd);
  RFd = -1;
}

//===----------------------------------------------------------------------===//
// SocketTransport
//===----------------------------------------------------------------------===//

Status SocketTransport::send(std::string_view Payload) {
  if (Fd < 0)
    return Status::error("transport is closed");
  return writeFrame(Fd, Payload);
}

FrameRead SocketTransport::recv(const Deadline &D) {
  if (Fd < 0) {
    FrameRead F;
    F.Message = "transport is closed";
    return F;
  }
  return readFrame(Fd, D);
}

void SocketTransport::closeSend() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

void SocketTransport::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

//===----------------------------------------------------------------------===//
// connectSocket
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<Transport>> relax::connectSocket(const std::string &Addr,
                                                        int TimeoutMs) {
  using R = Result<std::unique_ptr<Transport>>;
  bool IsUnix = false;
  std::string Host, Port;
  if (Status S = parseAddress(Addr, IsUnix, Host, Port); !S.ok())
    return R(S);
  // Like the pipe side: a peer vanishing mid-write must surface as a
  // diagnosed EPIPE from the framing layer, never kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  Deadline D =
      TimeoutMs < 0 ? Deadline::never() : Deadline::inMs(TimeoutMs);

  auto FinishConnect = [&](int Fd, const sockaddr *SA,
                           socklen_t Len) -> Status {
    // Non-blocking connect bounded by the deadline, then back to
    // blocking mode for the framing layer's poll-gated reads.
    int Flags = ::fcntl(Fd, F_GETFL, 0);
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    int C = ::connect(Fd, SA, Len);
    if (C != 0 && errno != EINPROGRESS)
      return Status::error(errnoMessage("connect"));
    if (C != 0) {
      int P = pollUntil(Fd, POLLOUT, D);
      if (P < 0)
        return Status::error(errnoMessage("poll"));
      if (P == 0)
        return Status::error("timed out connecting to '" + Addr + "' after " +
                             std::to_string(TimeoutMs) + " ms");
      int Err = 0;
      socklen_t ErrLen = sizeof(Err);
      if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &ErrLen) != 0)
        return Status::error(errnoMessage("getsockopt"));
      if (Err != 0) {
        errno = Err;
        return Status::error(errnoMessage("connect"));
      }
    }
    ::fcntl(Fd, F_SETFL, Flags);
    return Status::success();
  };

  if (IsUnix) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return R::error(errnoMessage("socket"));
    setCloexec(Fd);
    sockaddr_un SU;
    std::memset(&SU, 0, sizeof(SU));
    SU.sun_family = AF_UNIX;
    std::memcpy(SU.sun_path, Host.c_str(), Host.size());
    if (Status S = FinishConnect(Fd, reinterpret_cast<sockaddr *>(&SU),
                                 sizeof(SU));
        !S.ok()) {
      ::close(Fd);
      return R::error("cannot connect to '" + Addr + "': " + S.message());
    }
    return R(std::make_unique<SocketTransport>(Fd));
  }

  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int G = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (G != 0)
    return R::error("cannot resolve '" + Addr + "': " + ::gai_strerror(G));
  Status Last = Status::error("no addresses resolved");
  for (addrinfo *A = Res; A; A = A->ai_next) {
    int Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0) {
      Last = Status::error(errnoMessage("socket"));
      continue;
    }
    setCloexec(Fd);
    if (Status S = FinishConnect(Fd, A->ai_addr, A->ai_addrlen); !S.ok()) {
      Last = S;
      ::close(Fd);
      continue;
    }
    // Frames are small request/response units; never batch them behind
    // Nagle's algorithm.
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    ::freeaddrinfo(Res);
    return R(std::make_unique<SocketTransport>(Fd));
  }
  ::freeaddrinfo(Res);
  return R::error("cannot connect to '" + Addr + "': " + Last.message());
}

//===----------------------------------------------------------------------===//
// SocketListener
//===----------------------------------------------------------------------===//

SocketListener &SocketListener::operator=(SocketListener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Addr = std::move(O.Addr);
    UnixPath = std::move(O.UnixPath);
    O.Fd = -1;
    O.UnixPath.clear();
  }
  return *this;
}

void SocketListener::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  if (!UnixPath.empty())
    ::unlink(UnixPath.c_str());
  UnixPath.clear();
}

Result<SocketListener> SocketListener::bind(const std::string &Addr,
                                            int Backlog) {
  using R = Result<SocketListener>;
  bool IsUnix = false;
  std::string Host, Port;
  if (Status S = parseAddress(Addr, IsUnix, Host, Port); !S.ok())
    return R(S);
  ::signal(SIGPIPE, SIG_IGN);

  SocketListener L;
  if (IsUnix) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return R::error(errnoMessage("socket"));
    setCloexec(Fd);
    sockaddr_un SU;
    std::memset(&SU, 0, sizeof(SU));
    SU.sun_family = AF_UNIX;
    std::memcpy(SU.sun_path, Host.c_str(), Host.size());
    // Unlink a stale path first: a restarted daemon/worker must rebind
    // the address its clients already hold (bind fails with EADDRINUSE
    // on an existing path even when nothing listens on it).
    ::unlink(Host.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&SU), sizeof(SU)) != 0) {
      Status S = Status::error(errnoMessage("bind"));
      ::close(Fd);
      return R::error("cannot bind '" + Addr + "': " + S.message());
    }
    if (::listen(Fd, Backlog) != 0) {
      Status S = Status::error(errnoMessage("listen"));
      ::close(Fd);
      ::unlink(Host.c_str());
      return R::error("cannot listen on '" + Addr + "': " + S.message());
    }
    L.Fd = Fd;
    L.Addr = Addr;
    L.UnixPath = Host;
    return R(std::move(L));
  }

  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  addrinfo *Res = nullptr;
  int G = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (G != 0)
    return R::error("cannot resolve '" + Addr + "': " + ::gai_strerror(G));
  Status Last = Status::error("no addresses resolved");
  for (addrinfo *A = Res; A; A = A->ai_next) {
    int Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0) {
      Last = Status::error(errnoMessage("socket"));
      continue;
    }
    setCloexec(Fd);
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, A->ai_addr, A->ai_addrlen) != 0 ||
        ::listen(Fd, Backlog) != 0) {
      Last = Status::error(errnoMessage("bind/listen"));
      ::close(Fd);
      continue;
    }
    // Report the resolved port (ephemeral when 0 was requested) so
    // tests and logs hold a connectable address.
    sockaddr_storage SS;
    socklen_t SSLen = sizeof(SS);
    unsigned BoundPort = 0;
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &SSLen) == 0) {
      if (SS.ss_family == AF_INET)
        BoundPort = ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
      else if (SS.ss_family == AF_INET6)
        BoundPort = ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
    }
    ::freeaddrinfo(Res);
    L.Fd = Fd;
    L.Addr = Host + ":" + std::to_string(BoundPort);
    return R(std::move(L));
  }
  ::freeaddrinfo(Res);
  return R::error("cannot bind '" + Addr + "': " + Last.message());
}

Result<std::unique_ptr<Transport>>
SocketListener::accept(const Deadline &D) {
  using R = Result<std::unique_ptr<Transport>>;
  if (Fd < 0)
    return R::error("listener is closed");
  int P = pollUntil(Fd, POLLIN, D);
  if (P < 0)
    return R::error(errnoMessage("poll"));
  if (P == 0)
    return R::error("timed out waiting for a connection");
  int C;
  while ((C = ::accept(Fd, nullptr, nullptr)) < 0 && errno == EINTR) {
  }
  if (C < 0)
    return R::error(errnoMessage("accept"));
  setCloexec(C);
  int One = 1;
  ::setsockopt(C, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return R(std::make_unique<SocketTransport>(C));
}
