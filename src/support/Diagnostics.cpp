//===- Diagnostics.cpp - Diagnostic reporting -------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace relax;

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  std::string Out = FileName;
  if (D.Loc.isValid()) {
    Out += ":" + std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Column);
  }
  Out += ": ";
  Out += severityName(D.Severity);
  Out += ": ";
  Out += D.Message;
  return Out;
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += render(D);
    Out += '\n';
  }
  return Out;
}
