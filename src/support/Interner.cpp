//===- Interner.cpp - String interning -------------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include <cassert>

using namespace relax;

Symbol Interner::intern(std::string_view Text) {
  auto It = Map.find(std::string(Text));
  if (It != Map.end())
    return Symbol(It->second);
  Texts.emplace_back(Text);
  uint32_t Id = static_cast<uint32_t>(Texts.size()); // ids start at 1
  Map.emplace(Texts.back(), Id);
  return Symbol(Id);
}

std::string_view Interner::text(Symbol S) const {
  assert(S.isValid() && "resolving an invalid symbol");
  assert(S.id() <= Texts.size() && "symbol from another interner");
  return Texts[S.id() - 1];
}

Symbol Interner::fresh(Symbol Base) {
  assert(Base.isValid() && "fresh() needs a valid base symbol");
  std::string BaseText(text(Base));
  // Strip a previous freshness suffix so repeated freshening stays short.
  if (size_t Pos = BaseText.find('\''); Pos != std::string::npos)
    BaseText.resize(Pos);
  for (;;) {
    std::string Candidate = BaseText + "'" + std::to_string(++FreshCounter);
    if (Map.find(Candidate) == Map.end())
      return intern(Candidate);
  }
}
