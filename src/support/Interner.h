//===- Interner.h - String interning ------------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbols are interned identifiers (variable names, relate labels). They
/// compare and hash as integers, which keeps AST/formula comparison cheap,
/// and they make fresh-name generation trivial.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_INTERNER_H
#define RELAXC_SUPPORT_INTERNER_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace relax {

/// An interned string. Only meaningful relative to the Interner that
/// produced it. The default-constructed Symbol is invalid.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Id != 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class Interner;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  uint32_t Id = 0;
};

/// Interns strings into Symbols and resolves them back.
class Interner {
public:
  Interner() = default;
  Interner(const Interner &) = delete;
  Interner &operator=(const Interner &) = delete;

  /// Returns the unique Symbol for \p Text, creating one if needed.
  Symbol intern(std::string_view Text);

  /// Returns the text of \p S. S must have come from this interner.
  std::string_view text(Symbol S) const;

  /// Creates a symbol whose name does not collide with any interned so far,
  /// derived from \p Base (e.g. "x" -> "x'1").
  Symbol fresh(Symbol Base);

  /// Number of distinct symbols interned.
  size_t size() const { return Texts.size(); }

private:
  std::unordered_map<std::string, uint32_t> Map;
  std::vector<std::string> Texts;
  uint32_t FreshCounter = 0;
};

} // namespace relax

template <> struct std::hash<relax::Symbol> {
  size_t operator()(relax::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.id());
  }
};

#endif // RELAXC_SUPPORT_INTERNER_H
