//===- Status.h - Error propagation without exceptions ----------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Status and Result<T>: lightweight success/error carriers used throughout
/// the library instead of exceptions. The Z3 backend catches z3::exception
/// at the boundary and converts it into a Status.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_STATUS_H
#define RELAXC_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace relax {

/// The outcome of an operation that can fail with a message.
class Status {
public:
  /// Creates a success value.
  static Status success() { return Status(); }

  /// Creates an error carrying a human-readable message.
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    return S;
  }

  bool ok() const { return !Message.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the error message. Only valid when !ok().
  const std::string &message() const {
    assert(!ok() && "no message on a success Status");
    return *Message;
  }

private:
  std::optional<std::string> Message;
};

/// Either a value of type T or an error message.
template <typename T> class Result {
public:
  /// Constructs a success result (implicit so `return Value;` works).
  Result(T Value) : Value(std::move(Value)) {}

  /// Constructs an error result from a failed Status.
  Result(Status S) : Err(std::move(S)) {
    assert(!Err.ok() && "Result constructed from a success Status");
  }

  /// Creates an error result carrying \p Message.
  static Result<T> error(std::string Message) {
    return Result<T>(Status::error(std::move(Message)));
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  const T &value() const & {
    assert(ok() && "accessing value of an error Result");
    return *Value;
  }
  T &value() & {
    assert(ok() && "accessing value of an error Result");
    return *Value;
  }
  T take() && {
    assert(ok() && "taking value of an error Result");
    return std::move(*Value);
  }

  const T &operator*() const & { return value(); }
  T &operator*() & { return value(); }
  const T *operator->() const { return &value(); }
  T *operator->() { return &value(); }

  const std::string &message() const { return Err.message(); }

  /// Returns the error as a Status (only valid when !ok()).
  const Status &status() const {
    assert(!ok() && "status() on a success Result");
    return Err;
  }

private:
  std::optional<T> Value;
  Status Err = Status::success();
};

} // namespace relax

#endif // RELAXC_SUPPORT_STATUS_H
