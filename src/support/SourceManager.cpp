//===- SourceManager.cpp - Source buffer ownership --------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cstdio>

using namespace relax;

void SourceManager::setBuffer(std::string NewName, std::string NewText) {
  Name = std::move(NewName);
  Text = std::move(NewText);
  indexLines();
}

Status SourceManager::loadFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::error("cannot open file '" + Path + "'");
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, N);
  std::fclose(F);
  setBuffer(Path, std::move(Data));
  return Status::success();
}

void SourceManager::indexLines() {
  LineStarts.clear();
  LineStarts.push_back(0);
  for (size_t I = 0, E = Text.size(); I != E; ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

SourceLoc SourceManager::locForOffset(size_t Offset) const {
  if (LineStarts.empty())
    return SourceLoc(1, 1);
  Offset = std::min(Offset, Text.size());
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Offset);
  size_t Line = static_cast<size_t>(It - LineStarts.begin()); // 1-based
  size_t LineStart = LineStarts[Line - 1];
  return SourceLoc(static_cast<uint32_t>(Line),
                   static_cast<uint32_t>(Offset - LineStart + 1));
}

std::string_view SourceManager::lineText(uint32_t Line) const {
  if (Line == 0 || Line > LineStarts.size())
    return {};
  size_t Begin = LineStarts[Line - 1];
  size_t End = Line < LineStarts.size() ? LineStarts[Line] : Text.size();
  while (End > Begin && (Text[End - 1] == '\n' || Text[End - 1] == '\r'))
    --End;
  return std::string_view(Text).substr(Begin, End - Begin);
}
