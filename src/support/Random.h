//===- Random.h - Deterministic pseudo-random engine --------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fast, seedable PRNG used by the random oracles and
/// the property-test workload generators. Deterministic across platforms so
/// test failures reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_RANDOM_H
#define RELAXC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace relax {

/// The SplitMix64 output permutation as a pure function: a statistically
/// strong 64-bit mix usable for stateless, counter-indexed draws (the fault
/// injector and the shard pool's respawn jitter hash a seed with a counter
/// instead of threading generator state through concurrent code paths).
inline uint64_t splitMixHash(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x243f6a8885a308d3ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return splitMixHash(State);
  }

  /// Uniform integer in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    if (Span == 0) // full 64-bit range
      return static_cast<int64_t>(next());
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// Bernoulli draw with probability Num/Den.
  bool nextBool(uint64_t Num = 1, uint64_t Den = 2) {
    assert(Den != 0 && Num <= Den && "probability out of range");
    return next() % Den < Num;
  }

private:
  uint64_t State;
};

} // namespace relax

#endif // RELAXC_SUPPORT_RANDOM_H
