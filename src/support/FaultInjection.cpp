//===- FaultInjection.cpp - Deterministic fault-injection registry -----------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Random.h"

#include <cstdlib>

namespace relax {

namespace {

constexpr uint32_t PpmScale = 1'000'000;

/// Parses a strict decimal u64 from [P, End); advances P past the digits.
bool parseU64(const char *&P, const char *End, uint64_t &Out) {
  if (P == End || *P < '0' || *P > '9')
    return false;
  uint64_t V = 0;
  while (P != End && *P >= '0' && *P <= '9') {
    uint64_t D = static_cast<uint64_t>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
    ++P;
  }
  Out = V;
  return true;
}

/// Parses a rate in [0, 1] written as `0`, `1`, `0.3`, `.25`, or `1.0`
/// (at most six fractional digits) into parts-per-million. Exact — no
/// floating point, so the armed rate is identical on every platform.
bool parseRatePpm(std::string_view Text, uint32_t &Out) {
  const char *P = Text.data(), *End = Text.data() + Text.size();
  uint64_t Whole = 0;
  bool HaveWhole = false;
  if (P != End && *P != '.') {
    if (!parseU64(P, End, Whole))
      return false;
    HaveWhole = true;
  }
  uint64_t Frac = 0;
  if (P != End && *P == '.') {
    ++P;
    unsigned Digits = 0;
    uint64_t Scale = PpmScale / 10;
    while (P != End && *P >= '0' && *P <= '9') {
      if (++Digits > 6)
        return false;
      Frac += static_cast<uint64_t>(*P - '0') * Scale;
      Scale /= 10;
      ++P;
    }
    if (Digits == 0)
      return false;
  } else if (!HaveWhole) {
    return false;
  }
  if (P != End)
    return false;
  uint64_t Ppm = Whole * PpmScale + Frac;
  if (Ppm > PpmScale)
    return false;
  Out = static_cast<uint32_t>(Ppm);
  return true;
}

bool lookupSite(std::string_view Key, unsigned &Index) {
  for (unsigned I = 0; I != NumFaultSites; ++I)
    if (Key == faultSiteName(static_cast<FaultSite>(I))) {
      Index = I;
      return true;
    }
  return false;
}

} // namespace

const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::FrameRead:
    return "frame-read";
  case FaultSite::FrameWrite:
    return "frame-write";
  case FaultSite::WorkerSpawn:
    return "worker-spawn";
  case FaultSite::WorkerExit:
    return "worker-exit";
  case FaultSite::SolverCall:
    return "solver-call";
  case FaultSite::ResponseDelay:
    return "response-delay";
  case FaultSite::CacheRead:
    return "cache-read";
  case FaultSite::CacheWrite:
    return "cache-write";
  case FaultSite::DeadlinePoll:
    return "deadline-poll";
  }
  return "?";
}

FaultRegistry &FaultRegistry::instance() {
  static FaultRegistry R;
  return R;
}

Status FaultRegistry::arm(std::string_view Spec) {
  // A failed arm must leave the registry disarmed (the header contract),
  // including one that had been armed before the bad spec arrived.
  disarm();

  uint64_t NewSeed = 0;
  int64_t NewDelayMs = 10;
  uint32_t NewRates[NumFaultSites] = {};

  if (Spec.empty())
    return Status::error("bad fault spec: empty spec");
  std::string_view Rest = Spec;
  for (bool More = true; More;) {
    size_t Comma = Rest.find(',');
    std::string_view Pair = Rest.substr(0, Comma);
    More = Comma != std::string_view::npos;
    Rest = More ? Rest.substr(Comma + 1) : std::string_view();
    size_t Eq = Pair.find('=');
    if (Eq == std::string_view::npos || Eq == 0)
      return Status::error("bad fault spec: expected key=value, got '" +
                           std::string(Pair) + "'");
    std::string_view Key = Pair.substr(0, Eq);
    std::string_view Value = Pair.substr(Eq + 1);
    if (Key == "seed" || Key == "delay-ms") {
      const char *P = Value.data(), *End = Value.data() + Value.size();
      uint64_t V = 0;
      if (!parseU64(P, End, V) || P != End)
        return Status::error("bad fault spec: '" + std::string(Key) +
                             "' wants an unsigned integer, got '" +
                             std::string(Value) + "'");
      if (Key == "seed")
        NewSeed = V;
      else
        NewDelayMs = static_cast<int64_t>(V);
      continue;
    }
    unsigned Index = 0;
    if (!lookupSite(Key, Index))
      return Status::error("bad fault spec: unknown key '" + std::string(Key) +
                           "'");
    if (!parseRatePpm(Value, NewRates[Index]))
      return Status::error("bad fault spec: rate for '" + std::string(Key) +
                           "' must be a decimal in [0, 1] with at most six "
                           "fractional digits, got '" +
                           std::string(Value) + "'");
  }

  Seed = NewSeed;
  DelayMs = NewDelayMs;
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    RatePpm[I] = NewRates[I];
    Draws[I].store(0, std::memory_order_relaxed);
    Fired[I].store(0, std::memory_order_relaxed);
  }
  SpecText = std::string(Spec);
  ArmedFlag.store(true, std::memory_order_release);
  return Status::success();
}

Status FaultRegistry::armFromEnvironment() {
  const char *Env = ::getenv("RELAXC_FAULTS");
  if (!Env || !*Env)
    return Status::success();
  return arm(Env);
}

void FaultRegistry::disarm() {
  ArmedFlag.store(false, std::memory_order_release);
  SpecText.clear();
}

bool FaultRegistry::draw(FaultSite S) {
  unsigned I = static_cast<unsigned>(S);
  // The draw index is claimed unconditionally so the (site, index) ->
  // fired mapping is stable regardless of rate tweaks at *other* sites.
  uint64_t N = Draws[I].fetch_add(1, std::memory_order_relaxed);
  uint32_t Rate = RatePpm[I];
  if (Rate == 0)
    return false;
  uint64_t V = splitMixHash(Seed ^ splitMixHash((uint64_t(I) + 1) << 56 | N));
  if (V % PpmScale >= Rate)
    return false;
  Fired[I].fetch_add(1, std::memory_order_relaxed);
  return true;
}

} // namespace relax
