//===- PersistentCache.cpp - On-disk verdict cache ----------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/PersistentCache.h"

#include "support/FaultInjection.h"
#include "support/Random.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include <sys/stat.h>
#include <unistd.h>

using namespace relax;

namespace {

const char *HeaderLine = "relaxc-verdict-cache 1\n";
const char *FileName = "verdicts.rlxcache";

/// CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320), table built on
/// first use. Local so the cache has no compression-library dependency.
uint32_t crc32Of(const char *Data, size_t Len) {
  static uint32_t Table[256];
  static bool Built = false;
  if (!Built) {
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Table[I] = C;
    }
    Built = true;
  }
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ static_cast<unsigned char>(Data[I])) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xFF));
  Out.push_back(static_cast<char>((V >> 8) & 0xFF));
  Out.push_back(static_cast<char>((V >> 16) & 0xFF));
  Out.push_back(static_cast<char>((V >> 24) & 0xFF));
}

uint32_t getU32(const char *P) {
  return static_cast<uint32_t>(static_cast<unsigned char>(P[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(P[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(P[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(P[3])) << 24;
}

/// A record payload: the verdict line, then the key text verbatim. The
/// key is self-delimiting because the record is length-prefixed.
std::string payloadFor(const std::string &Key, SatResult R) {
  std::string P = "verdict ";
  P += satResultName(R);
  P += '\n';
  P += Key;
  return P;
}

void frameRecord(std::string &Out, const std::string &Payload) {
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32Of(Payload.data(), Payload.size()));
  Out += Payload;
}

/// Writes \p Data to \p Path in mode \p Mode. With an armed cache-write
/// fault only a prefix reaches the disk — the on-disk shape of a crash
/// mid-append, which the next load must survive.
Status writeFileBytes(const std::string &Path, const char *Mode,
                      const std::string &Data) {
  bool Truncated = FaultRegistry::shouldFail(FaultSite::CacheWrite);
  size_t N = Truncated ? Data.size() / 2 : Data.size();
  std::FILE *F = std::fopen(Path.c_str(), Mode);
  if (!F)
    return Status::error("cannot open cache file '" + Path +
                         "': " + std::strerror(errno));
  bool WriteOk = std::fwrite(Data.data(), 1, N, F) == N;
  bool CloseOk = std::fclose(F) == 0;
  if (Truncated)
    return Status::error("injected cache-write fault (partial write)");
  if (!WriteOk || !CloseOk)
    return Status::error("short write to cache file '" + Path + "'");
  return Status::success();
}

void reportDivergenceAndAbort(const std::string &Key, SatResult Stored,
                              SatResult Recomputed) {
  std::fprintf(stderr,
               "relaxc: fatal: persistent cache divergence: stored verdict "
               "'%s' but re-discharge produced '%s' for key:\n%s",
               satResultName(Stored), satResultName(Recomputed), Key.c_str());
  std::abort();
}

} // namespace

PersistentCache::PersistentCache(std::string Dir,
                                 std::string ConfigFingerprint,
                                 uint64_t VerifyPpm)
    : Dir(std::move(Dir)), Fingerprint(std::move(ConfigFingerprint)),
      VerifyPpm(VerifyPpm), OnDivergence(reportDivergenceAndAbort) {
  Path = this->Dir + "/" + FileName;
  // Until load() parses a healthy file, the first flush writes it whole
  // (also the fresh-directory case, where there is nothing to append to).
  RewriteNeeded = true;
}

void PersistentCache::setDivergenceHandler(DivergenceHandler H) {
  std::lock_guard<std::mutex> L(M);
  OnDivergence = std::move(H);
}

PersistentCacheStats PersistentCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  return St;
}

bool PersistentCache::sampledForVerify(const std::string &Key, uint64_t Ppm) {
  if (Ppm == 0)
    return false;
  // FNV-1a over the key (stable across platforms, unlike std::hash), then
  // the SplitMix64 permutation to de-correlate the low bits the modulus
  // reads. Pure in the key, so every run audits the same entries.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Key)
    H = (H ^ static_cast<unsigned char>(C)) * 0x100000001b3ULL;
  return splitMixHash(H) % 1'000'000 < Ppm;
}

void PersistentCache::goColdLocked(const std::string &Detail) {
  Entries.clear();
  St.Loaded = 0;
  St.LoadCorrupt = true;
  St.LoadDetail = Detail;
  RewriteNeeded = true;
}

void PersistentCache::load() {
  std::lock_guard<std::mutex> L(M);
  Entries.clear();
  Fresh.clear();
  AwaitingVerify.clear();
  St = PersistentCacheStats{};
  RewriteNeeded = true;

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return; // no file yet: cold, not corrupt

  std::string Data;
  char Buf[1 << 16];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), F)) > 0;)
    Data.append(Buf, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);

  if (FaultRegistry::shouldFail(FaultSite::CacheRead))
    return goColdLocked("injected cache-read fault");
  if (!ReadOk)
    return goColdLocked("read error");

  const size_t HeaderLen = std::strlen(HeaderLine);
  if (Data.size() < HeaderLen ||
      std::memcmp(Data.data(), HeaderLine, HeaderLen) != 0)
    return goColdLocked("bad or truncated header");

  size_t Pos = HeaderLen;
  while (Pos != Data.size()) {
    if (Data.size() - Pos < 8)
      return goColdLocked("partial final append (truncated record header)");
    uint32_t Len = getU32(Data.data() + Pos);
    uint32_t Crc = getU32(Data.data() + Pos + 4);
    Pos += 8;
    if (Len == 0 || Len > Data.size() - Pos)
      return goColdLocked("partial final append (truncated record body)");
    const char *Payload = Data.data() + Pos;
    if (crc32Of(Payload, Len) != Crc)
      return goColdLocked("record crc mismatch");
    Pos += Len;

    std::string_view P(Payload, Len);
    size_t Nl = P.find('\n');
    if (Nl == std::string_view::npos || P.substr(0, 8) != "verdict ")
      return goColdLocked("malformed record");
    std::string_view Word = P.substr(8, Nl - 8);
    SatResult R;
    if (Word == "sat")
      R = SatResult::Sat;
    else if (Word == "unsat")
      R = SatResult::Unsat;
    else // includes "unknown": gave-ups must never have been persisted
      return goColdLocked("unknown verdict word '" + std::string(Word) + "'");
    std::string Key(P.substr(Nl + 1));
    if (Key.empty())
      return goColdLocked("record with empty key");
    auto [It, Inserted] = Entries.emplace(std::move(Key), R);
    if (!Inserted && It->second != R)
      return goColdLocked("conflicting duplicate records");
  }

  RewriteNeeded = false;
  St.Loaded = Entries.size();
}

std::optional<SatResult> PersistentCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> L(M);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++St.Misses;
    return std::nullopt;
  }
  if (sampledForVerify(Key, VerifyPpm)) {
    // Withhold the hit: the caller recomputes, and insert() checks the
    // fresh verdict against the stored one.
    if (AwaitingVerify.insert(Key).second)
      ++St.VerifySampled;
    return std::nullopt;
  }
  ++St.Hits;
  return It->second;
}

void PersistentCache::insert(const std::string &Key, SatResult R) {
  DivergenceHandler Diverged;
  SatResult Stored = SatResult::Unknown;
  {
    std::lock_guard<std::mutex> L(M);
    if (R == SatResult::Unknown)
      return; // gave-ups (budget, deadline, solver unknown) never persist
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      if (It->second != R) {
        Diverged = OnDivergence;
        Stored = It->second;
      } else if (AwaitingVerify.erase(Key)) {
        ++St.VerifiedHits;
      }
    } else {
      Entries.emplace(Key, R);
      Fresh.push_back(Key);
      ++St.Appended;
    }
  }
  // Outside the lock: the default handler aborts, and a test handler may
  // call back into the cache.
  if (Diverged)
    Diverged(Key, Stored, R);
}

Status PersistentCache::writeAllLocked() {
  std::string Data = HeaderLine;
  for (const auto &[Key, R] : Entries)
    frameRecord(Data, payloadFor(Key, R));
  // Temp-and-rename so a crash mid-rewrite leaves either the old file or
  // the new one, not a torn hybrid. (The injected cache-write fault
  // bypasses the discipline on purpose — it exists to produce the torn
  // file the loader must survive.)
  if (FaultRegistry::shouldFail(FaultSite::CacheWrite)) {
    std::string Half = Data.substr(0, Data.size() / 2);
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    if (F) {
      (void)!std::fwrite(Half.data(), 1, Half.size(), F);
      std::fclose(F);
    }
    return Status::error("injected cache-write fault (torn rewrite)");
  }
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  if (Status S = writeFileBytes(Tmp, "wb", Data); !S.ok()) {
    ::unlink(Tmp.c_str());
    return S;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return Status::error("cannot rename cache file into place: " +
                         std::string(std::strerror(errno)));
  }
  return Status::success();
}

Status PersistentCache::appendLocked() {
  std::string Data;
  for (const std::string &Key : Fresh)
    frameRecord(Data, payloadFor(Key, Entries.at(Key)));
  return writeFileBytes(Path, "ab", Data);
}

Status PersistentCache::flush() {
  std::lock_guard<std::mutex> L(M);
  if (!RewriteNeeded && Fresh.empty())
    return Status::success();
  if (::mkdir(Dir.c_str(), 0777) != 0 && errno != EEXIST)
    return Status::error("cannot create cache directory '" + Dir +
                         "': " + std::strerror(errno));
  Status S = RewriteNeeded ? writeAllLocked() : appendLocked();
  if (S.ok()) {
    RewriteNeeded = false;
    Fresh.clear();
  }
  return S;
}
