//===- SourceManager.h - Source buffer ownership -----------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the text of the file being compiled and maps byte offsets to
/// line/column SourceLocs for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_SOURCEMANAGER_H
#define RELAXC_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"
#include "support/Status.h"

#include <string>
#include <string_view>
#include <vector>

namespace relax {

/// Holds one source buffer and its line-start index.
class SourceManager {
public:
  /// Adopts \p Text as the buffer for \p Name.
  void setBuffer(std::string Name, std::string Text);

  /// Reads \p Path from disk into the buffer.
  Status loadFile(const std::string &Path);

  std::string_view buffer() const { return Text; }
  const std::string &name() const { return Name; }

  /// Converts a byte offset into a 1-based line/column location.
  SourceLoc locForOffset(size_t Offset) const;

  /// Returns the full text of 1-based line \p Line (without newline), or an
  /// empty view when out of range. Useful for caret diagnostics.
  std::string_view lineText(uint32_t Line) const;

private:
  std::string Name = "<input>";
  std::string Text;
  std::vector<size_t> LineStarts; // byte offset of each line start

  void indexLines();
};

} // namespace relax

#endif // RELAXC_SUPPORT_SOURCEMANAGER_H
