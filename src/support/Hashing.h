//===- Hashing.h - Hash combinators -------------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hash-combining helpers used for structural hashing of
/// AST nodes and formulas (solver result caching keys).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_HASHING_H
#define RELAXC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace relax {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // Constant is 2^64 / golden ratio.
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4);
  return Seed;
}

/// Finalizer from SplitMix64; spreads low-entropy inputs.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace relax

#endif // RELAXC_SUPPORT_HASHING_H
