//===- SourceLoc.h - Source locations and ranges ----------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates attached to tokens, AST nodes, formulas,
/// verification conditions, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_SOURCELOC_H
#define RELAXC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace relax {

/// A position in a source buffer: 1-based line and column.
///
/// An invalid (default-constructed) location has Line == 0 and is used for
/// synthesized constructs (builder-constructed ASTs, generated formulas).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend constexpr bool operator!=(SourceLoc A, SourceLoc B) {
    return !(A == B);
  }
  friend constexpr bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Column < B.Column;
  }
};

/// A half-open range of source positions [Begin, End).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  constexpr SourceRange() = default;
  constexpr SourceRange(SourceLoc Begin, SourceLoc End)
      : Begin(Begin), End(End) {}
  explicit constexpr SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  constexpr bool isValid() const { return Begin.isValid(); }
};

} // namespace relax

#endif // RELAXC_SUPPORT_SOURCELOC_H
