//===- PtrMap.h - Open-addressed pointer-keyed map -----------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The map behind AstContext's identity-keyed memo tables (simplification
/// results, free-variable lists). Keys are hash-consed node pointers; the
/// table is open-addressed with linear probing, so a hit costs one mixed
/// index plus a short inline scan — measurably cheaper on the simplifier
/// hot path than std::unordered_map's prime-modulo bucket chase. Entries
/// are never erased (memoized facts about immutable nodes stay true).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_PTRMAP_H
#define RELAXC_SUPPORT_PTRMAP_H

#include "support/Hashing.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relax {

/// An open-addressed (pointer -> value) map with linear probing.
template <typename KeyT, typename ValueT> class PtrMap {
public:
  /// Returns a pointer to K's value, or nullptr. The pointer is
  /// invalidated by the next insert — copy the value out immediately.
  const ValueT *find(const KeyT *K) const {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = indexOf(K, Mask);; I = (I + 1) & Mask) {
      const Slot &S = Slots[I];
      if (!S.Key)
        return nullptr;
      if (S.Key == K)
        return &S.Value;
    }
  }

  /// Inserts (K, V) if K is absent; keeps the existing value otherwise.
  void insert(const KeyT *K, ValueT V) {
    if ((Count + 1) * 4 >= Slots.size() * 3) // load factor 3/4
      grow();
    size_t Mask = Slots.size() - 1;
    size_t I = indexOf(K, Mask);
    while (Slots[I].Key) {
      if (Slots[I].Key == K)
        return;
      I = (I + 1) & Mask;
    }
    Slots[I].Key = K;
    Slots[I].Value = std::move(V);
    ++Count;
  }

  size_t size() const { return Count; }

private:
  struct Slot {
    const KeyT *Key = nullptr;
    ValueT Value{};
  };

  static size_t indexOf(const KeyT *K, size_t Mask) {
    return static_cast<size_t>(
               hashMix(reinterpret_cast<uintptr_t>(K) >> 4)) &
           Mask;
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 1024 : Old.size() * 2, Slot());
    size_t Mask = Slots.size() - 1;
    for (Slot &S : Old) {
      if (!S.Key)
        continue;
      size_t I = indexOf(S.Key, Mask);
      while (Slots[I].Key)
        I = (I + 1) & Mask;
      Slots[I] = std::move(S);
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

} // namespace relax

#endif // RELAXC_SUPPORT_PTRMAP_H
