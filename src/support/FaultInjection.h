//===- FaultInjection.h - Deterministic fault-injection registry ---*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, seed-driven fault registry that lets tests (and the
/// hidden `--faults=` driver flag) inject failures at the I/O and process
/// boundaries of the sharded discharge tier — frame reads/writes, worker
/// spawns, worker exits, solver calls, response delays — and at the
/// persistent verdict cache's file boundaries (corrupt loads, torn
/// writes).
///
/// ## Determinism
///
/// Every injection site draws by hashing `(seed, site, draw-index)` with
/// the pure SplitMix64 permutation, so whether draw N at a site fires is a
/// function of the spec alone — independent of thread interleaving, wall
/// time, and which other sites drew in between. A chaos run with a fixed
/// spec therefore kills the *same* requests on every execution, which is
/// what makes "reports are bit-identical to the fault-free run" a pinnable
/// property rather than a flake.
///
/// ## Spec grammar
///
/// Comma-separated `key=value` pairs:
///
///     seed=<u64>          hash seed (default 0)
///     delay-ms=<u64>      sleep length for response-delay fires (default 10)
///     <site>=<rate>       firing probability in [0, 1] as a decimal with
///                         up to six fractional digits (parsed exactly,
///                         into parts-per-million — no floating point)
///
/// Site names: `frame-read`, `frame-write`, `worker-spawn`, `worker-exit`,
/// `solver-call`, `response-delay`, `cache-read`, `cache-write`,
/// `deadline-poll`. Example:
///
///     RELAXC_FAULTS='seed=7,worker-exit=0.3,frame-write=0.05'
///
/// ## Cost when unarmed
///
/// `FaultRegistry::shouldFail` is a header-inline relaxed atomic load and
/// branch — effectively a no-op check — so production paths keep the call
/// unconditionally and pay nothing until a spec is armed.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_FAULTINJECTION_H
#define RELAXC_SUPPORT_FAULTINJECTION_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace relax {

/// The failure boundaries the registry can arm.
enum class FaultSite : uint8_t {
  FrameRead,     ///< readFrame reports an injected frame error
  FrameWrite,    ///< writeFrame reports an injected write error
  WorkerSpawn,   ///< ShardPool::spawnWorker fails before exec
  WorkerExit,    ///< a discharge worker dies instead of answering
  SolverCall,    ///< a worker's solver call answers with an error response
  ResponseDelay, ///< a worker sleeps `delay-ms` before answering
  CacheRead,     ///< PersistentCache::load treats the file as corrupt
  CacheWrite,    ///< PersistentCache::flush writes a torn prefix and errors
  DeadlinePoll,  ///< a bounded-search deadline poll observes an expiry
};
constexpr unsigned NumFaultSites = 9;

/// Spec-spelling of a site ("frame-read", ...).
const char *faultSiteName(FaultSite S);

/// The process-wide registry. Arm it once (from a spec string, the
/// RELAXC_FAULTS environment variable, or the hidden `--faults=` flag);
/// injection sites then consult `shouldFail` on their hot paths.
class FaultRegistry {
public:
  static FaultRegistry &instance();

  /// Hot-path draw: false immediately (one relaxed load) when unarmed.
  static bool shouldFail(FaultSite S) {
    FaultRegistry &R = instance();
    if (!R.ArmedFlag.load(std::memory_order_relaxed))
      return false;
    return R.draw(S);
  }

  /// Parses \p Spec (grammar above) and arms the registry, resetting all
  /// draw counters. Rejects unknown keys, malformed numbers, and rates
  /// outside [0, 1]; on error the registry is left disarmed.
  Status arm(std::string_view Spec);

  /// Arms from RELAXC_FAULTS when the variable is set and non-empty;
  /// success (and a no-op) otherwise.
  Status armFromEnvironment();

  /// Disarms and clears the spec. Draw counters keep their values so a
  /// test can still inspect how many faults fired.
  void disarm();

  bool armed() const { return ArmedFlag.load(std::memory_order_relaxed); }

  /// The spec string the last successful arm() accepted ("" if disarmed).
  const std::string &spec() const { return SpecText; }

  /// Sleep length, in milliseconds, for response-delay fires.
  int64_t delayMs() const { return DelayMs; }

  /// Number of draws taken at \p S since the last arm().
  uint64_t drawCount(FaultSite S) const {
    return Draws[static_cast<unsigned>(S)].load(std::memory_order_relaxed);
  }
  /// Number of those draws that fired.
  uint64_t firedCount(FaultSite S) const {
    return Fired[static_cast<unsigned>(S)].load(std::memory_order_relaxed);
  }

private:
  FaultRegistry() = default;

  bool draw(FaultSite S);

  std::atomic<bool> ArmedFlag{false};
  uint64_t Seed = 0;
  uint32_t RatePpm[NumFaultSites] = {};
  int64_t DelayMs = 10;
  std::string SpecText;
  std::atomic<uint64_t> Draws[NumFaultSites] = {};
  std::atomic<uint64_t> Fired[NumFaultSites] = {};
};

/// RAII arming for tests: arms in the constructor, disarms on scope exit
/// so a failed EXPECT cannot leak an armed registry into later tests.
class ScopedFaults {
public:
  explicit ScopedFaults(std::string_view Spec)
      : St(FaultRegistry::instance().arm(Spec)) {}
  ~ScopedFaults() { FaultRegistry::instance().disarm(); }
  ScopedFaults(const ScopedFaults &) = delete;
  ScopedFaults &operator=(const ScopedFaults &) = delete;

  /// Whether the spec parsed; tests should assert this.
  const Status &status() const { return St; }

private:
  Status St;
};

} // namespace relax

#endif // RELAXC_SUPPORT_FAULTINJECTION_H
