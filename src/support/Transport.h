//===- Transport.h - Framed byte transports (pipes and sockets) ----*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport abstraction of the discharge wire: one interface over
/// the magic+length-prefixed frame protocol (support/Subprocess.h), with
/// a pipe-pair implementation (the classic subprocess shard channel) and
/// a Unix-domain/TCP socket implementation (the remote shard tier and
/// the `--serve` daemon).
///
/// ## Invariants (see src/support/README.md, "Transport invariants")
///
/// * Frame totality: both implementations speak the identical frame
///   format through the one shared reader/writer, so a payload that
///   round-trips over pipes round-trips over sockets byte-for-byte.
/// * One-overall-deadline reads: `recv` bounds the WHOLE frame by a
///   single monotonic deadline — a peer trickling bytes cannot extend a
///   timed read, on either transport.
/// * A vanished peer is always a diagnosed outcome: clean EOF on a frame
///   boundary, a truncation/timeout error otherwise — never a hang and
///   never SIGPIPE (callers ignore it process-wide).
///
/// ## Addresses
///
/// Socket endpoints are written `unix:<path>` (an AF_UNIX path socket)
/// or `<host>:<port>` (TCP; `bind` accepts port 0 and reports the
/// resolved ephemeral port back through `address()`).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_SUPPORT_TRANSPORT_H
#define RELAXC_SUPPORT_TRANSPORT_H

#include "support/Subprocess.h"

#include <memory>

namespace relax {

/// One framed, bidirectional channel to a peer.
class Transport {
public:
  virtual ~Transport() = default;

  /// "pipe" or "socket" — diagnostics only; behavior is identical.
  virtual const char *kind() const = 0;

  /// Writes one frame; fails on a closed/broken channel.
  virtual Status send(std::string_view Payload) = 0;

  /// Reads one frame; the whole frame must complete before \p D expires.
  virtual FrameRead recv(const Deadline &D) = 0;

  /// Convenience: \p TimeoutMs < 0 blocks indefinitely.
  FrameRead recvMs(int TimeoutMs) {
    return recv(TimeoutMs < 0 ? Deadline::never() : Deadline::inMs(TimeoutMs));
  }

  /// The fd a caller may poll(2) for frame arrival (the serve loop's
  /// idle wait), or -1 once closed.
  virtual int recvFd() const = 0;

  /// Half-close: signals end-of-requests (EOF at the peer's recv) while
  /// keeping the receive side open for a final response.
  virtual void closeSend() = 0;

  virtual void close() = 0;
};

/// The classic stdin/stdout pipe pair of a subprocess worker.
class PipeTransport final : public Transport {
public:
  /// \p OwnsFds: close the fds on destruction (the worker side passes
  /// stdin/stdout, which it does not own).
  PipeTransport(int ReadFd, int WriteFd, bool OwnsFds)
      : RFd(ReadFd), WFd(WriteFd), Owns(OwnsFds) {}
  ~PipeTransport() override { close(); }

  const char *kind() const override { return "pipe"; }
  Status send(std::string_view Payload) override;
  FrameRead recv(const Deadline &D) override;
  int recvFd() const override { return RFd; }
  void closeSend() override;
  void close() override;

private:
  int RFd = -1;
  int WFd = -1;
  bool Owns = false;
};

/// A connected stream socket (AF_UNIX or TCP). Always owns its fd.
class SocketTransport final : public Transport {
public:
  explicit SocketTransport(int Fd) : Fd(Fd) {}
  ~SocketTransport() override { close(); }

  const char *kind() const override { return "socket"; }
  Status send(std::string_view Payload) override;
  FrameRead recv(const Deadline &D) override;
  int recvFd() const override { return Fd; }
  void closeSend() override;
  void close() override;

private:
  int Fd = -1;
};

/// Connects to \p Addr (`unix:<path>` or `host:port`) within
/// \p TimeoutMs (< 0 blocks). The returned transport has SIGPIPE
/// neutralized and close-on-exec set (spawned workers must not inherit
/// a sibling's connection).
Result<std::unique_ptr<Transport>> connectSocket(const std::string &Addr,
                                                 int TimeoutMs);

/// A listening socket (`--serve=`, `--discharge-worker --listen=`).
class SocketListener {
public:
  SocketListener() = default;
  ~SocketListener() { close(); }
  SocketListener(const SocketListener &) = delete;
  SocketListener &operator=(const SocketListener &) = delete;
  SocketListener(SocketListener &&O) noexcept { *this = std::move(O); }
  SocketListener &operator=(SocketListener &&O) noexcept;

  /// Binds and listens on \p Addr. A Unix path is unlinked first so a
  /// restarted server rebinds the address its clients already hold; a
  /// TCP port of 0 binds an ephemeral port, reported via address().
  static Result<SocketListener> bind(const std::string &Addr,
                                     int Backlog = 16);

  /// The resolved address, in the same grammar bind() accepts.
  const std::string &address() const { return Addr; }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Accepts one connection; an unarmed deadline blocks indefinitely.
  /// Expiry is diagnosed with a message containing "timed out".
  Result<std::unique_ptr<Transport>> accept(const Deadline &D = Deadline());

  void close();

private:
  int Fd = -1;
  std::string Addr;
  std::string UnixPath; ///< unlinked on close when non-empty
};

} // namespace relax

#endif // RELAXC_SUPPORT_TRANSPORT_H
