//===- Subprocess.cpp - Child processes and pipe framing ----------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "support/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace relax;

namespace {

const char FrameMagic[4] = {'R', 'L', 'X', 'F'};

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// Reads exactly \p N bytes into \p Buf. Returns the bytes read before a
/// clean EOF (so the caller can tell "EOF on a boundary" from "EOF
/// mid-record"), or -1 on error/timeout with \p Err set.
///
/// \p D bounds the WHOLE read, not each poll: every poll waits only for
/// what remains of the one overall deadline, so a peer trickling one
/// byte per poll interval cannot extend a "timed" read without bound.
/// \p BudgetMs is only quoted in the timeout diagnostic.
ssize_t readFull(int Fd, char *Buf, size_t N, const Deadline &D,
                 int64_t BudgetMs, std::string &Err) {
  size_t Got = 0;
  while (Got != N) {
    if (D.armed()) {
      pollfd P{Fd, POLLIN, 0};
      int R = ::poll(&P, 1, framePollTimeoutMs(D));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        Err = errnoMessage("poll");
        return -1;
      }
      if (R == 0) {
        // A huge remainder clamps to INT_MAX per poll; only an elapsed
        // deadline is a timeout, an elapsed clamp just polls again.
        if (!D.expired())
          continue;
        Err = "timed out waiting for a frame after " +
              std::to_string(BudgetMs) + " ms";
        return -1;
      }
    }
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoMessage("read");
      return -1;
    }
    if (R == 0)
      break; // EOF
    Got += static_cast<size_t>(R);
  }
  return static_cast<ssize_t>(Got);
}

/// The standard EINTR-proof child reap. A signal delivered during
/// waitpid (the scheduler's worker threads see profiling and test
/// signals) must never make a live child look abnormally dead to the
/// pool health machine.
pid_t waitpidRetry(pid_t Pid, int *St, int Flags) {
  pid_t R;
  while ((R = ::waitpid(Pid, St, Flags)) < 0 && errno == EINTR) {
  }
  return R;
}

} // namespace

int relax::framePollTimeoutMs(const Deadline &D) {
  // clampTimeoutMs caps the remainder into poll(2)'s int domain; the
  // naive static_cast<int>(remainingMs()) wrapped a huge remainder
  // (e.g. an unarmed deadline's INT64_MAX) negative, turning a timed
  // read into an accidental infinite block.
  return D.clampTimeoutMs(-1);
}

Status relax::writeFrame(int Fd, std::string_view Payload) {
  if (FaultRegistry::shouldFail(FaultSite::FrameWrite))
    return Status::error("injected frame-write fault");
  if (Payload.size() > MaxFramePayload)
    return Status::error("frame payload of " + std::to_string(Payload.size()) +
                         " bytes exceeds the " +
                         std::to_string(MaxFramePayload) + "-byte limit");
  char Header[8];
  std::memcpy(Header, FrameMagic, 4);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Header[4] = static_cast<char>(Len & 0xff);
  Header[5] = static_cast<char>((Len >> 8) & 0xff);
  Header[6] = static_cast<char>((Len >> 16) & 0xff);
  Header[7] = static_cast<char>((Len >> 24) & 0xff);

  auto WriteAll = [&](const char *Buf, size_t N) -> Status {
    size_t Done = 0;
    while (Done != N) {
      ssize_t R = ::write(Fd, Buf + Done, N - Done);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return Status::error(errnoMessage("write"));
      }
      Done += static_cast<size_t>(R);
    }
    return Status::success();
  };
  if (Status S = WriteAll(Header, sizeof(Header)); !S.ok())
    return S;
  return WriteAll(Payload.data(), Payload.size());
}

FrameRead relax::readFrame(int Fd, int TimeoutMs) {
  return readFrame(Fd, TimeoutMs < 0 ? Deadline::never()
                                     : Deadline::inMs(TimeoutMs));
}

FrameRead relax::readFrame(int Fd, const Deadline &D) {
  FrameRead Out;
  if (FaultRegistry::shouldFail(FaultSite::FrameRead)) {
    Out.Message = "injected frame-read fault";
    return Out;
  }
  // The whole frame — header and payload — runs under the one deadline
  // passed in; the remaining budget is quoted in timeout diagnostics.
  int64_t BudgetMs = D.remainingMs();
  char Header[8];
  std::string Err;
  ssize_t Got = readFull(Fd, Header, sizeof(Header), D, BudgetMs, Err);
  if (Got < 0) {
    Out.Message = Err;
    return Out;
  }
  if (Got == 0) {
    Out.K = FrameRead::Kind::Eof;
    return Out;
  }
  if (static_cast<size_t>(Got) != sizeof(Header)) {
    Out.Message = "truncated frame header (got " + std::to_string(Got) +
                  " of 8 bytes)";
    return Out;
  }
  if (std::memcmp(Header, FrameMagic, 4) != 0) {
    Out.Message = "bad frame magic (stream is not speaking the shard "
                  "discharge protocol)";
    return Out;
  }
  uint32_t Len = static_cast<uint8_t>(Header[4]) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[5])) << 8) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[6])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[7])) << 24);
  if (Len > MaxFramePayload) {
    Out.Message = "frame length " + std::to_string(Len) + " exceeds the " +
                  std::to_string(MaxFramePayload) + "-byte limit";
    return Out;
  }
  Out.Payload.resize(Len);
  if (Len != 0) {
    Got = readFull(Fd, Out.Payload.data(), Len, D, BudgetMs, Err);
    if (Got < 0) {
      Out.Payload.clear();
      Out.Message = Err;
      return Out;
    }
    if (static_cast<size_t>(Got) != Len) {
      Out.Payload.clear();
      Out.Message = "truncated frame payload (got " + std::to_string(Got) +
                    " of " + std::to_string(Len) + " bytes)";
      return Out;
    }
  }
  Out.K = FrameRead::Kind::Ok;
  return Out;
}

std::string relax::currentExecutablePath(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return std::string(Buf);
  }
  return Argv0 ? std::string(Argv0) : std::string();
}

//===----------------------------------------------------------------------===//
// Subprocess
//===----------------------------------------------------------------------===//

Subprocess::~Subprocess() { terminate(); }

Subprocess &Subprocess::operator=(Subprocess &&O) noexcept {
  if (this != &O) {
    terminate();
    Pid = O.Pid;
    InFd = O.InFd;
    OutFd = O.OutFd;
    O.Pid = -1;
    O.InFd = -1;
    O.OutFd = -1;
  }
  return *this;
}

void Subprocess::reset() {
  if (InFd >= 0)
    ::close(InFd);
  if (OutFd >= 0)
    ::close(OutFd);
  InFd = -1;
  OutFd = -1;
  Pid = -1;
}

Status Subprocess::spawn(const std::string &Exe,
                         const std::vector<std::string> &Args,
                         bool MergeStderr) {
  terminate();

  int ToChild[2];  // parent writes, child stdin
  int FromChild[2]; // child stdout, parent reads
  if (::pipe(ToChild) != 0)
    return Status::error(errnoMessage("pipe"));
  if (::pipe(FromChild) != 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return Status::error(errnoMessage("pipe"));
  }
  // Close-on-exec on every pipe end: a later sibling (e.g. another pool
  // worker) must not inherit this child's pipes, or closing the parent
  // write end would never deliver EOF to the child. The child's dup2
  // onto fds 0/1 clears the flag on the copies it actually uses.
  for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
    ::fcntl(Fd, F_SETFD, FD_CLOEXEC);

  // Everything the child needs is built BEFORE fork(): the parent may be
  // multithreaded (pool respawns run on scheduler workers), so between
  // fork and exec the child may only make async-signal-safe calls — a
  // malloc there can deadlock on a lock some other parent thread held at
  // fork time.
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 2);
  Argv.push_back(const_cast<char *>(Exe.c_str()));
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Child = ::fork();
  if (Child < 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    return Status::error(errnoMessage("fork"));
  }
  if (Child == 0) {
    // Child: wire the pipe ends onto stdin/stdout and exec.
    // Async-signal-safe calls only from here to execv/_exit.
    ::dup2(ToChild[0], STDIN_FILENO);
    ::dup2(FromChild[1], STDOUT_FILENO);
    if (MergeStderr)
      ::dup2(FromChild[1], STDERR_FILENO);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    ::execv(Exe.c_str(), Argv.data());
    // exec failed; report on the inherited stderr (static message — no
    // allocation) and die without running parent-state destructors.
    static const char Msg[] =
        "relaxc: error: exec of the subprocess executable failed\n";
    ssize_t Ignored = ::write(STDERR_FILENO, Msg, sizeof(Msg) - 1);
    (void)Ignored;
    ::_exit(127);
  }

  ::close(ToChild[0]);
  ::close(FromChild[1]);
  // A worker death must surface as a read/write error, not a SIGPIPE
  // kill of the whole verifier.
  ::signal(SIGPIPE, SIG_IGN);
  Pid = Child;
  InFd = ToChild[1];
  OutFd = FromChild[0];
  return Status::success();
}

void Subprocess::closeStdin() {
  if (InFd >= 0) {
    ::close(InFd);
    InFd = -1;
  }
}

void Subprocess::terminate() {
  if (Pid > 0) {
    ::kill(static_cast<pid_t>(Pid), SIGKILL);
    int St = 0;
    waitpidRetry(static_cast<pid_t>(Pid), &St, 0);
  }
  reset();
}

int Subprocess::waitForExit() {
  if (Pid <= 0)
    return -1;
  closeStdin();
  int St = 0;
  pid_t R = waitpidRetry(static_cast<pid_t>(Pid), &St, 0);
  int Code = (R > 0 && WIFEXITED(St)) ? WEXITSTATUS(St) : -1;
  Pid = -1;
  reset();
  return Code;
}
