//===- Value.h - Runtime values, states, outcomes ------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime representations for the dynamic semantics: values (integers and
/// fixed-length arrays), states σ (finite maps from variables to values),
/// observations (l, σ) emitted by `relate`, and output configurations
/// Φ = wr | ba | (σ, ψ) from Figure 3, extended with a tool-level `stuck`
/// outcome for oracle failure and fuel exhaustion (the paper's semantics is
/// a relation; an interpreter must answer even when it cannot decide which
/// rule applies).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_EVAL_VALUE_H
#define RELAXC_EVAL_VALUE_H

#include "ast/Program.h"
#include "solver/Solver.h"

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace relax {

/// A runtime array value: fixed length, int64 elements.
using ArrayValue = std::vector<int64_t>;

/// A runtime value.
class Value {
public:
  Value() : Data(int64_t(0)) {}
  /*implicit*/ Value(int64_t V) : Data(V) {}
  /*implicit*/ Value(ArrayValue V) : Data(std::move(V)) {}

  bool isInt() const { return std::holds_alternative<int64_t>(Data); }
  bool isArray() const { return !isInt(); }
  VarKind kind() const { return isInt() ? VarKind::Int : VarKind::Array; }

  int64_t asInt() const { return std::get<int64_t>(Data); }
  const ArrayValue &asArray() const { return std::get<ArrayValue>(Data); }
  ArrayValue &asArray() { return std::get<ArrayValue>(Data); }

  friend bool operator==(const Value &A, const Value &B) {
    return A.Data == B.Data;
  }
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

private:
  std::variant<int64_t, ArrayValue> Data;
};

/// A state σ: finite map from variables to values. std::map keeps
/// iteration deterministic for printing and hashing.
using State = std::map<Symbol, Value>;

/// One observation (l, σ) emitted by a relate statement.
struct Observation {
  Symbol Label;
  State Snapshot;
};

/// ψ: the observation list, in chronological order. (The paper's lists are
/// built head-most-recent; the compatibility relation only compares the
/// two executions' lists pointwise, so a consistent order is all that
/// matters.)
using ObservationList = std::vector<Observation>;

/// Output configuration kinds.
enum class OutcomeKind {
  Ok,    ///< ⟨σ, ψ⟩: successful termination
  Wr,    ///< wr: assertion failure, unsatisfiable havoc, or runtime trap
  Ba,    ///< ba: assume failure
  Stuck, ///< tool-level: oracle gave up or fuel ran out (not part of Φ)
};

/// Returns "ok" / "wr" / "ba" / "stuck".
const char *outcomeKindName(OutcomeKind K);

/// The result of evaluating a statement.
struct Outcome {
  OutcomeKind Kind = OutcomeKind::Ok;
  State FinalState;          ///< valid when Kind == Ok
  ObservationList Observations;
  SourceLoc ErrorLoc;        ///< where the error arose (Wr/Ba/Stuck)
  std::string Reason;        ///< human-readable error description

  bool ok() const { return Kind == OutcomeKind::Ok; }
  /// err(φ) from Section 4: φ = wr or φ = ba.
  bool isError() const {
    return Kind == OutcomeKind::Wr || Kind == OutcomeKind::Ba;
  }
};

/// Builds a solver Model viewing \p S through execution tag \p Tag
/// (Plain for unary formulas, Orig/Rel for the two components of a pair).
Model stateToModel(const State &S, VarTag Tag);

/// Builds the two-state model (σo, σr) for relational formula evaluation.
Model pairToModel(const State &Orig, const State &Rel);

/// Renders a state for diagnostics: `{x = 3, A = [1, 2]}`.
std::string formatState(const Interner &Syms, const State &S);

} // namespace relax

#endif // RELAXC_EVAL_VALUE_H
