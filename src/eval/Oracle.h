//===- Oracle.h - Nondeterminism resolution -------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic semantics of `havoc (X) st (e)` (and `relax` in the relaxed
/// semantics) nondeterministically picks any post-state satisfying e. An
/// Oracle is the interpreter's strategy for making that pick. Oracles must
/// be faithful to the semantics:
///
///  * `Found` states must (a) satisfy the predicate and (b) differ from the
///    current state only on the statement's variable set X (the interpreter
///    re-validates both — a buggy oracle cannot corrupt an execution);
///  * `Unsat` may only be answered when *no* satisfying choice exists
///    (this is what makes the statement evaluate to `wr` per havoc-f);
///  * `Unknown` means the strategy failed; the interpreter reports a
///    tool-level `stuck` outcome rather than mis-reporting `wr`.
///
/// Array lengths are execution-invariant, so choices preserve the length of
/// every array in X.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_EVAL_ORACLE_H
#define RELAXC_EVAL_ORACLE_H

#include "eval/Value.h"
#include "support/Random.h"

namespace relax {

class Solver;

/// A request to resolve one havoc/relax choice.
struct ChoiceRequest {
  const ChoiceStmtBase *Choice = nullptr; ///< the statement (vars + pred)
  const State *Current = nullptr;         ///< σ before the statement
  const Program *Prog = nullptr;          ///< for variable kinds
};

/// Status of an oracle answer.
enum class ChoiceStatus { Found, Unsat, Unknown };

/// An oracle answer.
struct ChoiceResult {
  ChoiceStatus Status = ChoiceStatus::Unknown;
  State NewState; ///< valid when Status == Found
};

/// Strategy interface for resolving nondeterminism.
class Oracle {
public:
  virtual ~Oracle();

  /// A short name for reports.
  virtual const char *name() const = 0;

  /// Picks a post-state for \p Req.
  virtual ChoiceResult choose(const ChoiceRequest &Req) = 0;
};

/// Prefers to change nothing: answers the current state when it already
/// satisfies the predicate (always true for `relax` reached by an original
/// execution of a verified program), otherwise Unknown. Makes the relaxed
/// semantics coincide with the original — the "zero relaxation" point of
/// the trade-off space.
class IdentityOracle : public Oracle {
public:
  const char *name() const override { return "identity"; }
  ChoiceResult choose(const ChoiceRequest &Req) override;
};

/// Randomized search: samples assignments for X uniformly from a window
/// around the current values; first satisfying sample wins. Never answers
/// Unsat (it cannot prove absence).
class RandomSearchOracle : public Oracle {
public:
  struct Options {
    uint64_t Seed = 1;
    unsigned MaxTries = 256;
    int64_t Window = 64; ///< samples come from [cur-Window, cur+Window]
  };

  RandomSearchOracle();
  explicit RandomSearchOracle(Options Opts) : Opts(Opts), Rng(Opts.Seed) {}

  const char *name() const override { return "random"; }
  ChoiceResult choose(const ChoiceRequest &Req) override;

private:
  Options Opts;
  SplitMix64 Rng;
};

/// Solver-backed oracle: encodes "frame variables keep their current
/// values, X free, predicate holds" and asks the solver for a model —
/// giving definite Unsat answers (the havoc-f rule) and witness diversity
/// via a few random pin-one-variable probes before the unconstrained query.
class SolverOracle : public Oracle {
public:
  struct Options {
    uint64_t Seed = 1;
    /// Number of randomized probe queries before the unconstrained one.
    unsigned DiversityProbes = 2;
    int64_t ProbeWindow = 32;
  };

  SolverOracle(AstContext &Ctx, Solver &S);
  SolverOracle(AstContext &Ctx, Solver &S, Options Opts)
      : Ctx(Ctx), TheSolver(S), Opts(Opts), Rng(Opts.Seed) {}

  const char *name() const override { return "solver"; }
  ChoiceResult choose(const ChoiceRequest &Req) override;

private:
  AstContext &Ctx;
  Solver &TheSolver;
  Options Opts;
  SplitMix64 Rng;

  /// Builds the frame/length constraints and the choice-variable set.
  void buildQuery(const ChoiceRequest &Req,
                  std::vector<const BoolExpr *> &Formulas, VarRefSet &Wanted);
};

/// Replays a fixed sequence of post-states (for tests and for reproducing
/// monitored executions). Answers Unknown when the script runs out.
class ReplayOracle : public Oracle {
public:
  explicit ReplayOracle(std::vector<State> Script)
      : Script(std::move(Script)) {}

  const char *name() const override { return "replay"; }
  ChoiceResult choose(const ChoiceRequest &Req) override;

private:
  std::vector<State> Script;
  size_t Next = 0;
};

/// Tries a primary oracle, then a fallback (e.g. identity then solver).
class ChainOracle : public Oracle {
public:
  ChainOracle(Oracle &First, Oracle &Second) : First(First), Second(Second) {}

  const char *name() const override { return "chain"; }
  ChoiceResult choose(const ChoiceRequest &Req) override {
    ChoiceResult R = First.choose(Req);
    if (R.Status != ChoiceStatus::Unknown)
      return R;
    return Second.choose(Req);
  }

private:
  Oracle &First;
  Oracle &Second;
};

} // namespace relax

#endif // RELAXC_EVAL_ORACLE_H
