//===- Interp.h - Dynamic original and relaxed semantics -----------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Big-step interpreter implementing the dynamic original semantics
/// (Figure 3) and the dynamic relaxed semantics (Figure 4). The two differ
/// in exactly one rule: `relax (X) st (e)` evaluates as `assert e` in the
/// original semantics and as `havoc (X) st (e)` in the relaxed semantics.
///
/// Dynamic expression evaluation *traps*: division/modulo by zero and
/// out-of-bounds array access yield `wr`, extending the paper's error model
/// to the array extension. Division follows the SMT-LIB Euclidean
/// convention so the dynamic and axiomatic semantics agree. Boolean
/// connectives are strict (both operands evaluate), matching the
/// denotational style of Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_EVAL_INTERP_H
#define RELAXC_EVAL_INTERP_H

#include "eval/Oracle.h"

namespace relax {

/// Which dynamic semantics to run.
enum class SemanticsMode : uint8_t {
  Original, ///< ⇓o: relax statements assert their predicates
  Relaxed,  ///< ⇓r: relax statements havoc their variables
};

/// Returns "original" or "relaxed".
const char *semanticsModeName(SemanticsMode M);

/// Interpreter limits.
struct InterpOptions {
  /// Statement-evaluation fuel; exhaustion yields a Stuck outcome. The
  /// paper restricts its results to terminating executions; fuel makes
  /// that decidable for the tool.
  uint64_t MaxSteps = 1'000'000;
};

/// Outcome of a trapping expression evaluation.
template <typename T> struct EvalResult {
  bool Trapped = false;
  T Val{};
  SourceLoc TrapLoc;
  std::string TrapReason;

  static EvalResult ok(T V) {
    EvalResult R;
    R.Val = std::move(V);
    return R;
  }
  static EvalResult trap(SourceLoc Loc, std::string Reason) {
    EvalResult R;
    R.Trapped = true;
    R.TrapLoc = Loc;
    R.TrapReason = std::move(Reason);
    return R;
  }
};

/// Evaluates a program integer expression under the dynamic (trapping)
/// semantics. \p S must bind every variable the expression references.
EvalResult<int64_t> evalDynExpr(const Expr *E, const State &S);

/// Evaluates a program boolean expression (quantifier-free, Plain-tagged).
EvalResult<bool> evalDynBool(const BoolExpr *B, const State &S);

/// Big-step interpreter for one program.
class Interp {
public:
  Interp(const Program &P, const Interner &Syms, Oracle &O,
         InterpOptions Opts = InterpOptions())
      : Prog(P), Syms(Syms), TheOracle(O), Opts(Opts) {}

  /// Evaluates the program body from \p Initial under \p Mode.
  /// \p Initial must bind exactly the declared variables with matching
  /// kinds; otherwise a Stuck outcome describes the mismatch.
  Outcome run(SemanticsMode Mode, const State &Initial);

  /// Evaluates an arbitrary statement of the program (used by the proof
  /// checker to validate individual derivation steps). Same initial-state
  /// validation as run().
  Outcome runStmt(SemanticsMode Mode, const Stmt *S, const State &Initial);

  /// Builds an all-zero initial state (arrays get \p DefaultArrayLen
  /// zeroed elements).
  static State zeroState(const Program &P, size_t DefaultArrayLen = 0);

private:
  const Program &Prog;
  const Interner &Syms;
  Oracle &TheOracle;
  InterpOptions Opts;

  SemanticsMode Mode = SemanticsMode::Original;
  uint64_t StepsLeft = 0;

  Outcome evalStmt(const Stmt *S, State Sigma);
  Outcome evalChoice(const ChoiceStmtBase *S, State Sigma);
  Outcome evalAssertLike(const BoolExpr *Pred, SourceLoc Loc, bool IsAssume,
                         State Sigma);

  Outcome wrOutcome(SourceLoc Loc, std::string Reason) const;
  Outcome baOutcome(SourceLoc Loc, std::string Reason) const;
  Outcome stuckOutcome(SourceLoc Loc, std::string Reason) const;
};

} // namespace relax

#endif // RELAXC_EVAL_INTERP_H
