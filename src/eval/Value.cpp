//===- Value.cpp - Runtime values, states, outcomes ---------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Value.h"

using namespace relax;

const char *relax::outcomeKindName(OutcomeKind K) {
  switch (K) {
  case OutcomeKind::Ok:
    return "ok";
  case OutcomeKind::Wr:
    return "wr";
  case OutcomeKind::Ba:
    return "ba";
  case OutcomeKind::Stuck:
    return "stuck";
  }
  return "?";
}

Model relax::stateToModel(const State &S, VarTag Tag) {
  Model M;
  for (const auto &[Name, V] : S) {
    if (V.isInt()) {
      M.Ints[VarRef{Name, Tag, VarKind::Int}] = V.asInt();
    } else {
      ArrayModelValue A;
      A.Length = static_cast<int64_t>(V.asArray().size());
      A.Elems = V.asArray();
      M.Arrays[VarRef{Name, Tag, VarKind::Array}] = std::move(A);
    }
  }
  return M;
}

Model relax::pairToModel(const State &Orig, const State &Rel) {
  Model M = stateToModel(Orig, VarTag::Orig);
  Model R = stateToModel(Rel, VarTag::Rel);
  M.Ints.insert(R.Ints.begin(), R.Ints.end());
  M.Arrays.insert(R.Arrays.begin(), R.Arrays.end());
  return M;
}

std::string relax::formatState(const Interner &Syms, const State &S) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, V] : S) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Syms.text(Name);
    Out += " = ";
    if (V.isInt()) {
      Out += std::to_string(V.asInt());
    } else {
      Out += "[";
      for (size_t I = 0, E = V.asArray().size(); I != E; ++I) {
        if (I)
          Out += ", ";
        Out += std::to_string(V.asArray()[I]);
      }
      Out += "]";
    }
  }
  Out += "}";
  return Out;
}
