//===- PairRunner.h - Lockstep pair execution and compatibility ----*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an original execution and a relaxed execution of the same program
/// and checks the observational-compatibility relation Γ |- ψ1 ∼ ψ2 of
/// Theorem 6: the two observation lists must pair up label-for-label, and
/// each relate predicate must hold on the corresponding state pair. This is
/// the dynamic counterpart of the static guarantee — the property tests use
/// it to validate the paper's metatheorems on thousands of executions.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_EVAL_PAIRRUNNER_H
#define RELAXC_EVAL_PAIRRUNNER_H

#include "eval/Interp.h"

#include <unordered_map>

namespace relax {

/// Γ: the label-to-relational-predicate map built by sema.
using RelateMap = std::unordered_map<Symbol, const BoolExpr *>;

/// Result of an observational-compatibility check.
struct CompatResult {
  bool Compatible = true;
  size_t ViolationIndex = 0; ///< index into the observation lists
  std::string Reason;
};

/// Checks Γ |- ψ1 ∼ ψ2 (Section 4, Theorem 6). ψ1 comes from the original
/// execution, ψ2 from the relaxed one.
CompatResult checkObservationalCompatibility(const RelateMap &Gamma,
                                             const ObservationList &Psi1,
                                             const ObservationList &Psi2,
                                             const Interner &Syms);

/// The outcome of one original/relaxed execution pair.
struct PairOutcome {
  Outcome Orig;
  Outcome Rel;
  /// Valid when both executions terminated successfully.
  CompatResult Compat;

  /// err(φo) / err(φr) in the sense of Section 4.
  bool origErred() const { return Orig.isError(); }
  bool relErred() const { return Rel.isError(); }
};

/// Draws a pseudo-random initial state that satisfies the program's
/// requires clause, by havocking every declared variable subject to the
/// clause through a SolverOracle (so different seeds explore the input
/// space). Arrays get length \p ArrayLen. Fails when the requires clause
/// is unsatisfiable or the solver gives up.
Result<State> randomInitialState(AstContext &Ctx, const Program &P,
                                 Solver &S, uint64_t Seed,
                                 size_t ArrayLen = 8);

/// Executes the program under both dynamic semantics from one initial
/// state.
class PairRunner {
public:
  PairRunner(const Program &P, const Interner &Syms, const RelateMap &Gamma,
             InterpOptions Opts = InterpOptions())
      : Prog(P), Syms(Syms), Gamma(Gamma), Opts(Opts) {}

  /// Runs ⇓o with \p OrigOracle and ⇓r with \p RelOracle from \p Initial,
  /// then checks compatibility when both succeed.
  PairOutcome run(const State &Initial, Oracle &OrigOracle,
                  Oracle &RelOracle);

private:
  const Program &Prog;
  const Interner &Syms;
  const RelateMap &Gamma;
  InterpOptions Opts;
};

} // namespace relax

#endif // RELAXC_EVAL_PAIRRUNNER_H
