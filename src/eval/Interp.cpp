//===- Interp.cpp - Dynamic original and relaxed semantics --------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Interp.h"

#include "solver/FormulaEval.h"
#include "support/Casting.h"

#include <cassert>
#include <optional>

using namespace relax;

const char *relax::semanticsModeName(SemanticsMode M) {
  return M == SemanticsMode::Original ? "original" : "relaxed";
}

//===----------------------------------------------------------------------===//
// Trapping expression evaluation (dynamic semantics of Figure 2 + arrays)
//===----------------------------------------------------------------------===//

namespace {

EvalResult<const ArrayValue *> evalDynArray(const ArrayExpr *A,
                                            const State &S) {
  // Program array expressions are always plain references (stores only
  // appear in generated formulas).
  const auto *R = dyn_cast<ArrayRefExpr>(A);
  if (!R)
    return EvalResult<const ArrayValue *>::trap(
        A->loc(), "array store expressions cannot appear in program text");
  auto It = S.find(R->name());
  if (It == S.end() || !It->second.isArray())
    return EvalResult<const ArrayValue *>::trap(
        A->loc(), "unbound or non-array variable in array position");
  return EvalResult<const ArrayValue *>::ok(&It->second.asArray());
}

} // namespace

EvalResult<int64_t> relax::evalDynExpr(const Expr *E, const State &S) {
  using R = EvalResult<int64_t>;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return R::ok(cast<IntLitExpr>(E)->value());
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = S.find(V->name());
    if (It == S.end() || !It->second.isInt())
      return R::trap(E->loc(), "unbound or non-integer variable");
    return R::ok(It->second.asInt());
  }
  case Expr::Kind::ArrayRead: {
    const auto *Rd = cast<ArrayReadExpr>(E);
    auto Arr = evalDynArray(Rd->base(), S);
    if (Arr.Trapped)
      return R::trap(Arr.TrapLoc, Arr.TrapReason);
    auto Idx = evalDynExpr(Rd->index(), S);
    if (Idx.Trapped)
      return Idx;
    if (Idx.Val < 0 || Idx.Val >= static_cast<int64_t>(Arr.Val->size()))
      return R::trap(E->loc(), "array index " + std::to_string(Idx.Val) +
                                   " out of bounds [0, " +
                                   std::to_string(Arr.Val->size()) + ")");
    return R::ok((*Arr.Val)[static_cast<size_t>(Idx.Val)]);
  }
  case Expr::Kind::ArrayLen: {
    auto Arr = evalDynArray(cast<ArrayLenExpr>(E)->base(), S);
    if (Arr.Trapped)
      return R::trap(Arr.TrapLoc, Arr.TrapReason);
    return R::ok(static_cast<int64_t>(Arr.Val->size()));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = evalDynExpr(B->lhs(), S);
    if (L.Trapped)
      return L;
    auto Rr = evalDynExpr(B->rhs(), S);
    if (Rr.Trapped)
      return Rr;
    switch (B->op()) {
    case BinaryOp::Add:
      return R::ok(wrapAdd(L.Val, Rr.Val));
    case BinaryOp::Sub:
      return R::ok(wrapSub(L.Val, Rr.Val));
    case BinaryOp::Mul:
      return R::ok(wrapMul(L.Val, Rr.Val));
    case BinaryOp::Div:
      if (Rr.Val == 0)
        return R::trap(E->loc(), "division by zero");
      return R::ok(euclideanDiv(L.Val, Rr.Val));
    case BinaryOp::Mod:
      if (Rr.Val == 0)
        return R::trap(E->loc(), "modulo by zero");
      return R::ok(euclideanMod(L.Val, Rr.Val));
    }
    return R::trap(E->loc(), "unknown binary operator");
  }
  }
  return R::trap(E->loc(), "unknown expression kind");
}

EvalResult<bool> relax::evalDynBool(const BoolExpr *B, const State &S) {
  using R = EvalResult<bool>;
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return R::ok(cast<BoolLitExpr>(B)->value());
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    auto L = evalDynExpr(C->lhs(), S);
    if (L.Trapped)
      return R::trap(L.TrapLoc, L.TrapReason);
    auto Rr = evalDynExpr(C->rhs(), S);
    if (Rr.Trapped)
      return R::trap(Rr.TrapLoc, Rr.TrapReason);
    return R::ok(evalCmpOp(C->op(), L.Val, Rr.Val));
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    auto L = evalDynArray(C->lhs(), S);
    if (L.Trapped)
      return R::trap(L.TrapLoc, L.TrapReason);
    auto Rr = evalDynArray(C->rhs(), S);
    if (Rr.Trapped)
      return R::trap(Rr.TrapLoc, Rr.TrapReason);
    bool Equal = *L.Val == *Rr.Val;
    return R::ok(C->isEquality() ? Equal : !Equal);
  }
  case BoolExpr::Kind::Logical: {
    const auto *Lo = cast<LogicalExpr>(B);
    // Strict evaluation: both operands evaluate (Figure 2 is denotational).
    auto L = evalDynBool(Lo->lhs(), S);
    if (L.Trapped)
      return L;
    auto Rr = evalDynBool(Lo->rhs(), S);
    if (Rr.Trapped)
      return Rr;
    switch (Lo->op()) {
    case LogicalOp::And:
      return R::ok(L.Val && Rr.Val);
    case LogicalOp::Or:
      return R::ok(L.Val || Rr.Val);
    case LogicalOp::Implies:
      return R::ok(!L.Val || Rr.Val);
    case LogicalOp::Iff:
      return R::ok(L.Val == Rr.Val);
    }
    return R::trap(B->loc(), "unknown logical operator");
  }
  case BoolExpr::Kind::Not: {
    auto Sub = evalDynBool(cast<NotExpr>(B)->sub(), S);
    if (Sub.Trapped)
      return Sub;
    return R::ok(!Sub.Val);
  }
  case BoolExpr::Kind::Exists:
    return R::trap(B->loc(),
                   "quantifiers cannot appear in program expressions");
  }
  return R::trap(B->loc(), "unknown boolean kind");
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

Outcome Interp::wrOutcome(SourceLoc Loc, std::string Reason) const {
  Outcome O;
  O.Kind = OutcomeKind::Wr;
  O.ErrorLoc = Loc;
  O.Reason = std::move(Reason);
  return O;
}

Outcome Interp::baOutcome(SourceLoc Loc, std::string Reason) const {
  Outcome O;
  O.Kind = OutcomeKind::Ba;
  O.ErrorLoc = Loc;
  O.Reason = std::move(Reason);
  return O;
}

Outcome Interp::stuckOutcome(SourceLoc Loc, std::string Reason) const {
  Outcome O;
  O.Kind = OutcomeKind::Stuck;
  O.ErrorLoc = Loc;
  O.Reason = std::move(Reason);
  return O;
}

State Interp::zeroState(const Program &P, size_t DefaultArrayLen) {
  State S;
  for (const VarDecl &D : P.decls()) {
    if (D.Kind == VarKind::Int)
      S[D.Name] = Value(int64_t(0));
    else
      S[D.Name] = Value(ArrayValue(DefaultArrayLen, 0));
  }
  return S;
}

Outcome Interp::run(SemanticsMode RunMode, const State &Initial) {
  return runStmt(RunMode, Prog.body(), Initial);
}

Outcome Interp::runStmt(SemanticsMode RunMode, const Stmt *S,
                        const State &Initial) {
  Mode = RunMode;
  StepsLeft = Opts.MaxSteps;

  // Validate the initial state against the declarations.
  for (const VarDecl &D : Prog.decls()) {
    auto It = Initial.find(D.Name);
    if (It == Initial.end())
      return stuckOutcome(D.Loc, "initial state does not bind '" +
                                     std::string(Syms.text(D.Name)) + "'");
    if (It->second.kind() != D.Kind)
      return stuckOutcome(D.Loc, "initial state binds '" +
                                     std::string(Syms.text(D.Name)) +
                                     "' with the wrong kind");
  }
  // Beyond the declared globals, tolerate integer bindings for procedure
  // parameters: the proof checker validates derivation steps from inside
  // procedure bodies, where parameters occur free.
  if (Initial.size() != Prog.decls().size())
    for (const auto &[Name, V] : Initial) {
      if (Prog.kindOf(Name))
        continue;
      bool IsParam = false;
      for (const Procedure &P : Prog.procedures())
        IsParam |= P.hasParam(Name);
      if (!IsParam || !V.isInt())
        return stuckOutcome(SourceLoc(),
                            "initial state binds undeclared variables");
    }

  return evalStmt(S, Initial);
}

Outcome Interp::evalAssertLike(const BoolExpr *Pred, SourceLoc Loc,
                               bool IsAssume, State Sigma) {
  auto V = evalDynBool(Pred, Sigma);
  if (V.Trapped)
    return wrOutcome(V.TrapLoc, "runtime trap in predicate: " + V.TrapReason);
  if (!V.Val) {
    if (IsAssume)
      return baOutcome(Loc, "assume predicate is false");
    return wrOutcome(Loc, "assert predicate is false");
  }
  Outcome O;
  O.FinalState = std::move(Sigma);
  return O;
}

Outcome Interp::evalChoice(const ChoiceStmtBase *S, State Sigma) {
  ChoiceRequest Req;
  Req.Choice = S;
  Req.Current = &Sigma;
  Req.Prog = &Prog;
  ChoiceResult R = TheOracle.choose(Req);

  switch (R.Status) {
  case ChoiceStatus::Unsat:
    // havoc-f: no satisfying assignment exists.
    return wrOutcome(S->loc(), "no assignment satisfies the predicate");
  case ChoiceStatus::Unknown:
    return stuckOutcome(S->loc(), std::string("oracle '") +
                                      TheOracle.name() +
                                      "' could not resolve the choice");
  case ChoiceStatus::Found:
    break;
  }

  // Re-validate the oracle's answer: the semantics only admits post-states
  // that satisfy the predicate and agree with σ outside X.
  std::set<Symbol> Modified;
  for (size_t I = 0, E = S->varCount(); I != E; ++I)
    Modified.insert(S->var(I));
  for (const auto &[Name, V] : Sigma) {
    auto It = R.NewState.find(Name);
    if (It == R.NewState.end())
      return stuckOutcome(S->loc(), "oracle dropped a variable");
    if (!Modified.count(Name) && It->second != V)
      return stuckOutcome(S->loc(),
                          "oracle modified a variable outside the havoc set");
    if (V.isArray() && It->second.isArray() &&
        V.asArray().size() != It->second.asArray().size())
      return stuckOutcome(S->loc(), "oracle changed an array length");
  }
  if (R.NewState.size() != Sigma.size())
    return stuckOutcome(S->loc(), "oracle introduced new variables");

  auto Holds = evalDynBool(S->pred(), R.NewState);
  if (Holds.Trapped)
    return wrOutcome(Holds.TrapLoc,
                     "runtime trap in predicate: " + Holds.TrapReason);
  if (!Holds.Val)
    return stuckOutcome(S->loc(),
                        "oracle returned a state violating the predicate");

  Outcome O;
  O.FinalState = std::move(R.NewState);
  return O;
}

Outcome Interp::evalStmt(const Stmt *S, State Sigma) {
  if (StepsLeft == 0)
    return stuckOutcome(S->loc(), "fuel exhausted (nonterminating loop?)");
  --StepsLeft;

  switch (S->kind()) {
  case Stmt::Kind::Skip: {
    Outcome O;
    O.FinalState = std::move(Sigma);
    return O;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    auto V = evalDynExpr(A->value(), Sigma);
    if (V.Trapped)
      return wrOutcome(V.TrapLoc, "runtime trap: " + V.TrapReason);
    Sigma[A->var()] = Value(V.Val);
    Outcome O;
    O.FinalState = std::move(Sigma);
    return O;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    auto Idx = evalDynExpr(A->index(), Sigma);
    if (Idx.Trapped)
      return wrOutcome(Idx.TrapLoc, "runtime trap: " + Idx.TrapReason);
    auto Val = evalDynExpr(A->value(), Sigma);
    if (Val.Trapped)
      return wrOutcome(Val.TrapLoc, "runtime trap: " + Val.TrapReason);
    auto It = Sigma.find(A->array());
    if (It == Sigma.end() || !It->second.isArray())
      return wrOutcome(S->loc(), "store to unbound or non-array variable");
    ArrayValue &Arr = It->second.asArray();
    if (Idx.Val < 0 || Idx.Val >= static_cast<int64_t>(Arr.size()))
      return wrOutcome(S->loc(),
                       "array store index " + std::to_string(Idx.Val) +
                           " out of bounds [0, " + std::to_string(Arr.size()) +
                           ")");
    Arr[static_cast<size_t>(Idx.Val)] = Val.Val;
    Outcome O;
    O.FinalState = std::move(Sigma);
    return O;
  }
  case Stmt::Kind::Havoc:
    return evalChoice(cast<ChoiceStmtBase>(S), std::move(Sigma));
  case Stmt::Kind::Relax: {
    const auto *R = cast<RelaxStmt>(S);
    if (Mode == SemanticsMode::Original)
      // Figure 3: the original execution must satisfy the relaxation
      // predicate (rule `relax` reuses `assert`).
      return evalAssertLike(R->pred(), S->loc(), /*IsAssume=*/false,
                            std::move(Sigma));
    // Figure 4: the relaxed execution havocs the variables.
    return evalChoice(R, std::move(Sigma));
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    auto C = evalDynBool(I->cond(), Sigma);
    if (C.Trapped)
      return wrOutcome(C.TrapLoc, "runtime trap in condition: " + C.TrapReason);
    return evalStmt(C.Val ? I->thenStmt() : I->elseStmt(), std::move(Sigma));
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    ObservationList Obs;
    State Cur = std::move(Sigma);
    for (;;) {
      if (StepsLeft == 0)
        return stuckOutcome(S->loc(), "fuel exhausted (nonterminating loop?)");
      --StepsLeft;
      auto C = evalDynBool(W->cond(), Cur);
      if (C.Trapped)
        return wrOutcome(C.TrapLoc,
                         "runtime trap in condition: " + C.TrapReason);
      if (!C.Val)
        break;
      Outcome Body = evalStmt(W->body(), std::move(Cur));
      if (!Body.ok()) {
        // Propagate errors; keep observations gathered so far prepended.
        Body.Observations.insert(Body.Observations.begin(), Obs.begin(),
                                 Obs.end());
        return Body;
      }
      Obs.insert(Obs.end(), Body.Observations.begin(),
                 Body.Observations.end());
      Cur = std::move(Body.FinalState);
    }
    Outcome O;
    O.FinalState = std::move(Cur);
    O.Observations = std::move(Obs);
    return O;
  }
  case Stmt::Kind::Assume:
    return evalAssertLike(cast<AssumeStmt>(S)->pred(), S->loc(),
                          /*IsAssume=*/true, std::move(Sigma));
  case Stmt::Kind::Assert:
    return evalAssertLike(cast<AssertStmt>(S)->pred(), S->loc(),
                          /*IsAssume=*/false, std::move(Sigma));
  case Stmt::Kind::Relate: {
    const auto *R = cast<RelateStmt>(S);
    Outcome O;
    O.Observations.push_back(Observation{R->label(), Sigma});
    O.FinalState = std::move(Sigma);
    return O;
  }
  case Stmt::Kind::Call: {
    const auto *C = cast<CallStmt>(S);
    const Procedure *Callee = Prog.procedure(C->callee());
    if (!Callee || !Callee->body())
      return stuckOutcome(S->loc(), "call to undefined procedure");
    if (Callee->params().size() != C->argCount())
      return stuckOutcome(S->loc(), "wrong number of arguments in call");
    // All arguments evaluate in the caller's state before any parameter
    // binds, so a callee parameter sharing a caller parameter's name
    // cannot capture an argument expression.
    std::vector<int64_t> ArgVals;
    ArgVals.reserve(C->argCount());
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      auto V = evalDynExpr(C->arg(I), Sigma);
      if (V.Trapped)
        return wrOutcome(V.TrapLoc, "runtime trap: " + V.TrapReason);
      ArgVals.push_back(V.Val);
    }
    std::vector<std::pair<Symbol, std::optional<Value>>> Saved;
    Saved.reserve(C->argCount());
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      Symbol P = Callee->params()[I].Name;
      auto It = Sigma.find(P);
      Saved.emplace_back(P, It == Sigma.end()
                                ? std::nullopt
                                : std::optional<Value>(It->second));
      Sigma[P] = Value(ArgVals[I]);
    }
    Outcome Body = evalStmt(Callee->body(), std::move(Sigma));
    if (Body.ok())
      for (auto It = Saved.rbegin(); It != Saved.rend(); ++It) {
        if (It->second)
          Body.FinalState[It->first] = *It->second;
        else
          Body.FinalState.erase(It->first);
      }
    return Body;
  }
  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    Outcome First = evalStmt(Q->first(), std::move(Sigma));
    if (!First.ok())
      return First;
    Outcome Second = evalStmt(Q->second(), std::move(First.FinalState));
    Second.Observations.insert(Second.Observations.begin(),
                               First.Observations.begin(),
                               First.Observations.end());
    return Second;
  }
  }
  return stuckOutcome(S->loc(), "unknown statement kind");
}
