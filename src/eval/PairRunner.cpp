//===- PairRunner.cpp - Lockstep pair execution and compatibility -------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/PairRunner.h"

#include "solver/FormulaEval.h"
#include "support/Casting.h"

using namespace relax;

CompatResult relax::checkObservationalCompatibility(
    const RelateMap &Gamma, const ObservationList &Psi1,
    const ObservationList &Psi2, const Interner &Syms) {
  CompatResult R;
  if (Psi1.size() != Psi2.size()) {
    R.Compatible = false;
    R.ViolationIndex = std::min(Psi1.size(), Psi2.size());
    R.Reason = "observation lists have different lengths (" +
               std::to_string(Psi1.size()) + " vs " +
               std::to_string(Psi2.size()) + ")";
    return R;
  }
  for (size_t I = 0, E = Psi1.size(); I != E; ++I) {
    const Observation &O1 = Psi1[I];
    const Observation &O2 = Psi2[I];
    if (O1.Label != O2.Label) {
      R.Compatible = false;
      R.ViolationIndex = I;
      R.Reason = "observation " + std::to_string(I) +
                 " has mismatched labels ('" +
                 std::string(Syms.text(O1.Label)) + "' vs '" +
                 std::string(Syms.text(O2.Label)) + "')";
      return R;
    }
    auto It = Gamma.find(O1.Label);
    if (It == Gamma.end()) {
      R.Compatible = false;
      R.ViolationIndex = I;
      R.Reason = "label '" + std::string(Syms.text(O1.Label)) +
                 "' has no relate predicate in Γ";
      return R;
    }
    // Relate predicates are quantifier-free, so the bounded quantifier
    // domains of evalFormula are irrelevant: evaluation is exact.
    Model Pair = pairToModel(O1.Snapshot, O2.Snapshot);
    if (!evalFormula(It->second, Pair)) {
      R.Compatible = false;
      R.ViolationIndex = I;
      R.Reason = "relate '" + std::string(Syms.text(O1.Label)) +
                 "' violated: original state " +
                 formatState(Syms, O1.Snapshot) + ", relaxed state " +
                 formatState(Syms, O2.Snapshot);
      return R;
    }
  }
  return R;
}

Result<State> relax::randomInitialState(AstContext &Ctx, const Program &P,
                                        Solver &S, uint64_t Seed,
                                        size_t ArrayLen) {
  const BoolExpr *Req =
      P.requiresClause() ? P.requiresClause() : Ctx.trueExpr();
  std::vector<Symbol> AllVars;
  for (const VarDecl &D : P.decls())
    AllVars.push_back(D.Name);
  if (AllVars.empty())
    return State();

  // A synthetic `havoc (all vars) st (requires)` resolved by the solver
  // oracle: its diversity probes randomize the drawn state.
  const Stmt *Choice = Ctx.havoc(AllVars, Req);
  State Zero = Interp::zeroState(P, ArrayLen);

  SolverOracle::Options Opts;
  Opts.Seed = Seed;
  Opts.DiversityProbes = 4;
  SolverOracle O(Ctx, S, Opts);
  ChoiceRequest ReqChoice;
  const auto *ChoiceStmt = cast<ChoiceStmtBase>(Choice);
  ReqChoice.Choice = ChoiceStmt;
  ReqChoice.Current = &Zero;
  ReqChoice.Prog = &P;
  ChoiceResult R = O.choose(ReqChoice);
  switch (R.Status) {
  case ChoiceStatus::Found: {
    // Re-validate: the state must satisfy the requires clause dynamically.
    auto Holds = evalDynBool(Req, R.NewState);
    if (Holds.Trapped || !Holds.Val)
      return Result<State>::error(
          "generated initial state does not satisfy the requires clause");
    return R.NewState;
  }
  case ChoiceStatus::Unsat:
    return Result<State>::error("the requires clause is unsatisfiable");
  case ChoiceStatus::Unknown:
    return Result<State>::error("solver could not draw an initial state");
  }
  return Result<State>::error("unreachable");
}

PairOutcome PairRunner::run(const State &Initial, Oracle &OrigOracle,
                            Oracle &RelOracle) {
  PairOutcome Out;
  Interp OrigInterp(Prog, Syms, OrigOracle, Opts);
  Out.Orig = OrigInterp.run(SemanticsMode::Original, Initial);
  Interp RelInterp(Prog, Syms, RelOracle, Opts);
  Out.Rel = RelInterp.run(SemanticsMode::Relaxed, Initial);

  if (Out.Orig.ok() && Out.Rel.ok())
    Out.Compat = checkObservationalCompatibility(
        Gamma, Out.Orig.Observations, Out.Rel.Observations, Syms);
  return Out;
}
