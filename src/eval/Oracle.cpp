//===- Oracle.cpp - Nondeterminism resolution ---------------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Oracle.h"

#include "eval/Interp.h"
#include "solver/Solver.h"
#include "support/Casting.h"

using namespace relax;

Oracle::~Oracle() = default;

RandomSearchOracle::RandomSearchOracle()
    : RandomSearchOracle(Options()) {}

SolverOracle::SolverOracle(AstContext &Ctx, Solver &S)
    : SolverOracle(Ctx, S, Options()) {}

//===----------------------------------------------------------------------===//
// IdentityOracle
//===----------------------------------------------------------------------===//

ChoiceResult IdentityOracle::choose(const ChoiceRequest &Req) {
  auto Holds = evalDynBool(Req.Choice->pred(), *Req.Current);
  if (Holds.Trapped || !Holds.Val)
    return ChoiceResult{ChoiceStatus::Unknown, State()};
  return ChoiceResult{ChoiceStatus::Found, *Req.Current};
}

//===----------------------------------------------------------------------===//
// RandomSearchOracle
//===----------------------------------------------------------------------===//

ChoiceResult RandomSearchOracle::choose(const ChoiceRequest &Req) {
  const ChoiceStmtBase *C = Req.Choice;
  for (unsigned Try = 0; Try != Opts.MaxTries; ++Try) {
    State Candidate = *Req.Current;
    for (size_t I = 0, E = C->varCount(); I != E; ++I) {
      auto It = Candidate.find(C->var(I));
      if (It == Candidate.end())
        return ChoiceResult{ChoiceStatus::Unknown, State()};
      if (It->second.isInt()) {
        int64_t Cur = It->second.asInt();
        It->second =
            Value(Rng.nextInRange(Cur - Opts.Window, Cur + Opts.Window));
      } else {
        for (int64_t &Elem : It->second.asArray())
          Elem = Rng.nextInRange(Elem - Opts.Window, Elem + Opts.Window);
      }
    }
    auto Holds = evalDynBool(C->pred(), Candidate);
    if (!Holds.Trapped && Holds.Val)
      return ChoiceResult{ChoiceStatus::Found, std::move(Candidate)};
  }
  return ChoiceResult{ChoiceStatus::Unknown, State()};
}

//===----------------------------------------------------------------------===//
// SolverOracle
//===----------------------------------------------------------------------===//

void SolverOracle::buildQuery(const ChoiceRequest &Req,
                              std::vector<const BoolExpr *> &Formulas,
                              VarRefSet &Wanted) {
  const ChoiceStmtBase *C = Req.Choice;
  std::set<Symbol> Modified;
  for (size_t I = 0, E = C->varCount(); I != E; ++I)
    Modified.insert(C->var(I));

  for (const auto &[Name, V] : *Req.Current) {
    bool InX = Modified.count(Name) != 0;
    if (V.isInt()) {
      if (InX) {
        Wanted.insert(VarRef{Name, VarTag::Plain, VarKind::Int});
      } else {
        Formulas.push_back(
            Ctx.eq(Ctx.var(Name, VarTag::Plain), Ctx.intLit(V.asInt())));
      }
      continue;
    }
    // Arrays: lengths are invariant either way; frame variables also pin
    // their contents.
    const ArrayValue &Arr = V.asArray();
    const ArrayExpr *Ref = Ctx.arrayRef(Name, VarTag::Plain);
    Formulas.push_back(Ctx.eq(Ctx.arrayLen(Ref),
                              Ctx.intLit(static_cast<int64_t>(Arr.size()))));
    if (InX) {
      Wanted.insert(VarRef{Name, VarTag::Plain, VarKind::Array});
      continue;
    }
    for (size_t I = 0, E = Arr.size(); I != E; ++I)
      Formulas.push_back(
          Ctx.eq(Ctx.arrayRead(Ref, Ctx.intLit(static_cast<int64_t>(I))),
                 Ctx.intLit(Arr[I])));
  }
  Formulas.push_back(C->pred());
}

ChoiceResult SolverOracle::choose(const ChoiceRequest &Req) {
  std::vector<const BoolExpr *> Base;
  VarRefSet Wanted;
  buildQuery(Req, Base, Wanted);

  auto ExtractState = [&](const Model &M) {
    State Out = *Req.Current;
    for (const VarRef &V : Wanted) {
      if (V.Kind == VarKind::Int) {
        auto It = M.Ints.find(V);
        if (It != M.Ints.end())
          Out[V.Name] = Value(It->second);
      } else {
        auto It = M.Arrays.find(V);
        if (It != M.Arrays.end())
          Out[V.Name] = Value(It->second.Elems);
      }
    }
    return Out;
  };

  // Diversity probes: additionally pin one random scalar choice variable to
  // a random value near its current one, so repeated runs explore the
  // relaxation space instead of always taking Z3's canonical model.
  std::vector<VarRef> ScalarChoices;
  for (const VarRef &V : Wanted)
    if (V.Kind == VarKind::Int)
      ScalarChoices.push_back(V);

  for (unsigned Probe = 0;
       Probe != Opts.DiversityProbes && !ScalarChoices.empty(); ++Probe) {
    const VarRef &V = ScalarChoices[static_cast<size_t>(
        Rng.nextInRange(0, static_cast<int64_t>(ScalarChoices.size()) - 1))];
    auto CurIt = Req.Current->find(V.Name);
    int64_t Cur =
        CurIt != Req.Current->end() && CurIt->second.isInt()
            ? CurIt->second.asInt()
            : 0;
    int64_t Target =
        Rng.nextInRange(Cur - Opts.ProbeWindow, Cur + Opts.ProbeWindow);
    std::vector<const BoolExpr *> Probed = Base;
    Probed.push_back(
        Ctx.eq(Ctx.var(V.Name, VarTag::Plain), Ctx.intLit(Target)));
    Model M;
    Result<SatResult> R = TheSolver.checkSatWithModel(Probed, Wanted, M);
    if (R.ok() && *R == SatResult::Sat)
      return ChoiceResult{ChoiceStatus::Found, ExtractState(M)};
    // Probe failed; fall through to the next probe / the base query.
  }

  Model M;
  Result<SatResult> R = TheSolver.checkSatWithModel(Base, Wanted, M);
  if (!R.ok())
    return ChoiceResult{ChoiceStatus::Unknown, State()};
  switch (*R) {
  case SatResult::Sat:
    return ChoiceResult{ChoiceStatus::Found, ExtractState(M)};
  case SatResult::Unsat:
    return ChoiceResult{ChoiceStatus::Unsat, State()};
  case SatResult::Unknown:
    return ChoiceResult{ChoiceStatus::Unknown, State()};
  }
  return ChoiceResult{ChoiceStatus::Unknown, State()};
}

//===----------------------------------------------------------------------===//
// ReplayOracle
//===----------------------------------------------------------------------===//

ChoiceResult ReplayOracle::choose(const ChoiceRequest &) {
  if (Next >= Script.size())
    return ChoiceResult{ChoiceStatus::Unknown, State()};
  return ChoiceResult{ChoiceStatus::Found, Script[Next++]};
}
