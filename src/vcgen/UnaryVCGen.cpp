//===- UnaryVCGen.cpp - Axiomatic original/intermediate semantics -------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/UnaryVCGen.h"

#include "logic/FormulaOps.h"
#include "logic/Simplify.h"
#include "sema/Sema.h"
#include "support/Casting.h"
#include "vcgen/Safety.h"

#include <cassert>

using namespace relax;

const char *relax::judgmentKindName(JudgmentKind K) {
  switch (K) {
  case JudgmentKind::Original:
    return "original";
  case JudgmentKind::Intermediate:
    return "intermediate";
  case JudgmentKind::Relaxed:
    return "relaxed";
  }
  return "?";
}

UnaryVCGen::UnaryVCGen(AstContext &Ctx, const Program &Prog, JudgmentKind J,
                       DiagnosticEngine &Diags, VCGenOptions Opts)
    : Ctx(Ctx), Prog(Prog), Judgment(J), Diags(Diags), Opts(Opts),
      Simp(Ctx) {
  assert(J != JudgmentKind::Relaxed &&
         "UnaryVCGen handles |-o and |-i only; use RelationalVCGen for |-r");
}

const BoolExpr *UnaryVCGen::maybeSimplify(const BoolExpr *B) {
  return Opts.Simplify ? Simp.simplify(B) : B;
}

void UnaryVCGen::emitValidity(const BoolExpr *F, const char *Rule,
                              SourceLoc Loc, std::string Description) {
  VC V;
  V.Kind = VCKind::Validity;
  V.Judgment = Judgment;
  V.Formula = maybeSimplify(F);
  V.Rule = Rule;
  V.Loc = Loc;
  V.Description = std::move(Description);
  V.Id = static_cast<uint32_t>(Out.VCs.size());
  V.Origin = CurStmt;
  V.SimplifyTraceId = V.Formula != F ? ++SimplifyTraces : 0;
  V.Proc = ProcName;
  Out.VCs.push_back(std::move(V));
}

void UnaryVCGen::emitSat(const BoolExpr *F, const char *Rule, SourceLoc Loc,
                         std::string Description) {
  VC V;
  V.Kind = VCKind::Satisfiability;
  V.Judgment = Judgment;
  V.Formula = maybeSimplify(F);
  V.Rule = Rule;
  V.Loc = Loc;
  V.Description = std::move(Description);
  V.Id = static_cast<uint32_t>(Out.VCs.size());
  V.Origin = CurStmt;
  V.SimplifyTraceId = V.Formula != F ? ++SimplifyTraces : 0;
  V.Proc = ProcName;
  Out.VCs.push_back(std::move(V));
}

void UnaryVCGen::emitSafety(const BoolExpr *Pre, const BoolExpr *ProgramBool,
                            const char *Rule, SourceLoc Loc) {
  if (!Opts.CheckSafety)
    return;
  const BoolExpr *Safe = safetyCondition(Ctx, ProgramBool);
  if (const auto *Lit = dyn_cast<BoolLitExpr>(Safe); Lit && Lit->value())
    return;
  emitValidity(Ctx.implies(Pre, Safe), Rule, Loc,
               "predicate evaluation cannot trap (division, array bounds)");
}

void UnaryVCGen::emitSafety(const BoolExpr *Pre, const Expr *ProgramExpr,
                            const char *Rule, SourceLoc Loc) {
  if (!Opts.CheckSafety)
    return;
  const BoolExpr *Safe = safetyCondition(Ctx, ProgramExpr);
  if (const auto *Lit = dyn_cast<BoolLitExpr>(Safe); Lit && Lit->value())
    return;
  emitValidity(Ctx.implies(Pre, Safe), Rule, Loc,
               "expression evaluation cannot trap (division, array bounds)");
}

void UnaryVCGen::record(const char *Rule, const Stmt *S, const BoolExpr *Pre,
                        const BoolExpr *Post) {
  DerivationStep Step;
  Step.Rule = Rule;
  Step.Judgment = Judgment;
  Step.Loc = S->loc();
  Step.S = S;
  Step.Pre = Pre;
  Step.Post = Post;
  Out.Derivation.push_back(std::move(Step));
}

const BoolExpr *UnaryVCGen::genAssertLike(const BoolExpr *Pred, SourceLoc Loc,
                                          const BoolExpr *Pre,
                                          const char *Rule, const char *What) {
  emitSafety(Pre, Pred, Rule, Loc);
  emitValidity(Ctx.implies(Pre, Pred), Rule, Loc,
               std::string("the ") + What + " predicate holds");
  return maybeSimplify(Ctx.andExpr(Pre, Pred));
}

const BoolExpr *UnaryVCGen::genHavocLike(const ChoiceStmtBase *S,
                                         const BoolExpr *Pre,
                                         const char *Rule) {
  // Rename X to fresh X' in Pre, existentially quantify X', conjoin e.
  Subst Rename;
  std::vector<std::pair<Symbol, VarKind>> Fresh;
  for (size_t I = 0, E = S->varCount(); I != E; ++I) {
    Symbol V = S->var(I);
    VarKind Kind = Prog.kindOf(V).value_or(VarKind::Int);
    Symbol F = Ctx.freshSym(V);
    Fresh.emplace_back(F, Kind);
    if (Kind == VarKind::Int)
      Rename.mapVar(V, VarTag::Plain, Ctx.var(F, VarTag::Plain));
    else
      Rename.mapArray(V, VarTag::Plain, Ctx.arrayRef(F, VarTag::Plain));
  }
  const BoolExpr *Renamed = substitute(Ctx, Pre, Rename);

  // Array lengths are execution-invariant: the new array has the length of
  // the old one. Without this, bounds facts in Pre would be lost.
  std::vector<const BoolExpr *> LenLinks;
  for (size_t I = 0, E = S->varCount(); I != E; ++I) {
    Symbol V = S->var(I);
    if (Prog.kindOf(V).value_or(VarKind::Int) != VarKind::Array)
      continue;
    LenLinks.push_back(
        Ctx.eq(Ctx.arrayLen(Ctx.arrayRef(V, VarTag::Plain)),
               Ctx.arrayLen(Ctx.arrayRef(Fresh[I].first, VarTag::Plain))));
  }

  const BoolExpr *Body = Ctx.conj({Renamed, Ctx.conj(LenLinks)});

  // The satisfiability premise of the havoc rule (Figure 7): some choice of
  // X must satisfy e. X' (the old values) stay free in the query.
  emitSat(Ctx.conj({Body, S->pred()}), Rule, S->loc(),
          "some assignment to the havoc/relax variables satisfies the "
          "predicate");

  const BoolExpr *Quantified = Body;
  for (const auto &[F, Kind] : Fresh)
    Quantified = Ctx.exists(F, VarTag::Plain, Kind, Quantified);

  emitSafety(Quantified, S->pred(), Rule, S->loc());
  return maybeSimplify(Ctx.andExpr(Quantified, S->pred()));
}

const BoolExpr *UnaryVCGen::genStmt(const Stmt *S, const BoolExpr *Pre) {
  CurStmt = S; // provenance: VCs emitted below originate from S
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    record("skip", S, Pre, Pre);
    return Pre;

  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    emitSafety(Pre, A->value(), "assign", S->loc());
    Symbol X = A->var();
    Symbol X0 = Ctx.freshSym(X);
    Subst Rename;
    Rename.mapVar(X, VarTag::Plain, Ctx.var(X0, VarTag::Plain));
    const BoolExpr *Renamed = substitute(Ctx, Pre, Rename);
    const Expr *RenamedRHS = substitute(Ctx, A->value(), Rename);
    const BoolExpr *Post = Ctx.exists(
        X0, VarTag::Plain, VarKind::Int,
        Ctx.andExpr(Renamed,
                    Ctx.eq(Ctx.var(X, VarTag::Plain), RenamedRHS)));
    Post = maybeSimplify(Post);
    record("assign", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    emitSafety(Pre, A->index(), "array-assign", S->loc());
    emitSafety(Pre, A->value(), "array-assign", S->loc());
    // The store itself must be in bounds.
    if (Opts.CheckSafety) {
      const ArrayExpr *Arr = Ctx.arrayRef(A->array(), VarTag::Plain);
      emitValidity(
          Ctx.implies(Pre, Ctx.andExpr(Ctx.ge(A->index(), Ctx.intLit(0)),
                                       Ctx.lt(A->index(),
                                              Ctx.arrayLen(Arr)))),
          "array-assign", S->loc(), "array store index is in bounds");
    }
    Symbol X = A->array();
    Symbol X0 = Ctx.freshSym(X);
    Subst Rename;
    Rename.mapArray(X, VarTag::Plain, Ctx.arrayRef(X0, VarTag::Plain));
    const BoolExpr *Renamed = substitute(Ctx, Pre, Rename);
    const Expr *RenamedIdx = substitute(Ctx, A->index(), Rename);
    const Expr *RenamedVal = substitute(Ctx, A->value(), Rename);
    const ArrayExpr *NewVal = Ctx.arrayStore(
        Ctx.arrayRef(X0, VarTag::Plain), RenamedIdx, RenamedVal);
    const BoolExpr *Post = Ctx.exists(
        X0, VarTag::Plain, VarKind::Array,
        Ctx.andExpr(Renamed,
                    Ctx.arrayEq(Ctx.arrayRef(X, VarTag::Plain), NewVal)));
    Post = maybeSimplify(Post);
    record("array-assign", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Havoc: {
    const BoolExpr *Post = genHavocLike(cast<ChoiceStmtBase>(S), Pre, "havoc");
    record("havoc", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Relax: {
    const auto *R = cast<RelaxStmt>(S);
    if (Judgment == JudgmentKind::Original) {
      // Figure 7: relax is an assert of its predicate; the original
      // execution must remain one of the allowed relaxed executions.
      const BoolExpr *Post =
          genAssertLike(R->pred(), S->loc(), Pre, "relax", "relax");
      record("relax(assert)", S, Pre, Post);
      return Post;
    }
    // Figure 9: relax may apply any modification satisfying e.
    const BoolExpr *Post = genHavocLike(R, Pre, "relax");
    record("relax(havoc)", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    emitSafety(Pre, I->cond(), "if", S->loc());
    const BoolExpr *ThenPre = maybeSimplify(Ctx.andExpr(Pre, I->cond()));
    const BoolExpr *ElsePre =
        maybeSimplify(Ctx.andExpr(Pre, Ctx.notExpr(I->cond())));
    const BoolExpr *ThenPost = genStmt(I->thenStmt(), ThenPre);
    const BoolExpr *ElsePost = genStmt(I->elseStmt(), ElsePre);
    const BoolExpr *Post = maybeSimplify(Ctx.orExpr(ThenPost, ElsePost));
    record("if", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    const LoopAnnotations *Ann = W->annotations();
    const BoolExpr *Inv = Ann->Invariant;
    if (Judgment == JudgmentKind::Intermediate && Ann->IntermediateInvariant)
      Inv = Ann->IntermediateInvariant;
    if (!Inv) {
      Diags.warning(S->loc(),
                    std::string("while loop has no ") +
                        (Judgment == JudgmentKind::Intermediate
                             ? "intermediate invariant"
                             : "invariant") +
                        "; defaulting to 'true'");
      Inv = Ctx.trueExpr();
    }
    emitValidity(Ctx.implies(Pre, Inv), "while", S->loc(),
                 "the loop invariant holds on entry");
    emitSafety(Inv, W->cond(), "while", S->loc());
    const BoolExpr *BodyPre = maybeSimplify(Ctx.andExpr(Inv, W->cond()));

    // Termination variant (Section 6 extension): snapshot the variant in a
    // fresh variable before the body; it must be bounded below and must
    // strictly decrease. The snapshot rides along the single body SP so no
    // obligations are generated twice.
    const Expr *Variant = Ann->Variant;
    Symbol Snapshot;
    if (Variant) {
      emitSafety(BodyPre, Variant, "while:variant", S->loc());
      emitValidity(Ctx.implies(BodyPre, Ctx.ge(Variant, Ctx.intLit(0))),
                   "while:variant", S->loc(),
                   "the termination variant is bounded below while the "
                   "loop runs");
      Snapshot = Ctx.freshSym(Ctx.sym("variant"));
      BodyPre = maybeSimplify(Ctx.andExpr(
          BodyPre, Ctx.eq(Variant, Ctx.var(Snapshot, VarTag::Plain))));
    }

    const BoolExpr *BodyPost = genStmt(W->body(), BodyPre);
    CurStmt = S; // back out of the body: these VCs belong to the loop
    emitValidity(Ctx.implies(BodyPost, Inv), "while", S->loc(),
                 "the loop invariant is preserved by the body");
    if (Variant)
      emitValidity(
          Ctx.implies(BodyPost,
                      Ctx.lt(Variant, Ctx.var(Snapshot, VarTag::Plain))),
          "while:variant", S->loc(),
          "the termination variant strictly decreases across the body");
    const BoolExpr *Post =
        maybeSimplify(Ctx.andExpr(Inv, Ctx.notExpr(W->cond())));
    record("while", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Assume: {
    const auto *A = cast<AssumeStmt>(S);
    if (Judgment == JudgmentKind::Original) {
      // Figure 7: no obligation; the assumption lands in the postcondition
      // (the execution may dynamically fail with ba).
      emitSafety(Pre, A->pred(), "assume", S->loc());
      const BoolExpr *Post = maybeSimplify(Ctx.andExpr(Pre, A->pred()));
      record("assume", S, Pre, Post);
      return Post;
    }
    // Figure 9: the relaxed execution must not violate assumptions either,
    // so assume carries an assert-strength obligation (Lemma 4).
    const BoolExpr *Post =
        genAssertLike(A->pred(), S->loc(), Pre, "assume", "assume");
    record("assume(assert)", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Assert: {
    const auto *A = cast<AssertStmt>(S);
    const BoolExpr *Post =
        genAssertLike(A->pred(), S->loc(), Pre, "assert", "assert");
    record("assert", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Relate:
    // Figure 7: relate is a skip for the unary semantics.
    record("relate(skip)", S, Pre, Pre);
    return Pre;

  case Stmt::Kind::Call: {
    // Modular summary instantiation: assert the callee's requires, havoc
    // its effective modifies frame, assume its ensures. The callee's body
    // is verified once on its own; N call sites cost N instantiations,
    // not N re-traversals.
    const auto *C = cast<CallStmt>(S);
    const Procedure *Callee = Prog.procedure(C->callee());
    if (!Callee) {
      Diags.error(S->loc(), "call to undefined procedure");
      return Pre;
    }

    // The requires check instantiates parameters with the argument
    // expressions directly: both are evaluated in the pre-call state, and
    // keeping this obligation free of fresh symbols keeps its
    // counterexamples (and hence report bit-identity) independent of how
    // many fresh names earlier runs drew from the shared interner.
    Subst ParamToArgExpr;
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      emitSafety(Pre, C->arg(I), "call", S->loc());
      if (I < Callee->params().size())
        ParamToArgExpr.mapVar(Callee->params()[I].Name, VarTag::Plain,
                              C->arg(I));
    }
    if (const BoolExpr *Req = Callee->requiresClause())
      emitValidity(Ctx.implies(Pre, substitute(Ctx, Req, ParamToArgExpr)),
                   "call", S->loc(),
                   "the callee's requires clause holds at the call site");

    // For the havoc/ensures part, snapshot arguments in fresh symbols so
    // the instantiated ensures refers to the values passed at the call,
    // not post-havoc globals. The snapshots are existentially quantified
    // into the postcondition below, so no fresh name escapes into later
    // obligations free.
    Subst ParamToArg;
    std::vector<Symbol> ArgSyms;
    std::vector<const BoolExpr *> Binds;
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      Symbol A = Ctx.freshSym(I < Callee->params().size()
                                  ? Callee->params()[I].Name
                                  : Ctx.sym("arg"));
      ArgSyms.push_back(A);
      Binds.push_back(Ctx.eq(Ctx.var(A, VarTag::Plain), C->arg(I)));
      if (I < Callee->params().size())
        ParamToArg.mapVar(Callee->params()[I].Name, VarTag::Plain,
                          Ctx.var(A, VarTag::Plain));
    }
    const BoolExpr *Bound = Ctx.conj({Pre, Ctx.conj(Binds)});

    // Havoc the frame: rename its variables to fresh pre-call names,
    // existentially quantify those, keep array lengths invariant.
    std::vector<VarRef> Frame = effectiveModifies(Prog, *Callee);
    Subst Rename;
    std::vector<std::pair<Symbol, VarKind>> Old;
    for (const VarRef &V : Frame) {
      Symbol F = Ctx.freshSym(V.Name);
      Old.emplace_back(F, V.Kind);
      if (V.Kind == VarKind::Int)
        Rename.mapVar(V.Name, VarTag::Plain, Ctx.var(F, VarTag::Plain));
      else
        Rename.mapArray(V.Name, VarTag::Plain,
                        Ctx.arrayRef(F, VarTag::Plain));
    }
    const BoolExpr *Renamed = substitute(Ctx, Bound, Rename);
    std::vector<const BoolExpr *> LenLinks;
    for (size_t I = 0, E = Frame.size(); I != E; ++I)
      if (Frame[I].Kind == VarKind::Array)
        LenLinks.push_back(Ctx.eq(
            Ctx.arrayLen(Ctx.arrayRef(Frame[I].Name, VarTag::Plain)),
            Ctx.arrayLen(Ctx.arrayRef(Old[I].first, VarTag::Plain))));
    const BoolExpr *Quantified = Ctx.conj({Renamed, Ctx.conj(LenLinks)});
    for (const auto &[F, Kind] : Old)
      Quantified = Ctx.exists(F, VarTag::Plain, Kind, Quantified);

    const BoolExpr *Ens =
        Callee->ensuresClause()
            ? substitute(Ctx, Callee->ensuresClause(), ParamToArg)
            : Ctx.trueExpr();
    const BoolExpr *Post = Ctx.andExpr(Quantified, Ens);
    for (auto It = ArgSyms.rbegin(); It != ArgSyms.rend(); ++It)
      Post = Ctx.exists(*It, VarTag::Plain, VarKind::Int, Post);
    Post = maybeSimplify(Post);
    record("call", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    const BoolExpr *Mid = genStmt(Q->first(), Pre);
    return genStmt(Q->second(), Mid);
  }
  }
  return Pre;
}

void UnaryVCGen::genTriple(const BoolExpr *Pre, const Stmt *S,
                           const BoolExpr *Post) {
  const BoolExpr *SP = genStmt(S, Pre);
  CurStmt = nullptr; // a whole-triple obligation, not tied to one statement
  emitValidity(Ctx.implies(SP, Post), "consequence", S->loc(),
               "the postcondition follows from the strongest postcondition");
}
