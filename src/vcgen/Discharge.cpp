//===- Discharge.cpp - Obligation discharge subsystem -------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/Discharge.h"

#include "ast/Printer.h"
#include "support/PersistentCache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>

using namespace relax;

const char *relax::vcStatusName(VCStatus S) {
  switch (S) {
  case VCStatus::Proved:
    return "proved";
  case VCStatus::Failed:
    return "failed";
  case VCStatus::Unknown:
    return "unknown";
  case VCStatus::SolverError:
    return "error";
  }
  return "?";
}

const BoolExpr *relax::vcQuery(AstContext &Ctx, const VC &C) {
  return C.Kind == VCKind::Validity ? Ctx.notExpr(C.Formula) : C.Formula;
}

void DischargeStats::merge(const DischargeStats &O) {
  Portfolio.merge(O.Portfolio);
  SharedCacheHits += O.SharedCacheHits;
  SharedCacheMisses += O.SharedCacheMisses;
  BoundedCandidates += O.BoundedCandidates;
  BoundedQuantSteps += O.BoundedQuantSteps;
  Search.merge(O.Search);
  EscalatedObligations += O.EscalatedObligations;
  StolenTasks += O.StolenTasks;
}

namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Re-queries a solver with model extraction; parameterized so portfolio
/// workers can skip the simplify prefix (which builds nodes and must not
/// run on a worker thread).
using ModelQueryFn = std::function<Result<SatResult>(
    const std::vector<const BoolExpr *> &, const VarRefSet &, Model &)>;

/// Maps a sat verdict \p R for \p Out's condition onto a discharge
/// status and detail. Out.Condition must already be set. \p ModelQuery
/// supplies the counterexample for a failed validity obligation.
void applyVerdict(VCOutcome &Out, const Result<SatResult> &R,
                  const Interner &Syms, const ModelQueryFn &ModelQuery,
                  const std::vector<const BoolExpr *> &Formulas) {
  if (!R.ok()) {
    Out.Status = VCStatus::SolverError;
    Out.Detail = R.message();
    return;
  }
  if (Out.Condition.Kind == VCKind::Validity) {
    switch (*R) {
    case SatResult::Unsat:
      Out.Status = VCStatus::Proved;
      break;
    case SatResult::Sat: {
      Out.Status = VCStatus::Failed;
      // Re-query with model extraction so the report shows a concrete
      // witness state (pair) falsifying the obligation.
      Model Counterexample;
      Result<SatResult> WithModel =
          ModelQuery(Formulas, freeVars(Out.Condition.Formula),
                     Counterexample);
      if (WithModel.ok() && *WithModel == SatResult::Sat)
        Out.Detail = "counterexample: " + formatModel(Syms, Counterexample);
      else
        Out.Detail = "counterexample exists";
      break;
    }
    case SatResult::Unknown:
      Out.Status = VCStatus::Unknown;
      Out.Detail = "solver returned unknown";
      break;
    }
    return;
  }
  switch (*R) {
  case SatResult::Sat:
    Out.Status = VCStatus::Proved;
    break;
  case SatResult::Unsat:
    Out.Status = VCStatus::Failed;
    Out.Detail = "the choice predicate admits no assignment";
    break;
  case SatResult::Unknown:
    Out.Status = VCStatus::Unknown;
    Out.Detail = "solver returned unknown";
    break;
  }
}

ModelQueryFn modelQueryOn(Solver &S) {
  // A portfolio re-runs its tier chain for the model; pause its stats so
  // the re-query does not double-count queries / per-tier settlements.
  if (auto *P = dynamic_cast<PortfolioSolver *>(&S))
    return [P](const std::vector<const BoolExpr *> &F, const VarRefSet &Vars,
               Model &M) {
      PortfolioSolver::ScopedStatsPause Pause(*P);
      return P->checkSatWithModel(F, Vars, M);
    };
  return [&S](const std::vector<const BoolExpr *> &F, const VarRefSet &Vars,
              Model &M) { return S.checkSatWithModel(F, Vars, M); };
}

/// Like modelQueryOn, but a portfolio re-query starts at the tier that
/// settled the original query instead of re-paying every earlier tier's
/// give-up budget. Only valid right after a settling checkSat/checkRange
/// on \p S (not after a cache hit, where no tier ran).
ModelQueryFn modelQueryFromSettledTier(Solver &S) {
  auto *P = dynamic_cast<PortfolioSolver *>(&S);
  if (!P || P->lastSettledTier() < 0)
    return modelQueryOn(S);
  size_t From = static_cast<size_t>(P->lastSettledTier());
  return [P, From](const std::vector<const BoolExpr *> &F,
                   const VarRefSet &Vars, Model &M) {
    PortfolioSolver::ScopedStatsPause Pause(*P);
    return P->checkRange(From, P->tierCount(), F, &Vars, &M);
  };
}

void appendTrail(std::string &Trail, const std::string &More) {
  if (More.empty())
    return;
  if (!Trail.empty())
    Trail += "; ";
  Trail += More;
}

/// Rewrites an Unknown outcome's detail when the solver gave up on the
/// query deadline, so reports (and the driver's give-up summary) name the
/// reason. Safe after applyVerdict: Unknown means no counterexample
/// re-query ran, so the solver's last-query state is still this query's.
void noteDeadline(VCOutcome &Out, const Solver &S) {
  if (Out.Status == VCStatus::Unknown && S.lastQueryDeadlined())
    Out.Detail = "gave up: deadline expired";
}

} // namespace

//===----------------------------------------------------------------------===//
// SharedSolverCache and the persistent tier
//===----------------------------------------------------------------------===//

namespace {

const char *cacheTagWord(VarTag T) {
  switch (T) {
  case VarTag::Plain:
    return "plain";
  case VarTag::Orig:
    return "o";
  case VarTag::Rel:
    return "r";
  }
  return "?";
}

} // namespace

std::string
relax::persistentCacheKey(const std::string &Fingerprint,
                          const std::vector<const BoolExpr *> &Query,
                          const Interner &Syms) {
  std::string Key = "config " + Fingerprint + "\n";
  // Kind declarations first (the portable analogue of the shard wire
  // format's var lines), sorted for canonicity.
  VarRefSet Free;
  for (const BoolExpr *F : Query)
    collectFreeVars(F, Free);
  std::vector<std::string> VarLines;
  for (const VarRef &V : Free)
    VarLines.push_back(std::string("var ") +
                       (V.Kind == VarKind::Int ? "int" : "array") + " " +
                       cacheTagWord(V.Tag) + " " +
                       std::string(Syms.text(V.Name)));
  std::sort(VarLines.begin(), VarLines.end());
  for (const std::string &L : VarLines)
    Key += L + "\n";
  // Printed formulas, sorted lexicographically: the canonical order must
  // not depend on structural hashes (nominal) or pointers (per-process).
  Printer P(Syms);
  std::vector<std::string> Formulas;
  for (const BoolExpr *F : Query)
    Formulas.push_back(P.print(F));
  std::sort(Formulas.begin(), Formulas.end());
  for (const std::string &F : Formulas)
    Key += "formula " + F + "\n";
  return Key;
}

std::optional<SatResult>
SharedSolverCache::lookup(const std::vector<const BoolExpr *> &Query) {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<const BoolExpr *> Canonical =
      SolverResultCache::canonicalize(Query);
  if (std::optional<SatResult> R = Cache.lookupCanonical(Canonical))
    return R;
  if (!Persist)
    return std::nullopt;
  std::optional<SatResult> R =
      Persist->lookup(persistentCacheKey(Persist->fingerprint(), Query,
                                         *Syms));
  // Pull a disk hit into the memory tier so this run's duplicates skip
  // the key build (and so the stats keep counting them as memory hits).
  if (R)
    Cache.insertCanonical(std::move(Canonical), *R);
  return R;
}

void SharedSolverCache::insert(const std::vector<const BoolExpr *> &Query,
                               SatResult R) {
  std::lock_guard<std::mutex> Lock(M);
  Cache.insert(Query, R);
  // Callers only insert final non-deadline verdicts (the discipline this
  // cache documents), so forwarding is safe; the persistent tier drops
  // Unknown itself and checks verify-sampled recomputations here.
  if (Persist)
    Persist->insert(persistentCacheKey(Persist->fingerprint(), Query, *Syms),
                    R);
}

void SharedSolverCache::attachPersistent(PersistentCache *P,
                                         const Interner *S) {
  std::lock_guard<std::mutex> Lock(M);
  Persist = P;
  Syms = S;
}

VCOutcome relax::dischargeVC(const VC &Condition, const BoolExpr *Query,
                             Solver &S, const Interner &Syms,
                             SharedSolverCache *Shared) {
  VCOutcome Out;
  Out.Condition = Condition;

  auto Start = Clock::now();
  std::vector<const BoolExpr *> Formulas{Query};

  Result<SatResult> R = SatResult::Unknown;
  bool FromCache = false;
  if (Shared) {
    if (std::optional<SatResult> Cached = Shared->lookup(Formulas)) {
      R = *Cached;
      FromCache = true;
    }
  }
  if (!FromCache) {
    R = S.checkSat(Formulas);
    // Deadline gave-ups are time-dependent, never cacheable: a later run
    // of the same query with time left must not be served "unknown".
    if (Shared && R.ok() && !S.lastQueryDeadlined())
      Shared->insert(Formulas, *R);
  }

  if (FromCache)
    Out.SettledBy = "cache";
  else if (R.ok()) {
    Out.SettledBy = S.settledBy();
    Out.Trail = S.giveUpTrail();
  }
  // Captured before applyVerdict: a failed validity obligation re-queries
  // for a counterexample model, which would overwrite the per-query
  // conflict delta with the re-query's.
  if (!FromCache)
    Out.BoundedConflicts = S.lastQueryBoundedConflicts();
  applyVerdict(Out, R, Syms,
               FromCache ? modelQueryOn(S) : modelQueryFromSettledTier(S),
               Formulas);
  if (!FromCache)
    noteDeadline(Out, S);
  Out.Millis = millisSince(Start);
  return Out;
}

//===----------------------------------------------------------------------===//
// DischargeScheduler
//===----------------------------------------------------------------------===//

DischargeScheduler::DischargeScheduler(AstContext &Ctx, Config Cfg)
    : Ctx(Ctx), Cfg(std::move(Cfg)) {
  if (this->Cfg.Portfolio)
    MainPortfolio = std::make_unique<PortfolioSolver>(
        Ctx, *this->Cfg.Portfolio, this->Cfg.SmtFactory);
  if (this->Cfg.PCache)
    Shared.attachPersistent(this->Cfg.PCache, &Ctx.symbols());
}

DischargeScheduler::~DischargeScheduler() = default;

Deadline DischargeScheduler::perVcDeadline() const {
  Deadline D = Cfg.Global;
  if (Cfg.VcTimeoutMs >= 0)
    D = Deadline::earliest(D, Deadline::inMs(Cfg.VcTimeoutMs));
  return D;
}

DischargeStats DischargeScheduler::stats() const {
  DischargeStats S = WorkerAccum;
  if (MainPortfolio) {
    S.Portfolio.merge(MainPortfolio->stats());
    S.BoundedCandidates += MainPortfolio->boundedCandidates();
    S.BoundedQuantSteps += MainPortfolio->boundedQuantSteps();
    S.Search.merge(MainPortfolio->boundedSearchStats());
  }
  S.SharedCacheHits += Shared.hitCount();
  S.SharedCacheMisses += Shared.missCount();
  return S;
}

void DischargeScheduler::discharge(VCSet Set, JudgmentReport &Report,
                                   Solver &Fallback) {
  Report.Derivation = std::move(Set.Derivation);
  std::vector<VC> &VCs = Set.VCs;
  if (VCs.empty())
    return;

  // Pre-build every query formula on this thread: node construction goes
  // through the (single-threaded) hash-consing factories.
  std::vector<const BoolExpr *> Queries;
  Queries.reserve(VCs.size());
  for (const VC &C : VCs)
    Queries.push_back(vcQuery(Ctx, C));

  std::vector<VCOutcome> Outcomes(VCs.size());

  unsigned Jobs = Cfg.Jobs;
  if (!portfolioMode() && !Cfg.SolverFactory)
    Jobs = 1;
  if (Jobs > VCs.size())
    Jobs = static_cast<unsigned>(VCs.size());

  if (Jobs > 1) {
    dischargeParallel(VCs, Queries, Outcomes);
  } else if (portfolioMode()) {
    dischargeSequentialPortfolio(VCs, Queries, Outcomes);
  } else {
    // The classic single-backend sequential path, kept cache-free so a
    // driver's CachingSolver wrapper observes every query — unless a
    // persistent cache is armed, which must front every configuration.
    SharedSolverCache *SharedOrNull = Cfg.PCache ? &Shared : nullptr;
    for (size_t I = 0; I != VCs.size(); ++I) {
      Fallback.setDeadline(perVcDeadline());
      Outcomes[I] = dischargeVC(VCs[I], Queries[I], Fallback, Ctx.symbols(),
                                SharedOrNull);
    }
  }

  // VC order, not completion order: reports are deterministic.
  for (VCOutcome &Out : Outcomes) {
    Report.TotalMillis += Out.Millis;
    Report.Outcomes.push_back(std::move(Out));
  }
}

void DischargeScheduler::dischargeSequentialPortfolio(
    std::vector<VC> &VCs, const std::vector<const BoolExpr *> &Qs,
    std::vector<VCOutcome> &Outcomes) {
  for (size_t I = 0; I != VCs.size(); ++I) {
    MainPortfolio->setDeadline(perVcDeadline());
    Outcomes[I] =
        dischargeVC(VCs[I], Qs[I], *MainPortfolio, Ctx.symbols(), &Shared);
  }
}

void DischargeScheduler::dischargeParallel(
    std::vector<VC> &VCs, const std::vector<const BoolExpr *> &Qs,
    std::vector<VCOutcome> &Outcomes) {
  const Interner &Syms = Ctx.symbols();
  size_t N = VCs.size();

  // Portfolio stage boundaries: [0, FW) prepare-time simplify prefix,
  // [FW, FE) inline on the submitting worker, [FE, NT) escalation queue.
  size_t FW = 0, FE = 0, NT = 0;
  if (portfolioMode()) {
    FW = MainPortfolio->firstWorkerTier();
    FE = MainPortfolio->firstEscalationTier();
    NT = MainPortfolio->tierCount();
  }

  std::vector<std::string> Trails(N);
  std::vector<size_t> Pending;
  Pending.reserve(N);

  if (portfolioMode() && FW > 0) {
    // Prepare stage on this thread: the simplify tier builds nodes, so it
    // cannot run on a worker. Cache first, mirroring the sequential path.
    for (size_t I = 0; I != N; ++I) {
      auto Start = Clock::now();
      std::vector<const BoolExpr *> F{Qs[I]};
      Outcomes[I].Condition = VCs[I];
      if (std::optional<SatResult> Cached = Shared.lookup(F)) {
        Outcomes[I].SettledBy = "cache";
        applyVerdict(Outcomes[I], Result<SatResult>(*Cached), Syms,
                     modelQueryOn(*MainPortfolio), F);
        Outcomes[I].Millis += millisSince(Start);
        continue;
      }
      MainPortfolio->setDeadline(perVcDeadline());
      Result<SatResult> R =
          MainPortfolio->checkRange(0, FW, F, nullptr, nullptr);
      Outcomes[I].BoundedConflicts +=
          MainPortfolio->lastQueryBoundedConflicts();
      if (MainPortfolio->lastSettled() || !R.ok()) {
        Outcomes[I].SettledBy = MainPortfolio->settledBy();
        Outcomes[I].Trail = MainPortfolio->giveUpTrail();
        if (R.ok() && !MainPortfolio->lastQueryDeadlined())
          Shared.insert(F, *R);
        applyVerdict(Outcomes[I], R, Syms, modelQueryOn(*MainPortfolio), F);
        noteDeadline(Outcomes[I], *MainPortfolio);
        Outcomes[I].Millis += millisSince(Start);
        continue;
      }
      Trails[I] = MainPortfolio->giveUpTrail();
      Outcomes[I].Millis += millisSince(Start);
      Pending.push_back(I);
    }
  } else {
    for (size_t I = 0; I != N; ++I)
      Pending.push_back(I);
  }
  if (Pending.empty())
    return;

  unsigned Jobs =
      static_cast<unsigned>(std::min<size_t>(Cfg.Jobs, Pending.size()));

  // Per-worker deques, round-robin seeded. Owners pop the front; thieves
  // pop the back, so a steal grabs the work its owner would reach last.
  struct WorkerDeque {
    std::mutex M;
    std::deque<size_t> Q;
  };
  std::vector<WorkerDeque> Deques(Jobs);
  for (size_t K = 0; K != Pending.size(); ++K)
    Deques[K % Jobs].Q.push_back(Pending[K]);

  std::atomic<size_t> PrimaryRemaining{Pending.size()};
  std::mutex EscM;
  std::condition_variable EscCV; // escalation pushed / primary drained
  std::vector<size_t> Esc; // guarded by EscM; never shrinks
  size_t EscNext = 0;      // guarded by EscM
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> Escalated{0};
  std::mutex StatsM; // guards WorkerAccum merging at worker exit

  auto PopOwn = [&](unsigned W, size_t &I) {
    std::lock_guard<std::mutex> L(Deques[W].M);
    if (Deques[W].Q.empty())
      return false;
    I = Deques[W].Q.front();
    Deques[W].Q.pop_front();
    return true;
  };
  auto StealFrom = [&](unsigned W, size_t &I) {
    for (unsigned D = 1; D != Jobs; ++D) {
      WorkerDeque &V = Deques[(W + D) % Jobs];
      std::lock_guard<std::mutex> L(V.M);
      if (!V.Q.empty()) {
        I = V.Q.back();
        V.Q.pop_back();
        return true;
      }
    }
    return false;
  };
  auto PushEsc = [&](size_t I) {
    {
      std::lock_guard<std::mutex> L(EscM);
      Esc.push_back(I);
    }
    EscCV.notify_all();
  };
  auto PopEsc = [&](size_t &I) {
    std::lock_guard<std::mutex> L(EscM);
    if (EscNext == Esc.size())
      return false;
    I = Esc[EscNext++];
    return true;
  };

  auto WorkerFn = [&](unsigned W) {
    std::unique_ptr<Solver> Single;
    std::unique_ptr<PortfolioSolver> Port;
    if (portfolioMode())
      Port = std::make_unique<PortfolioSolver>(Ctx, *Cfg.Portfolio,
                                               Cfg.SmtFactory);
    else
      Single = Cfg.SolverFactory();

    // Model re-queries on a worker must skip the simplify prefix (it
    // builds nodes); the query already failed to fold there anyway.
    // \p From picks the first tier to re-run: FW for cache-served
    // verdicts (no tier ran), the settling tier otherwise — so a failed
    // obligation does not re-pay earlier tiers' give-up budgets.
    auto WorkerModelAt = [&](size_t From) {
      return ModelQueryFn([&, From](const std::vector<const BoolExpr *> &F,
                                    const VarRefSet &Vars, Model &M) {
        PortfolioSolver::ScopedStatsPause Pause(*Port);
        return Port->checkRange(From, NT, F, &Vars, &M);
      });
    };
    ModelQueryFn WorkerModelQuery =
        Port ? WorkerModelAt(FW) : modelQueryOn(*Single);
    auto SettledTierOr = [&](size_t Fallback) {
      return Port->lastSettledTier() < 0
                 ? Fallback
                 : static_cast<size_t>(Port->lastSettledTier());
    };

    auto RunInline = [&](size_t I) {
      if (!portfolioMode()) {
        Single->setDeadline(perVcDeadline());
        Outcomes[I] = dischargeVC(VCs[I], Qs[I], *Single, Syms, &Shared);
        return;
      }
      auto Start = Clock::now();
      std::vector<const BoolExpr *> F{Qs[I]};
      Outcomes[I].Condition = VCs[I];
      if (std::optional<SatResult> Cached = Shared.lookup(F)) {
        Outcomes[I].SettledBy = "cache";
        Outcomes[I].Trail = Trails[I];
        applyVerdict(Outcomes[I], Result<SatResult>(*Cached), Syms,
                     WorkerModelQuery, F);
        Outcomes[I].Millis += millisSince(Start);
        return;
      }
      Port->setDeadline(perVcDeadline());
      Result<SatResult> R = Port->checkRange(FW, FE, F, nullptr, nullptr);
      Outcomes[I].BoundedConflicts += Port->lastQueryBoundedConflicts();
      appendTrail(Trails[I], Port->giveUpTrail());
      if (Port->lastSettled() || !R.ok() || FE == NT) {
        Outcomes[I].SettledBy = Port->settledBy();
        Outcomes[I].Trail = Trails[I];
        if (R.ok() && !Port->lastQueryDeadlined())
          Shared.insert(F, *R);
        applyVerdict(Outcomes[I], R, Syms, WorkerModelAt(SettledTierOr(FW)),
                     F);
        noteDeadline(Outcomes[I], *Port);
        Outcomes[I].Millis += millisSince(Start);
        return;
      }
      Outcomes[I].Millis += millisSince(Start);
      Escalated.fetch_add(1);
      PushEsc(I);
    };

    auto RunEscalated = [&](size_t I) {
      auto Start = Clock::now();
      std::vector<const BoolExpr *> F{Qs[I]};
      if (std::optional<SatResult> Cached = Shared.lookup(F)) {
        // A duplicate settled elsewhere while this one sat queued.
        Outcomes[I].SettledBy = "cache";
        Outcomes[I].Trail = Trails[I];
        applyVerdict(Outcomes[I], Result<SatResult>(*Cached), Syms,
                     WorkerModelQuery, F);
        Outcomes[I].Millis += millisSince(Start);
        return;
      }
      Port->setDeadline(perVcDeadline());
      Result<SatResult> R = Port->checkRange(FE, NT, F, nullptr, nullptr);
      Outcomes[I].BoundedConflicts += Port->lastQueryBoundedConflicts();
      appendTrail(Trails[I], Port->giveUpTrail());
      if (R.ok() && !Port->lastQueryDeadlined())
        Shared.insert(F, *R);
      Outcomes[I].SettledBy = Port->settledBy();
      Outcomes[I].Trail = Trails[I];
      applyVerdict(Outcomes[I], R, Syms, WorkerModelAt(SettledTierOr(FE)),
                   F);
      noteDeadline(Outcomes[I], *Port);
      Outcomes[I].Millis += millisSince(Start);
    };

    // Escalations are pushed before the primary counter is decremented,
    // so once PrimaryRemaining reads 0 every escalation is visible.
    auto FinishPrimary = [&] {
      if (PrimaryRemaining.fetch_sub(1) == 1) {
        // Take (and drop) the wait mutex before notifying: a waiter that
        // evaluated its predicate just before the decrement is ordered
        // into the condition variable's queue by the time we can acquire
        // EscM, so this final notification cannot be lost.
        { std::lock_guard<std::mutex> L(EscM); }
        EscCV.notify_all();
      }
    };
    while (true) {
      size_t I;
      if (PopOwn(W, I)) {
        RunInline(I);
        FinishPrimary();
        continue;
      }
      if (StealFrom(W, I)) {
        Steals.fetch_add(1);
        RunInline(I);
        FinishPrimary();
        continue;
      }
      // No inline work anywhere; help drain escalations.
      if (PopEsc(I)) {
        RunEscalated(I);
        continue;
      }
      if (PrimaryRemaining.load() == 0) {
        // All inline work done, so every escalation has been pushed;
        // re-check once more, then we are finished.
        if (PopEsc(I)) {
          RunEscalated(I);
          continue;
        }
        break;
      }
      // Primary tasks never appear after seeding, so an idle worker can
      // only be woken by an escalation push or the last primary task
      // completing — park on the condition instead of spinning.
      std::unique_lock<std::mutex> L(EscM);
      EscCV.wait(L, [&] {
        return EscNext != Esc.size() || PrimaryRemaining.load() == 0;
      });
    }

    if (Port) {
      std::lock_guard<std::mutex> L(StatsM);
      WorkerAccum.Portfolio.merge(Port->stats());
      WorkerAccum.BoundedCandidates += Port->boundedCandidates();
      WorkerAccum.BoundedQuantSteps += Port->boundedQuantSteps();
      WorkerAccum.Search.merge(Port->boundedSearchStats());
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Jobs - 1);
  for (unsigned W = 1; W != Jobs; ++W)
    Pool.emplace_back(WorkerFn, W);
  WorkerFn(0);
  for (std::thread &T : Pool)
    T.join();

  WorkerAccum.StolenTasks += Steals.load();
  WorkerAccum.EscalatedObligations += Escalated.load();
}
