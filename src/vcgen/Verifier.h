//===- Verifier.h - End-to-end verification driver ------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full pipeline for one annotated program: sema, the |-o VC pass,
/// the |-r VC pass (which internally re-proves diverge bodies under |-o and
/// |-i), and solver discharging. A program whose two passes both verify
/// enjoys the paper's end-to-end guarantees:
///
///  * Original Progress Modulo Assumptions (Lemma 2),
///  * Soundness of Relational Assertions   (Theorem 6),
///  * Relative Relaxed Progress            (Theorem 7),
///  * Relaxed Progress                     (Theorem 8),
///  * Relaxed Progress Modulo Original Assumptions (Corollary 9).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_VERIFIER_H
#define RELAXC_VCGEN_VERIFIER_H

#include "sema/Sema.h"
#include "solver/Solver.h"
#include "vcgen/RelationalVCGen.h"

#include <functional>
#include <memory>

namespace relax {

/// Discharge status of one VC.
enum class VCStatus : uint8_t {
  Proved,
  Failed,      ///< solver found a counterexample / found the premise unsat
  Unknown,     ///< solver gave up
  SolverError, ///< backend error (timeout conversion, translation, ...)
};

/// Returns "proved" / "failed" / "unknown" / "error".
const char *vcStatusName(VCStatus S);

/// One VC with its discharge result.
struct VCOutcome {
  VC Condition;
  VCStatus Status = VCStatus::Unknown;
  std::string Detail;
  double Millis = 0;
};

/// All VCs of one judgment pass.
struct JudgmentReport {
  JudgmentKind Judgment = JudgmentKind::Original;
  std::vector<VCOutcome> Outcomes;
  std::vector<DerivationStep> Derivation;
  double TotalMillis = 0;

  size_t count(VCStatus S) const {
    size_t N = 0;
    for (const VCOutcome &O : Outcomes)
      N += O.Status == S ? 1 : 0;
    return N;
  }
  bool allProved() const { return count(VCStatus::Proved) == Outcomes.size(); }
};

/// The full verification report for a program.
struct VerifyReport {
  bool SemaOk = false;
  /// Structural rule violations found during VC generation (e.g. a diverge
  /// frame over a modified variable); reported via the DiagnosticEngine.
  bool GenErrors = false;
  JudgmentReport Original; ///< |-o pass over {requires} body {ensures}
  JudgmentReport Relaxed;  ///< |-r pass over {rrequires} body {rensures}

  /// Theorem 8 preconditions: both passes verified.
  bool verified() const {
    return SemaOk && !GenErrors && Original.allProved() &&
           Relaxed.allProved();
  }

  size_t totalVCs() const {
    return Original.Outcomes.size() + Relaxed.Outcomes.size();
  }
};

/// Verification pipeline driver.
///
/// VC generation is sequential (it builds hash-consed nodes, which is not
/// thread-safe), but discharging is embarrassingly parallel: with Jobs > 1
/// and a SolverFactory, independent obligations are distributed over a
/// small worker pool, each worker owning its own backend, all sharing one
/// mutex-guarded result cache. Query formulas (including the negations of
/// validity VCs) are pre-built before the fan-out, so workers never touch
/// the AstContext. Outcomes are stored in VC order, so verdicts and
/// diagnostics are identical to the sequential (`Jobs = 1`) path.
class Verifier {
public:
  struct Options {
    VCGenOptions GenOpts;
    bool RunOriginal = true;
    bool RunRelaxed = true;
    /// Number of discharge workers. 1 (or no SolverFactory) means the
    /// classic sequential path on the constructor-supplied solver.
    unsigned Jobs = 1;
    /// Creates one backend per worker for the parallel path (backends are
    /// not safe for concurrent use).
    std::function<std::unique_ptr<Solver>()> SolverFactory;
  };

  Verifier(AstContext &Ctx, const Program &Prog, Solver &S,
           DiagnosticEngine &Diags)
      : Ctx(Ctx), Prog(Prog), TheSolver(S), Diags(Diags) {}

  /// Runs sema + both passes + discharging.
  VerifyReport run(Options Opts);
  VerifyReport run() { return run(Options{}); }

  /// The relational precondition actually used: the program's rrequires
  /// clause, or (by default) "both executions start from the same state
  /// satisfying the unary precondition":
  /// identity /\ injo(requires) /\ injr(requires).
  const BoolExpr *effectiveRelRequires();

  /// Mutex-guarded result cache shared by all parallel workers across both
  /// judgment passes of one run() (defined in Verifier.cpp; declared here,
  /// outside the private section, so the file-local discharge helper can
  /// name it).
  class SharedResultCache;

private:
  AstContext &Ctx;
  const Program &Prog;
  Solver &TheSolver;
  DiagnosticEngine &Diags;

  void discharge(VCSet Set, JudgmentReport &Report, const Options &Opts,
                 SharedResultCache &Shared);
  void dischargeParallel(std::vector<VC> &VCs, JudgmentReport &Report,
                         const Options &Opts, SharedResultCache &Shared);
};

/// Renders a human-readable report.
std::string renderReport(const VerifyReport &Report, const Interner &Syms,
                         bool Verbose = false);

} // namespace relax

#endif // RELAXC_VCGEN_VERIFIER_H
