//===- Verifier.h - End-to-end verification driver ------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full pipeline for one annotated program: sema, the |-o VC pass,
/// the |-r VC pass (which internally re-proves diverge bodies under |-o and
/// |-i), and solver discharging. A program whose two passes both verify
/// enjoys the paper's end-to-end guarantees:
///
///  * Original Progress Modulo Assumptions (Lemma 2),
///  * Soundness of Relational Assertions   (Theorem 6),
///  * Relative Relaxed Progress            (Theorem 7),
///  * Relaxed Progress                     (Theorem 8),
///  * Relaxed Progress Modulo Original Assumptions (Corollary 9).
///
/// Discharging goes through the `DischargeScheduler` (vcgen/Discharge.h):
/// either the classic single-backend path on the constructor-supplied
/// solver, or — when `Options::Portfolio` is set — the tiered portfolio
/// pipeline (simplify → budgeted bounded → SMT, with the final tier
/// optionally sharded onto a worker-process pool via
/// `PortfolioOptions::Pool`), optionally fanned out over a work-stealing
/// worker pool with `Jobs > 1`. Verdicts and report ordering are
/// independent of the schedule, the process count, and the pool size.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_VERIFIER_H
#define RELAXC_VCGEN_VERIFIER_H

#include "sema/Sema.h"
#include "vcgen/Discharge.h"
#include "vcgen/RelationalVCGen.h"

#include <functional>
#include <memory>

namespace relax {

/// The full verification report for a program.
struct VerifyReport {
  bool SemaOk = false;
  /// Structural rule violations found during VC generation (e.g. a diverge
  /// frame over a modified variable); reported via the DiagnosticEngine.
  bool GenErrors = false;
  /// |-o pass: every procedure's {requires} body {ensures} summary.
  JudgmentReport Original;
  /// |-r pass: every procedure's {rrequires} body {rensures} summary,
  /// plus |-i summaries for procedures reachable from calls under plain
  /// `diverge` annotations. Each VC's Proc field names its procedure.
  JudgmentReport Relaxed;

  /// Theorem 8 preconditions: both passes verified.
  bool verified() const {
    return SemaOk && !GenErrors && Original.allProved() &&
           Relaxed.allProved();
  }

  size_t totalVCs() const {
    return Original.Outcomes.size() + Relaxed.Outcomes.size();
  }
};

/// Verification pipeline driver.
///
/// VC generation is sequential (it builds hash-consed nodes, which is not
/// thread-safe); discharging is delegated to a DischargeScheduler whose
/// result cache and statistics span both judgment passes of one run().
class Verifier {
public:
  struct Options {
    VCGenOptions GenOpts;
    bool RunOriginal = true;
    bool RunRelaxed = true;
    /// Number of discharge workers. 1 means the sequential path; > 1
    /// requires a SolverFactory (single-backend mode) or a Portfolio.
    unsigned Jobs = 1;
    /// Creates one backend per worker for the single-backend parallel
    /// path (backends are not safe for concurrent use). In portfolio
    /// mode this is unused — set SmtFactory instead.
    std::function<std::unique_ptr<Solver>()> SolverFactory;
    /// Tier chain for the portfolio pipeline. When set, discharging runs
    /// through per-worker PortfolioSolvers and the constructor-supplied
    /// solver is not consulted.
    std::optional<PortfolioOptions> Portfolio;
    /// Final-tier SMT backend factory for the portfolio; null degrades
    /// the z3 tier to bounded-at-full-domain.
    PortfolioSolver::BackendFactory SmtFactory;
    /// When non-null, the run's discharge statistics (per-tier settled /
    /// escalated counts, cache hits, work counters) are merged here.
    DischargeStats *StatsOut = nullptr;
    /// Global deadline (`--timeout-ms`) for the whole run; unarmed means
    /// none. Obligations past it settle as gave-ups with reason
    /// "deadline" — a bounded run always produces a complete report.
    Deadline GlobalDeadline;
    /// Per-VC timeout in milliseconds (`--vc-timeout-ms`); < 0 disables.
    int64_t VcTimeoutMs = -1;
    /// On-disk verdict cache (`--cache-dir=`) fronting the scheduler's
    /// shared result cache; not owned, may be null. The caller loads it
    /// before run() and flushes it after.
    PersistentCache *PCache = nullptr;
  };

  Verifier(AstContext &Ctx, const Program &Prog, Solver &S,
           DiagnosticEngine &Diags)
      : Ctx(Ctx), Prog(Prog), TheSolver(S), Diags(Diags) {}

  /// Runs sema + both passes + discharging.
  VerifyReport run(Options Opts);
  VerifyReport run() { return run(Options{}); }

  /// The relational precondition actually used for the *entry* procedure:
  /// its rrequires clause, or (by default) "both executions start from the
  /// same state satisfying the unary precondition":
  /// identity /\ injo(requires) /\ injr(requires).
  /// The per-procedure generalization is relax::effectiveRelRequires in
  /// logic/FormulaOps.h; run() uses that for every procedure.
  const BoolExpr *effectiveRelRequires();

private:
  AstContext &Ctx;
  const Program &Prog;
  Solver &TheSolver;
  DiagnosticEngine &Diags;
};

/// Renders a human-readable report.
std::string renderReport(const VerifyReport &Report, const Interner &Syms,
                         bool Verbose = false);

} // namespace relax

#endif // RELAXC_VCGEN_VERIFIER_H
