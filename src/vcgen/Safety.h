//===- Safety.h - Runtime-trap safety preconditions -----------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic semantics traps division/modulo by zero and out-of-bounds
/// array accesses as `wr`. The paper's progress theorems say verified
/// programs never reach `wr`, so the VC generators must rule the traps out:
/// safe(e) is the weakest (conjunction of) conditions under which
/// evaluating e cannot trap. Evaluation is strict, so every subexpression
/// contributes.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_SAFETY_H
#define RELAXC_VCGEN_SAFETY_H

#include "ast/AstContext.h"

namespace relax {

/// Conjunction of no-trap conditions for evaluating \p E.
const BoolExpr *safetyCondition(AstContext &Ctx, const Expr *E);

/// Conjunction of no-trap conditions for evaluating \p B (strictly).
const BoolExpr *safetyCondition(AstContext &Ctx, const BoolExpr *B);

} // namespace relax

#endif // RELAXC_VCGEN_SAFETY_H
