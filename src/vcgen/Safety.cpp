//===- Safety.cpp - Runtime-trap safety preconditions -------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/Safety.h"

#include "support/Casting.h"

using namespace relax;

namespace {

void collect(AstContext &Ctx, const Expr *E,
             std::vector<const BoolExpr *> &Out);

void collectArray(AstContext &Ctx, const ArrayExpr *A,
                  std::vector<const BoolExpr *> &Out) {
  if (const auto *S = dyn_cast<ArrayStoreExpr>(A)) {
    collectArray(Ctx, S->base(), Out);
    collect(Ctx, S->index(), Out);
    collect(Ctx, S->value(), Out);
  }
}

void collect(AstContext &Ctx, const Expr *E,
             std::vector<const BoolExpr *> &Out) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::ArrayRead: {
    const auto *R = cast<ArrayReadExpr>(E);
    collectArray(Ctx, R->base(), Out);
    collect(Ctx, R->index(), Out);
    Out.push_back(Ctx.ge(R->index(), Ctx.intLit(0)));
    Out.push_back(Ctx.lt(R->index(), Ctx.arrayLen(R->base())));
    return;
  }
  case Expr::Kind::ArrayLen:
    collectArray(Ctx, cast<ArrayLenExpr>(E)->base(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collect(Ctx, B->lhs(), Out);
    collect(Ctx, B->rhs(), Out);
    if (B->op() == BinaryOp::Div || B->op() == BinaryOp::Mod)
      Out.push_back(Ctx.ne(B->rhs(), Ctx.intLit(0)));
    return;
  }
  }
}

void collectBool(AstContext &Ctx, const BoolExpr *B,
                 std::vector<const BoolExpr *> &Out) {
  switch (B->kind()) {
  case BoolExpr::Kind::BoolLit:
    return;
  case BoolExpr::Kind::Cmp: {
    const auto *C = cast<CmpExpr>(B);
    collect(Ctx, C->lhs(), Out);
    collect(Ctx, C->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::ArrayCmp: {
    const auto *C = cast<ArrayCmpExpr>(B);
    collectArray(Ctx, C->lhs(), Out);
    collectArray(Ctx, C->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::Logical: {
    const auto *L = cast<LogicalExpr>(B);
    collectBool(Ctx, L->lhs(), Out);
    collectBool(Ctx, L->rhs(), Out);
    return;
  }
  case BoolExpr::Kind::Not:
    collectBool(Ctx, cast<NotExpr>(B)->sub(), Out);
    return;
  case BoolExpr::Kind::Exists:
    // Program expressions are quantifier-free (sema); formulas in
    // annotations use the total logic semantics and never trap.
    return;
  }
}

} // namespace

const BoolExpr *relax::safetyCondition(AstContext &Ctx, const Expr *E) {
  std::vector<const BoolExpr *> Parts;
  collect(Ctx, E, Parts);
  return Ctx.conj(Parts);
}

const BoolExpr *relax::safetyCondition(AstContext &Ctx, const BoolExpr *B) {
  std::vector<const BoolExpr *> Parts;
  collectBool(Ctx, B, Parts);
  return Ctx.conj(Parts);
}
