//===- Discharge.h - Obligation discharge subsystem ----------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared obligation-discharge subsystem: the per-VC verdict mapping
/// (`dischargeVC`), the mutex-guarded verified result cache shared across
/// workers and judgment passes, and the work-stealing scheduler that
/// distributes obligations over a worker pool.
///
/// Both the `Verifier` and the `ProofChecker`'s re-discharge path go
/// through `dischargeVC`, so the checker and the verifier can never
/// disagree on how a VC maps to a solver query or how a sat verdict maps
/// to a discharge status — whatever backend (including a tiered
/// `PortfolioSolver`) either of them runs.
///
/// ## Scheduling model
///
/// VC generation is sequential (hash-consed node construction is not
/// thread-safe), so queries — including the negations of validity VCs and
/// any simplify-tier work — are prepared on the submitting thread before
/// the fan-out. Workers then pull obligation indices from per-worker
/// deques, stealing from a victim's deque when their own runs dry. In
/// portfolio mode each worker runs the cheap tiers (the budgeted bounded
/// search) inline; obligations every cheap tier gave up on are pushed to
/// a shared escalation queue, drained — also cooperatively — by whichever
/// workers go idle first, each owning its expensive final-tier backend.
///
/// ## The verdict-identity rule
///
/// Scheduling must never change a verdict. This holds by construction:
/// each obligation's outcome is a pure function of its own query (every
/// tier is deterministic, and per-query budgets make give-ups
/// deterministic too), outcomes are stored by obligation index and
/// emitted in VC order, and the shared cache only ever stores final
/// verdicts — a hit returns exactly what recomputation would. The only
/// observable difference between schedules is *who* settled an obligation
/// (`VCOutcome::SettledBy` may say "cache" on one run and a tier name on
/// another), which is why that field is informational and excluded from
/// the differential pins.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_DISCHARGE_H
#define RELAXC_VCGEN_DISCHARGE_H

#include "solver/CachingSolver.h"
#include "solver/Portfolio.h"
#include "vcgen/VC.h"

#include <functional>
#include <memory>
#include <mutex>
#include <optional>

namespace relax {

class PersistentCache;

/// Discharge status of one VC.
enum class VCStatus : uint8_t {
  Proved,
  Failed,      ///< solver found a counterexample / found the premise unsat
  Unknown,     ///< solver gave up
  SolverError, ///< backend error (timeout conversion, translation, ...)
};

/// Returns "proved" / "failed" / "unknown" / "error".
const char *vcStatusName(VCStatus S);

/// One VC with its discharge result.
struct VCOutcome {
  VC Condition;
  VCStatus Status = VCStatus::Unknown;
  std::string Detail;
  double Millis = 0;
  /// Which component settled the query: a backend name, a portfolio tier
  /// name ("simplify", "bounded", "z3", "bounded-full"), or "cache" for
  /// shared-cache hits. Informational: which duplicate of a query
  /// computes vs hits the cache depends on worker timing, so this field
  /// is excluded from the determinism pins (unlike Status and Detail).
  std::string SettledBy;
  /// Give-up trail of the portfolio tiers that escalated (informational,
  /// empty outside portfolio mode and on cache hits).
  std::string Trail;
  /// Bounded-search conflicts this obligation's query hit (informational,
  /// like SettledBy: 0 on cache hits and shard-settled queries, whose
  /// search ran elsewhere). Shown by --explain.
  uint64_t BoundedConflicts = 0;
};

/// All VCs of one judgment pass.
struct JudgmentReport {
  JudgmentKind Judgment = JudgmentKind::Original;
  std::vector<VCOutcome> Outcomes;
  std::vector<DerivationStep> Derivation;
  double TotalMillis = 0;

  size_t count(VCStatus S) const {
    size_t N = 0;
    for (const VCOutcome &O : Outcomes)
      N += O.Status == S ? 1 : 0;
    return N;
  }
  bool allProved() const { return count(VCStatus::Proved) == Outcomes.size(); }
};

/// A mutex-guarded SolverResultCache shared by the discharge workers, so
/// a side condition settled by one worker is a cache hit for every other.
/// Owned by the scheduler so duplicates across the |-o and |-r passes hit
/// too. Only final verdicts are inserted (in portfolio mode: after the
/// full escalation chain), so a hit always equals recomputation.
///
/// When a PersistentCache is attached it fronts the on-disk store: an
/// in-memory miss falls through to a portable-key lookup (pulling hits
/// back into the memory tier), and every final verdict is persisted
/// alongside the memory insert. Callers are unchanged — the never-cache-
/// deadline discipline they already apply covers the disk tier too.
class SharedSolverCache {
public:
  std::optional<SatResult> lookup(const std::vector<const BoolExpr *> &Query);
  void insert(const std::vector<const BoolExpr *> &Query, SatResult R);
  uint64_t hitCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Cache.hitCount();
  }
  uint64_t missCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Cache.missCount();
  }

  /// Fronts this cache with \p P (keys built against its fingerprint,
  /// printed via \p Syms). Call before discharging begins.
  void attachPersistent(PersistentCache *P, const Interner *Syms);

private:
  mutable std::mutex M;
  SolverResultCache Cache;
  PersistentCache *Persist = nullptr;
  const Interner *Syms = nullptr;
};

/// Builds the process-portable on-disk cache key for \p Query: the
/// config fingerprint line, the free variables' kind declarations
/// (sorted), and each formula's printed `.rlx` serialization (sorted) —
/// the same serialization the shard wire protocol proved total. Symbol
/// ids and structural hashes are declaration-order nominal and must
/// never leak into the key. Pure reads of \p Syms, so it is safe on
/// discharge worker threads.
std::string persistentCacheKey(const std::string &Fingerprint,
                               const std::vector<const BoolExpr *> &Query,
                               const Interner &Syms);

/// Builds the solver query for one VC: validity obligations are negated
/// (`unsat` means proved — the conventional phrasing of a proof
/// obligation), satisfiability premises pass through. Builds nodes, so it
/// must run on the thread that owns the AstContext.
const BoolExpr *vcQuery(AstContext &Ctx, const VC &C);

/// Discharges one VC whose solver query \p Query was pre-built. The one
/// shared verdict mapping: the sequential verifier path, the scheduler's
/// workers, and the proof checker's re-discharge all call this, so they
/// produce identical verdicts and diagnostics. Workers must not touch the
/// AstContext: \p Syms is only read, and freeVars/formatModel are pure.
VCOutcome dischargeVC(const VC &Condition, const BoolExpr *Query, Solver &S,
                      const Interner &Syms, SharedSolverCache *Shared);

/// Aggregated statistics of one scheduler's lifetime (`--solver-stats`).
struct DischargeStats {
  PortfolioStats Portfolio; ///< merged across all workers (portfolio mode)
  uint64_t SharedCacheHits = 0;
  uint64_t SharedCacheMisses = 0;
  uint64_t BoundedCandidates = 0; ///< bounded-tier candidate assignments
  uint64_t BoundedQuantSteps = 0; ///< bounded-tier quantifier-body evals
  BoundedSearchStats Search; ///< bounded conflict-driven-search counters
  uint64_t EscalatedObligations = 0; ///< queued past the inline stage
  uint64_t StolenTasks = 0; ///< obligations run by a non-owner worker

  void merge(const DischargeStats &O);
};

/// The work-stealing obligation scheduler (see the file comment). One
/// instance serves both judgment passes of a verification run, sharing
/// its result cache and accumulating its statistics across them.
class DischargeScheduler {
public:
  struct Config {
    /// Number of discharge workers; <= 1 runs on the submitting thread.
    unsigned Jobs = 1;
    /// Tier chain for portfolio mode; nullopt = single-backend mode.
    std::optional<PortfolioOptions> Portfolio;
    /// Final-tier SMT backend factory for portfolio mode (null degrades
    /// the z3 tier to bounded-at-full-domain).
    PortfolioSolver::BackendFactory SmtFactory;
    /// Per-worker backend factory for single-backend parallel mode; when
    /// null, Jobs is forced to 1.
    std::function<std::unique_ptr<Solver>()> SolverFactory;
    /// Global deadline for the whole run (`--timeout-ms`); unarmed means
    /// none. Obligations reached after expiry settle immediately as
    /// gave-ups with reason "deadline" — the scheduler drains
    /// cooperatively, it never abandons outcomes or hangs.
    Deadline Global;
    /// Per-VC timeout in milliseconds (`--vc-timeout-ms`); < 0 disables.
    /// Each obligation (re)arms `earliest(Global, now + VcTimeoutMs)`
    /// when a discharge stage picks it up.
    int64_t VcTimeoutMs = -1;
    /// On-disk verdict cache (`--cache-dir=`) fronting the shared result
    /// cache; not owned, may be null. The caller loads and flushes it.
    PersistentCache *PCache = nullptr;
  };

  DischargeScheduler(AstContext &Ctx, Config Cfg);
  ~DischargeScheduler();

  bool portfolioMode() const { return Cfg.Portfolio.has_value(); }

  /// Discharges \p Set into \p Report, outcomes in VC order. \p Fallback
  /// is the classic constructor-supplied backend, used for the
  /// single-backend sequential path (kept cache-free there so a driver's
  /// CachingSolver wrapper observes every query, exactly as before the
  /// scheduler existed).
  void discharge(VCSet Set, JudgmentReport &Report, Solver &Fallback);

  /// Statistics accumulated so far.
  DischargeStats stats() const;

private:
  AstContext &Ctx;
  Config Cfg;
  SharedSolverCache Shared;
  /// Runs the simplify prefix at prepare time and the whole chain on the
  /// sequential portfolio path; also the model backend for cache-hit
  /// counterexamples settled on the submitting thread.
  std::unique_ptr<PortfolioSolver> MainPortfolio;
  /// Stats merged from joined workers (worker solvers die with their
  /// threads; MainPortfolio and the cache are read live in stats()).
  DischargeStats WorkerAccum;

  /// The deadline one obligation runs under right now: the global
  /// deadline capped by a freshly armed per-VC timeout.
  Deadline perVcDeadline() const;

  void dischargeSequentialPortfolio(std::vector<VC> &VCs,
                                    const std::vector<const BoolExpr *> &Qs,
                                    std::vector<VCOutcome> &Outcomes);
  void dischargeParallel(std::vector<VC> &VCs,
                         const std::vector<const BoolExpr *> &Qs,
                         std::vector<VCOutcome> &Outcomes);
};

} // namespace relax

#endif // RELAXC_VCGEN_DISCHARGE_H
