//===- RelationalVCGen.h - Axiomatic relaxed semantics --------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward VC generator for the axiomatic relaxed semantics |-r (Figure 8),
/// the relational Hoare logic relating lockstep pairs of original and
/// relaxed executions:
///
///  * `relax` re-chooses only the relaxed-side variables (the fresh
///    substitution touches X<r>, never X<o>) and conjoins <e . e>;
///  * `assert` / `assume` transfer validity from the original execution:
///    the obligation is P* /\ injo(e) ==> injr(e) — noninterference
///    relations make this immediate;
///  * `relate l : e*` requires e* and records it;
///  * `if` / `while` require *convergent* control flow
///    (P* ==> <b . b> \/ <!b . !b>) and consume relational invariants;
///  * statements annotated `diverge` use the diverge rule: the original
///    side is re-proved under |-o, the relaxed side under |-i, all
///    cross-execution relations are dropped except an explicitly framed
///    relational formula over unmodified variables.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_RELATIONALVCGEN_H
#define RELAXC_VCGEN_RELATIONALVCGEN_H

#include "vcgen/UnaryVCGen.h"

namespace relax {

/// Strongest-postcondition VC generator for |-r.
class RelationalVCGen {
public:
  RelationalVCGen(AstContext &Ctx, const Program &Prog,
                  DiagnosticEngine &Diags, VCGenOptions Opts = VCGenOptions());

  /// Computes the relational sp(Pre*, S), appending obligations.
  const BoolExpr *genStmt(const Stmt *S, const BoolExpr *Pre);

  /// Generates the whole-triple obligations for {Pre*} S {Post*}.
  void genTriple(const BoolExpr *Pre, const Stmt *S, const BoolExpr *Post);

  /// Sets the display name stamped on emitted VCs' Proc field: the
  /// procedure whose relational summary this generator run verifies
  /// ("main" by default). Propagated into the |-o and |-i sub-generators
  /// the diverge rule spawns.
  void setProcName(std::string Name) { ProcName = std::move(Name); }

  /// Takes the accumulated VCs and derivation (includes the |-o and |-i
  /// sub-derivations created by diverge rules).
  VCSet take() { return std::move(Out); }

private:
  AstContext &Ctx;
  const Program &Prog;
  DiagnosticEngine &Diags;
  VCGenOptions Opts;
  Simplifier Simp;
  VCSet Out;
  std::string ProcName = "main";
  /// Provenance state: the statement whose rule is currently being
  /// applied (stamped on emitted VCs as their origin), and the running
  /// count of obligation-formula rewrites (the simplify trace).
  const Stmt *CurStmt = nullptr;
  uint32_t SimplifyTraces = 0;

  const BoolExpr *maybeSimplify(const BoolExpr *B);
  void emitValidity(const BoolExpr *F, const char *Rule, SourceLoc Loc,
                    std::string Description);
  void emitSat(const BoolExpr *F, const char *Rule, SourceLoc Loc,
               std::string Description);
  /// Emits "evaluation cannot trap" obligations for both executions.
  void emitSafetyBoth(const BoolExpr *Pre, const BoolExpr *ProgramBool,
                      const char *Rule, SourceLoc Loc);
  void emitSafetyBoth(const BoolExpr *Pre, const Expr *ProgramExpr,
                      const char *Rule, SourceLoc Loc);
  void record(const char *Rule, const Stmt *S, const BoolExpr *Pre,
              const BoolExpr *Post);

  /// <b . b> and <!b . !b>.
  const BoolExpr *bothTrue(const BoolExpr *B);
  const BoolExpr *bothFalse(const BoolExpr *B);
  /// The convergence side condition P* ==> <b.b> \/ <!b.!b>.
  void emitConvergence(const BoolExpr *Pre, const BoolExpr *Cond,
                       const char *Rule, SourceLoc Loc);

  /// Renames the statement's variable set on side \p Tag to fresh names and
  /// existentially quantifies them; conjoins length-invariance for arrays.
  const BoolExpr *freshenSide(const ChoiceStmtBase *S, const BoolExpr *Pre,
                              VarTag Tag);

  const BoolExpr *genDiverge(const Stmt *S, const DivergeAnnotation *D,
                             const BoolExpr *Pre);
  const BoolExpr *genAssertOrAssume(const BoolExpr *Pred, SourceLoc Loc,
                                    const BoolExpr *Pre, const char *Rule);

  /// `diverge cases` (supplementary-material control flow): case-splits on
  /// the four branch combinations of an `if` and composes one-sided
  /// strongest postconditions, preserving relational information across a
  /// divergent branch.
  const BoolExpr *genIfCases(const IfStmt *I, const BoolExpr *Pre);

  /// Relational SP where only the \p Side execution runs \p S (the other
  /// execution's state is untouched). S must be loop- and relate-free.
  const BoolExpr *genStmtOneSided(const Stmt *S, const BoolExpr *Pre,
                                  VarTag Side);
  void emitSafetyOneSided(const BoolExpr *Pre, const BoolExpr *Safe,
                          VarTag Side, const char *Rule, SourceLoc Loc);
};

} // namespace relax

#endif // RELAXC_VCGEN_RELATIONALVCGEN_H
