//===- UnaryVCGen.h - Axiomatic original/intermediate semantics ----*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward (strongest-postcondition) verification-condition generator for
/// the two unary proof systems:
///
///  * the axiomatic original semantics |-o (Figure 7), where `relax`
///    behaves as `assert` and `assume` adds its predicate for free; and
///  * the axiomatic intermediate semantics |-i (Figure 9), where `relax`
///    behaves as `havoc` and `assume` carries a proof obligation — it
///    models the relaxed execution running solo after control-flow
///    divergence, which must not violate assertions *or* assumptions
///    (Lemma 4).
///
/// `while` loops consume the developer-supplied invariant annotations, the
/// information a Coq proof would supply interactively. The generator also
/// emits safety VCs ruling out the dynamic semantics' runtime traps
/// (division by zero, array bounds), so the progress theorems hold for the
/// implementation, not just the trap-free paper fragment.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_UNARYVCGEN_H
#define RELAXC_VCGEN_UNARYVCGEN_H

#include "ast/AstContext.h"
#include "logic/Simplify.h"
#include "support/Diagnostics.h"
#include "vcgen/VC.h"

namespace relax {

/// Options shared by the VC generators.
struct VCGenOptions {
  /// Emit division/bounds safety obligations (on by default; off
  /// reproduces the paper's trap-free fragment exactly).
  bool CheckSafety = true;
  /// Run the simplifier on intermediate formulas.
  bool Simplify = true;
};

/// Strongest-postcondition VC generator for |-o and |-i.
class UnaryVCGen {
public:
  /// \p J selects Original (Figure 7) or Intermediate (Figure 9) rules;
  /// Relaxed is invalid here.
  UnaryVCGen(AstContext &Ctx, const Program &Prog, JudgmentKind J,
             DiagnosticEngine &Diags, VCGenOptions Opts = VCGenOptions());

  /// Computes sp(Pre, S), appending obligations to the internal set.
  /// `call` statements instantiate the callee's summary: assert its
  /// requires, havoc its effective modifies frame, assume its ensures —
  /// the callee's body is never re-traversed here.
  const BoolExpr *genStmt(const Stmt *S, const BoolExpr *Pre);

  /// Generates the whole-triple obligations for {Pre} S {Post}.
  void genTriple(const BoolExpr *Pre, const Stmt *S, const BoolExpr *Post);

  /// Sets the display name stamped on emitted VCs' Proc field: the
  /// procedure whose summary this generator run verifies ("main" by
  /// default).
  void setProcName(std::string Name) { ProcName = std::move(Name); }

  /// Takes the accumulated VCs and derivation.
  VCSet take() { return std::move(Out); }

private:
  AstContext &Ctx;
  const Program &Prog;
  JudgmentKind Judgment;
  DiagnosticEngine &Diags;
  VCGenOptions Opts;
  Simplifier Simp;
  VCSet Out;
  std::string ProcName = "main";
  /// Provenance state: the statement whose rule is currently being
  /// applied (stamped on emitted VCs as their origin), and the running
  /// count of obligation-formula rewrites (the simplify trace).
  const Stmt *CurStmt = nullptr;
  uint32_t SimplifyTraces = 0;

  const BoolExpr *maybeSimplify(const BoolExpr *B);
  void emitValidity(const BoolExpr *F, const char *Rule, SourceLoc Loc,
                    std::string Description);
  void emitSat(const BoolExpr *F, const char *Rule, SourceLoc Loc,
               std::string Description);
  void emitSafety(const BoolExpr *Pre, const BoolExpr *ProgramBool,
                  const char *Rule, SourceLoc Loc);
  void emitSafety(const BoolExpr *Pre, const Expr *ProgramExpr,
                  const char *Rule, SourceLoc Loc);
  void record(const char *Rule, const Stmt *S, const BoolExpr *Pre,
              const BoolExpr *Post);

  /// sp for `havoc (X) st (e)` and the intermediate `relax`:
  /// (exists X' . Pre[X'/X]) /\ e, plus the satisfiability premise.
  const BoolExpr *genHavocLike(const ChoiceStmtBase *S, const BoolExpr *Pre,
                               const char *Rule);
  /// sp for assert-like statements (assert, original relax, intermediate
  /// assume): obligation Pre ==> e, post Pre /\ e.
  const BoolExpr *genAssertLike(const BoolExpr *Pred, SourceLoc Loc,
                                const BoolExpr *Pre, const char *Rule,
                                const char *What);
};

} // namespace relax

#endif // RELAXC_VCGEN_UNARYVCGEN_H
