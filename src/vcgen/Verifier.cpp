//===- Verifier.cpp - End-to-end verification driver --------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/Verifier.h"

#include "ast/Printer.h"

#include <chrono>

using namespace relax;

const char *relax::vcStatusName(VCStatus S) {
  switch (S) {
  case VCStatus::Proved:
    return "proved";
  case VCStatus::Failed:
    return "failed";
  case VCStatus::Unknown:
    return "unknown";
  case VCStatus::SolverError:
    return "error";
  }
  return "?";
}

const BoolExpr *Verifier::effectiveRelRequires() {
  if (Prog.relRequiresClause())
    return Prog.relRequiresClause();
  std::vector<const BoolExpr *> Parts;
  Parts.push_back(identityRelation(Ctx, Prog));
  if (const BoolExpr *Req = Prog.requiresClause()) {
    Parts.push_back(inject(Ctx, Req, VarTag::Orig));
    Parts.push_back(inject(Ctx, Req, VarTag::Rel));
  }
  return Ctx.conj(Parts);
}

void Verifier::discharge(VCSet Set, JudgmentReport &Report) {
  Report.Derivation = std::move(Set.Derivation);
  for (VC &Condition : Set.VCs) {
    VCOutcome Out;
    Out.Condition = Condition;

    auto Start = std::chrono::steady_clock::now();
    if (Condition.Kind == VCKind::Validity) {
      Result<SatResult> R = TheSolver.checkSat({Ctx.notExpr(
          Condition.Formula)});
      if (!R.ok()) {
        Out.Status = VCStatus::SolverError;
        Out.Detail = R.message();
      } else {
        switch (*R) {
        case SatResult::Unsat:
          Out.Status = VCStatus::Proved;
          break;
        case SatResult::Sat: {
          Out.Status = VCStatus::Failed;
          // Re-query with model extraction so the report shows a concrete
          // witness state (pair) falsifying the obligation.
          Model Counterexample;
          Result<SatResult> WithModel = TheSolver.checkSatWithModel(
              {Ctx.notExpr(Condition.Formula)}, freeVars(Condition.Formula),
              Counterexample);
          if (WithModel.ok() && *WithModel == SatResult::Sat)
            Out.Detail = "counterexample: " +
                         formatModel(Ctx.symbols(), Counterexample);
          else
            Out.Detail = "counterexample exists";
          break;
        }
        case SatResult::Unknown:
          Out.Status = VCStatus::Unknown;
          Out.Detail = "solver returned unknown";
          break;
        }
      }
    } else {
      Result<SatResult> R = TheSolver.checkSat({Condition.Formula});
      if (!R.ok()) {
        Out.Status = VCStatus::SolverError;
        Out.Detail = R.message();
      } else {
        switch (*R) {
        case SatResult::Sat:
          Out.Status = VCStatus::Proved;
          break;
        case SatResult::Unsat:
          Out.Status = VCStatus::Failed;
          Out.Detail = "the choice predicate admits no assignment";
          break;
        case SatResult::Unknown:
          Out.Status = VCStatus::Unknown;
          Out.Detail = "solver returned unknown";
          break;
        }
      }
    }
    auto End = std::chrono::steady_clock::now();
    Out.Millis =
        std::chrono::duration<double, std::milli>(End - Start).count();
    Report.TotalMillis += Out.Millis;
    Report.Outcomes.push_back(std::move(Out));
  }
}

VerifyReport Verifier::run(Options Opts) {
  VerifyReport Report;

  Sema SemaPass(Prog, Diags);
  std::optional<SemaInfo> Info = SemaPass.run();
  if (!Info)
    return Report;
  Report.SemaOk = true;

  unsigned ErrorsBeforeGen = Diags.errorCount();

  const BoolExpr *Pre =
      Prog.requiresClause() ? Prog.requiresClause() : Ctx.trueExpr();
  const BoolExpr *Post =
      Prog.ensuresClause() ? Prog.ensuresClause() : Ctx.trueExpr();

  if (Opts.RunOriginal) {
    UnaryVCGen Gen(Ctx, Prog, JudgmentKind::Original, Diags, Opts.GenOpts);
    Gen.genTriple(Pre, Prog.body(), Post);
    Report.Original.Judgment = JudgmentKind::Original;
    discharge(Gen.take(), Report.Original);
  }

  if (Opts.RunRelaxed) {
    const BoolExpr *RelPre = effectiveRelRequires();
    const BoolExpr *RelPost = Prog.relEnsuresClause()
                                  ? Prog.relEnsuresClause()
                                  : Ctx.trueExpr();
    RelationalVCGen Gen(Ctx, Prog, Diags, Opts.GenOpts);
    Gen.genTriple(RelPre, Prog.body(), RelPost);
    Report.Relaxed.Judgment = JudgmentKind::Relaxed;
    discharge(Gen.take(), Report.Relaxed);
  }

  Report.GenErrors = Diags.errorCount() > ErrorsBeforeGen;
  return Report;
}

std::string relax::renderReport(const VerifyReport &Report,
                                const Interner &Syms, bool Verbose) {
  Printer P(Syms);
  std::string Out;
  auto RenderJudgment = [&](const JudgmentReport &J, const char *Title) {
    Out += Title;
    Out += ": ";
    Out += std::to_string(J.Outcomes.size()) + " VCs, " +
           std::to_string(J.count(VCStatus::Proved)) + " proved, " +
           std::to_string(J.count(VCStatus::Failed)) + " failed, " +
           std::to_string(J.count(VCStatus::Unknown) +
                          J.count(VCStatus::SolverError)) +
           " undecided";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " (%.1f ms)", J.TotalMillis);
    Out += Buf;
    Out += "\n";
    for (const VCOutcome &O : J.Outcomes) {
      bool Bad = O.Status != VCStatus::Proved;
      if (!Bad && !Verbose)
        continue;
      Out += "  [";
      Out += vcStatusName(O.Status);
      Out += "] ";
      Out += O.Condition.Rule;
      if (O.Condition.Loc.isValid())
        Out += " at line " + std::to_string(O.Condition.Loc.Line);
      Out += ": " + O.Condition.Description;
      if (!O.Detail.empty())
        Out += " — " + O.Detail;
      Out += "\n";
      if (Bad || Verbose) {
        Out += "      " + P.print(O.Condition.Formula) + "\n";
      }
    }
  };
  if (!Report.SemaOk) {
    Out += "semantic analysis failed; verification not attempted\n";
    return Out;
  }
  RenderJudgment(Report.Original, "|-o (axiomatic original semantics)");
  RenderJudgment(Report.Relaxed, "|-r (axiomatic relaxed semantics)");
  Out += Report.verified()
             ? "VERIFIED: the relaxed program satisfies its acceptability "
               "properties\n"
             : "NOT VERIFIED\n";
  return Out;
}
