//===- Verifier.cpp - End-to-end verification driver --------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/Verifier.h"

#include "ast/Printer.h"

#include <cstdio>

using namespace relax;

const BoolExpr *Verifier::effectiveRelRequires() {
  const Procedure *E = Prog.entry();
  if (!E)
    return Ctx.trueExpr();
  return relax::effectiveRelRequires(Ctx, Prog, *E);
}

VerifyReport Verifier::run(Options Opts) {
  VerifyReport Report;

  // One scheduler for the whole run: obligations duplicated between the
  // |-o and |-r passes (convergence/safety side conditions) share its
  // result cache, and its statistics span both passes.
  DischargeScheduler::Config SchedCfg;
  SchedCfg.Jobs = Opts.Jobs;
  SchedCfg.Portfolio = Opts.Portfolio;
  SchedCfg.SmtFactory = Opts.SmtFactory;
  SchedCfg.SolverFactory = Opts.SolverFactory;
  SchedCfg.Global = Opts.GlobalDeadline;
  SchedCfg.VcTimeoutMs = Opts.VcTimeoutMs;
  SchedCfg.PCache = Opts.PCache;
  DischargeScheduler Sched(Ctx, std::move(SchedCfg));

  Sema SemaPass(Prog, Diags);
  std::optional<SemaInfo> Info = SemaPass.run();
  if (!Info)
    return Report;
  Report.SemaOk = true;

  unsigned ErrorsBeforeGen = Diags.errorCount();

  // Modular summary-based verification: every procedure's body is
  // verified exactly once against its own contracts; call sites
  // instantiate the callee's summary (assert requires, havoc the frame,
  // assume ensures) instead of inlining the body. Procedures are visited
  // in declaration order, so obligation ids are deterministic.
  auto UnaryPre = [&](const Procedure &P) {
    return P.requiresClause() ? P.requiresClause() : Ctx.trueExpr();
  };
  auto UnaryPost = [&](const Procedure &P) {
    return P.ensuresClause() ? P.ensuresClause() : Ctx.trueExpr();
  };

  if (Opts.RunOriginal) {
    VCSet All;
    for (const Procedure &P : Prog.procedures()) {
      UnaryVCGen Gen(Ctx, Prog, JudgmentKind::Original, Diags, Opts.GenOpts);
      Gen.setProcName(procDisplayName(P, Ctx.symbols()));
      Gen.genTriple(UnaryPre(P), P.body(), UnaryPost(P));
      All.append(Gen.take());
    }
    Report.Original.Judgment = JudgmentKind::Original;
    Sched.discharge(std::move(All), Report.Original, TheSolver);
  }

  if (Opts.RunRelaxed) {
    VCSet All;
    for (const Procedure &P : Prog.procedures()) {
      std::string Name = procDisplayName(P, Ctx.symbols());
      // A procedure reachable from a call under a plain `diverge`
      // annotation also runs solo in the relaxed execution, so its
      // summary must additionally hold under the intermediate judgment
      // |-i (where `relax` havocs and `assume` carries an obligation).
      if (Info->needsIntermediate(P)) {
        UnaryVCGen IGen(Ctx, Prog, JudgmentKind::Intermediate, Diags,
                        Opts.GenOpts);
        IGen.setProcName(Name);
        IGen.genTriple(UnaryPre(P), P.body(), UnaryPost(P));
        All.append(IGen.take());
      }
      const BoolExpr *RelPre = relax::effectiveRelRequires(Ctx, Prog, P);
      const BoolExpr *RelPost = P.relEnsuresClause() ? P.relEnsuresClause()
                                                     : Ctx.trueExpr();
      RelationalVCGen Gen(Ctx, Prog, Diags, Opts.GenOpts);
      Gen.setProcName(Name);
      Gen.genTriple(RelPre, P.body(), RelPost);
      All.append(Gen.take());
    }
    Report.Relaxed.Judgment = JudgmentKind::Relaxed;
    Sched.discharge(std::move(All), Report.Relaxed, TheSolver);
  }

  Report.GenErrors = Diags.errorCount() > ErrorsBeforeGen;
  if (Opts.StatsOut)
    Opts.StatsOut->merge(Sched.stats());
  return Report;
}

std::string relax::renderReport(const VerifyReport &Report,
                                const Interner &Syms, bool Verbose) {
  Printer P(Syms);
  std::string Out;
  auto RenderJudgment = [&](const JudgmentReport &J, const char *Title) {
    Out += Title;
    Out += ": ";
    Out += std::to_string(J.Outcomes.size()) + " VCs, " +
           std::to_string(J.count(VCStatus::Proved)) + " proved, " +
           std::to_string(J.count(VCStatus::Failed)) + " failed, " +
           std::to_string(J.count(VCStatus::Unknown) +
                          J.count(VCStatus::SolverError)) +
           " undecided";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " (%.1f ms)", J.TotalMillis);
    Out += Buf;
    Out += "\n";
    for (const VCOutcome &O : J.Outcomes) {
      bool Bad = O.Status != VCStatus::Proved;
      if (!Bad && !Verbose)
        continue;
      Out += "  [";
      Out += vcStatusName(O.Status);
      Out += "] ";
      // Per-procedure attribution; elided for "main" so the legacy
      // single-body report shape is unchanged.
      if (!O.Condition.Proc.empty() && O.Condition.Proc != "main")
        Out += O.Condition.Proc + ": ";
      Out += O.Condition.Rule;
      if (O.Condition.Loc.isValid())
        Out += " at line " + std::to_string(O.Condition.Loc.Line);
      Out += ": " + O.Condition.Description;
      if (!O.Detail.empty())
        Out += " — " + O.Detail;
      Out += "\n";
      if (Bad || Verbose) {
        Out += "      " + P.print(O.Condition.Formula) + "\n";
      }
    }
  };
  if (!Report.SemaOk) {
    Out += "semantic analysis failed; verification not attempted\n";
    return Out;
  }
  RenderJudgment(Report.Original, "|-o (axiomatic original semantics)");
  RenderJudgment(Report.Relaxed, "|-r (axiomatic relaxed semantics)");
  Out += Report.verified()
             ? "VERIFIED: the relaxed program satisfies its acceptability "
               "properties\n"
             : "NOT VERIFIED\n";
  return Out;
}
