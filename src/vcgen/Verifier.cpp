//===- Verifier.cpp - End-to-end verification driver --------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/Verifier.h"

#include "ast/Printer.h"
#include "solver/CachingSolver.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

using namespace relax;

const char *relax::vcStatusName(VCStatus S) {
  switch (S) {
  case VCStatus::Proved:
    return "proved";
  case VCStatus::Failed:
    return "failed";
  case VCStatus::Unknown:
    return "unknown";
  case VCStatus::SolverError:
    return "error";
  }
  return "?";
}

const BoolExpr *Verifier::effectiveRelRequires() {
  if (Prog.relRequiresClause())
    return Prog.relRequiresClause();
  std::vector<const BoolExpr *> Parts;
  Parts.push_back(identityRelation(Ctx, Prog));
  if (const BoolExpr *Req = Prog.requiresClause()) {
    Parts.push_back(inject(Ctx, Req, VarTag::Orig));
    Parts.push_back(inject(Ctx, Req, VarTag::Rel));
  }
  return Ctx.conj(Parts);
}

/// A mutex-guarded SolverResultCache shared by the discharge workers, so a
/// side condition proved by one worker is a cache hit for every other.
/// Owned by run() so duplicates across the |-o and |-r passes hit too.
class Verifier::SharedResultCache {
public:
  std::optional<SatResult>
  lookup(const std::vector<const BoolExpr *> &Query) {
    std::lock_guard<std::mutex> Lock(M);
    return Cache.lookup(Query);
  }
  void insert(const std::vector<const BoolExpr *> &Query, SatResult R) {
    std::lock_guard<std::mutex> Lock(M);
    Cache.insert(Query, R);
  }

private:
  std::mutex M;
  SolverResultCache Cache;
};

namespace {

/// Discharges one VC whose solver query \p Query was pre-built (for
/// validity VCs, the negated formula). Shared by the sequential and
/// parallel paths so both produce identical verdicts and diagnostics.
/// Workers must not touch the AstContext: \p Syms is only read, and
/// freeVars/formatModel are pure.
VCOutcome dischargeOne(const VC &Condition, const BoolExpr *Query,
                       Solver &S, const Interner &Syms,
                       Verifier::SharedResultCache *Shared) {
  VCOutcome Out;
  Out.Condition = Condition;

  auto Start = std::chrono::steady_clock::now();
  std::vector<const BoolExpr *> Formulas{Query};

  Result<SatResult> R = SatResult::Unknown;
  bool FromCache = false;
  if (Shared) {
    if (std::optional<SatResult> Cached = Shared->lookup(Formulas)) {
      R = *Cached;
      FromCache = true;
    }
  }
  if (!FromCache) {
    R = S.checkSat(Formulas);
    if (Shared && R.ok())
      Shared->insert(Formulas, *R);
  }

  if (!R.ok()) {
    Out.Status = VCStatus::SolverError;
    Out.Detail = R.message();
  } else if (Condition.Kind == VCKind::Validity) {
    switch (*R) {
    case SatResult::Unsat:
      Out.Status = VCStatus::Proved;
      break;
    case SatResult::Sat: {
      Out.Status = VCStatus::Failed;
      // Re-query with model extraction so the report shows a concrete
      // witness state (pair) falsifying the obligation.
      Model Counterexample;
      Result<SatResult> WithModel = S.checkSatWithModel(
          Formulas, freeVars(Condition.Formula), Counterexample);
      if (WithModel.ok() && *WithModel == SatResult::Sat)
        Out.Detail = "counterexample: " + formatModel(Syms, Counterexample);
      else
        Out.Detail = "counterexample exists";
      break;
    }
    case SatResult::Unknown:
      Out.Status = VCStatus::Unknown;
      Out.Detail = "solver returned unknown";
      break;
    }
  } else {
    switch (*R) {
    case SatResult::Sat:
      Out.Status = VCStatus::Proved;
      break;
    case SatResult::Unsat:
      Out.Status = VCStatus::Failed;
      Out.Detail = "the choice predicate admits no assignment";
      break;
    case SatResult::Unknown:
      Out.Status = VCStatus::Unknown;
      Out.Detail = "solver returned unknown";
      break;
    }
  }
  auto End = std::chrono::steady_clock::now();
  Out.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  return Out;
}

} // namespace

void Verifier::discharge(VCSet Set, JudgmentReport &Report,
                         const Options &Opts, SharedResultCache &Shared) {
  Report.Derivation = std::move(Set.Derivation);

  unsigned Jobs = Opts.Jobs;
  if (!Opts.SolverFactory)
    Jobs = 1;
  if (Jobs > Set.VCs.size())
    Jobs = static_cast<unsigned>(Set.VCs.size());

  if (Jobs > 1) {
    dischargeParallel(Set.VCs, Report, Opts, Shared);
    return;
  }

  for (VC &Condition : Set.VCs) {
    const BoolExpr *Query = Condition.Kind == VCKind::Validity
                                ? Ctx.notExpr(Condition.Formula)
                                : Condition.Formula;
    VCOutcome Out = dischargeOne(Condition, Query, TheSolver, Ctx.symbols(),
                                 /*Shared=*/nullptr);
    Report.TotalMillis += Out.Millis;
    Report.Outcomes.push_back(std::move(Out));
  }
}

void Verifier::dischargeParallel(std::vector<VC> &VCs,
                                 JudgmentReport &Report,
                                 const Options &Opts,
                                 SharedResultCache &Shared) {
  // Pre-build every query formula on this thread: node construction goes
  // through the (single-threaded) hash-consing factories.
  std::vector<const BoolExpr *> Queries;
  Queries.reserve(VCs.size());
  for (const VC &Condition : VCs)
    Queries.push_back(Condition.Kind == VCKind::Validity
                          ? Ctx.notExpr(Condition.Formula)
                          : Condition.Formula);

  unsigned Jobs = std::min<unsigned>(Opts.Jobs,
                                     static_cast<unsigned>(VCs.size()));
  std::vector<VCOutcome> Outcomes(VCs.size());
  std::atomic<size_t> Next{0};

  auto Worker = [&]() {
    std::unique_ptr<Solver> S = Opts.SolverFactory();
    for (size_t I = Next.fetch_add(1); I < VCs.size();
         I = Next.fetch_add(1))
      Outcomes[I] =
          dischargeOne(VCs[I], Queries[I], *S, Ctx.symbols(), &Shared);
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Jobs);
  for (unsigned T = 0; T != Jobs; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();

  // VC order, not completion order: reports are deterministic.
  for (VCOutcome &Out : Outcomes) {
    Report.TotalMillis += Out.Millis;
    Report.Outcomes.push_back(std::move(Out));
  }
}

VerifyReport Verifier::run(Options Opts) {
  VerifyReport Report;
  // One result cache for the whole run: obligations duplicated between the
  // |-o and |-r passes (convergence/safety side conditions) hit across
  // judgments in the parallel path, mirroring what a CachingSolver wrapper
  // provides on the sequential path.
  SharedResultCache Shared;

  Sema SemaPass(Prog, Diags);
  std::optional<SemaInfo> Info = SemaPass.run();
  if (!Info)
    return Report;
  Report.SemaOk = true;

  unsigned ErrorsBeforeGen = Diags.errorCount();

  const BoolExpr *Pre =
      Prog.requiresClause() ? Prog.requiresClause() : Ctx.trueExpr();
  const BoolExpr *Post =
      Prog.ensuresClause() ? Prog.ensuresClause() : Ctx.trueExpr();

  if (Opts.RunOriginal) {
    UnaryVCGen Gen(Ctx, Prog, JudgmentKind::Original, Diags, Opts.GenOpts);
    Gen.genTriple(Pre, Prog.body(), Post);
    Report.Original.Judgment = JudgmentKind::Original;
    discharge(Gen.take(), Report.Original, Opts, Shared);
  }

  if (Opts.RunRelaxed) {
    const BoolExpr *RelPre = effectiveRelRequires();
    const BoolExpr *RelPost = Prog.relEnsuresClause()
                                  ? Prog.relEnsuresClause()
                                  : Ctx.trueExpr();
    RelationalVCGen Gen(Ctx, Prog, Diags, Opts.GenOpts);
    Gen.genTriple(RelPre, Prog.body(), RelPost);
    Report.Relaxed.Judgment = JudgmentKind::Relaxed;
    discharge(Gen.take(), Report.Relaxed, Opts, Shared);
  }

  Report.GenErrors = Diags.errorCount() > ErrorsBeforeGen;
  return Report;
}

std::string relax::renderReport(const VerifyReport &Report,
                                const Interner &Syms, bool Verbose) {
  Printer P(Syms);
  std::string Out;
  auto RenderJudgment = [&](const JudgmentReport &J, const char *Title) {
    Out += Title;
    Out += ": ";
    Out += std::to_string(J.Outcomes.size()) + " VCs, " +
           std::to_string(J.count(VCStatus::Proved)) + " proved, " +
           std::to_string(J.count(VCStatus::Failed)) + " failed, " +
           std::to_string(J.count(VCStatus::Unknown) +
                          J.count(VCStatus::SolverError)) +
           " undecided";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " (%.1f ms)", J.TotalMillis);
    Out += Buf;
    Out += "\n";
    for (const VCOutcome &O : J.Outcomes) {
      bool Bad = O.Status != VCStatus::Proved;
      if (!Bad && !Verbose)
        continue;
      Out += "  [";
      Out += vcStatusName(O.Status);
      Out += "] ";
      Out += O.Condition.Rule;
      if (O.Condition.Loc.isValid())
        Out += " at line " + std::to_string(O.Condition.Loc.Line);
      Out += ": " + O.Condition.Description;
      if (!O.Detail.empty())
        Out += " — " + O.Detail;
      Out += "\n";
      if (Bad || Verbose) {
        Out += "      " + P.print(O.Condition.Formula) + "\n";
      }
    }
  };
  if (!Report.SemaOk) {
    Out += "semantic analysis failed; verification not attempted\n";
    return Out;
  }
  RenderJudgment(Report.Original, "|-o (axiomatic original semantics)");
  RenderJudgment(Report.Relaxed, "|-r (axiomatic relaxed semantics)");
  Out += Report.verified()
             ? "VERIFIED: the relaxed program satisfies its acceptability "
               "properties\n"
             : "NOT VERIFIED\n";
  return Out;
}
