//===- Verifier.cpp - End-to-end verification driver --------------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/Verifier.h"

#include "ast/Printer.h"

#include <cstdio>

using namespace relax;

const BoolExpr *Verifier::effectiveRelRequires() {
  if (Prog.relRequiresClause())
    return Prog.relRequiresClause();
  std::vector<const BoolExpr *> Parts;
  Parts.push_back(identityRelation(Ctx, Prog));
  if (const BoolExpr *Req = Prog.requiresClause()) {
    Parts.push_back(inject(Ctx, Req, VarTag::Orig));
    Parts.push_back(inject(Ctx, Req, VarTag::Rel));
  }
  return Ctx.conj(Parts);
}

VerifyReport Verifier::run(Options Opts) {
  VerifyReport Report;

  // One scheduler for the whole run: obligations duplicated between the
  // |-o and |-r passes (convergence/safety side conditions) share its
  // result cache, and its statistics span both passes.
  DischargeScheduler::Config SchedCfg;
  SchedCfg.Jobs = Opts.Jobs;
  SchedCfg.Portfolio = Opts.Portfolio;
  SchedCfg.SmtFactory = Opts.SmtFactory;
  SchedCfg.SolverFactory = Opts.SolverFactory;
  SchedCfg.Global = Opts.GlobalDeadline;
  SchedCfg.VcTimeoutMs = Opts.VcTimeoutMs;
  SchedCfg.PCache = Opts.PCache;
  DischargeScheduler Sched(Ctx, std::move(SchedCfg));

  Sema SemaPass(Prog, Diags);
  std::optional<SemaInfo> Info = SemaPass.run();
  if (!Info)
    return Report;
  Report.SemaOk = true;

  unsigned ErrorsBeforeGen = Diags.errorCount();

  const BoolExpr *Pre =
      Prog.requiresClause() ? Prog.requiresClause() : Ctx.trueExpr();
  const BoolExpr *Post =
      Prog.ensuresClause() ? Prog.ensuresClause() : Ctx.trueExpr();

  if (Opts.RunOriginal) {
    UnaryVCGen Gen(Ctx, Prog, JudgmentKind::Original, Diags, Opts.GenOpts);
    Gen.genTriple(Pre, Prog.body(), Post);
    Report.Original.Judgment = JudgmentKind::Original;
    Sched.discharge(Gen.take(), Report.Original, TheSolver);
  }

  if (Opts.RunRelaxed) {
    const BoolExpr *RelPre = effectiveRelRequires();
    const BoolExpr *RelPost = Prog.relEnsuresClause()
                                  ? Prog.relEnsuresClause()
                                  : Ctx.trueExpr();
    RelationalVCGen Gen(Ctx, Prog, Diags, Opts.GenOpts);
    Gen.genTriple(RelPre, Prog.body(), RelPost);
    Report.Relaxed.Judgment = JudgmentKind::Relaxed;
    Sched.discharge(Gen.take(), Report.Relaxed, TheSolver);
  }

  Report.GenErrors = Diags.errorCount() > ErrorsBeforeGen;
  if (Opts.StatsOut)
    Opts.StatsOut->merge(Sched.stats());
  return Report;
}

std::string relax::renderReport(const VerifyReport &Report,
                                const Interner &Syms, bool Verbose) {
  Printer P(Syms);
  std::string Out;
  auto RenderJudgment = [&](const JudgmentReport &J, const char *Title) {
    Out += Title;
    Out += ": ";
    Out += std::to_string(J.Outcomes.size()) + " VCs, " +
           std::to_string(J.count(VCStatus::Proved)) + " proved, " +
           std::to_string(J.count(VCStatus::Failed)) + " failed, " +
           std::to_string(J.count(VCStatus::Unknown) +
                          J.count(VCStatus::SolverError)) +
           " undecided";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " (%.1f ms)", J.TotalMillis);
    Out += Buf;
    Out += "\n";
    for (const VCOutcome &O : J.Outcomes) {
      bool Bad = O.Status != VCStatus::Proved;
      if (!Bad && !Verbose)
        continue;
      Out += "  [";
      Out += vcStatusName(O.Status);
      Out += "] ";
      Out += O.Condition.Rule;
      if (O.Condition.Loc.isValid())
        Out += " at line " + std::to_string(O.Condition.Loc.Line);
      Out += ": " + O.Condition.Description;
      if (!O.Detail.empty())
        Out += " — " + O.Detail;
      Out += "\n";
      if (Bad || Verbose) {
        Out += "      " + P.print(O.Condition.Formula) + "\n";
      }
    }
  };
  if (!Report.SemaOk) {
    Out += "semantic analysis failed; verification not attempted\n";
    return Out;
  }
  RenderJudgment(Report.Original, "|-o (axiomatic original semantics)");
  RenderJudgment(Report.Relaxed, "|-r (axiomatic relaxed semantics)");
  Out += Report.verified()
             ? "VERIFIED: the relaxed program satisfies its acceptability "
               "properties\n"
             : "NOT VERIFIED\n";
  return Out;
}
