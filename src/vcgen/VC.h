//===- VC.h - Verification conditions -------------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A verification condition is one logical side condition of one proof-rule
/// application, tagged with enough provenance to report failures precisely
/// and to regenerate the paper's per-example proof-effort statistics.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_VC_H
#define RELAXC_VCGEN_VC_H

#include "ast/BoolExpr.h"

#include <string>
#include <vector>

namespace relax {

class Stmt;

/// How a VC must be discharged.
enum class VCKind : uint8_t {
  Validity,       ///< the formula must be valid (true in every state)
  Satisfiability, ///< the formula must be satisfiable (havoc/relax premise)
};

/// Which judgment generated a VC.
enum class JudgmentKind : uint8_t {
  Original,     ///< |-o (Figure 7)
  Intermediate, ///< |-i (Figure 9)
  Relaxed,      ///< |-r (Figure 8)
};

/// Returns "original" / "intermediate" / "relaxed".
const char *judgmentKindName(JudgmentKind K);

/// One generated verification condition, tagged with full provenance: the
/// generating rule and judgment side, the originating statement and its
/// source location, a stable obligation id, and the simplification trace
/// id — everything `--explain=<vc-id>` prints and the per-example
/// proof-effort statistics aggregate over.
struct VC {
  VCKind Kind = VCKind::Validity;
  JudgmentKind Judgment = JudgmentKind::Original;
  const BoolExpr *Formula = nullptr;
  /// The proof rule that produced this VC, e.g. "assert", "while:inv-preserved".
  std::string Rule;
  SourceLoc Loc;
  std::string Description;
  /// Stable obligation id: the VC's position in its VCSet. Assigned at
  /// emission and renumbered by VCSet::append, so ids stay dense and
  /// unique within one generator pass (and one JudgmentReport).
  uint32_t Id = 0;
  /// The statement whose proof rule emitted this VC (null for
  /// whole-triple obligations emitted before any statement is visited).
  /// Statements are not hash-consed, so this pins the exact occurrence.
  const Stmt *Origin = nullptr;
  /// Simplification trace id: the ordinal of the generator's
  /// obligation-formula rewrite that produced `Formula`, counted per
  /// generator run; 0 when the formula was emitted verbatim (simplifier
  /// off, or the rewrite was the identity).
  uint32_t SimplifyTraceId = 0;
  /// Display name of the procedure whose summary verification emitted this
  /// VC ("main" for the entry). Call-site instantiation VCs carry the
  /// *caller*: they belong to the caller's obligation set.
  std::string Proc;
};

/// One rule application, recorded for the proof checker: the statement, the
/// rule name, and the pre/postcondition the generator assigned.
struct DerivationStep {
  std::string Rule;
  JudgmentKind Judgment = JudgmentKind::Original;
  SourceLoc Loc;
  const Stmt *S = nullptr;
  const BoolExpr *Pre = nullptr;
  const BoolExpr *Post = nullptr;
};

/// The full output of a VC generator run.
struct VCSet {
  std::vector<VC> VCs;
  std::vector<DerivationStep> Derivation;

  /// Appends \p Other, renumbering its obligation ids so every id equals
  /// its position in this set (keeps ids dense and unique across the
  /// sub-derivations the diverge rule splices in).
  void append(VCSet Other) {
    for (VC &V : Other.VCs) {
      V.Id = static_cast<uint32_t>(VCs.size());
      VCs.push_back(std::move(V));
    }
    Derivation.insert(Derivation.end(), Other.Derivation.begin(),
                      Other.Derivation.end());
  }
};

} // namespace relax

#endif // RELAXC_VCGEN_VC_H
