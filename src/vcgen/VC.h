//===- VC.h - Verification conditions -------------------------------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A verification condition is one logical side condition of one proof-rule
/// application, tagged with enough provenance to report failures precisely
/// and to regenerate the paper's per-example proof-effort statistics.
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_VC_H
#define RELAXC_VCGEN_VC_H

#include "ast/BoolExpr.h"

#include <string>
#include <vector>

namespace relax {

class Stmt;

/// How a VC must be discharged.
enum class VCKind : uint8_t {
  Validity,       ///< the formula must be valid (true in every state)
  Satisfiability, ///< the formula must be satisfiable (havoc/relax premise)
};

/// Which judgment generated a VC.
enum class JudgmentKind : uint8_t {
  Original,     ///< |-o (Figure 7)
  Intermediate, ///< |-i (Figure 9)
  Relaxed,      ///< |-r (Figure 8)
};

/// Returns "original" / "intermediate" / "relaxed".
const char *judgmentKindName(JudgmentKind K);

/// One generated verification condition.
struct VC {
  VCKind Kind = VCKind::Validity;
  JudgmentKind Judgment = JudgmentKind::Original;
  const BoolExpr *Formula = nullptr;
  /// The proof rule that produced this VC, e.g. "assert", "while:inv-preserved".
  std::string Rule;
  SourceLoc Loc;
  std::string Description;
};

/// One rule application, recorded for the proof checker: the statement, the
/// rule name, and the pre/postcondition the generator assigned.
struct DerivationStep {
  std::string Rule;
  JudgmentKind Judgment = JudgmentKind::Original;
  SourceLoc Loc;
  const Stmt *S = nullptr;
  const BoolExpr *Pre = nullptr;
  const BoolExpr *Post = nullptr;
};

/// The full output of a VC generator run.
struct VCSet {
  std::vector<VC> VCs;
  std::vector<DerivationStep> Derivation;

  void append(VCSet Other) {
    VCs.insert(VCs.end(), Other.VCs.begin(), Other.VCs.end());
    Derivation.insert(Derivation.end(), Other.Derivation.begin(),
                      Other.Derivation.end());
  }
};

} // namespace relax

#endif // RELAXC_VCGEN_VC_H
