//===- RelationalVCGen.cpp - Axiomatic relaxed semantics ----------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/RelationalVCGen.h"

#include "logic/Simplify.h"
#include "sema/Sema.h"
#include "support/Casting.h"
#include "vcgen/Safety.h"

#include <cassert>

using namespace relax;

RelationalVCGen::RelationalVCGen(AstContext &Ctx, const Program &Prog,
                                 DiagnosticEngine &Diags, VCGenOptions Opts)
    : Ctx(Ctx), Prog(Prog), Diags(Diags), Opts(Opts), Simp(Ctx) {}

const BoolExpr *RelationalVCGen::maybeSimplify(const BoolExpr *B) {
  return Opts.Simplify ? Simp.simplify(B) : B;
}

void RelationalVCGen::emitValidity(const BoolExpr *F, const char *Rule,
                                   SourceLoc Loc, std::string Description) {
  VC V;
  V.Kind = VCKind::Validity;
  V.Judgment = JudgmentKind::Relaxed;
  V.Formula = maybeSimplify(F);
  V.Rule = Rule;
  V.Loc = Loc;
  V.Description = std::move(Description);
  V.Id = static_cast<uint32_t>(Out.VCs.size());
  V.Origin = CurStmt;
  V.SimplifyTraceId = V.Formula != F ? ++SimplifyTraces : 0;
  V.Proc = ProcName;
  Out.VCs.push_back(std::move(V));
}

void RelationalVCGen::emitSat(const BoolExpr *F, const char *Rule,
                              SourceLoc Loc, std::string Description) {
  VC V;
  V.Kind = VCKind::Satisfiability;
  V.Judgment = JudgmentKind::Relaxed;
  V.Formula = maybeSimplify(F);
  V.Rule = Rule;
  V.Loc = Loc;
  V.Description = std::move(Description);
  V.Id = static_cast<uint32_t>(Out.VCs.size());
  V.Origin = CurStmt;
  V.SimplifyTraceId = V.Formula != F ? ++SimplifyTraces : 0;
  V.Proc = ProcName;
  Out.VCs.push_back(std::move(V));
}

void RelationalVCGen::emitSafetyBoth(const BoolExpr *Pre,
                                     const BoolExpr *ProgramBool,
                                     const char *Rule, SourceLoc Loc) {
  if (!Opts.CheckSafety)
    return;
  const BoolExpr *Safe = safetyCondition(Ctx, ProgramBool);
  if (const auto *Lit = dyn_cast<BoolLitExpr>(Safe); Lit && Lit->value())
    return;
  // The original side's safety is re-established here (it also follows from
  // the |-o pass); the relaxed side is the genuinely new obligation.
  emitValidity(Ctx.implies(Pre, Ctx.andExpr(inject(Ctx, Safe, VarTag::Orig),
                                            inject(Ctx, Safe, VarTag::Rel))),
               Rule, Loc, "evaluation cannot trap in either execution");
}

void RelationalVCGen::emitSafetyBoth(const BoolExpr *Pre,
                                     const Expr *ProgramExpr,
                                     const char *Rule, SourceLoc Loc) {
  if (!Opts.CheckSafety)
    return;
  const BoolExpr *Safe = safetyCondition(Ctx, ProgramExpr);
  if (const auto *Lit = dyn_cast<BoolLitExpr>(Safe); Lit && Lit->value())
    return;
  emitValidity(Ctx.implies(Pre, Ctx.andExpr(inject(Ctx, Safe, VarTag::Orig),
                                            inject(Ctx, Safe, VarTag::Rel))),
               Rule, Loc, "evaluation cannot trap in either execution");
}

void RelationalVCGen::record(const char *Rule, const Stmt *S,
                             const BoolExpr *Pre, const BoolExpr *Post) {
  DerivationStep Step;
  Step.Rule = Rule;
  Step.Judgment = JudgmentKind::Relaxed;
  Step.Loc = S->loc();
  Step.S = S;
  Step.Pre = Pre;
  Step.Post = Post;
  Out.Derivation.push_back(std::move(Step));
}

const BoolExpr *RelationalVCGen::bothTrue(const BoolExpr *B) {
  return Ctx.andExpr(inject(Ctx, B, VarTag::Orig),
                     inject(Ctx, B, VarTag::Rel));
}

const BoolExpr *RelationalVCGen::bothFalse(const BoolExpr *B) {
  return Ctx.andExpr(Ctx.notExpr(inject(Ctx, B, VarTag::Orig)),
                     Ctx.notExpr(inject(Ctx, B, VarTag::Rel)));
}

void RelationalVCGen::emitConvergence(const BoolExpr *Pre,
                                      const BoolExpr *Cond, const char *Rule,
                                      SourceLoc Loc) {
  emitValidity(
      Ctx.implies(Pre, Ctx.orExpr(bothTrue(Cond), bothFalse(Cond))), Rule,
      Loc,
      "control flow is convergent: both executions take the same branch "
      "(add a `diverge` annotation if they may not)");
}

const BoolExpr *RelationalVCGen::freshenSide(const ChoiceStmtBase *S,
                                             const BoolExpr *Pre,
                                             VarTag Tag) {
  Subst Rename;
  std::vector<std::pair<Symbol, VarKind>> Fresh;
  for (size_t I = 0, E = S->varCount(); I != E; ++I) {
    Symbol V = S->var(I);
    VarKind Kind = Prog.kindOf(V).value_or(VarKind::Int);
    Symbol F = Ctx.freshSym(V);
    Fresh.emplace_back(F, Kind);
    if (Kind == VarKind::Int)
      Rename.mapVar(V, Tag, Ctx.var(F, Tag));
    else
      Rename.mapArray(V, Tag, Ctx.arrayRef(F, Tag));
  }
  const BoolExpr *Renamed = substitute(Ctx, Pre, Rename);

  std::vector<const BoolExpr *> LenLinks;
  for (size_t I = 0, E = S->varCount(); I != E; ++I) {
    Symbol V = S->var(I);
    if (Prog.kindOf(V).value_or(VarKind::Int) != VarKind::Array)
      continue;
    LenLinks.push_back(Ctx.eq(Ctx.arrayLen(Ctx.arrayRef(V, Tag)),
                              Ctx.arrayLen(Ctx.arrayRef(Fresh[I].first, Tag))));
  }
  const BoolExpr *Body = Ctx.conj({Renamed, Ctx.conj(LenLinks)});

  const BoolExpr *Quantified = Body;
  for (const auto &[F, Kind] : Fresh)
    Quantified = Ctx.exists(F, Tag, Kind, Quantified);
  return Quantified;
}

const BoolExpr *RelationalVCGen::genAssertOrAssume(const BoolExpr *Pred,
                                                   SourceLoc Loc,
                                                   const BoolExpr *Pre,
                                                   const char *Rule) {
  const BoolExpr *InjO = inject(Ctx, Pred, VarTag::Orig);
  const BoolExpr *InjR = inject(Ctx, Pred, VarTag::Rel);
  // Relational transfer: assuming the original execution satisfied the
  // predicate (established by |-o for assert; assumed for assume), the
  // relation must establish it for the relaxed execution.
  emitValidity(Ctx.implies(Ctx.andExpr(Pre, InjO), InjR), Rule, Loc,
               "the predicate transfers from the original to the relaxed "
               "execution");
  if (Opts.CheckSafety) {
    const BoolExpr *Safe = safetyCondition(Ctx, Pred);
    if (const auto *Lit = dyn_cast<BoolLitExpr>(Safe); !Lit || !Lit->value())
      emitValidity(
          Ctx.implies(Ctx.conj({Pre, InjO, inject(Ctx, Safe, VarTag::Orig)}),
                      inject(Ctx, Safe, VarTag::Rel)),
          Rule, Loc, "relaxed-side evaluation cannot trap");
  }
  return maybeSimplify(Ctx.conj({Pre, InjO, InjR}));
}

const BoolExpr *RelationalVCGen::genDiverge(const Stmt *S,
                                            const DivergeAnnotation *D,
                                            const BoolExpr *Pre) {
  const BoolExpr *Po = D->PreOrig ? D->PreOrig : Ctx.trueExpr();
  const BoolExpr *Pr = D->PreRel ? D->PreRel : Ctx.trueExpr();
  const BoolExpr *Qo = D->PostOrig ? D->PostOrig : Ctx.trueExpr();
  const BoolExpr *Qr = D->PostRel ? D->PostRel : Ctx.trueExpr();

  // no_rel(s): relate statements have no meaning without lockstep. The
  // check looks through calls: a callee running solo under |-o / |-i has
  // no lockstep partner either.
  if (containsRelate(S, Prog)) {
    Diags.error(S->loc(), "diverge rule applied to a statement containing "
                          "relate (no_rel violated)");
    return Ctx.falseExpr();
  }

  // P* |=o Po and P* |=r Pr (projection entailments, Section 3.1.2).
  emitValidity(Ctx.implies(Pre, inject(Ctx, Po, VarTag::Orig)), "diverge",
               S->loc(),
               "the original projection of the precondition implies the "
               "diverge pre_orig annotation");
  emitValidity(Ctx.implies(Pre, inject(Ctx, Pr, VarTag::Rel)), "diverge",
               S->loc(),
               "the relaxed projection of the precondition implies the "
               "diverge pre_rel annotation");

  // |-o {Po} s {Qo}: the original execution runs solo.
  {
    UnaryVCGen Sub(Ctx, Prog, JudgmentKind::Original, Diags, Opts);
    Sub.setProcName(ProcName);
    Sub.genTriple(Po, S, Qo);
    VCSet SubSet = Sub.take();
    for (VC &V : SubSet.VCs)
      V.Rule = "diverge/" + V.Rule;
    for (DerivationStep &St : SubSet.Derivation)
      St.Rule = "diverge/" + St.Rule;
    Out.append(std::move(SubSet));
  }
  // |-i {Pr} s {Qr}: the relaxed execution runs solo and must be
  // inherently error free (Lemma 4 powers Theorem 7 here).
  {
    UnaryVCGen Sub(Ctx, Prog, JudgmentKind::Intermediate, Diags, Opts);
    Sub.setProcName(ProcName);
    Sub.genTriple(Pr, S, Qr);
    VCSet SubSet = Sub.take();
    for (VC &V : SubSet.VCs)
      V.Rule = "diverge/" + V.Rule;
    for (DerivationStep &St : SubSet.Derivation)
      St.Rule = "diverge/" + St.Rule;
    Out.append(std::move(SubSet));
  }

  // Relational frame rule: a relational formula over variables the
  // statement does not modify survives the divergence.
  const BoolExpr *Frame = Ctx.trueExpr();
  if (D->Frame) {
    VarRefSet Mod = modifiedVars(S, Prog);
    VarRefSet FrameVars = freeVars(D->Frame);
    for (const VarRef &V : FrameVars) {
      // Frame variables are tagged; compare by name against the (Plain)
      // modified set.
      if (Mod.count(VarRef{V.Name, VarTag::Plain, V.Kind})) {
        Diags.error(S->loc(),
                    "diverge frame references a variable the statement "
                    "modifies");
        return Ctx.falseExpr();
      }
    }
    emitValidity(Ctx.implies(Pre, D->Frame), "diverge", S->loc(),
                 "the precondition establishes the frame");
    Frame = D->Frame;
  }

  // Automatic semantic frame: the statement modifies only mod(s), so the
  // precondition with those variables existentially rebound on *both*
  // sides persists across the divergence (the relational frame rule
  // applied to all of P* at once; it subsumes the explicit Frame, which
  // remains useful as a cheaper-to-instantiate hint for the solver).
  // Array lengths are execution-invariant, so length links are kept.
  const BoolExpr *AutoFrame;
  {
    VarRefSet Mod = modifiedVars(S, Prog);
    Subst Rename;
    std::vector<std::tuple<Symbol, VarKind, VarTag>> Fresh;
    std::vector<const BoolExpr *> LenLinks;
    for (const VarRef &V : Mod) {
      for (VarTag Tag : {VarTag::Orig, VarTag::Rel}) {
        Symbol F = Ctx.freshSym(V.Name);
        Fresh.emplace_back(F, V.Kind, Tag);
        if (V.Kind == VarKind::Int) {
          Rename.mapVar(V.Name, Tag, Ctx.var(F, Tag));
        } else {
          Rename.mapArray(V.Name, Tag, Ctx.arrayRef(F, Tag));
          LenLinks.push_back(Ctx.eq(Ctx.arrayLen(Ctx.arrayRef(V.Name, Tag)),
                                    Ctx.arrayLen(Ctx.arrayRef(F, Tag))));
        }
      }
    }
    const BoolExpr *Body =
        Ctx.conj({substitute(Ctx, Pre, Rename), Ctx.conj(LenLinks)});
    for (const auto &[F, Kind, Tag] : Fresh)
      Body = Ctx.exists(F, Tag, Kind, Body);
    AutoFrame = Body;
  }

  const BoolExpr *Post = maybeSimplify(
      Ctx.conj({inject(Ctx, Qo, VarTag::Orig), inject(Ctx, Qr, VarTag::Rel),
                Frame, AutoFrame}));
  record("diverge", S, Pre, Post);
  return Post;
}

void RelationalVCGen::emitSafetyOneSided(const BoolExpr *Pre,
                                         const BoolExpr *Safe, VarTag Side,
                                         const char *Rule, SourceLoc Loc) {
  if (!Opts.CheckSafety)
    return;
  if (const auto *Lit = dyn_cast<BoolLitExpr>(Safe); Lit && Lit->value())
    return;
  emitValidity(Ctx.implies(Pre, inject(Ctx, Safe, Side)), Rule, Loc,
               std::string("evaluation cannot trap in the ") +
                   (Side == VarTag::Orig ? "original" : "relaxed") +
                   " execution");
}

const BoolExpr *RelationalVCGen::genStmtOneSided(const Stmt *S,
                                                 const BoolExpr *Pre,
                                                 VarTag Side) {
  CurStmt = S; // provenance: one-sided VCs originate from S too
  const char *RulePrefix =
      Side == VarTag::Orig ? "cases/orig" : "cases/rel";
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return Pre;

  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    emitSafetyOneSided(Pre, safetyCondition(Ctx, A->value()), Side,
                       RulePrefix, S->loc());
    Symbol X = A->var();
    Symbol X0 = Ctx.freshSym(X);
    Subst Rename;
    Rename.mapVar(X, Side, Ctx.var(X0, Side));
    const BoolExpr *Renamed = substitute(Ctx, Pre, Rename);
    const Expr *RHS = substitute(Ctx, inject(Ctx, A->value(), Side), Rename);
    return maybeSimplify(Ctx.exists(
        X0, Side, VarKind::Int,
        Ctx.andExpr(Renamed, Ctx.eq(Ctx.var(X, Side), RHS))));
  }

  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    emitSafetyOneSided(Pre, safetyCondition(Ctx, A->index()), Side,
                       RulePrefix, S->loc());
    emitSafetyOneSided(Pre, safetyCondition(Ctx, A->value()), Side,
                       RulePrefix, S->loc());
    if (Opts.CheckSafety) {
      const ArrayExpr *Arr = Ctx.arrayRef(A->array(), VarTag::Plain);
      const BoolExpr *InBounds =
          Ctx.andExpr(Ctx.ge(A->index(), Ctx.intLit(0)),
                      Ctx.lt(A->index(), Ctx.arrayLen(Arr)));
      emitValidity(Ctx.implies(Pre, inject(Ctx, InBounds, Side)), RulePrefix,
                   S->loc(), "array store index is in bounds");
    }
    Symbol X = A->array();
    Symbol X0 = Ctx.freshSym(X);
    Subst Rename;
    Rename.mapArray(X, Side, Ctx.arrayRef(X0, Side));
    const BoolExpr *Renamed = substitute(Ctx, Pre, Rename);
    const Expr *Idx = substitute(Ctx, inject(Ctx, A->index(), Side), Rename);
    const Expr *Val = substitute(Ctx, inject(Ctx, A->value(), Side), Rename);
    const ArrayExpr *NewVal = Ctx.arrayStore(Ctx.arrayRef(X0, Side), Idx, Val);
    return maybeSimplify(Ctx.exists(
        X0, Side, VarKind::Array,
        Ctx.andExpr(Renamed, Ctx.arrayEq(Ctx.arrayRef(X, Side), NewVal))));
  }

  case Stmt::Kind::Havoc: {
    const auto *H = cast<HavocStmt>(S);
    emitSat(Ctx.andExpr(freshenSide(H, Pre, Side),
                        inject(Ctx, H->pred(), Side)),
            RulePrefix, S->loc(), "the havoc predicate is satisfiable");
    return maybeSimplify(Ctx.andExpr(freshenSide(H, Pre, Side),
                                     inject(Ctx, H->pred(), Side)));
  }

  case Stmt::Kind::Relax: {
    const auto *R = cast<RelaxStmt>(S);
    if (Side == VarTag::Orig)
      // The original semantics executes relax as an assert of e (proved by
      // the |-o pass); a successful original execution establishes e.
      return maybeSimplify(
          Ctx.andExpr(Pre, inject(Ctx, R->pred(), VarTag::Orig)));
    emitSat(Ctx.andExpr(freshenSide(R, Pre, VarTag::Rel),
                        inject(Ctx, R->pred(), VarTag::Rel)),
            RulePrefix, S->loc(), "the relaxation predicate is satisfiable");
    return maybeSimplify(Ctx.andExpr(freshenSide(R, Pre, VarTag::Rel),
                                     inject(Ctx, R->pred(), VarTag::Rel)));
  }

  case Stmt::Kind::Assert:
  case Stmt::Kind::Assume: {
    const BoolExpr *Pred = S->kind() == Stmt::Kind::Assert
                               ? cast<AssertStmt>(S)->pred()
                               : cast<AssumeStmt>(S)->pred();
    if (Side == VarTag::Orig)
      // Established (assert) or assumed (assume) by the original pass.
      return maybeSimplify(Ctx.andExpr(Pre, inject(Ctx, Pred, VarTag::Orig)));
    // The relaxed execution runs without an original counterpart, so both
    // assert and assume carry full obligations (as in |-i, Figure 9).
    emitSafetyOneSided(Pre, safetyCondition(Ctx, Pred), Side, RulePrefix,
                       S->loc());
    emitValidity(Ctx.implies(Pre, inject(Ctx, Pred, VarTag::Rel)), RulePrefix,
                 S->loc(),
                 "the predicate holds for the relaxed execution in this "
                 "branch combination");
    return maybeSimplify(Ctx.andExpr(Pre, inject(Ctx, Pred, VarTag::Rel)));
  }

  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    emitSafetyOneSided(Pre, safetyCondition(Ctx, I->cond()), Side, RulePrefix,
                       S->loc());
    const BoolExpr *B = inject(Ctx, I->cond(), Side);
    const BoolExpr *ThenPost = genStmtOneSided(
        I->thenStmt(), maybeSimplify(Ctx.andExpr(Pre, B)), Side);
    const BoolExpr *ElsePost = genStmtOneSided(
        I->elseStmt(), maybeSimplify(Ctx.andExpr(Pre, Ctx.notExpr(B))), Side);
    return maybeSimplify(Ctx.orExpr(ThenPost, ElsePost));
  }

  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    const BoolExpr *Mid = genStmtOneSided(Q->first(), Pre, Side);
    return genStmtOneSided(Q->second(), Mid, Side);
  }

  case Stmt::Kind::Call:
    // Sema rejects this first; a one-sided summary instantiation would
    // need per-side contracts the language does not have.
    Diags.error(S->loc(),
                "'diverge cases' branches must not contain procedure calls");
    return Ctx.falseExpr();

  case Stmt::Kind::While:
  case Stmt::Kind::Relate:
    Diags.error(S->loc(), "loops and relate statements cannot appear inside "
                          "a 'diverge cases' region");
    return Ctx.falseExpr();
  }
  return Pre;
}

const BoolExpr *RelationalVCGen::genIfCases(const IfStmt *I,
                                            const BoolExpr *Pre) {
  emitSafetyBoth(Pre, I->cond(), "cases", I->loc());
  const BoolExpr *Bo = inject(Ctx, I->cond(), VarTag::Orig);
  const BoolExpr *Br = inject(Ctx, I->cond(), VarTag::Rel);

  std::vector<const BoolExpr *> CasePosts;
  struct Combo {
    bool OrigTaken;
    bool RelTaken;
  };
  for (Combo C : {Combo{true, true}, Combo{true, false}, Combo{false, true},
                  Combo{false, false}}) {
    const BoolExpr *CasePre = maybeSimplify(Ctx.conj(
        {Pre, C.OrigTaken ? Bo : Ctx.notExpr(Bo),
         C.RelTaken ? Br : Ctx.notExpr(Br)}));
    const Stmt *OrigStmt = C.OrigTaken ? I->thenStmt() : I->elseStmt();
    const Stmt *RelStmt = C.RelTaken ? I->thenStmt() : I->elseStmt();
    const BoolExpr *AfterOrig =
        genStmtOneSided(OrigStmt, CasePre, VarTag::Orig);
    const BoolExpr *AfterBoth =
        genStmtOneSided(RelStmt, AfterOrig, VarTag::Rel);
    CasePosts.push_back(AfterBoth);
  }
  const BoolExpr *Post = maybeSimplify(Ctx.disj(CasePosts));
  record("diverge-cases", I, Pre, Post);
  return Post;
}

const BoolExpr *RelationalVCGen::genStmt(const Stmt *S, const BoolExpr *Pre) {
  CurStmt = S; // provenance: VCs emitted below originate from S
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    record("skip", S, Pre, Pre);
    return Pre;

  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    emitSafetyBoth(Pre, A->value(), "assign", S->loc());
    Symbol X = A->var();
    const BoolExpr *Post = Pre;
    // Both executions perform the assignment in lockstep; rename each
    // side's target and conjoin its defining equation.
    for (VarTag Tag : {VarTag::Orig, VarTag::Rel}) {
      Symbol X0 = Ctx.freshSym(X);
      Subst Rename;
      Rename.mapVar(X, Tag, Ctx.var(X0, Tag));
      const BoolExpr *Renamed = substitute(Ctx, Post, Rename);
      const Expr *RHS =
          substitute(Ctx, inject(Ctx, A->value(), Tag), Rename);
      Post = Ctx.exists(X0, Tag, VarKind::Int,
                        Ctx.andExpr(Renamed, Ctx.eq(Ctx.var(X, Tag), RHS)));
    }
    Post = maybeSimplify(Post);
    record("assign", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    emitSafetyBoth(Pre, A->index(), "array-assign", S->loc());
    emitSafetyBoth(Pre, A->value(), "array-assign", S->loc());
    if (Opts.CheckSafety) {
      const ArrayExpr *Arr = Ctx.arrayRef(A->array(), VarTag::Plain);
      const BoolExpr *InBounds =
          Ctx.andExpr(Ctx.ge(A->index(), Ctx.intLit(0)),
                      Ctx.lt(A->index(), Ctx.arrayLen(Arr)));
      emitValidity(Ctx.implies(Pre, Ctx.andExpr(
                                        inject(Ctx, InBounds, VarTag::Orig),
                                        inject(Ctx, InBounds, VarTag::Rel))),
                   "array-assign", S->loc(),
                   "array store index is in bounds in both executions");
    }
    Symbol X = A->array();
    const BoolExpr *Post = Pre;
    for (VarTag Tag : {VarTag::Orig, VarTag::Rel}) {
      Symbol X0 = Ctx.freshSym(X);
      Subst Rename;
      Rename.mapArray(X, Tag, Ctx.arrayRef(X0, Tag));
      const BoolExpr *Renamed = substitute(Ctx, Post, Rename);
      const Expr *Idx = substitute(Ctx, inject(Ctx, A->index(), Tag), Rename);
      const Expr *Val = substitute(Ctx, inject(Ctx, A->value(), Tag), Rename);
      const ArrayExpr *NewVal =
          Ctx.arrayStore(Ctx.arrayRef(X0, Tag), Idx, Val);
      Post = Ctx.exists(X0, Tag, VarKind::Array,
                        Ctx.andExpr(Renamed,
                                    Ctx.arrayEq(Ctx.arrayRef(X, Tag),
                                                NewVal)));
    }
    Post = maybeSimplify(Post);
    record("array-assign", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Havoc: {
    const auto *H = cast<HavocStmt>(S);
    // Both executions choose independently, each subject to e.
    emitSat(Ctx.andExpr(freshenSide(H, Pre, VarTag::Orig),
                        inject(Ctx, H->pred(), VarTag::Orig)),
            "havoc", S->loc(),
            "the original execution's havoc predicate is satisfiable");
    emitSat(Ctx.andExpr(freshenSide(H, Pre, VarTag::Rel),
                        inject(Ctx, H->pred(), VarTag::Rel)),
            "havoc", S->loc(),
            "the relaxed execution's havoc predicate is satisfiable");
    const BoolExpr *Fresh =
        freshenSide(H, freshenSide(H, Pre, VarTag::Orig), VarTag::Rel);
    const BoolExpr *Post = maybeSimplify(
        Ctx.conj({Fresh, inject(Ctx, H->pred(), VarTag::Orig),
                  inject(Ctx, H->pred(), VarTag::Rel)}));
    record("havoc", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Relax: {
    const auto *R = cast<RelaxStmt>(S);
    // Figure 8 relax rule: only the relaxed side re-chooses X; the
    // original side keeps its values (relax is a no-op under ⇓o).
    emitSat(Ctx.andExpr(freshenSide(R, Pre, VarTag::Rel),
                        inject(Ctx, R->pred(), VarTag::Rel)),
            "relax", S->loc(),
            "the relaxation predicate is satisfiable for the relaxed "
            "execution");
    const BoolExpr *Fresh = freshenSide(R, Pre, VarTag::Rel);
    // <e . e>: the original execution satisfied e as an assert (so it is
    // available), and the relaxed execution's new values satisfy e.
    const BoolExpr *Post = maybeSimplify(
        Ctx.conj({Fresh, inject(Ctx, R->pred(), VarTag::Orig),
                  inject(Ctx, R->pred(), VarTag::Rel)}));
    record("relax", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    if (const DivergeAnnotation *D = I->diverge()) {
      if (D->CaseAnalysis)
        return genIfCases(I, Pre);
      return genDiverge(S, D, Pre);
    }
    emitSafetyBoth(Pre, I->cond(), "if", S->loc());
    emitConvergence(Pre, I->cond(), "if", S->loc());
    const BoolExpr *ThenPre = maybeSimplify(Ctx.andExpr(Pre, bothTrue(I->cond())));
    const BoolExpr *ElsePre =
        maybeSimplify(Ctx.andExpr(Pre, bothFalse(I->cond())));
    const BoolExpr *ThenPost = genStmt(I->thenStmt(), ThenPre);
    const BoolExpr *ElsePost = genStmt(I->elseStmt(), ElsePre);
    const BoolExpr *Post = maybeSimplify(Ctx.orExpr(ThenPost, ElsePost));
    record("if", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    if (const DivergeAnnotation *D = W->diverge())
      return genDiverge(S, D, Pre);
    const BoolExpr *Inv = W->annotations()->RelInvariant;
    if (!Inv) {
      Diags.warning(S->loc(), "while loop has no relational invariant; "
                              "defaulting to 'true'");
      Inv = Ctx.trueExpr();
    }
    emitValidity(Ctx.implies(Pre, Inv), "while", S->loc(),
                 "the relational loop invariant holds on entry");
    emitConvergence(Inv, W->cond(), "while", S->loc());
    emitSafetyBoth(Inv, W->cond(), "while", S->loc());
    const BoolExpr *BodyPre =
        maybeSimplify(Ctx.andExpr(Inv, bothTrue(W->cond())));

    // Relative termination (the paper's Section 6 anticipation): control
    // flow is convergent, so both executions take the same trip count. A
    // variant on the *original* side therefore bounds both executions: if
    // the original loop terminates, the relaxed loop terminates with it.
    const Expr *Variant = W->annotations()->Variant;
    Symbol Snapshot;
    if (Variant) {
      const Expr *VariantO = inject(Ctx, Variant, VarTag::Orig);
      emitValidity(Ctx.implies(BodyPre, Ctx.ge(VariantO, Ctx.intLit(0))),
                   "while:variant", S->loc(),
                   "the original execution's variant is bounded below");
      Snapshot = Ctx.freshSym(Ctx.sym("variant"));
      BodyPre = maybeSimplify(Ctx.andExpr(
          BodyPre, Ctx.eq(VariantO, Ctx.var(Snapshot, VarTag::Orig))));
    }

    const BoolExpr *BodyPost = genStmt(W->body(), BodyPre);
    CurStmt = S; // back out of the body: these VCs belong to the loop
    emitValidity(Ctx.implies(BodyPost, Inv), "while", S->loc(),
                 "the relational loop invariant is preserved by the body");
    if (Variant)
      emitValidity(
          Ctx.implies(BodyPost, Ctx.lt(inject(Ctx, Variant, VarTag::Orig),
                                       Ctx.var(Snapshot, VarTag::Orig))),
          "while:variant", S->loc(),
          "the original execution's variant strictly decreases (relative "
          "termination)");
    const BoolExpr *Post =
        maybeSimplify(Ctx.andExpr(Inv, bothFalse(W->cond())));
    record("while", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Assume: {
    const auto *A = cast<AssumeStmt>(S);
    const BoolExpr *Post =
        genAssertOrAssume(A->pred(), S->loc(), Pre, "assume");
    record("assume", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Assert: {
    const auto *A = cast<AssertStmt>(S);
    const BoolExpr *Post =
        genAssertOrAssume(A->pred(), S->loc(), Pre, "assert");
    record("assert", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Relate: {
    const auto *R = cast<RelateStmt>(S);
    emitValidity(Ctx.implies(Pre, R->pred()), "relate", S->loc(),
                 "the relate predicate holds for all lockstep pairs "
                 "reaching this point");
    const BoolExpr *Post = maybeSimplify(Ctx.andExpr(Pre, R->pred()));
    record("relate", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Call: {
    // Lockstep summary instantiation: both executions share control flow,
    // so they call the procedure together. Assert the callee's effective
    // relational precondition (its rrequires, or the default identity
    // relation over globals and parameters plus both-side requires), havoc
    // its effective frame on *both* sides, and assume its rensures. The
    // callee's body — verified once under its own |-r summary run — is
    // never re-traversed here.
    const auto *C = cast<CallStmt>(S);
    const Procedure *Callee = Prog.procedure(C->callee());
    if (!Callee) {
      Diags.error(S->loc(), "call to undefined procedure");
      return Pre;
    }
    // The relational-precondition check instantiates each parameter with
    // the call's argument expression, per tag — both evaluated in the
    // pre-call state. Substituting the expressions directly (rather than
    // going through the fresh snapshots below) keeps this obligation free
    // of fresh names, so its counterexamples are bit-identical however
    // many fresh symbols earlier runs drew from the shared interner.
    Subst ParamToArgExpr;
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      emitSafetyBoth(Pre, C->arg(I), "call", S->loc());
      if (I < Callee->params().size()) {
        Symbol P = Callee->params()[I].Name;
        ParamToArgExpr.mapVar(P, VarTag::Orig,
                              inject(Ctx, C->arg(I), VarTag::Orig));
        ParamToArgExpr.mapVar(P, VarTag::Rel,
                              inject(Ctx, C->arg(I), VarTag::Rel));
      }
    }
    const BoolExpr *RReq = effectiveRelRequires(Ctx, Prog, *Callee);
    emitValidity(
        Ctx.implies(Pre, substitute(Ctx, RReq, ParamToArgExpr)), "call",
        S->loc(),
        "the callee's relational precondition holds at the call site");

    // Snapshot the arguments for the havoc/rensures part: one fresh
    // symbol per parameter, used under both tags (lockstep — each side
    // passes its own evaluation of the same argument expression). The
    // snapshots are existentially quantified into the postcondition
    // below, so no fresh name escapes into later obligations free.
    Subst ParamToArg;
    std::vector<Symbol> ArgSyms;
    std::vector<const BoolExpr *> Binds;
    for (size_t I = 0, E = C->argCount(); I != E; ++I) {
      Symbol A = Ctx.freshSym(I < Callee->params().size()
                                  ? Callee->params()[I].Name
                                  : Ctx.sym("arg"));
      ArgSyms.push_back(A);
      Binds.push_back(Ctx.eq(Ctx.var(A, VarTag::Orig),
                             inject(Ctx, C->arg(I), VarTag::Orig)));
      Binds.push_back(Ctx.eq(Ctx.var(A, VarTag::Rel),
                             inject(Ctx, C->arg(I), VarTag::Rel)));
      if (I < Callee->params().size()) {
        Symbol P = Callee->params()[I].Name;
        ParamToArg.mapVar(P, VarTag::Orig, Ctx.var(A, VarTag::Orig));
        ParamToArg.mapVar(P, VarTag::Rel, Ctx.var(A, VarTag::Rel));
      }
    }
    const BoolExpr *Bound = maybeSimplify(Ctx.conj({Pre, Ctx.conj(Binds)}));

    // Havoc the callee's effective frame on both sides; array lengths are
    // execution-invariant, so length links are kept (as in freshenSide).
    Subst Rename;
    std::vector<std::tuple<Symbol, VarKind, VarTag>> Old;
    std::vector<const BoolExpr *> LenLinks;
    for (const VarRef &V : effectiveModifies(Prog, *Callee)) {
      for (VarTag Tag : {VarTag::Orig, VarTag::Rel}) {
        Symbol F = Ctx.freshSym(V.Name);
        Old.emplace_back(F, V.Kind, Tag);
        if (V.Kind == VarKind::Int) {
          Rename.mapVar(V.Name, Tag, Ctx.var(F, Tag));
        } else {
          Rename.mapArray(V.Name, Tag, Ctx.arrayRef(F, Tag));
          LenLinks.push_back(Ctx.eq(Ctx.arrayLen(Ctx.arrayRef(V.Name, Tag)),
                                    Ctx.arrayLen(Ctx.arrayRef(F, Tag))));
        }
      }
    }
    const BoolExpr *Havocked =
        Ctx.conj({substitute(Ctx, Bound, Rename), Ctx.conj(LenLinks)});
    for (const auto &[F, Kind, Tag] : Old)
      Havocked = Ctx.exists(F, Tag, Kind, Havocked);

    const BoolExpr *REns =
        Callee->relEnsuresClause()
            ? substitute(Ctx, Callee->relEnsuresClause(), ParamToArg)
            : Ctx.trueExpr();
    const BoolExpr *Post = Ctx.andExpr(Havocked, REns);
    // Close the argument snapshots: innermost binder first, both tags.
    for (auto It = ArgSyms.rbegin(), E = ArgSyms.rend(); It != E; ++It) {
      Post = Ctx.exists(*It, VarTag::Rel, VarKind::Int, Post);
      Post = Ctx.exists(*It, VarTag::Orig, VarKind::Int, Post);
    }
    Post = maybeSimplify(Post);
    record("call", S, Pre, Post);
    return Post;
  }

  case Stmt::Kind::Seq: {
    const auto *Q = cast<SeqStmt>(S);
    const BoolExpr *Mid = genStmt(Q->first(), Pre);
    return genStmt(Q->second(), Mid);
  }
  }
  return Pre;
}

void RelationalVCGen::genTriple(const BoolExpr *Pre, const Stmt *S,
                                const BoolExpr *Post) {
  const BoolExpr *SP = genStmt(S, Pre);
  CurStmt = nullptr; // a whole-triple obligation, not tied to one statement
  emitValidity(Ctx.implies(SP, Post), "consequence", S->loc(),
               "the relational postcondition follows from the strongest "
               "postcondition");
}
