//===- ProofChecker.cpp - Independent derivation validation -------------------===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "vcgen/ProofChecker.h"

#include "support/Random.h"
#include "vcgen/Discharge.h"

using namespace relax;

std::vector<const BoolExpr *> ProofChecker::bindState(const State &S,
                                                      VarTag Tag) {
  std::vector<const BoolExpr *> Out;
  for (const auto &[Name, V] : S) {
    if (V.isInt()) {
      Out.push_back(Ctx.eq(Ctx.var(Name, Tag), Ctx.intLit(V.asInt())));
      continue;
    }
    const ArrayExpr *Ref = Ctx.arrayRef(Name, Tag);
    const ArrayValue &Arr = V.asArray();
    Out.push_back(Ctx.eq(Ctx.arrayLen(Ref),
                         Ctx.intLit(static_cast<int64_t>(Arr.size()))));
    for (size_t I = 0, E = Arr.size(); I != E; ++I)
      Out.push_back(
          Ctx.eq(Ctx.arrayRead(Ref, Ctx.intLit(static_cast<int64_t>(I))),
                 Ctx.intLit(Arr[I])));
  }
  return Out;
}

Result<bool> ProofChecker::holds(const BoolExpr *F, const State &S,
                                 VarTag Tag) {
  std::vector<const BoolExpr *> Query = bindState(S, Tag);
  Query.push_back(F);
  Result<SatResult> R = TheSolver.checkSat(Query);
  if (!R.ok())
    return R.status();
  if (*R == SatResult::Unknown)
    return Result<bool>::error("solver returned unknown");
  return *R == SatResult::Sat;
}

Result<bool> ProofChecker::holdsPair(const BoolExpr *F, const State &O,
                                     const State &R) {
  std::vector<const BoolExpr *> Query = bindState(O, VarTag::Orig);
  std::vector<const BoolExpr *> RBind = bindState(R, VarTag::Rel);
  Query.insert(Query.end(), RBind.begin(), RBind.end());
  Query.push_back(F);
  Result<SatResult> Res = TheSolver.checkSat(Query);
  if (!Res.ok())
    return Res.status();
  if (*Res == SatResult::Unknown)
    return Result<bool>::error("solver returned unknown");
  return *Res == SatResult::Sat;
}

namespace {

/// Converts a solver model restricted to \p Tag into an interpreter state;
/// variables missing from the model default to zero / a small zero array.
State modelToState(const Program &Prog, const Model &M, VarTag Tag,
                   size_t DefaultArrayLen) {
  State Out;
  for (const VarDecl &D : Prog.decls()) {
    if (D.Kind == VarKind::Int) {
      auto It = M.Ints.find(VarRef{D.Name, Tag, VarKind::Int});
      Out[D.Name] = Value(It == M.Ints.end() ? 0 : It->second);
    } else {
      auto It = M.Arrays.find(VarRef{D.Name, Tag, VarKind::Array});
      Out[D.Name] = It == M.Arrays.end()
                        ? Value(ArrayValue(DefaultArrayLen, 0))
                        : Value(It->second.Elems);
    }
  }
  return Out;
}

} // namespace

/// Free integer variables of \p Pre (on side \p Tag) that are procedure
/// parameters rather than globals. Steps inside a parameterized body have
/// these free in their pre/postconditions; sampling must bind them or the
/// interpreter replay gets stuck on the unbound name.
std::vector<VarRef> ProofChecker::freeParams(const BoolExpr *Pre,
                                             VarTag Tag) {
  std::vector<VarRef> Out;
  for (const VarRef &V : freeVars(Pre)) {
    if (V.Tag != Tag || V.Kind != VarKind::Int || Prog.isDeclared(V.Name))
      continue;
    for (const Procedure &P : Prog.procedures())
      if (P.hasParam(V.Name)) {
        Out.push_back(V);
        break;
      }
  }
  return Out;
}

std::optional<State> ProofChecker::sampleState(const BoolExpr *Pre,
                                               VarTag Tag, uint64_t Seed) {
  VarRefSet Wanted;
  for (const VarDecl &D : Prog.decls())
    Wanted.insert(VarRef{D.Name, Tag, D.Kind});
  std::vector<VarRef> Params = freeParams(Pre, Tag);
  for (const VarRef &V : Params)
    Wanted.insert(V);

  auto Build = [&](const Model &M) {
    State S = modelToState(Prog, M, Tag, 4);
    for (const VarRef &V : Params) {
      auto It = M.Ints.find(V);
      S[V.Name] = Value(It == M.Ints.end() ? 0 : It->second);
    }
    return S;
  };

  // Diversity: try pinning one scalar to a random small value first.
  SplitMix64 Rng(Seed);
  std::vector<Symbol> Scalars;
  for (const VarDecl &D : Prog.decls())
    if (D.Kind == VarKind::Int)
      Scalars.push_back(D.Name);
  if (!Scalars.empty()) {
    Symbol Pin = Scalars[static_cast<size_t>(
        Rng.nextInRange(0, static_cast<int64_t>(Scalars.size()) - 1))];
    const BoolExpr *PinEq =
        Ctx.eq(Ctx.var(Pin, Tag), Ctx.intLit(Rng.nextInRange(-16, 16)));
    Model M;
    Result<SatResult> R = TheSolver.checkSatWithModel({Pre, PinEq}, Wanted, M);
    if (R.ok() && *R == SatResult::Sat)
      return Build(M);
  }
  Model M;
  Result<SatResult> R = TheSolver.checkSatWithModel({Pre}, Wanted, M);
  if (!R.ok() || *R != SatResult::Sat)
    return std::nullopt;
  return Build(M);
}

std::optional<std::pair<State, State>>
ProofChecker::samplePair(const BoolExpr *Pre, uint64_t Seed) {
  VarRefSet Wanted;
  for (const VarDecl &D : Prog.decls()) {
    Wanted.insert(VarRef{D.Name, VarTag::Orig, D.Kind});
    Wanted.insert(VarRef{D.Name, VarTag::Rel, D.Kind});
  }
  std::vector<VarRef> ParamsO = freeParams(Pre, VarTag::Orig);
  std::vector<VarRef> ParamsR = freeParams(Pre, VarTag::Rel);
  for (const VarRef &V : ParamsO)
    Wanted.insert(V);
  for (const VarRef &V : ParamsR)
    Wanted.insert(V);
  SplitMix64 Rng(Seed);
  std::vector<Symbol> Scalars;
  for (const VarDecl &D : Prog.decls())
    if (D.Kind == VarKind::Int)
      Scalars.push_back(D.Name);
  std::vector<const BoolExpr *> Query = {Pre};
  if (!Scalars.empty()) {
    Symbol Pin = Scalars[static_cast<size_t>(
        Rng.nextInRange(0, static_cast<int64_t>(Scalars.size()) - 1))];
    Query.push_back(Ctx.eq(Ctx.var(Pin, VarTag::Orig),
                           Ctx.intLit(Rng.nextInRange(-16, 16))));
  }
  Model M;
  Result<SatResult> R = TheSolver.checkSatWithModel(Query, Wanted, M);
  if (!R.ok() || *R != SatResult::Sat) {
    Model M2;
    R = TheSolver.checkSatWithModel({Pre}, Wanted, M2);
    if (!R.ok() || *R != SatResult::Sat)
      return std::nullopt;
    M = M2;
  }
  State SO = modelToState(Prog, M, VarTag::Orig, 4);
  for (const VarRef &V : ParamsO) {
    auto It = M.Ints.find(V);
    SO[V.Name] = Value(It == M.Ints.end() ? 0 : It->second);
  }
  State SR = modelToState(Prog, M, VarTag::Rel, 4);
  for (const VarRef &V : ParamsR) {
    auto It = M.Ints.find(V);
    SR[V.Name] = Value(It == M.Ints.end() ? 0 : It->second);
  }
  return std::make_pair(std::move(SO), std::move(SR));
}

void ProofChecker::checkUnaryStep(const DerivationStep &Step, size_t Index,
                                  ProofCheckReport &Report) {
  SemanticsMode Mode = Step.Judgment == JudgmentKind::Original
                           ? SemanticsMode::Original
                           : SemanticsMode::Relaxed;
  for (unsigned Sample = 0; Sample != Opts.SamplesPerStep; ++Sample) {
    uint64_t Seed = Opts.Seed + 131 * Index + Sample;
    std::optional<State> Init = sampleState(Step.Pre, VarTag::Plain, Seed);
    if (!Init) {
      ++Report.StepsSkipped;
      return; // unsatisfiable precondition: the step is vacuous
    }
    SolverOracle::Options OO;
    OO.Seed = Seed * 3 + 1;
    SolverOracle O(Ctx, TheSolver, OO);
    Interp I(Prog, Ctx.symbols(), O, InterpOptions{Opts.MaxSteps});
    Outcome Out = I.runStmt(Mode, Step.S, *Init);
    ++Report.SamplesRun;

    switch (Out.Kind) {
    case OutcomeKind::Stuck:
      ++Report.StepsSkipped;
      continue;
    case OutcomeKind::Ba:
      if (Step.Judgment == JudgmentKind::Original)
        continue; // original executions may violate assumptions (Lemma 2)
      Report.Violations.push_back(
          {ProofCheckViolation::Kind::UnexpectedWr, Index,
           "intermediate-semantics step reached ba: " + Out.Reason});
      continue;
    case OutcomeKind::Wr:
      Report.Violations.push_back(
          {ProofCheckViolation::Kind::UnexpectedWr, Index,
           "step reached wr from a precondition model: " + Out.Reason});
      continue;
    case OutcomeKind::Ok:
      break;
    }
    Result<bool> PostHolds = holds(Step.Post, Out.FinalState, VarTag::Plain);
    if (!PostHolds.ok()) {
      ++Report.StepsSkipped;
      continue;
    }
    if (!*PostHolds)
      Report.Violations.push_back(
          {ProofCheckViolation::Kind::UnsoundPost, Index,
           "rule '" + Step.Rule + "': dynamic execution escaped the " +
               "recorded postcondition; final state " +
               formatState(Ctx.symbols(), Out.FinalState)});
  }
}

void ProofChecker::checkRelationalStep(const DerivationStep &Step,
                                       size_t Index,
                                       ProofCheckReport &Report) {
  for (unsigned Sample = 0; Sample != Opts.SamplesPerStep; ++Sample) {
    uint64_t Seed = Opts.Seed + 257 * Index + Sample;
    auto Pair = samplePair(Step.Pre, Seed);
    if (!Pair) {
      ++Report.StepsSkipped;
      return;
    }
    SolverOracle::Options OO;
    OO.Seed = Seed * 5 + 3;
    SolverOracle OrigOracle(Ctx, TheSolver, OO);
    SolverOracle::Options RO;
    RO.Seed = Seed * 7 + 5;
    SolverOracle RelOracle(Ctx, TheSolver, RO);

    Interp OrigInterp(Prog, Ctx.symbols(), OrigOracle,
                      InterpOptions{Opts.MaxSteps});
    Outcome Orig =
        OrigInterp.runStmt(SemanticsMode::Original, Step.S, Pair->first);
    Interp RelInterp(Prog, Ctx.symbols(), RelOracle,
                     InterpOptions{Opts.MaxSteps});
    Outcome Rel =
        RelInterp.runStmt(SemanticsMode::Relaxed, Step.S, Pair->second);
    ++Report.SamplesRun;

    if (Orig.Kind == OutcomeKind::Stuck || Rel.Kind == OutcomeKind::Stuck) {
      ++Report.StepsSkipped;
      continue;
    }
    if (Orig.Kind == OutcomeKind::Wr) {
      Report.Violations.push_back(
          {ProofCheckViolation::Kind::UnexpectedWr, Index,
           "original side reached wr: " + Orig.Reason});
      continue;
    }
    if (Orig.Kind == OutcomeKind::Ba)
      continue; // pairs whose original run fails an assumption are exempt
    if (Rel.isError()) {
      Report.Violations.push_back(
          {ProofCheckViolation::Kind::UnexpectedWr, Index,
           "relaxed side erred while the original succeeded (violates "
           "relative progress): " +
               Rel.Reason});
      continue;
    }
    Result<bool> PostHolds =
        holdsPair(Step.Post, Orig.FinalState, Rel.FinalState);
    if (!PostHolds.ok()) {
      ++Report.StepsSkipped;
      continue;
    }
    if (!*PostHolds)
      Report.Violations.push_back(
          {ProofCheckViolation::Kind::UnsoundPost, Index,
           "rule '" + Step.Rule + "': execution pair escaped the recorded " +
               "relational postcondition"});
  }
}

ProofCheckReport ProofChecker::check(const VCSet &Set) {
  ProofCheckReport Report;

  // 1. Re-discharge every VC through the shared discharge path
  // (vcgen/Discharge.h) — the same query construction and verdict
  // mapping the Verifier uses, on whatever backend this checker holds
  // (including a tiered PortfolioSolver), so checker and verifier can
  // never disagree on backend semantics.
  for (size_t I = 0, E = Set.VCs.size(); I != E; ++I) {
    const VC &C = Set.VCs[I];
    VCOutcome Out = dischargeVC(C, vcQuery(Ctx, C), TheSolver,
                                Ctx.symbols(), /*Shared=*/nullptr);
    switch (Out.Status) {
    case VCStatus::Proved:
      break;
    case VCStatus::Unknown:
    case VCStatus::SolverError:
      ++Report.StepsSkipped;
      break;
    case VCStatus::Failed:
      Report.Violations.push_back({ProofCheckViolation::Kind::VCRejected, I,
                                   "VC '" + C.Rule + "' rejected: " +
                                       C.Description});
      break;
    }
  }

  // 2. Differentially test every derivation step against the interpreter.
  for (size_t I = 0, E = Set.Derivation.size(); I != E; ++I) {
    const DerivationStep &Step = Set.Derivation[I];
    if (!Step.S || !Step.Pre || !Step.Post)
      continue;
    ++Report.StepsChecked;
    if (Step.Judgment == JudgmentKind::Relaxed)
      checkRelationalStep(Step, I, Report);
    else
      checkUnaryStep(Step, I, Report);
  }
  return Report;
}
