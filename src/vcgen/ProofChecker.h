//===- ProofChecker.h - Independent derivation validation ----------*- C++ -*-===//
//
// Part of the relaxc project: a verifier for relaxed nondeterministic
// approximate programs (Carbin et al., PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper machine-checks its proof rules against the dynamic semantics
/// in Coq (Lemmas 1, 3, 5). This checker plays the analogous role for the
/// implementation: it re-validates a recorded derivation *against the
/// interpreter*, independently of the VC generator that produced it.
///
/// For every recorded step {P} s {Q} (or {P*} s {Q*}):
///   1. draw satisfying models of the precondition with the solver,
///   2. execute s under the step's dynamic semantics (⇓o for |-o steps;
///      ⇓r for |-i steps; an (⇓o, ⇓r) pair for |-r steps),
///   3. check the resulting state (pair) satisfies the postcondition —
///      decided by the solver, so quantified postconditions are exact.
///
/// A violation means the generator assigned an unsound postcondition — a
/// bug in a proof rule's implementation, precisely what Coq soundness
/// lemmas rule out for the paper. The checker also re-discharges every VC,
/// optionally with a different backend (cross-checking the Z3 translation).
///
//===----------------------------------------------------------------------===//

#ifndef RELAXC_VCGEN_PROOFCHECKER_H
#define RELAXC_VCGEN_PROOFCHECKER_H

#include "eval/Interp.h"
#include "vcgen/Verifier.h"

namespace relax {

/// One detected problem.
struct ProofCheckViolation {
  enum class Kind {
    UnsoundPost,   ///< dynamic execution escaped the postcondition
    UnexpectedWr,  ///< a proved step still reached wr dynamically
    VCRejected,    ///< a VC failed under the checking solver
  };
  Kind ViolationKind = Kind::UnsoundPost;
  size_t StepIndex = 0; ///< index into derivation / VC list
  std::string Detail;
};

/// Result of checking one derivation.
struct ProofCheckReport {
  size_t StepsChecked = 0;
  size_t SamplesRun = 0;
  size_t StepsSkipped = 0; ///< unsatisfiable pre / solver unknown / stuck
  std::vector<ProofCheckViolation> Violations;

  bool ok() const { return Violations.empty(); }
};

/// Re-validates derivations against the dynamic semantics.
class ProofChecker {
public:
  struct Options {
    unsigned SamplesPerStep = 3;
    uint64_t Seed = 1;
    uint64_t MaxSteps = 200'000; ///< interpreter fuel per sample
  };

  ProofChecker(AstContext &Ctx, const Program &Prog, Solver &S)
      : Ctx(Ctx), Prog(Prog), TheSolver(S) {}
  ProofChecker(AstContext &Ctx, const Program &Prog, Solver &S, Options Opts)
      : Ctx(Ctx), Prog(Prog), TheSolver(S), Opts(Opts) {}

  /// Checks every step of \p Set's derivation and re-discharges its VCs.
  ProofCheckReport check(const VCSet &Set);

private:
  AstContext &Ctx;
  const Program &Prog;
  Solver &TheSolver;
  Options Opts;

  /// Draws a model of \p Pre restricted to the given tag's variables and
  /// converts it into an interpreter state (missing variables default to
  /// zero / empty arrays of a small length).
  std::optional<State> sampleState(const BoolExpr *Pre, VarTag Tag,
                                   uint64_t Seed);
  std::optional<std::pair<State, State>> samplePair(const BoolExpr *Pre,
                                                    uint64_t Seed);

  /// Free integer variables of \p Pre on side \p Tag that are procedure
  /// parameters (steps inside a parameterized body mention them free);
  /// sampling binds them so interpreter replay can evaluate the body.
  std::vector<VarRef> freeParams(const BoolExpr *Pre, VarTag Tag);

  /// Solver-decided state satisfaction: σ (or the pair) ⊨ F.
  Result<bool> holds(const BoolExpr *F, const State &S, VarTag Tag);
  Result<bool> holdsPair(const BoolExpr *F, const State &O, const State &R);

  void checkUnaryStep(const DerivationStep &Step, size_t Index,
                      ProofCheckReport &Report);
  void checkRelationalStep(const DerivationStep &Step, size_t Index,
                           ProofCheckReport &Report);

  /// Builds formulas binding every program variable to its value in \p S.
  std::vector<const BoolExpr *> bindState(const State &S, VarTag Tag);
};

} // namespace relax

#endif // RELAXC_VCGEN_PROOFCHECKER_H
